#!/usr/bin/env python3
"""Quickstart: assess one lossy compression in a dozen lines.

Generates a Miranda-like turbulence field, compresses it with the
SZ-style error-bounded compressor at REL 1e-3, and runs the full
cuZ-Checker assessment — every metric plus modelled GPU/CPU execution
times and speedups.

Run:  python examples/quickstart.py
"""

from repro.compressors import SZCompressor
from repro.core.compare import assess_compressor
from repro.core.output import report_to_text
from repro.datasets import generate_field, scaled_shape

# 1. data: a laptop-sized stand-in for the Miranda density field
shape = scaled_shape("miranda", scale=0.15)  # (39, 58, 58)
field = generate_field("miranda", "density", shape=shape)
print(f"field: miranda/density, shape={field.shape}, {field.nbytes / 1e6:.1f} MB")

# 2. compressor under test: error-bounded SZ at REL 1e-3
compressor = SZCompressor(rel_bound=1e-3)

# 3. one call: compress, decompress, assess everything
report = assess_compressor(field.data, compressor, with_baselines=True)

print()
print(report_to_text(report))

# 4. the numbers a compressor user cares about
s = report.scalars()
print()
print(f"compression ratio : {s['compression_ratio']:.2f}:1")
print(f"PSNR              : {s['psnr']:.2f} dB")
print(f"SSIM              : {s['ssim']:.6f}")
print(f"max abs error     : {abs(s['max_err']):.3e} "
      f"(bound was {s['value_range'] * 1e-3:.3e})")
