#!/usr/bin/env python3
"""Regenerate every evaluation figure/table of the paper from the models.

Walks the full Section IV evaluation at the paper's true dataset shapes:
Fig. 10 (overall speedups), Fig. 11 (per-pattern throughput), Fig. 12
(per-pattern speedups), and Table II (runtime profiling) — rendered as
ASCII charts/tables.

Run:  python examples/performance_model.py
"""

from repro.analysis.speedup import overall_speedups, speedup_table
from repro.analysis.throughput import pattern_throughputs
from repro.core.profiles import runtime_profile
from repro.datasets import PAPER_SHAPES
from repro.viz.ascii import ascii_bar_chart, ascii_table

print("=" * 70)
print("Fig. 10 — overall speedups (paper: 22.6-31.2x ompZC, 1.49-1.7x moZC)")
print("=" * 70)
rows = overall_speedups(PAPER_SHAPES)
for baseline in ("ompZC", "moZC"):
    values = {r.dataset: r.speedup for r in rows if r.baseline == baseline}
    print(ascii_bar_chart(values, title=f"\ncuZC speedup vs {baseline}:",
                          unit="x"))

for pattern, paper in (
    (1, "cuZC 103-137 GB/s, moZC 17-31, ompZC 0.44-0.51"),
    (2, "(ordering only in the paper)"),
    (3, "cuZC 497-758 MB/s, moZC 351-514, ompZC 24.8-26.6"),
):
    print()
    print("=" * 70)
    print(f"Fig. 11 — pattern-{pattern} throughput (paper: {paper})")
    print("=" * 70)
    unit = 1e6 if pattern == 3 else 1e9
    label = "MB/s" if pattern == 3 else "GB/s"
    table = []
    for row in pattern_throughputs(PAPER_SHAPES, pattern):
        table.append({
            "framework": row.framework,
            "dataset": row.dataset,
            f"throughput [{label}]": f"{row.bytes_per_second / unit:.2f}",
        })
    print(ascii_table(table))

for pattern, paper in (
    (1, "227-268x ompZC / 3.49-6.38x moZC"),
    (2, "17.1-47.4x ompZC / 1.79-1.86x moZC"),
    (3, "19.2-28.5x ompZC / 1.42-1.63x moZC"),
):
    print()
    print("=" * 70)
    print(f"Fig. 12 — pattern-{pattern} speedups (paper: {paper})")
    print("=" * 70)
    for row in speedup_table(PAPER_SHAPES, pattern):
        print(f"  {row.dataset:<12} vs {row.baseline:<6} {row.speedup:8.2f}x")

print()
print("=" * 70)
print("Table II — runtime profiling")
print("=" * 70)
print(ascii_table([r.formatted() for r in runtime_profile(PAPER_SHAPES)]))
