#!/usr/bin/env python3
"""Streaming assessment of an instrument-style data stream.

The paper's introduction motivates GPU-resident assessment with light
source acquisition rates (250 GB/s on LCLS-II) that forbid staging whole
datasets.  This example simulates that pipeline: a detector produces
z-slabs one at a time, each slab is compressed and decompressed
immediately (in-situ), and the StreamingChecker folds every slab into
running assessment state — then the final result is shown to equal a
batch run on the whole volume.

Run:  python examples/streaming_assessment.py
"""

import numpy as np

from repro.compressors import SZCompressor
from repro.core.streaming import StreamingChecker
from repro.datasets import generate_field, scaled_shape
from repro.kernels.pattern1 import execute_pattern1
from repro.kernels.pattern3 import Pattern3Config, execute_pattern3

# the "acquisition": a Scale-LETKF-like field arriving in 4-slice slabs
shape = scaled_shape("scale_letkf", 0.05)  # (16, 60, 60)
volume = generate_field("scale_letkf", "P", shape=shape).data
SLAB = 4

compressor = SZCompressor(rel_bound=1e-3)
# streaming SSIM needs the dynamic range up front — instruments know
# their detector's range a priori
L = float(volume.max() - volume.min())
checker = StreamingChecker(
    plane_shape=shape[1:],
    max_lag=5,
    ssim=Pattern3Config(window=6, dynamic_range=L),
)

print(f"streaming {shape[0]} slices in slabs of {SLAB} "
      f"({volume.nbytes / 1e6:.1f} MB total, "
      f"carry buffer ≤ {5} slices)...\n")

reconstructed = np.empty_like(volume)
for z0 in range(0, shape[0], SLAB):
    slab = volume[z0 : z0 + SLAB]
    dec = compressor.decompress(compressor.compress(slab))
    reconstructed[z0 : z0 + SLAB] = dec
    checker.update(slab, dec)
    print(f"  slab z={z0:>3}..{z0 + slab.shape[0] - 1:<3} assessed "
          f"(running elements: {checker._z * shape[1] * shape[2]:,})")

result = checker.finalize()

# ground truth: batch assessment of the fully staged volume
batch1, _ = execute_pattern1(volume, reconstructed)
batch3, _ = execute_pattern3(
    volume, reconstructed, Pattern3Config(window=6, dynamic_range=L)
)

print("\nstreaming vs batch (must agree exactly):")
rows = [
    ("psnr", result.pattern1.psnr, batch1.psnr),
    ("mse", result.pattern1.mse, batch1.mse),
    ("max_err", result.pattern1.max_err, batch1.max_err),
    ("ssim", result.ssim, batch3.ssim),
]
for name, streamed, batch in rows:
    ok = "OK" if np.isclose(streamed, batch, rtol=1e-12) else "MISMATCH"
    print(f"  {name:<8} streamed={streamed:.10g}  batch={batch:.10g}  [{ok}]")
print(f"  autocorrelation(1..3): "
      f"{np.round(result.autocorrelation[1:4], 5)}")
print("\nNote: the stream was assessed slab-by-slab; per-slab compression "
      "means slab-boundary prediction resets, exactly like a chunked "
      "in-situ pipeline.")
