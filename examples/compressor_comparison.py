#!/usr/bin/env python3
"""Compressor shoot-out: error-bounded SZ vs fixed-rate ZFP vs baselines.

Quantifies the paper's motivating observation (Section I): fixed-rate
compression trades substantial quality for its rate guarantee — "ZFP's
fixed-rate mode could result in 2~3x lower compression ratios than its
fixed-accuracy mode, with the same level of data distortion (in terms of
PSNR)".

Sweeps error bounds / rates on an NYX-like velocity field, prints the
rate-distortion table, and draws an ASCII R-D chart.

Run:  python examples/compressor_comparison.py
"""

from repro.analysis.sweep import sweep_error_bounds
from repro.compressors import (
    DecimateCompressor,
    UniformQuantCompressor,
    ZFPCompressor,
)
from repro.datasets import generate_field, scaled_shape
from repro.viz.ascii import ascii_line_plot, ascii_table

shape = scaled_shape("nyx", 0.11)  # (57, 57, 57)
field = generate_field("nyx", "velocity_x", shape=shape).data
print(f"field: nyx/velocity_x {shape}\n")

rows = []

sz_points = sweep_error_bounds(field, [1e-2, 1e-3, 1e-4])
for p in sz_points:
    rows.append({"codec": "sz", "knob": f"rel={p.parameter:g}",
                 "bit rate": f"{p.metrics['bit_rate']:.2f}",
                 "ratio": f"{p.metrics['ratio']:.2f}",
                 "psnr[dB]": f"{p.metrics['psnr']:.1f}",
                 "ssim": f"{p.metrics['ssim']:.5f}"})

zfp_points = sweep_error_bounds(
    field, [4, 8, 16], compressor_factory=lambda r: ZFPCompressor(rate=r)
)
for p in zfp_points:
    rows.append({"codec": "zfp", "knob": f"rate={p.parameter:g}",
                 "bit rate": f"{p.metrics['bit_rate']:.2f}",
                 "ratio": f"{p.metrics['ratio']:.2f}",
                 "psnr[dB]": f"{p.metrics['psnr']:.1f}",
                 "ssim": f"{p.metrics['ssim']:.5f}"})

uq_points = sweep_error_bounds(
    field, [1e-3],
    compressor_factory=lambda rb: UniformQuantCompressor(rel_bound=rb),
)
rows.append({"codec": "uniform_quant", "knob": "rel=0.001",
             "bit rate": f"{uq_points[0].metrics['bit_rate']:.2f}",
             "ratio": f"{uq_points[0].metrics['ratio']:.2f}",
             "psnr[dB]": f"{uq_points[0].metrics['psnr']:.1f}",
             "ssim": f"{uq_points[0].metrics['ssim']:.5f}"})

dec_points = sweep_error_bounds(
    field, [2], compressor_factory=lambda f: DecimateCompressor(factor=int(f))
)
rows.append({"codec": "decimate", "knob": "factor=2",
             "bit rate": f"{dec_points[0].metrics['bit_rate']:.2f}",
             "ratio": f"{dec_points[0].metrics['ratio']:.2f}",
             "psnr[dB]": f"{dec_points[0].metrics['psnr']:.1f}",
             "ssim": f"{dec_points[0].metrics['ssim']:.5f}"})

print(ascii_table(rows, title="rate-distortion comparison"))

xs = [p.metrics["bit_rate"] for p in sz_points + zfp_points]
ys = [p.metrics["psnr"] for p in sz_points + zfp_points]
print()
print(ascii_line_plot(xs, ys, title="R-D points: PSNR vs bit rate "
                                    "(SZ left/upper = better)"))

sz_ratio_at_quality = sz_points[1].metrics["ratio"]
zfp_same_quality = [
    p for p in zfp_points if p.metrics["psnr"] >= sz_points[1].metrics["psnr"]
]
if zfp_same_quality:
    gap = sz_ratio_at_quality / zfp_same_quality[0].metrics["ratio"]
    print(f"\nAt >= SZ@1e-3 quality, SZ compresses {gap:.1f}x better than "
          f"fixed-rate ZFP — the quality gap GPU-side assessment exists to "
          f"expose.")
