#!/usr/bin/env python3
"""Error-structure analysis across compressor families.

Why Z-checker exists: different lossy compressors distort data in
characteristically different ways even at the same RMSE.  This example
compares the *structure* of the errors — autocorrelation (white-noise
test, paper §III-B2), error PDF shape, and spectral damage — for four
codecs on the same field, and writes a self-contained HTML report per
codec (the Z-server substitution).

Run:  python examples/error_structure_analysis.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.compressors import (
    DecimateCompressor,
    SZCompressor,
    UniformQuantCompressor,
    ZFPCompressor,
)
from repro.core.compare import compare_data
from repro.datasets import generate_field, scaled_shape
from repro.metrics import spectral_comparison
from repro.viz.ascii import ascii_table
from repro.viz.html import write_report_html

OUT = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("error_structure")
OUT.mkdir(parents=True, exist_ok=True)

shape = scaled_shape("scale_letkf", 0.05)
field = generate_field("scale_letkf", "T", shape=shape).data
print(f"field: scale_letkf/T {shape}\n")

codecs = {
    "sz (error-bounded)": SZCompressor(rel_bound=1e-3),
    "uniform_quant": UniformQuantCompressor(rel_bound=1e-3),
    "zfp (fixed-rate)": ZFPCompressor(rate=10),
    "decimate": DecimateCompressor(factor=2),
}

rows = []
for name, codec in codecs.items():
    dec = codec.decompress(codec.compress(field))
    report = compare_data(field, dec, with_baselines=False)
    spec = spectral_comparison(field, dec)
    ac = report.pattern2.autocorrelation
    e = dec.astype(np.float64) - field.astype(np.float64)
    rows.append({
        "codec": name,
        "rmse": f"{report.scalars()['rmse']:.3e}",
        "ac(1)": f"{ac[1]:+.4f}",
        "ac(5)": f"{ac[5]:+.4f}",
        "spectral noise f": f"{spec.noise_frequency:.3f}",
        "|err| kurtosis-ish": f"{float(np.mean(e**4) / np.mean(e**2)**2):.1f}",
    })
    safe = name.split()[0]
    write_report_html(report, OUT / f"{safe}.html",
                      title=f"{name} on scale_letkf/T")

print(ascii_table(rows, title="error structure by codec"))
print("""
reading the table:
  * ac(tau) near 0    -> errors behave like white noise (ideal for many
                          downstream analyses; the paper's §III-B2 concern)
  * ac(tau) large     -> spatially structured artifacts (interpolation
                          smears, transform blocks)
  * spectral noise f  -> lowest frequency whose amplitude is corrupted
                          >10%; higher is better
""")
print(f"HTML reports written under {OUT}/ — open in any browser.")
