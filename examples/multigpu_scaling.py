#!/usr/bin/env python3
"""Multi-GPU assessment (the paper's Section VI future work, built).

Decomposes the NYX assessment across 1..8 simulated V100s along the
z-axis (halo exchange for the stencil/window metrics, ring allreduce for
the final merge), reports the modelled strong scaling, and demonstrates
the *exact* distributed pattern-1 merge on real data.

Run:  python examples/multigpu_scaling.py
"""

import numpy as np

from repro.compressors import SZCompressor
from repro.datasets import generate_field, scaled_shape
from repro.kernels.pattern1 import execute_pattern1
from repro.multigpu import MultiGpuCuZC
from repro.viz.ascii import ascii_table

# --- modelled strong scaling at the paper's NYX shape -------------------
shape = (512, 512, 512)
t1 = MultiGpuCuZC(1).estimate(shape).total_seconds
rows = []
for gpus in (1, 2, 4, 8):
    timing = MultiGpuCuZC(gpus).estimate(shape)
    rows.append({
        "GPUs": gpus,
        "local[s]": f"{timing.local_seconds:.4f}",
        "halo[ms]": f"{timing.halo_seconds * 1e3:.3f}",
        "allreduce[ms]": f"{timing.allreduce_seconds * 1e3:.3f}",
        "total[s]": f"{timing.total_seconds:.4f}",
        "efficiency": f"{timing.scaling_efficiency(t1):.2f}",
    })
print(ascii_table(rows, title="modelled strong scaling, NYX 512^3 "
                              "(efficiency >1 = shorter z-chains per GPU)"))

# --- functional demo: distributed pattern-1 equals single-device --------
field = generate_field("nyx", "temperature", shape=scaled_shape("nyx", 0.06))
comp = SZCompressor(rel_bound=1e-3)
dec = comp.decompress(comp.compress(field.data))

single, _ = execute_pattern1(field.data, dec)
multi = MultiGpuCuZC(4).assess_pattern1(field.data, dec)

print("\ndistributed pattern-1 merge check (4 ranks vs 1 device):")
for attr in ("min_err", "max_err", "mse", "psnr", "snr"):
    a, b = getattr(single, attr), getattr(multi, attr)
    match = "OK" if np.isclose(a, b, rtol=1e-12) else "MISMATCH"
    print(f"  {attr:<8} single={a:.10g}  merged={b:.10g}  [{match}]")
