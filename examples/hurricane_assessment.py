#!/usr/bin/env python3
"""Multi-field application assessment (the paper's Hurricane use case).

Synthesises several Hurricane-ISABEL-like fields, compresses each with
cuSZ-style SZ at REL 1e-3, assesses every field with the full metric
suite, and writes a Z-checker-style report directory: per-field JSON,
error-PDF / autocorrelation ``.dat`` series, and a summary table.

Run:  python examples/hurricane_assessment.py [output_dir]
"""

import sys
from pathlib import Path

from repro.compressors import SZCompressor
from repro.core.compare import assess_compressor
from repro.core.output import write_report_dats, write_report_json
from repro.datasets import generate_dataset
from repro.viz.ascii import ascii_table

OUT = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("hurricane_report")
N_FIELDS = 5  # of the 13; raise for the full application
SCALE = 0.12  # paper shape is (100, 500, 500); this gives (16, 60, 60)

dataset = generate_dataset("hurricane", scale=SCALE, n_fields=N_FIELDS)
compressor = SZCompressor(rel_bound=1e-3)
print(f"assessing {len(dataset)} Hurricane fields of shape "
      f"{dataset[0].shape} with SZ @ REL 1e-3 ...\n")

rows = []
for field in dataset:
    report = assess_compressor(field.data, compressor)
    s = report.scalars()
    rows.append(
        {
            "field": field.name,
            "ratio": f"{s['compression_ratio']:.2f}",
            "psnr[dB]": f"{s['psnr']:.2f}",
            "ssim": f"{s['ssim']:.5f}",
            "nrmse": f"{s['nrmse']:.2e}",
            "ac(1)": f"{report.pattern2.autocorrelation[1]:.4f}",
            "pearson": f"{s['pearson']:.6f}",
        }
    )
    field_dir = OUT / field.name
    field_dir.mkdir(parents=True, exist_ok=True)
    write_report_json(report, field_dir / "report.json")
    write_report_dats(report, field_dir)

print(ascii_table(rows, title="Hurricane ISABEL: per-field assessment"))
print(f"\nper-field reports written under {OUT}/")
print("plot any series with gnuplot, e.g.:")
print(f"  plot '{OUT}/{dataset[0].name}/err_pdf.dat' with lines")
