"""Hypothesis properties of the process executor.

The contract under test is *bit-identity*: farming work to spawn-pool
workers over shared memory must reproduce the serial numbers exactly —
same bytes in, same per-slab operation order, same bits out — across
metric subsets, odd field extents, and uneven slab seams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.schema import CheckerConfig
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.parallel import (
    parallel_compare_pairs,
    parallel_stream_field,
    process_available,
    warm_process_pool,
)

pytestmark = pytest.mark.skipif(
    not process_available(), reason="platform cannot run the process executor"
)

SETTINGS = settings(max_examples=6, deadline=None)

METRIC_SUBSETS = (
    "all",
    ("psnr", "nrmse"),
    ("psnr", "ssim", "autocorrelation"),
    ("min_err", "max_err", "value_range", "pearson"),
)


@pytest.fixture(scope="module", autouse=True)
def warm_pool():
    # one spawn + import per worker, amortised over every example
    warm_process_pool(2)


def _field_pair(seed: int, shape):
    rng = np.random.default_rng(seed)
    orig = rng.normal(size=shape).astype(np.float32)
    dec = (orig + rng.normal(scale=1e-3, size=shape)).astype(np.float32)
    return orig, dec


class TestProcessBatchBitIdentical:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        metrics=st.sampled_from(METRIC_SUBSETS),
        nz=st.integers(8, 13),
    )
    def test_matches_serial(self, seed, metrics, nz):
        config = CheckerConfig(
            metrics=metrics,
            pattern2=Pattern2Config(max_lag=3),
            pattern3=Pattern3Config(window=6),
        )
        pairs = [
            (f"f{i}", *_field_pair(seed + i, (nz, 10, 12))) for i in range(3)
        ]
        serial = parallel_compare_pairs(pairs, config=config, workers=1)
        proc = parallel_compare_pairs(
            pairs, config=config, workers=2, executor="process"
        )
        assert list(proc.reports) == list(serial.reports)
        for name in serial.reports:
            assert serial.reports[name].scalars() == proc.reports[name].scalars()
            s2, p2 = serial.reports[name].pattern2, proc.reports[name].pattern2
            if s2 is not None:
                assert np.array_equal(s2.autocorrelation, p2.autocorrelation)


class TestProcessSlabsBitIdentical:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        nz=st.integers(9, 19),  # odd extents force uneven slab seams
        workers=st.integers(2, 4),
        max_lag=st.integers(1, 4),
    )
    def test_matches_serial_slabs(self, seed, nz, workers, max_lag):
        orig, dec = _field_pair(seed, (nz, 10, 12))
        span = float(orig.max() - orig.min()) or 1.0
        kwargs = dict(
            max_lag=max_lag,
            ssim=Pattern3Config(window=6, dynamic_range=span),
        )
        # executor="serial" runs the *same* slab decomposition in-process,
        # so equality here is exact, not approximate
        serial = parallel_stream_field(
            orig, dec, workers=workers, executor="serial", **kwargs
        )
        proc = parallel_stream_field(
            orig, dec, workers=workers, executor="process", **kwargs
        )
        assert serial.ssim == proc.ssim
        assert serial.pattern1.psnr == proc.pattern1.psnr
        assert serial.pattern1.nrmse == proc.pattern1.nrmse
        assert np.array_equal(serial.autocorrelation, proc.autocorrelation)
