"""Hypothesis properties of the simulated kernels and streaming checker:
the functional layers must agree with the references for *arbitrary*
inputs, shapes, and chunkings — not just the fixtures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.streaming import StreamingChecker
from repro.kernels.pattern1 import execute_pattern1
from repro.kernels.pattern2 import Pattern2Config, execute_pattern2
from repro.kernels.pattern3 import Pattern3Config, execute_pattern3
from repro.metrics.autocorrelation import spatial_autocorrelation
from repro.metrics.derivatives import derivative_metrics
from repro.metrics.error_stats import error_stats
from repro.metrics.rate_distortion import rate_distortion
from repro.metrics.ssim import SsimConfig, ssim3d

SETTINGS = settings(max_examples=15, deadline=None)

fields = hnp.arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(6, 10), st.integers(6, 11), st.integers(6, 12)),
    elements=st.floats(-100, 100, width=32),
)
pairs = st.tuples(fields, st.integers(0, 2**31 - 1))


def perturb(field, seed, scale=0.05):
    rng = np.random.default_rng(seed)
    return (
        field + rng.normal(scale=scale, size=field.shape).astype(np.float32)
    ).astype(np.float32)


class TestPattern1Property:
    @SETTINGS
    @given(pairs)
    def test_matches_references(self, pair):
        field, seed = pair
        dec = perturb(field, seed)
        result, _ = execute_pattern1(field, dec)
        es = error_stats(field, dec)
        rd = rate_distortion(field, dec)
        assert result.min_err == pytest.approx(es.min_err, abs=1e-12)
        assert result.max_err == pytest.approx(es.max_err, abs=1e-12)
        assert result.mse == pytest.approx(rd.mse, rel=1e-10, abs=1e-300)
        assert result.value_range == pytest.approx(rd.value_range)


class TestPattern2Property:
    @SETTINGS
    @given(pairs)
    def test_matches_references(self, pair):
        field, seed = pair
        dec = perturb(field, seed)
        cfg = Pattern2Config(max_lag=2)
        result, _ = execute_pattern2(field, dec, cfg)
        ref = derivative_metrics(field, dec, 1)
        assert result.der1.rms_diff == pytest.approx(
            ref.rms_diff, rel=1e-9, abs=1e-12
        )
        e = dec.astype(np.float64) - field.astype(np.float64)
        assert np.allclose(
            result.autocorrelation, spatial_autocorrelation(e, 2), atol=1e-9
        )


class TestPattern3Property:
    @SETTINGS
    @given(pairs, st.integers(3, 5), st.integers(1, 2))
    def test_matches_reference(self, pair, window, step):
        field, seed = pair
        dec = perturb(field, seed)
        result, _ = execute_pattern3(
            field, dec, Pattern3Config(window=window, step=step)
        )
        ref = ssim3d(field, dec, SsimConfig(window=window, step=step))
        # near-constant fields suffer catastrophic cancellation in the
        # variance terms, where the FIFO and summed-area accumulation
        # orders legitimately diverge past 1e-9 relative
        assert result.ssim == pytest.approx(ref.ssim, rel=1e-8, abs=1e-12)
        assert result.n_windows == ref.n_windows


class TestStreamingProperty:
    @SETTINGS
    @given(pairs, st.lists(st.integers(1, 4), min_size=1, max_size=12))
    def test_any_chunking_matches_batch(self, pair, chunk_seed):
        field, seed = pair
        dec = perturb(field, seed)
        nz = field.shape[0]
        # turn the random list into a valid chunking of nz
        chunks = []
        remaining = nz
        for c in chunk_seed:
            if remaining == 0:
                break
            take = min(c, remaining)
            chunks.append(take)
            remaining -= take
        if remaining:
            chunks.append(remaining)

        checker = StreamingChecker(field.shape[1:], max_lag=2)
        start = 0
        for c in chunks:
            checker.update(field[start : start + c], dec[start : start + c])
            start += c
        result = checker.finalize()
        batch, _ = execute_pattern1(field, dec)
        assert result.pattern1.mse == pytest.approx(
            batch.mse, rel=1e-10, abs=1e-300
        )
        assert result.pattern1.min_err == batch.min_err
        e = dec.astype(np.float64) - field.astype(np.float64)
        assert np.allclose(
            result.autocorrelation, spatial_autocorrelation(e, 2), atol=1e-9
        )
