"""Hypothesis properties of the GPU execution-model simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpusim.costmodel import kernel_time
from repro.gpusim.counters import KernelStats
from repro.gpusim.device import V100
from repro.gpusim.occupancy import occupancy_for
from repro.gpusim.warp import shfl_down, shfl_up, warp_reduce

SETTINGS = settings(max_examples=40, deadline=None)

lane_arrays = hnp.arrays(
    np.float64, st.integers(1, 32), elements=st.floats(-1e6, 1e6)
)

stats_strategy = st.builds(
    KernelStats,
    launches=st.integers(1, 8),
    grid_syncs=st.integers(0, 4),
    global_read_bytes=st.integers(0, 10**10),
    global_write_bytes=st.integers(0, 10**9),
    shared_bytes=st.integers(0, 10**9),
    shuffle_ops=st.integers(0, 10**8),
    flops=st.integers(0, 10**11),
    atomic_ops=st.integers(0, 10**8),
    grid_blocks=st.integers(1, 10**5),
    threads_per_block=st.sampled_from([32, 64, 128, 256, 512]),
    regs_per_thread=st.integers(16, 128),
    smem_per_block=st.integers(0, 48 * 1024),
)


class TestWarpProperties:
    @SETTINGS
    @given(lane_arrays)
    def test_reduce_equals_sum(self, lanes):
        assert np.isclose(warp_reduce(lanes), lanes.sum(), rtol=1e-9, atol=1e-6)

    @SETTINGS
    @given(lane_arrays)
    def test_reduce_min_max_exact(self, lanes):
        assert warp_reduce(lanes, np.minimum) == lanes.min()
        assert warp_reduce(lanes, np.maximum) == lanes.max()

    @SETTINGS
    @given(lane_arrays, st.integers(0, 31))
    def test_shfl_up_down_duality(self, lanes, offset):
        """Shifting down then up preserves the interior lanes."""
        n = lanes.shape[-1]
        if offset >= n:
            return
        roundtrip = shfl_up(shfl_down(lanes, offset), offset)
        if n - 2 * offset > 0:
            assert np.array_equal(
                roundtrip[offset : n - offset], lanes[offset : n - offset]
            )


class TestOccupancyProperties:
    @SETTINGS
    @given(stats_strategy)
    def test_invariants(self, stats):
        occ = occupancy_for(V100, stats)
        assert 1 <= occ.concurrent_blocks_per_sm <= V100.max_blocks_per_sm
        assert occ.waves >= 1
        assert 0 < occ.wave_balance <= 1.0
        assert 1 <= occ.active_sms <= V100.sm_count
        assert 0 < occ.occupancy <= 1.0


class TestCostModelProperties:
    @SETTINGS
    @given(stats_strategy)
    def test_time_positive_and_finite(self, stats):
        cost = kernel_time(stats, V100)
        assert cost.total > 0
        assert np.isfinite(cost.total)

    @SETTINGS
    @given(stats_strategy, st.floats(1.1, 10.0))
    def test_monotone_in_workload(self, stats, factor):
        base = kernel_time(stats, V100).pipeline_time
        scaled = kernel_time(stats.scaled(factor), V100).pipeline_time
        assert scaled >= base * 0.999

    @SETTINGS
    @given(stats_strategy)
    def test_pipeline_is_max_of_pipes(self, stats):
        cost = kernel_time(stats, V100)
        assert cost.pipeline_time >= cost.mem_time
        assert cost.pipeline_time >= cost.compute_time
        assert cost.pipeline_time >= cost.smem_time
