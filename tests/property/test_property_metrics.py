"""Hypothesis properties of the metric references."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.autocorrelation import (
    series_autocorrelation,
    spatial_autocorrelation,
)
from repro.metrics.correlation import pearson
from repro.metrics.error_stats import error_pdf, error_stats
from repro.metrics.properties import entropy
from repro.metrics.rate_distortion import rate_distortion
from repro.metrics.ssim import SsimConfig, ssim3d

SETTINGS = settings(max_examples=30, deadline=None)

fields = hnp.arrays(
    dtype=np.float32,
    shape=st.tuples(
        st.integers(4, 8), st.integers(4, 9), st.integers(4, 10)
    ),
    elements=st.floats(-1e3, 1e3, width=32),
)

pairs = st.tuples(fields, st.integers(0, 2**31 - 1))


def perturb(field: np.ndarray, seed: int, scale: float = 0.1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (
        field + rng.normal(scale=scale, size=field.shape).astype(np.float32)
    ).astype(np.float32)


class TestErrorStatsProperties:
    @SETTINGS
    @given(pairs)
    def test_min_le_avg_le_max(self, pair):
        field, seed = pair
        stats = error_stats(field, perturb(field, seed))
        assert stats.min_err <= stats.avg_err <= stats.max_err
        assert stats.avg_abs_err >= abs(stats.avg_err) - 1e-12
        assert stats.max_abs_err == max(abs(stats.min_err), abs(stats.max_err))

    @SETTINGS
    @given(pairs)
    def test_antisymmetric_in_arguments(self, pair):
        field, seed = pair
        dec = perturb(field, seed)
        fwd = error_stats(field, dec)
        rev = error_stats(dec, field)
        assert fwd.max_err == -rev.min_err
        assert fwd.avg_err == -rev.avg_err

    @SETTINGS
    @given(pairs)
    def test_pdf_normalised(self, pair):
        field, seed = pair
        pdf = error_pdf(field, perturb(field, seed), bins=64)
        assert math.isclose(pdf.integral(), 1.0, rel_tol=1e-6)


class TestRateDistortionProperties:
    @SETTINGS
    @given(pairs)
    def test_mse_nonnegative_and_consistent(self, pair):
        field, seed = pair
        rd = rate_distortion(field, perturb(field, seed))
        assert rd.mse >= 0
        assert rd.rmse == math.sqrt(rd.mse)

    @SETTINGS
    @given(fields)
    def test_lossless_extremes(self, field):
        rd = rate_distortion(field, field.copy())
        assert rd.mse == 0.0
        assert rd.psnr == math.inf or math.isnan(rd.psnr)

    @SETTINGS
    @given(pairs, st.floats(1.5, 4.0))
    def test_scaling_noise_lowers_psnr(self, pair, factor):
        field, seed = pair
        small = perturb(field, seed, scale=0.05)
        big = field + (small - field) * np.float32(factor)
        rd_small = rate_distortion(field, small)
        rd_big = rate_distortion(field, big)
        if math.isfinite(rd_small.psnr) and math.isfinite(rd_big.psnr):
            assert rd_big.psnr < rd_small.psnr + 1e-9


class TestSsimProperties:
    @SETTINGS
    @given(fields)
    def test_self_similarity_is_one(self, field):
        # tolerance covers the cancellation in var/cov moments for
        # near-constant fields at large magnitudes
        result = ssim3d(field, field.copy(), SsimConfig(window=4))
        assert math.isclose(result.ssim, 1.0, abs_tol=1e-6)

    @SETTINGS
    @given(pairs)
    def test_bounded_above(self, pair):
        field, seed = pair
        result = ssim3d(field, perturb(field, seed), SsimConfig(window=4))
        assert result.max_window_ssim <= 1.0 + 1e-9
        assert result.min_window_ssim <= result.ssim <= result.max_window_ssim

    @SETTINGS
    @given(pairs)
    def test_symmetric_under_swap(self, pair):
        """With a fixed dynamic range, SSIM(a,b) == SSIM(b,a)."""
        field, seed = pair
        dec = perturb(field, seed)
        cfg = SsimConfig(window=4, dynamic_range=10.0)
        assert math.isclose(
            ssim3d(field, dec, cfg).ssim, ssim3d(dec, field, cfg).ssim,
            rel_tol=1e-9, abs_tol=1e-12,
        )


class TestAutocorrelationProperties:
    @SETTINGS
    @given(fields)
    def test_lag_zero_one_and_bounded(self, field):
        # Eq. 2 normalises the valid-region cross-sum by the *global*
        # variance, so the estimator is bounded by n/ne(tau) (Cauchy-
        # Schwarz), not by 1 — a spike field with a tiny valid region
        # legitimately exceeds 1 at large lags.
        ac = spatial_autocorrelation(field.astype(np.float64), 3)
        assert ac[0] == 1.0
        assert np.all(np.isfinite(ac))
        n = field.size
        for tau in range(1, 4):
            ne = (field.shape[0] - tau) * (field.shape[1] - tau) * (
                field.shape[2] - tau
            )
            assert abs(ac[tau]) <= n / ne + 1e-6

    @SETTINGS
    @given(hnp.arrays(np.float64, st.integers(20, 200),
                      elements=st.floats(-100, 100)))
    def test_series_bounded(self, series):
        ac = series_autocorrelation(series, 5)
        assert ac[0] == 1.0
        assert np.all(np.abs(ac) <= 1.0 + 1e-9)

    @SETTINGS
    @given(fields, st.floats(0.1, 10.0), st.floats(-50.0, 50.0))
    def test_affine_invariance(self, field, scale, shift):
        e = field.astype(np.float64)
        a = spatial_autocorrelation(e, 2)
        b = spatial_autocorrelation(scale * e + shift, 2)
        if e.var() > 1e-12:
            assert np.allclose(a, b, atol=1e-6)


class TestPearsonEntropyProperties:
    @SETTINGS
    @given(fields, st.floats(0.5, 3.0), st.floats(-10.0, 10.0))
    def test_pearson_affine_invariant(self, field, scale, shift):
        # needs genuine variation: float32 rounding can make a constant
        # field's std "nonzero" yet leave the scaled copy exactly constant
        if field.std() <= 1e-3 * (1.0 + float(np.abs(field).max())):
            return
        rho = pearson(field, np.float32(scale) * field + np.float32(shift))
        assert math.isclose(rho, 1.0, abs_tol=1e-3)

    @SETTINGS
    @given(pairs)
    def test_pearson_bounded(self, pair):
        field, seed = pair
        rho = pearson(field, perturb(field, seed))
        if not math.isnan(rho):
            assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9

    @SETTINGS
    @given(fields, st.integers(2, 64))
    def test_entropy_bounds(self, field, bins):
        h = entropy(field, bins=bins)
        assert 0.0 <= h <= math.log2(bins) + 1e-9
