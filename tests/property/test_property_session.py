"""Hypothesis properties of the CheckerSession warm path.

The service-layer contract under test: N sequential assessments on one
resident session — whatever mix of shapes and dtypes, with the dispatch
memo and scratch pool warm from earlier jobs — are *bit-identical* to N
fresh one-shot :class:`~repro.core.checker.CuZChecker` runs on the same
bytes.  Warm state may only change cost, never results.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import CuZChecker
from repro.service.session import CheckerSession

SETTINGS = settings(max_examples=8, deadline=None)

# all valid for every default kernel (min extent clears the stencil reach)
SHAPES = ((12, 24, 24), (14, 24, 28), (12, 26, 24), (16, 24, 24))
DTYPES = ("float32", "float64")


def _pair(seed: int, shape, dtype):
    rng = np.random.default_rng(seed)
    orig = rng.normal(size=shape).astype(dtype)
    dec = (orig + rng.normal(scale=1e-3, size=shape)).astype(dtype)
    return orig, dec


job_specs = st.lists(
    st.tuples(
        st.integers(0, 2**31 - 1),
        st.sampled_from(SHAPES),
        st.sampled_from(DTYPES),
    ),
    min_size=2,
    max_size=4,
)


class TestWarmSessionBitIdentical:
    @SETTINGS
    @given(jobs=job_specs)
    def test_sequence_matches_fresh_one_shot_runs(self, jobs):
        pairs = [_pair(seed, shape, dtype) for seed, shape, dtype in jobs]
        with CheckerSession() as session:
            warm = [session.assess(o, d).to_dict() for o, d in pairs]
        cold = [CuZChecker().assess(o, d).to_dict() for o, d in pairs]
        assert warm == cold

    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        shape=st.sampled_from(SHAPES),
        dtype=st.sampled_from(DTYPES),
        repeats=st.integers(2, 4),
    )
    def test_repeat_jobs_hit_plan_memo_without_drift(
        self, seed, shape, dtype, repeats
    ):
        orig, dec = _pair(seed, shape, dtype)
        with CheckerSession() as session:
            reports = [
                session.assess(orig, dec).to_dict() for _ in range(repeats)
            ]
            stats = session.stats()
        assert all(r == reports[0] for r in reports)
        # one build for the shape, every repeat a memo hit
        assert stats["plan_cache_misses"] == 1
        assert stats["plan_cache_hits"] == repeats - 1
