"""Hypothesis properties of the compressor substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.bitstream import pack_fixed_width, unpack_fixed_width
from repro.compressors.huffman import huffman_decode, huffman_encode
from repro.compressors.predictor import lorenzo_reconstruct, lorenzo_residuals
from repro.compressors.quantizer import dequantize, prequantize
from repro.compressors.simple import UniformQuantCompressor
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor, _fwd_axis, _inv_axis

SETTINGS = settings(max_examples=25, deadline=None)

small_fields = hnp.arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(3, 7), st.integers(3, 7), st.integers(3, 7)),
    elements=st.floats(-1e4, 1e4, width=32),
)

int_streams = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(1, 500),
    elements=st.integers(-(2**20), 2**20),
)


class TestHuffmanProperty:
    @SETTINGS
    @given(int_streams)
    def test_roundtrip(self, values):
        assert np.array_equal(huffman_decode(huffman_encode(values)), values)

    @SETTINGS
    @given(hnp.arrays(np.int64, st.integers(1, 300), elements=st.integers(0, 3)))
    def test_small_alphabet_roundtrip(self, values):
        assert np.array_equal(huffman_decode(huffman_encode(values)), values)


class TestBitstreamProperty:
    @SETTINGS
    @given(
        hnp.arrays(np.uint64, st.integers(1, 200), elements=st.integers(0, 2**16 - 1)),
        st.integers(16, 40),
    )
    def test_fixed_width_roundtrip(self, values, width):
        blob = pack_fixed_width(values, width)
        assert np.array_equal(unpack_fixed_width(blob, width, len(values)), values)


class TestLorenzoProperty:
    @SETTINGS
    @given(
        hnp.arrays(
            np.int64,
            st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
            elements=st.integers(-(2**30), 2**30),
        )
    )
    def test_residual_reconstruct_duality(self, q):
        assert np.array_equal(lorenzo_reconstruct(lorenzo_residuals(q)), q)

    @SETTINGS
    @given(
        hnp.arrays(np.int64, st.integers(1, 100),
                   elements=st.integers(-(2**30), 2**30))
    )
    def test_1d_duality(self, q):
        assert np.array_equal(lorenzo_reconstruct(lorenzo_residuals(q)), q)


class TestQuantizerProperty:
    @SETTINGS
    @given(
        hnp.arrays(np.float64, st.integers(1, 200),
                   elements=st.floats(-1e6, 1e6)),
        st.floats(1e-4, 1.0),
    )
    def test_bound_invariant(self, data, eb):
        q = prequantize(data, eb)
        rec = np.asarray(q, dtype=np.float64) * 2 * eb
        assert np.abs(rec - data).max() <= eb * (1 + 1e-9)


class TestSZProperty:
    @SETTINGS
    @given(small_fields, st.floats(1e-3, 1.0))
    def test_error_bound_holds(self, field, eb):
        comp = SZCompressor(abs_bound=eb)
        dec = comp.decompress(comp.compress(field))
        err = np.abs(dec.astype(np.float64) - field.astype(np.float64))
        # float32 ulp at the field's peak magnitude limits achievable bound
        ulp = float(np.spacing(np.float32(np.abs(field).max() or 1.0)))
        assert err.max() <= eb + ulp

    @SETTINGS
    @given(small_fields)
    def test_shape_and_dtype_preserved(self, field):
        comp = SZCompressor(abs_bound=0.5)
        dec = comp.decompress(comp.compress(field))
        assert dec.shape == field.shape
        assert dec.dtype == np.float32

    @SETTINGS
    @given(small_fields, st.floats(1e-3, 0.5))
    def test_uniform_quant_bound(self, field, eb):
        comp = UniformQuantCompressor(abs_bound=eb)
        dec = comp.decompress(comp.compress(field))
        err = np.abs(dec.astype(np.float64) - field.astype(np.float64))
        ulp = float(np.spacing(np.float32(np.abs(field).max() or 1.0)))
        assert err.max() <= eb + ulp


class TestZFPProperty:
    @SETTINGS
    @given(
        hnp.arrays(
            np.int64, st.tuples(st.integers(1, 8)),
            elements=st.integers(-(2**26), 2**26),
        ).map(lambda a: np.broadcast_to(a[:, None, None, None], (a.shape[0], 4, 4, 4)).copy())
    )
    def test_transform_reversible(self, blocks):
        fwd = blocks
        for axis in (1, 2, 3):
            fwd = _fwd_axis(fwd, axis)
        inv = fwd
        for axis in (3, 2, 1):
            inv = _inv_axis(inv, axis)
        assert np.array_equal(inv, blocks)

    @SETTINGS
    @given(small_fields, st.sampled_from([4, 8, 16]))
    def test_decompress_shape(self, field, rate):
        assume(np.isfinite(field).all())
        comp = ZFPCompressor(rate=rate)
        dec = comp.decompress(comp.compress(field))
        assert dec.shape == field.shape

    @SETTINGS
    @given(small_fields)
    def test_fixed_size_invariant(self, field):
        """Same shape + rate => same compressed payload size, whatever the
        data (the defining property of fixed-rate coding)."""
        comp = ZFPCompressor(rate=8)
        a = len(comp.compress(field).payload)
        b = len(comp.compress(np.zeros_like(field)).payload)
        assert a == b
