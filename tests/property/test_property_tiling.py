"""Tiled execution must equal the whole-array fused path for *every*
slab depth — including the seam cases (nz % slab != 0, slab == 1,
slab >= nz) — and the FFT autocorrelation must equal the direct oracle.

Tolerances, not exact equality: slab-grouped summation reorders the
reductions (einsum vs np.sum differs by ~1e-16 relative), but the PDF
histograms merge bit-identically because bin assignment is element-wise.
"""

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.config.defaults import default_config
from repro.core.compare import compare_data
from repro.metrics.autocorrelation import series_autocorrelation

SETTINGS = settings(max_examples=10, deadline=None)

SHAPE = (13, 14, 15)
#: slab depths hitting every scheduler seam on SHAPE: single-slice,
#: non-dividing, dividing-with-remainder, exactly nz, and beyond nz
SEAM_SLABS = (1, 3, 5, 13, 40)


def _pair(shape=SHAPE, seed=3, scale=0.01):
    rng = np.random.default_rng(seed)
    orig = rng.normal(5.0, 2.0, size=shape).astype(np.float32)
    dec = (orig + rng.normal(scale=scale, size=shape)).astype(np.float32)
    return orig, dec


def _report(orig, dec, tiling):
    config = replace(default_config(), tiling=tiling)
    return compare_data(orig, dec, config=config, with_baselines=False)


def _assert_pdf_identical(whole, tiled):
    for attr in ("err_pdf", "pwr_err_pdf"):
        wp = getattr(whole.pattern1, attr)
        tp = getattr(tiled.pattern1, attr)
        assert (wp is None) == (tp is None), attr
        if wp is not None:
            assert np.array_equal(wp.bin_edges, tp.bin_edges), attr
            assert np.array_equal(wp.density, tp.density), attr


def _assert_reports_equal(whole, tiled, rel=1e-9, abs_tol=1e-12):
    ws, ts = whole.scalars(), tiled.scalars()
    assert set(ws) == set(ts)
    for name in ws:
        w, t = ws[name], ts[name]
        if isinstance(w, float) and math.isnan(w):
            assert math.isnan(t), name
        else:
            assert t == pytest.approx(w, rel=rel, abs=abs_tol), name
    _assert_pdf_identical(whole, tiled)
    np.testing.assert_allclose(
        tiled.pattern2.autocorrelation,
        whole.pattern2.autocorrelation,
        rtol=1e-7,
        atol=1e-9,
    )
    for attr in ("der1", "der2", "divergence", "laplacian"):
        wc = getattr(whole.pattern2, attr)
        tc = getattr(tiled.pattern2, attr)
        assert (wc is None) == (tc is None), attr
        if wc is not None:
            for f in ("mean_orig", "mean_dec", "rms_diff", "max_diff"):
                assert getattr(tc, f) == pytest.approx(
                    getattr(wc, f), rel=1e-9, abs=1e-12
                ), f"{attr}.{f}"


class TestTiledEqualsWhole:
    @pytest.fixture(scope="class")
    def whole(self):
        orig, dec = _pair()
        return _report(orig, dec, "off")

    @pytest.mark.parametrize("slab", SEAM_SLABS)
    def test_seam_slabs(self, whole, slab):
        orig, dec = _pair()
        _assert_reports_equal(whole, _report(orig, dec, slab))

    def test_lossless_pair(self):
        orig, _ = _pair(seed=11)
        whole = _report(orig, orig.copy(), "off")
        tiled = _report(orig, orig.copy(), 4)
        _assert_reports_equal(whole, tiled)

    def test_constant_fields(self):
        orig = np.zeros(SHAPE, dtype=np.float32)
        whole = _report(orig, orig.copy(), "off")
        tiled = _report(orig, orig.copy(), 5)
        _assert_reports_equal(whole, tiled)

    @SETTINGS
    @given(
        field=hnp.arrays(
            dtype=np.float32,
            shape=st.tuples(
                st.integers(11, 14), st.integers(11, 14), st.integers(11, 14)
            ),
            elements=st.floats(-50, 50, width=32),
        ),
        seed=st.integers(0, 2**31 - 1),
        slab=st.integers(1, 20),
    )
    def test_arbitrary_fields_and_slabs(self, field, seed, slab):
        # constant fields have exact-zero variance in one summation
        # grouping and ~1e-13 in another (SNR becomes -inf vs finite);
        # that degenerate case is pinned by test_constant_fields
        assume(float(np.ptp(field)) > 0)
        rng = np.random.default_rng(seed)
        dec = (
            field + rng.normal(scale=0.05, size=field.shape).astype(np.float32)
        ).astype(np.float32)
        whole = _report(field, dec, "off")
        tiled = _report(field, dec, slab)
        # near-constant draws make variance-derived scalars (snr, std)
        # cancellation-limited well above 1e-9 relative — loosen here,
        # the fixed-seed seam tests keep the tight tolerance
        _assert_reports_equal(whole, tiled, rel=1e-5, abs_tol=1e-7)


class TestSeriesAutocorrelationFft:
    @SETTINGS
    @given(
        n=st.integers(32, 600),
        max_lag=st.integers(0, 20),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_fft_equals_direct_random(self, n, max_lag, seed):
        rng = np.random.default_rng(seed)
        e = rng.normal(size=n)
        direct = series_autocorrelation(e, max_lag=max_lag, method="direct")
        fft = series_autocorrelation(e, max_lag=max_lag, method="fft")
        np.testing.assert_allclose(fft, direct, rtol=1e-9, atol=1e-10)

    def test_fft_equals_direct_spike(self):
        # a single impulse is the worst case for circular-vs-linear
        # correlation confusion: any wrap-around shows up immediately
        for pos in (0, 7, 99):
            e = np.zeros(100)
            e[pos] = 1.0
            direct = series_autocorrelation(e, max_lag=12, method="direct")
            fft = series_autocorrelation(e, max_lag=12, method="fft")
            np.testing.assert_allclose(fft, direct, rtol=1e-9, atol=1e-12)

    def test_auto_dispatch_matches_both(self):
        rng = np.random.default_rng(5)
        small = rng.normal(size=256)
        large = rng.normal(size=8192)
        for e in (small, large):
            auto = series_autocorrelation(e, max_lag=10, method="auto")
            direct = series_autocorrelation(e, max_lag=10, method="direct")
            np.testing.assert_allclose(auto, direct, rtol=1e-9, atol=1e-10)

    def test_constant_series(self):
        e = np.full(5000, 3.5)
        for method in ("direct", "fft", "auto"):
            out = series_autocorrelation(e, max_lag=6, method=method)
            assert out[0] == 1.0
            assert np.all(out[1:] == 0.0)

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            series_autocorrelation(np.arange(10.0), max_lag=2, method="magic")
