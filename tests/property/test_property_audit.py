"""The resumable audit's crash contract, property-tested: killing the
run after *any* chunk and resuming from the checkpoint must produce a
report byte-for-byte equal to an uninterrupted run.  The kill point is
drawn by hypothesis; ``stop_after_chunks`` stands in for the SIGKILL
(the checkpoint on disk is exactly what a kill would leave, because it
is written *before* the interrupt fires — the real-signal version runs
in CI via ``tools/audit_smoke.py``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import AuditInterrupted, run_audit
from repro.datasets.fields import Dataset, Field
from repro.errors import CheckerError
from repro.io.bundle import save_bundle_chunked
from repro.parallel import process_available

SETTINGS = settings(max_examples=8, deadline=None)

#: 2 fields x 4 chunks + 1 field x 4 chunks = 12 chunks in the tree
TOTAL_CHUNKS = 12


def _tree(root):
    rng = np.random.default_rng(7)
    a = Dataset(name="alpha")
    for name in ("u", "v"):
        a.add(Field(name, rng.normal(5.0, 2.0, size=(10, 12, 12)).astype(np.float32)))
    save_bundle_chunked(a, root / "alpha", chunk_nz=3)
    b = Dataset(name="beta")
    b.add(Field("w", rng.normal(0.0, 1.0, size=(10, 12, 12)).astype(np.float32)))
    save_bundle_chunked(b, root / "nested" / "beta", chunk_nz=3)
    return root


@pytest.fixture(scope="module")
def audit_tree(tmp_path_factory):
    root = _tree(tmp_path_factory.mktemp("audit_tree"))
    ref = root / "reference.json"
    run_audit(root, out_path=ref, checkpoint_path=root / "ck_ref.json")
    return root, ref.read_bytes()


@SETTINGS
@given(kill_after=st.integers(min_value=1, max_value=TOTAL_CHUNKS - 1))
def test_kill_resume_report_byte_identical(audit_tree, kill_after):
    root, ref_bytes = audit_tree
    out = root / f"report_k{kill_after}.json"
    ck = root / f"ck_k{kill_after}.json"
    with pytest.raises(AuditInterrupted) as exc:
        run_audit(root, out_path=out, checkpoint_path=ck,
                  stop_after_chunks=kill_after)
    assert exc.value.chunks_processed == kill_after
    assert ck.exists()
    assert not out.exists()

    run_audit(root, out_path=out, checkpoint_path=ck)
    assert out.read_bytes() == ref_bytes
    assert not ck.exists()  # consumed on success


@SETTINGS
@given(kill_points=st.lists(
    st.integers(min_value=1, max_value=3), min_size=1, max_size=4,
))
def test_repeated_kills_still_converge(audit_tree, kill_points):
    """A run killed several times (each resume killed again after a few
    more chunks) still lands on the reference report."""
    root, ref_bytes = audit_tree
    out = root / "report_multi.json"
    ck = root / "ck_multi.json"
    ck.unlink(missing_ok=True)
    for step in kill_points:
        try:
            run_audit(root, out_path=out, checkpoint_path=ck,
                      stop_after_chunks=step)
        except AuditInterrupted:
            continue
        break
    run_audit(root, out_path=out, checkpoint_path=ck)
    assert out.read_bytes() == ref_bytes


def test_resume_rejects_changed_configuration(audit_tree):
    root, _ = audit_tree
    out = root / "report_cfg.json"
    ck = root / "ck_cfg.json"
    with pytest.raises(AuditInterrupted):
        run_audit(root, out_path=out, checkpoint_path=ck, stop_after_chunks=2)
    with pytest.raises(CheckerError, match="fresh"):
        run_audit(root, out_path=out, checkpoint_path=ck, chunk_nz=5)
    # --fresh semantics: resume=False discards the stale checkpoint
    run_audit(root, out_path=out, checkpoint_path=ck, chunk_nz=5, resume=False)
    assert out.exists()


# ---------------------------------------------------------------------------
# parallel audit: same contract, two worker processes
# ---------------------------------------------------------------------------

needs_processes = pytest.mark.skipif(
    not process_available(),
    reason="process pools unavailable on this host",
)

#: pool spawns are the dominant cost — few, deliberately chosen examples
PARALLEL_SETTINGS = settings(max_examples=3, deadline=None)


@needs_processes
def test_parallel_report_byte_identical_to_serial(audit_tree):
    """Worker count is invisible in the output: a two-worker audit of
    the tree produces the byte-for-byte serial report."""
    root, ref_bytes = audit_tree
    out = root / "report_par.json"
    run_audit(root, out_path=out, checkpoint_path=root / "ck_par.json",
              workers=2)
    assert out.read_bytes() == ref_bytes


@needs_processes
@PARALLEL_SETTINGS
@given(
    kill_after=st.integers(min_value=1, max_value=3),
    resume_workers=st.sampled_from(["serial", 2]),
)
def test_kill_mid_parallel_run_resumes_byte_identical(
    audit_tree, kill_after, resume_workers
):
    """Killing a *parallel* run (per-worker ``stop_after_chunks`` — the
    checkpoint plus worker part files on disk are exactly what a SIGKILL
    leaves) and resuming — serially or with workers again — lands on the
    reference bytes.  The serial-resume leg proves worker part files are
    readable by the plain loop, i.e. the two paths share one on-disk
    contract."""
    root, ref_bytes = audit_tree
    out = root / "report_park.json"
    ck = root / "ck_park.json"
    ck.unlink(missing_ok=True)
    out.unlink(missing_ok=True)
    with pytest.raises(AuditInterrupted):
        run_audit(root, out_path=out, checkpoint_path=ck, workers=2,
                  stop_after_chunks=kill_after)
    assert ck.exists()
    assert not out.exists()

    run_audit(root, out_path=out, checkpoint_path=ck, workers=resume_workers)
    assert out.read_bytes() == ref_bytes
    assert not ck.exists()
    assert not ck.with_name(ck.name + ".parts").exists()


@needs_processes
def test_kill_serial_run_resumes_parallel(audit_tree):
    root, ref_bytes = audit_tree
    out = root / "report_serk.json"
    ck = root / "ck_serk.json"
    with pytest.raises(AuditInterrupted):
        run_audit(root, out_path=out, checkpoint_path=ck, workers="serial",
                  stop_after_chunks=5)
    run_audit(root, out_path=out, checkpoint_path=ck, workers=2)
    assert out.read_bytes() == ref_bytes
