"""Chunked bundle reads must reassemble bit-identically for *every*
chunk depth — including the seam cases (nz % chunk != 0, chunk == 1,
chunk >= nz) — in both storage dtypes, under every chunk codec, and a
single flipped byte in any chunk must be caught by that chunk's SHA-256
(or its codec's framing) and named in the error identically across
codecs.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.fields import Dataset, Field
from repro.errors import DataIOError
from repro.io.bundle import load_bundle, save_bundle_chunked
from repro.io.chunkcodec import zstd_available

SETTINGS = settings(max_examples=10, deadline=None)

SHAPE = (13, 9, 11)

#: every codec is exercised — on hosts without the zstandard package the
#: zstd legs transparently write zlib (the documented fallback), so the
#: properties still hold for whatever bytes actually landed on disk
CODECS = ("raw", "zlib", "zstd")


def _save_with_codec(ds, root, chunk_nz, codec):
    with warnings.catch_warnings():
        if codec == "zstd" and not zstd_available():
            warnings.simplefilter("ignore", RuntimeWarning)
        return save_bundle_chunked(ds, root, chunk_nz=chunk_nz, codec=codec)


def _dataset(seed, dtype):
    rng = np.random.default_rng(seed)
    ds = Dataset(name="prop")
    ds.add(Field("f", rng.normal(5.0, 2.0, size=SHAPE).astype(dtype)))
    return ds


@SETTINGS
@given(
    chunk_nz=st.integers(min_value=1, max_value=SHAPE[0] + 3),
    dtype=st.sampled_from([np.float32, np.float64]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_chunk_seams_reassemble_bit_identical(tmp_path_factory, chunk_nz, dtype, seed):
    tmp = tmp_path_factory.mktemp("chunked")
    ds = _dataset(seed, dtype)
    bundle = save_bundle_chunked(ds, tmp / "b", chunk_nz=chunk_nz)
    infos, blocks = zip(*bundle.iter_field_chunks("f"))
    joined = np.concatenate(blocks)
    assert joined.dtype == dtype
    # bit-identical, not just approx: compare the raw bytes
    assert joined.tobytes() == ds["f"].data.tobytes()
    # the chunk table tiles [0, nz) exactly once
    assert [i.z0 for i in infos] == list(range(0, SHAPE[0], min(chunk_nz, SHAPE[0])))
    assert sum(i.nz for i in infos) == SHAPE[0]
    # whole-array load agrees with the streamed view
    assert np.array_equal(bundle.load_field("f").data, joined)


@SETTINGS
@given(
    codec=st.sampled_from(CODECS),
    chunk_nz=st.integers(min_value=1, max_value=SHAPE[0]),
    byte_pos=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_flipped_byte_names_its_chunk(
    tmp_path_factory, codec, chunk_nz, byte_pos, seed
):
    """Corruption is named identically under raw, zlib, and zstd chunks:
    whether the flip breaks the compressed framing or survives to the
    SHA-256 check, the error carries ``chunk {i} (z0={z})``."""
    tmp = tmp_path_factory.mktemp("corrupt")
    bundle = _save_with_codec(_dataset(seed, np.float32), tmp / "b", chunk_nz, codec)
    path = bundle.field_path("f")
    raw = bytearray(path.read_bytes())
    pos = int(byte_pos * len(raw))
    raw[pos] ^= 0x01
    path.write_bytes(bytes(raw))

    bad = next(
        i for i in bundle.field_chunks("f") if i.offset <= pos < i.offset + i.stored
    )
    with pytest.raises(DataIOError, match=rf"chunk {bad.index} \(z0={bad.z0}\)"):
        list(bundle.iter_field_chunks("f"))


@SETTINGS
@given(
    chunk_nz=st.integers(min_value=1, max_value=SHAPE[0]),
    read_nz=st.integers(min_value=1, max_value=SHAPE[0] + 3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_v1_synthesised_chunks_match_v2_bytes(tmp_path_factory, chunk_nz, read_nz, seed):
    """A v2 bundle re-read through the v1 path (and re-chunked at any
    other depth) yields the same bytes — chunking is pure layout."""
    tmp = tmp_path_factory.mktemp("v1v2")
    ds = _dataset(seed, np.float32)
    v2 = save_bundle_chunked(ds, tmp / "b", chunk_nz=chunk_nz)
    manifest = (tmp / "b" / "manifest.json")
    doc = manifest.read_text().replace('"chunked-v2"', '"raw-f32-little-c"')
    manifest.write_text(doc)
    v1 = load_bundle(tmp / "b")
    assert v1.version == 1
    v1_bytes = np.concatenate(
        [b for _, b in v1.iter_field_chunks("f", chunk_nz=read_nz)]
    ).tobytes()
    v2_bytes = np.concatenate(
        [b for _, b in v2.iter_field_chunks("f")]
    ).tobytes()
    assert v1_bytes == v2_bytes


@SETTINGS
@given(
    codec=st.sampled_from(CODECS),
    chunk_nz=st.integers(min_value=1, max_value=SHAPE[0]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_v3_reads_equal_v2_and_v1(tmp_path_factory, codec, chunk_nz, seed):
    """Generation compatibility: a v3 bundle of the same data streams,
    loads, and *digests* identically to v2 and to the v1 whole-file path
    — compression is pure storage, invisible above the chunk reader."""
    tmp = tmp_path_factory.mktemp("v3v2v1")
    ds = _dataset(seed, np.float32)
    v3 = _save_with_codec(ds, tmp / "v3", chunk_nz, codec)
    v2 = save_bundle_chunked(ds, tmp / "v2", chunk_nz=chunk_nz)
    manifest = tmp / "v2" / "manifest.json"
    doc = manifest.read_text().replace('"chunked-v2"', '"raw-f32-little-c"')
    (tmp / "v1" / "manifest.json").parent.mkdir()
    (tmp / "v1" / "manifest.json").write_text(doc)
    (tmp / "v1" / "f.f32").write_bytes((tmp / "v2" / "f.f32").read_bytes())
    v1 = load_bundle(tmp / "v1")

    v3_blocks = [b for _, b in v3.iter_field_chunks("f")]
    v2_blocks = [b for _, b in v2.iter_field_chunks("f")]
    assert [b.tobytes() for b in v3_blocks] == [b.tobytes() for b in v2_blocks]
    v1_bytes = np.concatenate(
        [b for _, b in v1.iter_field_chunks("f", chunk_nz=chunk_nz)]
    ).tobytes()
    assert np.concatenate(v3_blocks).tobytes() == v1_bytes
    assert np.array_equal(v3.load_field("f").data, v2.load_field("f").data)
    # digests cover the *uncompressed* stream, so they are codec-invariant
    assert [c.sha256 for c in v3.field_chunks("f")] == [
        c.sha256 for c in v2.field_chunks("f")
    ]
    assert v3.file_sha256["f"] == v2.file_sha256["f"]
