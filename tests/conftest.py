"""Shared fixtures: small, deterministic field pairs for fast CI."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20210921)  # CLUSTER'21 vintage


@pytest.fixture(scope="session")
def smooth_field() -> np.ndarray:
    """A smooth 3-D float32 field (compressible, realistic)."""
    from repro.datasets.synthetic import spectral_field

    return spectral_field((20, 24, 28), slope=3.0, seed=7, mean=5.0, std=2.0)


@pytest.fixture(scope="session")
def noisy_pair(smooth_field, rng) -> tuple[np.ndarray, np.ndarray]:
    """(original, decompressed) with small white reconstruction noise."""
    noise = rng.normal(scale=0.01, size=smooth_field.shape).astype(np.float32)
    return smooth_field, smooth_field + noise


@pytest.fixture(scope="session")
def banded_pair(smooth_field) -> tuple[np.ndarray, np.ndarray]:
    """(original, decompressed) via a real SZ round-trip (banded errors)."""
    from repro.compressors.sz import SZCompressor

    comp = SZCompressor(rel_bound=1e-3)
    dec = comp.decompress(comp.compress(smooth_field))
    return smooth_field, dec


@pytest.fixture()
def tmp_field_file(tmp_path, smooth_field):
    """A raw float32 binary on disk plus its shape."""
    from repro.io.raw import write_raw

    path = tmp_path / "field.f32"
    write_raw(path, smooth_field)
    return path, smooth_field.shape
