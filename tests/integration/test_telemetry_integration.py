"""Trace composition across the engine's drivers.

Every entry point — single compare, batch, thread-pool parallel,
multi-GPU decomposition, the profile CLI — must produce one coherent
span tree: plan → step → kernel nested under whatever driver span opened
it, whichever thread or rank did the work.
"""

import json
import re

import numpy as np
import pytest

from repro.cli import main
from repro.compressors.sz import SZCompressor
from repro.config.schema import CheckerConfig
from repro.core.batch import assess_dataset
from repro.core.compare import compare_data
from repro.core.streaming import StreamingChecker
from repro.datasets.registry import generate_dataset
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.multigpu.checker import MultiGpuCuZC
from repro.parallel import parallel_compare_pairs
from repro.telemetry.tracer import Tracer


def small_config():
    return CheckerConfig(
        pattern2=Pattern2Config(max_lag=2),
        pattern3=Pattern3Config(window=6),
    )


@pytest.fixture(scope="module")
def pair():
    rng = np.random.default_rng(7)
    orig = rng.normal(size=(12, 16, 18)).astype(np.float32)
    dec = orig + rng.normal(scale=1e-3, size=orig.shape).astype(np.float32)
    return orig, dec


class TestSingleCompare:
    def test_plan_step_kernel_hierarchy(self, pair):
        tracer = Tracer()
        compare_data(*pair, config=small_config(), tracer=tracer)
        plans = [s for s in tracer.spans if s.category == "plan"]
        assert len(plans) == 1
        steps = tracer.children(plans[0])
        assert all(s.category == "step" for s in steps)
        kernels = [s for s in tracer.spans if s.category == "kernel"]
        assert kernels, "no kernel spans recorded"
        step_ids = {s.span_id for s in steps}
        assert all(k.parent_id in step_ids for k in kernels)
        # kernel spans carry the modelled launch geometry
        named = [k for k in kernels if k.name.startswith("cuZC.")]
        assert named and all(k.bytes > 0 for k in named)
        assert all("grid_blocks" in k.attrs for k in named)

    def test_gpusim_kernels_carry_cost_model(self, pair):
        tracer = Tracer()
        compare_data(
            *pair, config=small_config(), backend="gpusim", tracer=tracer
        )
        kernels = [
            s for s in tracer.spans
            if s.category == "kernel" and s.name.startswith("cuZC.")
        ]
        assert kernels
        for k in kernels:
            assert k.attrs["modelled_ms"] > 0
            assert k.attrs["modelled_cycles"] > 0
            assert 0 < k.attrs["occupancy"] <= 1.0
            assert k.attrs["bound"] in ("memory", "compute", "latency")

    def test_disabled_by_default(self, pair):
        # no tracer argument: the shared NULL tracer records nothing
        compare_data(*pair, config=small_config())
        from repro.telemetry.tracer import NULL_TRACER

        assert NULL_TRACER.spans == []


class TestBatchSpans:
    def test_field_spans_wrap_plans(self):
        ds = generate_dataset("miranda", scale=0.05, n_fields=2)
        tracer = Tracer()
        assess_dataset(
            ds, SZCompressor(rel_bound=1e-3), config=small_config(),
            tracer=tracer,
        )
        roots = tracer.roots()
        assert [r.category for r in roots] == ["batch"]
        fields = tracer.children(roots[0])
        assert {f.category for f in fields} == {"field"}
        assert len(fields) == 2
        for f in fields:
            cats = {c.category for c in tracer.children(f)}
            # codec spans (compress/decompress) and the plan hang off the field
            assert "plan" in cats and "codec" in cats


class TestParallelSpans:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_tasks_nest_under_root_across_threads(self, pair, workers):
        orig, dec = pair
        pairs = [(f"f{i}", orig, dec) for i in range(3)]
        tracer = Tracer()
        parallel_compare_pairs(
            pairs, config=small_config(), workers=workers, tracer=tracer
        )
        roots = tracer.roots()
        assert len(roots) == 1 and roots[0].category == "batch"
        fields = tracer.children(roots[0])
        assert sorted(f.name for f in fields) == ["f0", "f1", "f2"]
        # the full hierarchy exists under every field, whichever thread ran it
        for f in fields:
            plans = [c for c in tracer.children(f) if c.category == "plan"]
            assert len(plans) == 1
        if workers > 1:
            # worker threads landed on their own export tracks
            assert len({f.track for f in fields} | {roots[0].track}) > 1


class TestMultiGpuSpans:
    def test_per_rank_merge_tracks_and_parents(self, pair):
        orig, dec = pair
        tracer = Tracer()
        MultiGpuCuZC(n_gpus=3).assess_pattern1(orig, dec, tracer=tracer)
        roots = tracer.roots()
        assert [r.name for r in roots] == ["multigpu.pattern1"]
        ranks = tracer.children(roots[0])
        assert sorted(r.name for r in ranks) == ["rank0", "rank1", "rank2"]
        for i, rank in enumerate(sorted(ranks, key=lambda s: s.attrs["rank"])):
            sub = tracer.children(rank)
            # the rank's merged sub-trace hangs off its rank span...
            assert sub, f"rank{i} has no merged spans"
            assert all(s.track == i + 1 for s in sub)  # ...on its own track
            # and contains that rank's pattern-1 kernel execution
            descendants = list(sub)
            frontier = list(sub)
            while frontier:
                nxt = [c for s in frontier for c in tracer.children(s)]
                descendants.extend(nxt)
                frontier = nxt
            assert any(
                s.category == "kernel" and s.name == "cuZC.pattern1"
                for s in descendants
            )
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids)), "merge produced colliding span ids"

    def test_result_unchanged_by_tracing(self, pair):
        orig, dec = pair
        checker = MultiGpuCuZC(n_gpus=2)
        plain = checker.assess_pattern1(orig, dec)
        traced = checker.assess_pattern1(orig, dec, tracer=Tracer())
        assert plain.psnr == traced.psnr
        assert plain.mse == traced.mse


class TestStreamingSpans:
    def test_chunk_and_finalize_spans(self, pair):
        orig, dec = pair
        tracer = Tracer()
        sc = StreamingChecker(
            orig.shape[1:], max_lag=2,
            ssim=Pattern3Config(window=6, dynamic_range=8.0),
            tracer=tracer,
        )
        for z0 in range(0, orig.shape[0], 4):
            sc.update(orig[z0:z0 + 4], dec[z0:z0 + 4])
        sc.finalize()
        names = [s.name for s in tracer.spans]
        assert "chunk0" in names and "chunk2" in names
        assert "finalize" in names


class TestProfileCli:
    def test_profile_artifacts_match_explain(self, tmp_path, capsys):
        out_dir = tmp_path / "prof"
        rc = main([
            "profile", "--dataset", "hurricane", "--scale", "0.05",
            "--metrics", "psnr,ssim", "--backend", "gpusim",
            "--out-dir", str(out_dir),
        ])
        assert rc == 0
        profile_out = capsys.readouterr().out

        trace = json.loads((out_dir / "trace.json").read_text())
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"
        kernels = {
            e["name"] for e in events
            if e.get("ph") == "X" and e.get("cat") == "kernel"
        }

        # the kernels the profile recorded are exactly the compiled plan's
        rc = main([
            "explain", "--shape", "16,20,20",
            "--metrics", "psnr,ssim", "--backend", "gpusim",
        ])
        assert rc == 0
        explain_out = capsys.readouterr().out
        planned = set(re.findall(r"cuZC\.\w+", explain_out))
        assert kernels == planned

        assert "per-kernel profile" in profile_out
        assert "modelled_ms" in profile_out
        csv = (out_dir / "spans.csv").read_text().strip().split("\n")
        assert csv[0].startswith("span_id,parent_id,")
        assert len(csv) > len(kernels)

    def test_profile_raw_pair(self, pair_files_profile, tmp_path, capsys):
        a, b, shape = pair_files_profile
        out_dir = tmp_path / "prof"
        rc = main([
            "profile", str(a), str(b),
            "--shape", ",".join(map(str, shape)),
            "--metrics", "psnr",
            "--out-dir", str(out_dir),
        ])
        assert rc == 0
        assert (out_dir / "trace.json").exists()
        assert "per-metric profile" in capsys.readouterr().out


@pytest.fixture()
def pair_files_profile(tmp_path, banded_pair):
    from repro.io.raw import write_raw

    orig, dec = banded_pair
    a = tmp_path / "orig.f32"
    b = tmp_path / "dec.f32"
    write_raw(a, orig)
    write_raw(b, dec)
    return a, b, orig.shape
