"""End-to-end tests of ``cuzchecker serve`` run in-process.

One AssessmentServer on an ephemeral port, driven over real HTTP with
``http.client``.  The acceptance-criteria test is here: a second
identical job hits the warm plan memo (observable in ``/metrics``) and
returns a byte-identical report.
"""

from __future__ import annotations

import asyncio
import base64
import http.client
import io
import json
import threading
import time

import numpy as np
import pytest

from repro.parallel.executor import active_pool_counts
from repro.parallel.shm import active_segment_count
from repro.server.app import AssessmentServer


def _npy_b64(arr: np.ndarray) -> str:
    buf = io.BytesIO()
    np.save(buf, arr)
    return base64.b64encode(buf.getvalue()).decode("ascii")


class _LiveServer:
    """AssessmentServer on port 0 in a daemon thread, with HTTP helpers."""

    def __init__(self, **kwargs):
        self.server = AssessmentServer(port=0, **kwargs)
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_shutdown()

    def __enter__(self):
        self._ready = threading.Event()
        self.thread.start()
        assert self._ready.wait(timeout=30), "server did not start"
        return self

    def __exit__(self, *exc):
        if self.thread.is_alive():
            try:
                self.request("POST", "/shutdown")
            except OSError:
                pass
            self.thread.join(timeout=30)

    def request(self, method, path, body=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.server.port, timeout=60
        )
        try:
            conn.request(
                method, path, body=json.dumps(body) if body is not None else None
            )
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read().decode())
        finally:
            conn.close()

    def wait_for(self, job_id, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, payload = self.request("GET", f"/jobs/{job_id}")
            assert status == 200
            if payload["status"] in ("done", "failed"):
                return payload
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} did not finish in {timeout}s")


@pytest.fixture(scope="module")
def live():
    with _LiveServer() as srv:
        yield srv


@pytest.fixture(scope="module")
def npy_spec(noisy_pair):
    orig, dec = noisy_pair
    return {
        "original_npy_b64": _npy_b64(orig),
        "decompressed_npy_b64": _npy_b64(dec),
    }


class TestEndpoints:
    def test_healthz(self, live):
        status, payload = live.request("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["session"] == live.server.session.session_id

    def test_unknown_route_404(self, live):
        status, payload = live.request("GET", "/nope")
        assert status == 404
        assert "error" in payload

    def test_job_resources_read_only(self, live):
        status, _ = live.request("DELETE", "/jobs/anything")
        assert status == 405

    def test_unknown_job_404(self, live):
        status, _ = live.request("GET", "/jobs/job-missing")
        assert status == 404

    def test_bad_json_400(self, live):
        conn = http.client.HTTPConnection(
            "127.0.0.1", live.server.port, timeout=60
        )
        try:
            conn.request("POST", "/jobs", body="{not json")
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_non_object_spec_400(self, live):
        status, _ = live.request("POST", "/jobs", body=[1, 2, 3])
        assert status == 400

    def test_invalid_spec_fails_job_not_server(self, live):
        status, sub = live.request("POST", "/jobs", body={"bogus": True})
        assert status == 202
        done = live.wait_for(sub["id"])
        assert done["status"] == "failed"
        assert "unrecognised job spec" in done["error"]
        # the server survives the failed job
        assert live.request("GET", "/healthz")[0] == 200


class TestWarmPath:
    def test_second_identical_job_is_warm_and_byte_identical(
        self, live, npy_spec
    ):
        """The PR's acceptance criterion, end to end over HTTP."""
        status, sub1 = live.request("POST", "/jobs", body=npy_spec)
        assert status == 202
        job1 = live.wait_for(sub1["id"])
        assert job1["status"] == "done", job1.get("error")
        _, before = live.request("GET", "/metrics")

        status, sub2 = live.request("POST", "/jobs", body=npy_spec)
        assert status == 202
        job2 = live.wait_for(sub2["id"])
        assert job2["status"] == "done", job2.get("error")
        _, after = live.request("GET", "/metrics")

        # byte-identical report over the wire
        assert json.dumps(job1["report"], sort_keys=True) == json.dumps(
            job2["report"], sort_keys=True
        )
        # the repeat skipped plan construction: memo hits grew, misses
        # (= plan builds) did not
        assert (
            after["session"]["plan_cache_hits"]
            > before["session"]["plan_cache_hits"]
        )
        assert (
            after["session"]["plan_cache_misses"]
            == before["session"]["plan_cache_misses"]
        )

    def test_trace_endpoint_serves_job_spans(self, live, npy_spec):
        _, sub = live.request("POST", "/jobs", body=npy_spec)
        live.wait_for(sub["id"])
        status, payload = live.request("GET", f"/jobs/{sub['id']}/trace")
        assert status == 200
        events = payload["traceEvents"]
        assert events
        names = {e.get("name") for e in events}
        assert any(str(n).startswith("job:") for n in names)

    def test_jobs_listing(self, live, npy_spec):
        _, sub = live.request("POST", "/jobs", body=npy_spec)
        live.wait_for(sub["id"])
        status, payload = live.request("GET", "/jobs")
        assert status == 200
        ids = {j["id"] for j in payload["jobs"]}
        assert sub["id"] in ids
        assert all("report" not in j for j in payload["jobs"])

    def test_tenant_flows_to_metrics(self, live, npy_spec):
        spec = dict(npy_spec, tenant="acme")
        status, sub = live.request("POST", "/jobs", body=spec)
        assert sub["tenant"] == "acme"
        live.wait_for(sub["id"])
        _, metrics = live.request("GET", "/metrics")
        assert metrics["server"]["jobs_submitted"] >= 1


class TestAdmissionControl:
    def test_429_when_queue_full(self):
        # no event loop: drive _submit directly with a one-slot queue so
        # the rejection is deterministic (no worker racing the flood)
        server = AssessmentServer(port=0, max_queue=1)
        server._wakeup = asyncio.Event()
        body = json.dumps({"dataset": "miranda"}).encode()
        assert server._submit(body)[0] == 202
        status, payload = server._submit(body)
        assert status == 429
        assert "full" in payload["error"]
        assert server.counters["jobs_rejected"] == 1
        server.session.close()


class TestCleanShutdown:
    def test_shutdown_releases_everything(self, npy_spec):
        with _LiveServer() as srv:
            _, sub = srv.request("POST", "/jobs", body=npy_spec)
            srv.wait_for(sub["id"])
            session = srv.server.session
            status, _ = srv.request("POST", "/shutdown")
            assert status == 200
            srv.thread.join(timeout=30)
            assert not srv.thread.is_alive()
        assert not session.is_open
        assert active_pool_counts() == ()
        assert active_segment_count() == 0
