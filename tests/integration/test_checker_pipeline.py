"""End-to-end checker runs: the Section IV-B correctness check and the
full compress→decompress→assess pipeline on every codec and dataset."""

import numpy as np
import pytest

from repro.compressors.registry import get_compressor
from repro.config.schema import CheckerConfig
from repro.core.checker import CuZChecker
from repro.core.compare import assess_compressor, compare_data
from repro.datasets.registry import DATASET_NAMES, generate_dataset
from repro.errors import ShapeError
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config


def small_config(**kw):
    return CheckerConfig(
        pattern2=Pattern2Config(max_lag=kw.pop("max_lag", 3)),
        pattern3=Pattern3Config(window=kw.pop("window", 6)),
        **kw,
    )


class TestCorrectnessCheck:
    """Paper Section IV-B: 'cuZ-Checker has the correct calculation on all
    assessment metrics by comparing it with Z-checker's output' — here the
    simulated kernels against the independent NumPy references."""

    def test_all_metrics_match_references(self, banded_pair):
        orig, dec = banded_pair
        report = compare_data(orig, dec, config=small_config())

        from repro.metrics import (
            SsimConfig,
            derivative_metrics,
            error_stats,
            pearson,
            rate_distortion,
            spatial_autocorrelation,
            ssim3d,
        )

        es = error_stats(orig, dec)
        rd = rate_distortion(orig, dec)
        scalars = report.scalars()
        assert scalars["min_err"] == pytest.approx(es.min_err)
        assert scalars["max_err"] == pytest.approx(es.max_err)
        assert scalars["mse"] == pytest.approx(rd.mse, rel=1e-12)
        assert scalars["psnr"] == pytest.approx(rd.psnr, rel=1e-12)
        assert scalars["ssim"] == pytest.approx(
            ssim3d(orig, dec, SsimConfig(window=6)).ssim, rel=1e-12
        )
        assert scalars["derivative_order1"] == pytest.approx(
            derivative_metrics(orig, dec, 1).rms_diff, rel=1e-10
        )
        assert scalars["pearson"] == pytest.approx(pearson(orig, dec))
        e = dec.astype(np.float64) - orig.astype(np.float64)
        assert np.allclose(
            report.pattern2.autocorrelation,
            spatial_autocorrelation(e, 3),
            atol=1e-9,
        )


class TestCoordinator:
    def test_needed_patterns_from_metric_selection(self):
        checker = CuZChecker(small_config(metrics=("mse", "psnr")))
        assert checker.needed_patterns() == (1,)
        checker = CuZChecker(small_config(metrics=("ssim",)))
        assert checker.needed_patterns() == (3,)
        checker = CuZChecker(small_config(metrics=("laplacian", "mse")))
        assert checker.needed_patterns() == (1, 2)

    def test_disabled_pattern_not_run(self, noisy_pair):
        checker = CuZChecker(small_config(patterns=(1,)))
        report = checker.assess(*noisy_pair)
        assert report.pattern1 is not None
        assert report.pattern2 is None
        assert report.pattern3 is None

    def test_metrics_subset_skips_unneeded_kernels(self, noisy_pair):
        checker = CuZChecker(small_config(metrics=("ssim",)))
        report = checker.assess(*noisy_pair)
        assert report.pattern1 is None
        assert report.pattern3 is not None

    def test_auxiliary_toggle(self, noisy_pair):
        report = CuZChecker(small_config(auxiliary=False)).assess(*noisy_pair)
        assert "pearson" not in report.auxiliary

    def test_non_3d_rejected(self):
        checker = CuZChecker(small_config())
        with pytest.raises(ShapeError):
            checker.assess(np.zeros((4, 4)), np.zeros((4, 4)))

    def test_cross_pattern_moment_reuse_consistent(self, banded_pair):
        """Autocorrelation normalised by pattern-1 moments equals the
        standalone computation."""
        orig, dec = banded_pair
        with_p1 = CuZChecker(small_config()).assess(orig, dec)
        only_p2 = CuZChecker(small_config(patterns=(2,))).assess(orig, dec)
        assert np.allclose(
            with_p1.pattern2.autocorrelation,
            only_p2.pattern2.autocorrelation,
            atol=1e-9,
        )


class TestAssessCompressor:
    @pytest.mark.parametrize("codec,kwargs", [
        ("sz", {"rel_bound": 1e-3}),
        ("zfp", {"rate": 8}),
        ("uniform_quant", {"rel_bound": 1e-3}),
        ("decimate", {"factor": 2}),
    ])
    def test_every_codec_end_to_end(self, smooth_field, codec, kwargs):
        comp = get_compressor(codec, **kwargs)
        report = assess_compressor(smooth_field, comp, config=small_config())
        scalars = report.scalars()
        assert scalars["compression_ratio"] > 1.0
        assert scalars["compression_throughput"] > 0
        assert scalars["decompression_throughput"] > 0
        assert 0.0 < scalars["ssim"] <= 1.0
        assert scalars["bit_rate"] < 32.0

    def test_sz_beats_zfp_quality_at_same_ratio_regime(self, smooth_field):
        """The introduction's motivation: error-bounded SZ achieves better
        rate-distortion than fixed-rate ZFP."""
        sz_report = assess_compressor(
            smooth_field, get_compressor("sz", rel_bound=1e-3),
            config=small_config(),
        )
        zfp_report = assess_compressor(
            smooth_field, get_compressor("zfp", rate=8), config=small_config()
        )
        sz_psnr = sz_report.scalars()["psnr"]
        zfp_psnr = zfp_report.scalars()["psnr"]
        sz_rate = sz_report.scalars()["bit_rate"]
        zfp_rate = zfp_report.scalars()["bit_rate"]
        # SZ: higher PSNR at a lower (or comparable) bit rate
        assert sz_psnr > zfp_psnr
        assert sz_rate < zfp_rate * 1.3


class TestAllDatasets:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_assess_each_application(self, name):
        ds = generate_dataset(name, scale=0.05, n_fields=2)
        comp = get_compressor("sz", rel_bound=1e-3)
        for field in ds:
            report = assess_compressor(field.data, comp, config=small_config())
            scalars = report.scalars()
            assert scalars["ssim"] > 0.5
            assert scalars["compression_ratio"] > 1.0
            # error-bounded: max error within bound
            assert abs(scalars["max_err"]) <= 1.001 * (
                scalars["value_range"] * 1e-3 + 1e-12
            ) or scalars["value_range"] == 0
