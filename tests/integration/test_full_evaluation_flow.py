"""Master integration test: the paper's whole Section-IV flow, end to end.

At CI scale this walks exactly what the paper's evaluation does —
compress real (synthetic) application fields with the compressor under
test, assess them with the pattern-oriented checker, confirm the
correctness check, and regenerate every figure/table artifact — all in
one pass, exercising the public API the way a downstream user would.
"""

import json

import numpy as np
import pytest

from repro.analysis.speedup import overall_speedups, speedup_table
from repro.analysis.throughput import pattern_throughputs
from repro.compressors.registry import get_compressor
from repro.config.schema import CheckerConfig
from repro.core.batch import assess_dataset
from repro.core.acceptance import AcceptanceCriteria
from repro.core.output import write_report_dats, write_report_json
from repro.core.profiles import runtime_profile
from repro.datasets.registry import DATASET_NAMES, PAPER_SHAPES, generate_dataset
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.viz.html import write_report_html


@pytest.fixture(scope="module")
def ci_config():
    return CheckerConfig(
        pattern2=Pattern2Config(max_lag=3),
        pattern3=Pattern3Config(window=6),
    )


def test_full_evaluation_flow(tmp_path, ci_config):
    codec = get_compressor("sz", rel_bound=1e-3)
    criteria = AcceptanceCriteria.lenient()
    summary = {}

    # --- per-application assessment (the paper's §IV-B measurement) ------
    for name in DATASET_NAMES:
        dataset = generate_dataset(name, scale=0.045, n_fields=2)
        batch = assess_dataset(dataset, codec, config=ci_config,
                               with_baselines=True)
        assert batch.n_fields == 2
        # the error-bounded compressor must be acceptable everywhere
        for field_name, report in batch.reports.items():
            verdict = criteria.evaluate(report)
            assert verdict.passed, f"{name}/{field_name}: {verdict.describe()}"
            # all three frameworks report times.  At this tiny CI scale
            # the GPU can legitimately *lose* (launch overhead dominates
            # a few-thousand-element field — the model reproduces the
            # small-data crossover); the paper-scale wins are asserted
            # below at the true shapes.
            assert set(report.timings) == {"cuZC", "moZC", "ompZC"}
            assert report.timings["cuZC"].total_seconds > 0
        summary[name] = {
            "ratio": batch.overall_ratio(),
            "mean_psnr": batch.mean_psnr(),
            "min_ssim": batch.min_ssim(),
            "speedup_omp": batch.mean_speedup("ompZC"),
        }
        # output engine artifacts for the first field
        first = next(iter(batch.reports.values()))
        out_dir = tmp_path / name
        out_dir.mkdir()
        write_report_json(first, out_dir / "report.json")
        write_report_dats(first, out_dir)
        write_report_html(first, out_dir / "report.html")
        assert (out_dir / "report.json").exists()
        assert (out_dir / "autocorrelation.dat").exists()
        assert (out_dir / "report.html").read_text().startswith("<!DOCTYPE")

    # compression behaves sensibly everywhere
    for name, row in summary.items():
        assert row["ratio"] > 1.5, (name, row)
        assert row["min_ssim"] > 0.98

    # --- figure/table regeneration (the paper's §IV-C analysis) ----------
    fig10 = overall_speedups(PAPER_SHAPES)
    assert all(r.speedup > 20 for r in fig10 if r.baseline == "ompZC")
    fig11 = pattern_throughputs(PAPER_SHAPES, 1)
    assert len(fig11) == 12
    fig12 = speedup_table(PAPER_SHAPES, 3)
    assert all(1.4 < r.speedup for r in fig12 if r.baseline == "moZC")
    table2 = runtime_profile(PAPER_SHAPES)
    assert len(table2) == 12

    # the whole flow is reproducible: a second batch run matches
    dataset = generate_dataset("miranda", scale=0.045, n_fields=1)
    again = assess_dataset(dataset, codec, config=ci_config)
    rerun = assess_dataset(dataset, codec, config=ci_config)
    a = again.reports["density"].scalars()
    b = rerun.reports["density"].scalars()
    drop = {"compression_throughput", "decompression_throughput"}  # wall clock
    assert {k: v for k, v in a.items() if k not in drop} == {
        k: v for k, v in b.items() if k not in drop
    }
