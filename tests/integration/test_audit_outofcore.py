"""Out-of-core proof: a field larger than the process's address-space
cap assesses through the chunked audit path.

The subprocess warms up every lazy import with a tiny audit, sets
``RLIMIT_AS`` to its current footprint plus three quarters of the
field's bytes, then shows that (a) materialising the whole array fails with
``MemoryError`` under that cap, while (b) the chunked audit — which
holds one z-slab at a time — completes and produces the same report it
produces uncapped.
"""

import json
import resource
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.audit import run_audit
from repro.datasets.fields import Dataset, Field
from repro.io.bundle import save_bundle_chunked

pytestmark = pytest.mark.skipif(
    sys.platform != "linux" or not hasattr(resource, "RLIMIT_AS"),
    reason="RLIMIT_AS memory capping is Linux-specific",
)

SRC = Path(__file__).resolve().parents[2] / "src"

#: (384, 128, 128) float32 = 24 MiB on disk; the subprocess caps its
#: address space ~18 MiB above its warmed-up footprint, so one whole
#: copy cannot fit, while the audit path peaks at one 8-slice chunk
#: (512 KiB raw) plus its float64 working copies and the per-chunk
#: checkpoint (whose biggest array is the 4-slice autocorrelation carry)
SHAPE = (384, 128, 128)
CHUNK_NZ = 8

#: shared by the capped and uncapped runs so the reports are comparable;
#: SSIM stays off (its slice FIFO is sized by the plane, not the chunk),
#: the autocorrelation carry is kept to 4 trailing slices, and the codec
#: is the numpy-only decimator — the SZ chain's Python-level Huffman
#: structures transiently need ~100x the chunk, which would say nothing
#: about the streaming path this test is pinning down
AUDIT_KWARGS = {"use_ssim": False, "max_lag": 4, "codec": "decimate"}

_SUBPROCESS = r"""
import json, resource, sys
import numpy as np

sys.path.insert(0, "@SRC@")
from repro.audit import run_audit
from repro.io.bundle import load_bundle
from repro.service.session import CheckerSession

root = "@ROOT@"
shape = tuple(@SHAPE@)
kwargs = dict(@KWARGS@)
field_bytes = int(np.prod(shape)) * 4

# touch every lazy import (session, codecs, kernels) and allocate the
# session's threads/arenas before the cap — module loading and session
# start-up need address space the capped phase no longer has
session = CheckerSession()
run_audit("@WARMUP@", out_path="@WARMUP@/report.json",
          checkpoint_path="@WARMUP@/ck.json", session=session, **kwargs)

def vm_size_bytes():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("no VmSize in /proc/self/status")

cap = vm_size_bytes() + field_bytes * 3 // 4
resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

try:
    arr = load_bundle(root + "/big").load_field("density").data
    whole_load = "unexpectedly fit (" + str(arr.nbytes) + " B)"
    del arr
except MemoryError:
    whole_load = "MemoryError"

report = run_audit(root, out_path=root + "/capped_report.json",
                   checkpoint_path=root + "/capped_ck.json",
                   session=session, **kwargs)
session.close()
print(json.dumps({
    "whole_load": whole_load,
    "chunks": report["totals"]["chunks"],
    "bytes_streamed": report["totals"]["bytes_streamed"],
}))
"""


def _synthetic(shape):
    nz, ny, nx = shape
    z = np.arange(nz, dtype=np.float32).reshape(-1, 1, 1)
    y = np.linspace(0.0, 3.0, ny, dtype=np.float32).reshape(1, -1, 1)
    x = np.linspace(0.0, 2.0, nx, dtype=np.float32).reshape(1, 1, -1)
    return (np.sin(0.1 * z) * np.cos(y) + 0.05 * x).astype(np.float32)


@pytest.fixture(scope="module")
def trees(tmp_path_factory):
    base = tmp_path_factory.mktemp("outofcore")
    archive = base / "archive"
    ds = Dataset(name="big")
    ds.add(Field("density", _synthetic(SHAPE)))
    save_bundle_chunked(ds, archive / "big", chunk_nz=CHUNK_NZ)
    tiny = Dataset(name="tiny")
    tiny.add(Field("t", _synthetic((8, 16, 16))))
    save_bundle_chunked(tiny, base / "warmup" / "tiny", chunk_nz=4)
    return archive, base / "warmup"


def test_field_larger_than_memory_cap_audits(trees):
    archive, warmup = trees
    code = (
        _SUBPROCESS.replace("@SRC@", str(SRC))
        .replace("@ROOT@", str(archive))
        .replace("@WARMUP@", str(warmup))
        .replace("@SHAPE@", repr(SHAPE))
        .replace("@KWARGS@", repr(AUDIT_KWARGS))
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, f"capped audit failed:\n{proc.stderr[-3000:]}"
    result = json.loads(proc.stdout.strip().splitlines()[-1])
    assert result["whole_load"] == "MemoryError", result
    assert result["chunks"] == SHAPE[0] // CHUNK_NZ
    assert result["bytes_streamed"] == int(np.prod(SHAPE)) * 4

    # the capped run's report matches an uncapped run in this process
    run_audit(
        archive, out_path=archive / "uncapped_report.json",
        checkpoint_path=archive / "uncapped_ck.json", **AUDIT_KWARGS,
    )
    assert (archive / "capped_report.json").read_bytes() == (
        archive / "uncapped_report.json"
    ).read_bytes()
