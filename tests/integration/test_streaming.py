"""Streaming assessment must equal the batch kernels for any chunking."""

import numpy as np
import pytest

from repro.core.streaming import StreamingChecker
from repro.errors import CheckerError, ShapeError
from repro.kernels.pattern1 import execute_pattern1
from repro.kernels.pattern3 import Pattern3Config, execute_pattern3
from repro.metrics.autocorrelation import spatial_autocorrelation


def feed(checker, orig, dec, chunks):
    start = 0
    for size in chunks:
        checker.update(orig[start : start + size], dec[start : start + size])
        start += size
    assert start == orig.shape[0]
    return checker.finalize()


@pytest.fixture(scope="module")
def stream_pair():
    from repro.compressors.sz import SZCompressor
    from repro.datasets.synthetic import spectral_field

    orig = spectral_field((24, 20, 22), slope=3.0, seed=13, mean=2.0)
    comp = SZCompressor(rel_bound=1e-3)
    return orig, comp.decompress(comp.compress(orig))


CHUNKINGS = [
    [24],
    [1] * 24,
    [5, 5, 5, 5, 4],
    [3, 11, 2, 8],
]


class TestStreamingEquivalence:
    @pytest.mark.parametrize("chunks", CHUNKINGS)
    def test_pattern1_exact(self, stream_pair, chunks):
        orig, dec = stream_pair
        checker = StreamingChecker((20, 22), max_lag=0)
        result = feed(checker, orig, dec, chunks)
        batch, _ = execute_pattern1(orig, dec)
        s = result.pattern1
        assert s.min_err == batch.min_err
        assert s.max_err == batch.max_err
        assert s.mse == pytest.approx(batch.mse, rel=1e-12)
        assert s.psnr == pytest.approx(batch.psnr, rel=1e-12)
        assert s.snr == pytest.approx(batch.snr, rel=1e-12)
        assert s.avg_pwr_err == pytest.approx(batch.avg_pwr_err, rel=1e-10)

    @pytest.mark.parametrize("chunks", CHUNKINGS)
    def test_autocorrelation_exact(self, stream_pair, chunks):
        orig, dec = stream_pair
        checker = StreamingChecker((20, 22), max_lag=5)
        result = feed(checker, orig, dec, chunks)
        e = dec.astype(np.float64) - orig.astype(np.float64)
        ref = spatial_autocorrelation(e, 5)
        assert np.allclose(result.autocorrelation, ref, atol=1e-10)

    @pytest.mark.parametrize("chunks", CHUNKINGS)
    def test_ssim_exact_with_fixed_range(self, stream_pair, chunks):
        orig, dec = stream_pair
        L = float(orig.max() - orig.min())
        cfg = Pattern3Config(window=6, step=1, dynamic_range=L)
        checker = StreamingChecker((20, 22), max_lag=0, ssim=cfg)
        result = feed(checker, orig, dec, chunks)
        batch, _ = execute_pattern3(orig, dec, cfg)
        assert result.ssim == pytest.approx(batch.ssim, rel=1e-12)

    def test_everything_at_once(self, stream_pair):
        orig, dec = stream_pair
        L = float(orig.max() - orig.min())
        checker = StreamingChecker(
            (20, 22), max_lag=4,
            ssim=Pattern3Config(window=6, dynamic_range=L),
        )
        result = feed(checker, orig, dec, [7, 9, 8])
        assert result.ssim is not None
        assert result.autocorrelation is not None
        assert "mse" in result.scalars()


class TestStreamingValidation:
    def test_ssim_requires_dynamic_range(self):
        with pytest.raises(CheckerError):
            StreamingChecker((16, 16), ssim=Pattern3Config(window=6))

    def test_chunk_shape_mismatch(self, stream_pair):
        orig, dec = stream_pair
        checker = StreamingChecker((20, 22))
        with pytest.raises(ShapeError):
            checker.update(orig[:2, :, :-1], dec[:2, :, :-1])

    def test_empty_stream_rejected(self):
        checker = StreamingChecker((16, 16))
        with pytest.raises(CheckerError):
            checker.finalize()

    def test_update_after_finalize_rejected(self, stream_pair):
        orig, dec = stream_pair
        checker = StreamingChecker((20, 22))
        checker.update(orig, dec)
        checker.finalize()
        with pytest.raises(CheckerError):
            checker.update(orig[:1], dec[:1])

    def test_stream_shorter_than_window(self, stream_pair):
        orig, dec = stream_pair
        cfg = Pattern3Config(window=8, dynamic_range=1.0)
        checker = StreamingChecker((20, 22), ssim=cfg)
        checker.update(orig[:4], dec[:4])
        with pytest.raises(CheckerError):
            checker.finalize()

    def test_lag_exceeding_plane_rejected(self):
        with pytest.raises(ShapeError):
            StreamingChecker((4, 4), max_lag=4)

    def test_carry_memory_bounded(self, stream_pair):
        """The carry never holds more than max_lag slices."""
        orig, dec = stream_pair
        checker = StreamingChecker((20, 22), max_lag=3)
        checker.update(orig, dec)
        assert len(checker._carry) == 3
