"""The reproduction gate: every quantitative claim of the paper's
evaluation, asserted against the calibrated models at the paper's true
dataset shapes.

Each test cites the figure/table it reproduces.  Acceptance bands are the
paper's reported ranges, widened by a documented tolerance where our
model's per-dataset spread differs (see EXPERIMENTS.md for the
side-by-side numbers).
"""

import pytest

from repro.analysis.speedup import overall_speedups, speedup_table
from repro.analysis.throughput import pattern_throughputs
from repro.core.profiles import runtime_profile
from repro.datasets.registry import PAPER_SHAPES


def _speedups(rows, baseline):
    return {r.dataset: r.speedup for r in rows if r.baseline == baseline}


def _throughputs(rows, framework):
    return {
        r.dataset: r.bytes_per_second for r in rows if r.framework == framework
    }


class TestFig10Overall:
    def test_cuzc_vs_ompzc(self):
        """Paper: 22.6-31.2x overall speedup over the 20-core CPU."""
        s = _speedups(overall_speedups(PAPER_SHAPES), "ompZC")
        assert all(22.0 <= v <= 32.0 for v in s.values()), s

    def test_cuzc_vs_mozc(self):
        """Paper: 1.49-1.7x over the metric-oriented GPU design."""
        s = _speedups(overall_speedups(PAPER_SHAPES), "moZC")
        assert all(1.45 <= v <= 1.7 for v in s.values()), s


class TestFig11Throughput:
    def test_pattern1_levels(self):
        """Paper Fig 11a: cuZC 103-137 GB/s, moZC 17-31, ompZC 0.44-0.51."""
        rows = pattern_throughputs(PAPER_SHAPES, 1)
        cu = _throughputs(rows, "cuZC")
        mo = _throughputs(rows, "moZC")
        omp = _throughputs(rows, "ompZC")
        assert all(95e9 <= v <= 140e9 for v in cu.values()), cu
        assert all(17e9 <= v <= 31e9 for v in mo.values()), mo
        assert all(0.42e9 <= v <= 0.52e9 for v in omp.values()), omp

    def test_pattern3_levels(self):
        """Paper Fig 11c: cuZC 497-758 MB/s, moZC 351-514, ompZC 24.8-26.6."""
        rows = pattern_throughputs(PAPER_SHAPES, 3)
        cu = _throughputs(rows, "cuZC")
        mo = _throughputs(rows, "moZC")
        omp = _throughputs(rows, "ompZC")
        assert all(497e6 <= v <= 758e6 for v in cu.values()), cu
        assert all(351e6 <= v <= 514e6 for v in mo.values()), mo
        assert all(24e6 <= v <= 27e6 for v in omp.values()), omp

    def test_pattern_ordering(self):
        """Fig 11: P1 throughput >> P2 >> P3 for every framework."""
        for fw in ("cuZC", "moZC", "ompZC"):
            t1 = _throughputs(pattern_throughputs(PAPER_SHAPES, 1), fw)
            t2 = _throughputs(pattern_throughputs(PAPER_SHAPES, 2), fw)
            t3 = _throughputs(pattern_throughputs(PAPER_SHAPES, 3), fw)
            for ds in PAPER_SHAPES:
                assert t1[ds] > t2[ds] > t3[ds]


class TestFig12PatternSpeedups:
    def test_pattern1(self):
        """Paper Fig 12a: 227-268x vs ompZC, 3.49-6.38x vs moZC."""
        rows = speedup_table(PAPER_SHAPES, 1)
        omp = _speedups(rows, "ompZC")
        mo = _speedups(rows, "moZC")
        assert all(215 <= v <= 290 for v in omp.values()), omp
        assert all(3.49 <= v <= 6.38 for v in mo.values()), mo

    def test_pattern1_dominates_overall(self):
        """Takeaway 1: pattern-1 speedups far exceed the overall ones."""
        p1 = min(_speedups(speedup_table(PAPER_SHAPES, 1), "ompZC").values())
        overall = max(_speedups(overall_speedups(PAPER_SHAPES), "ompZC").values())
        assert p1 > 5 * overall

    def test_pattern2(self):
        """Paper Fig 12b: 17.1-47.4x vs ompZC, 1.79-1.86x vs moZC."""
        rows = speedup_table(PAPER_SHAPES, 2)
        omp = _speedups(rows, "ompZC")
        mo = _speedups(rows, "moZC")
        assert all(17.1 <= v <= 47.4 for v in omp.values()), omp
        assert all(1.70 <= v <= 1.95 for v in mo.values()), mo

    def test_pattern3(self):
        """Paper Fig 12c: 19.2-28.5x vs ompZC, 1.42-1.63x vs moZC (the
        FIFO's ~50%)."""
        rows = speedup_table(PAPER_SHAPES, 3)
        omp = _speedups(rows, "ompZC")
        mo = _speedups(rows, "moZC")
        assert all(19.2 <= v <= 28.5 for v in omp.values()), omp
        assert all(1.42 <= v <= 1.63 for v in mo.values()), mo


class TestDatasetShapeEffects:
    """Takeaway 2: how dataset size/shape moves the speedups."""

    def test_nyx_lowest_on_pattern3(self):
        """Longest z axis (512) => most FIFO iterations per thread =>
        lowest pattern-3 speedup vs ompZC."""
        s = _speedups(speedup_table(PAPER_SHAPES, 3), "ompZC")
        assert s["nyx"] == min(s.values())

    def test_large_slices_lowest_on_pattern1_vs_mozc(self):
        """NYX/Scale-LETKF (many blocks / huge slices) show the lowest
        pattern-1 advantage over moZC."""
        s = _speedups(speedup_table(PAPER_SHAPES, 1), "moZC")
        assert min(s["nyx"], s["scale_letkf"]) < min(s["hurricane"], s["miranda"])

    def test_short_z_lowest_on_pattern2(self):
        """Hurricane/Scale-LETKF (z ~= 100 => ~1 block/SM) trail on
        pattern 2 vs ompZC."""
        s = _speedups(speedup_table(PAPER_SHAPES, 2), "ompZC")
        assert min(s["hurricane"], s["scale_letkf"]) <= min(
            s["nyx"], s["miranda"]
        )


class TestTableII:
    def test_resource_columns(self):
        rows = {(r.pattern, r.dataset): r for r in runtime_profile(PAPER_SHAPES)}
        for ds in PAPER_SHAPES:
            assert rows[(1, ds)].regs_per_block == 14336  # 14k
            assert rows[(1, ds)].smem_per_block == 448  # 0.4KB
            assert rows[(2, ds)].regs_per_block == 2304  # 2.3k
            assert rows[(2, ds)].smem_per_block == 17408  # 17KB
            assert rows[(3, ds)].regs_per_block == 11136  # 11k
            assert 15000 <= rows[(3, ds)].smem_per_block <= 21000  # ~16KB

    def test_iters_per_thread_trends(self):
        rows = {(r.pattern, r.dataset): r.iters_per_thread
                for r in runtime_profile(PAPER_SHAPES)}
        # P1 (paper: 977 / 1k / 6.3k / 576)
        assert rows[(1, "scale_letkf")] > 5 * rows[(1, "hurricane")]
        assert rows[(1, "miranda")] == 576
        # P2 (paper: 205 / 205 / 1.1k / 89): Hurricane ≈ NYX, SCALE ~5.5x
        assert rows[(2, "hurricane")] == pytest.approx(rows[(2, "nyx")], rel=0.1)
        assert rows[(2, "scale_letkf")] / rows[(2, "nyx")] == pytest.approx(
            5.4, rel=0.15
        )
        # P3 (paper: 1.8k / 8.7k / 3.4k / 2.9k): NYX > SCALE > Miranda > Hur
        assert (
            rows[(3, "nyx")]
            > rows[(3, "scale_letkf")]
            > rows[(3, "miranda")]
            > rows[(3, "hurricane")]
        )

    def test_nyx_pattern1_seven_blocks_four_concurrent(self):
        """The paper's text: 'with NYX, a SM needs two rounds of execution'
        — 7 blocks assigned, 4 concurrent."""
        rows = {(r.pattern, r.dataset): r for r in runtime_profile(PAPER_SHAPES)}
        assert rows[(1, "nyx")].blocks_per_sm == 7
        assert rows[(1, "nyx")].concurrent_blocks_per_sm == 4
