"""CLI tests for the extension subcommands (html, trace, estimate) and
the 2-D compare API."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.compare import compare_data_2d
from repro.errors import ShapeError
from repro.io.raw import write_raw


class TestAnalyzeHtml:
    def test_html_report_written(self, tmp_path, banded_pair):
        orig, dec = banded_pair
        a, b = tmp_path / "o.f32", tmp_path / "d.f32"
        write_raw(a, orig)
        write_raw(b, dec)
        html_path = tmp_path / "report.html"
        rc = main([
            "analyze", str(a), str(b),
            "--shape", ",".join(map(str, orig.shape)),
            "--html", str(html_path),
        ])
        assert rc == 0
        doc = html_path.read_text()
        assert doc.startswith("<!DOCTYPE html>")
        assert "<svg" in doc


class TestTraceCommand:
    @pytest.mark.parametrize("framework,pattern", [
        ("cuZC", 1), ("cuZC", 3), ("moZC", 1), ("moZC", 2),
    ])
    def test_trace_export(self, tmp_path, framework, pattern, capsys):
        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--framework", framework, "--pattern", str(pattern),
            "--dataset", "miranda", "--out", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) >= 2

    def test_mozc_pattern1_has_ten_pipelines(self, tmp_path):
        out = tmp_path / "trace.json"
        main(["trace", "--framework", "moZC", "--pattern", "1",
              "--out", str(out)])
        events = json.loads(out.read_text())["traceEvents"]
        launches = [e for e in events if str(e.get("name", "")).startswith("launch:")]
        assert len(launches) == 10


class TestEstimateCommand:
    def test_prediction_table(self, capsys):
        rc = main(["estimate", "--dataset", "nyx", "--scale", "0.04",
                   "--rel-bound", "1e-3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted ratio" in out

    def test_verify_column(self, capsys):
        rc = main(["estimate", "--dataset", "miranda", "--scale", "0.05",
                   "--rel-bound", "1e-2", "--verify"])
        assert rc == 0
        assert "actual ratio" in capsys.readouterr().out


class TestCompareData2d:
    @pytest.fixture(scope="class")
    def pair2d(self):
        from repro.datasets.synthetic import spectral_field

        rng = np.random.default_rng(5)
        plane = spectral_field((2, 48, 52), slope=3.0, seed=5)[0]
        noisy = plane + rng.normal(scale=0.01, size=plane.shape).astype(
            np.float32
        )
        return plane, noisy

    def test_full_result_dict(self, pair2d):
        out = compare_data_2d(*pair2d)
        for key in ("mse", "psnr", "ssim", "pearson", "derivative_order1",
                    "autocorrelation", "spectral"):
            assert key in out
        assert 0.9 < out["ssim"] <= 1.0
        assert out["autocorrelation"][0] == 1.0

    def test_matches_3d_metrics_on_same_data(self, pair2d):
        """The dimension-agnostic metrics agree with the 3-D path run on
        a singleton-z volume."""
        from repro.metrics.rate_distortion import rate_distortion

        plane, noisy = pair2d
        out = compare_data_2d(plane, noisy)
        rd = rate_distortion(plane[None], noisy[None])
        assert out["mse"] == pytest.approx(rd.mse, rel=1e-12)
        assert out["psnr"] == pytest.approx(rd.psnr, rel=1e-12)

    def test_small_plane_skips_ssim(self):
        a = np.zeros((5, 5), dtype=np.float32)
        out = compare_data_2d(a, a.copy())
        assert "ssim" not in out
        assert "derivative_order1" in out

    def test_rejects_3d(self, banded_pair):
        with pytest.raises(ShapeError):
            compare_data_2d(*banded_pair)


class TestCheckCommand:
    def test_good_codec_exits_zero(self, capsys):
        rc = main(["check", "--dataset", "miranda", "--scale", "0.06",
                   "--codec", "sz", "--rel-bound", "1e-4"])
        assert rc == 0
        assert "ACCEPTABLE" in capsys.readouterr().out

    def test_bad_codec_exits_one(self, capsys):
        rc = main(["check", "--dataset", "miranda", "--scale", "0.06",
                   "--codec", "decimate"])
        assert rc == 1
        assert "NOT ACCEPTABLE" in capsys.readouterr().out

    def test_threshold_overrides(self, capsys):
        rc = main(["check", "--dataset", "miranda", "--scale", "0.06",
                   "--codec", "sz", "--rel-bound", "1e-4",
                   "--min-psnr", "300"])
        assert rc == 1
