"""The fused execution engine end to end: ``CheckerConfig(fused=...)``
must be a pure performance knob — fused and unfused assessments agree
with each other and with the independent metric references."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config.schema import CheckerConfig
from repro.core.compare import compare_data, compare_data_2d
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config


def small_config(**kw):
    return CheckerConfig(
        pattern2=Pattern2Config(max_lag=3),
        pattern3=Pattern3Config(window=6),
        **kw,
    )


class TestFusedEqualsUnfused:
    @pytest.fixture(scope="class")
    def reports(self, banded_pair):
        orig, dec = banded_pair
        fused = compare_data(
            orig, dec, config=small_config(fused=True), with_baselines=False
        )
        unfused = compare_data(
            orig, dec, config=small_config(fused=False), with_baselines=False
        )
        return fused, unfused

    def test_scalars_agree(self, reports):
        fused, unfused = reports
        got, want = fused.scalars(), unfused.scalars()
        assert set(got) == set(want)
        for key, val in want.items():
            assert got[key] == pytest.approx(val, rel=1e-9), key

    def test_autocorrelation_agrees(self, reports):
        fused, unfused = reports
        assert np.allclose(
            fused.pattern2.autocorrelation,
            unfused.pattern2.autocorrelation,
            atol=1e-9,
        )

    def test_auxiliary_agrees(self, reports):
        fused, unfused = reports
        for key in ("pearson", "entropy", "mean", "std",
                    "spectral_mean_rel_err", "spectral_noise_frequency"):
            assert fused.auxiliary[key] == pytest.approx(
                unfused.auxiliary[key], rel=1e-9
            ), key

    def test_error_pdfs_agree(self, reports):
        fused, unfused = reports
        assert np.array_equal(
            fused.pattern1.err_pdf.bin_edges, unfused.pattern1.err_pdf.bin_edges
        )
        assert np.allclose(
            fused.pattern1.err_pdf.density,
            unfused.pattern1.err_pdf.density,
            rtol=1e-12,
        )

    def test_modelled_timings_agree(self, reports):
        """Fusion is host-side only: the paper's modelled costs are
        untouched (Fig. 10/11/12 benches keep reproducing)."""
        fused, unfused = reports
        assert (
            fused.timings["cuZC"].pattern_seconds
            == unfused.timings["cuZC"].pattern_seconds
        )

    def test_fused_is_default(self):
        assert CheckerConfig().fused is True
        assert replace(CheckerConfig(), fused=False).fused is False


class TestFusedVsReferences:
    def test_fused_matches_independent_metrics(self, noisy_pair):
        from repro.metrics import (
            SsimConfig,
            error_stats,
            pearson,
            rate_distortion,
            spatial_autocorrelation,
            ssim3d,
        )

        orig, dec = noisy_pair
        report = compare_data(
            orig, dec, config=small_config(fused=True), with_baselines=False
        )
        scalars = report.scalars()
        es = error_stats(orig, dec)
        rd = rate_distortion(orig, dec)
        assert scalars["min_err"] == es.min_err
        assert scalars["max_err"] == es.max_err
        assert scalars["mse"] == pytest.approx(rd.mse, rel=1e-12)
        assert scalars["psnr"] == pytest.approx(rd.psnr, rel=1e-12)
        assert scalars["ssim"] == pytest.approx(
            ssim3d(orig, dec, SsimConfig(window=6)).ssim, rel=1e-9
        )
        assert report.auxiliary["pearson"] == pytest.approx(
            pearson(orig, dec), rel=1e-12
        )
        e = dec.astype(np.float64) - orig.astype(np.float64)
        assert np.allclose(
            report.pattern2.autocorrelation,
            spatial_autocorrelation(e, 3),
            atol=1e-9,
        )


class TestCompareData2d:
    @pytest.fixture(scope="class")
    def plane_pair(self):
        rng = np.random.default_rng(17)
        orig = np.cumsum(rng.normal(size=(24, 30)), axis=0).astype(np.float32)
        dec = orig + rng.normal(scale=1e-2, size=orig.shape).astype(np.float32)
        return orig, dec

    def test_matches_independent_metrics(self, plane_pair):
        from repro.metrics import (
            SsimConfig,
            error_stats,
            pearson,
            rate_distortion,
        )
        from repro.metrics.twod import (
            derivative_metrics_2d,
            spatial_autocorrelation_2d,
            ssim2d,
        )

        orig, dec = plane_pair
        out = compare_data_2d(orig, dec, window=6, step=2, max_lag=4)
        es = error_stats(orig, dec)
        rd = rate_distortion(orig, dec)
        assert out["min_err"] == es.min_err
        assert out["max_err"] == es.max_err
        assert out["mse"] == pytest.approx(rd.mse, rel=1e-12)
        assert out["psnr"] == pytest.approx(rd.psnr, rel=1e-12)
        assert out["pearson"] == pytest.approx(pearson(orig, dec), rel=1e-12)
        assert out["ssim"] == pytest.approx(
            ssim2d(orig, dec, SsimConfig(window=6, step=2)).ssim, rel=1e-9
        )
        assert out["derivative_order1"] == pytest.approx(
            derivative_metrics_2d(orig, dec).rms_diff, rel=1e-10
        )
        e = dec.astype(np.float64) - orig.astype(np.float64)
        assert np.allclose(
            out["autocorrelation"], spatial_autocorrelation_2d(e, 4), atol=1e-10
        )
