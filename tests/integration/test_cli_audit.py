"""CLI integration: ``generate --chunk`` + ``audit`` end to end,
including resume, ``--fresh``, and the chunk-span trace artifact."""

import json

import pytest

from repro.audit import AuditInterrupted, run_audit
from repro.cli import main
from repro.errors import CheckerError, DataIOError
from repro.io.bundle import load_bundle


@pytest.fixture()
def chunked_tree(tmp_path):
    for rel, dataset in (("setA/m", "miranda"), ("setB/n", "nyx")):
        rc = main([
            "generate", "--dataset", dataset, "--scale", "0.06",
            "--fields", "1", "--chunk", "4",
            "--out", str(tmp_path / "tree" / rel),
        ])
        assert rc == 0
    return tmp_path / "tree"


class TestGenerateChunked:
    def test_generate_writes_v2(self, chunked_tree, capsys):
        bundle = load_bundle(chunked_tree / "setA/m")
        assert bundle.version == 2
        assert bundle.chunks is not None

    def test_generate_float64(self, tmp_path, capsys):
        rc = main([
            "generate", "--dataset", "nyx", "--scale", "0.05", "--fields", "1",
            "--dtype", "float64", "--out", str(tmp_path / "d64"),
        ])
        assert rc == 0
        bundle = load_bundle(tmp_path / "d64")
        assert bundle.dtype == "float64"
        assert bundle.field_path(bundle.field_names[0]).suffix == ".f64"


class TestAuditCommand:
    def test_audit_tree(self, chunked_tree, tmp_path, capsys):
        out = tmp_path / "report.json"
        trace = tmp_path / "trace.json"
        rc = main([
            "audit", str(chunked_tree), "--out", str(out),
            "--checkpoint", str(tmp_path / "ck.json"),
            "--trace", str(trace),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "audited 2 field(s) in 2 bundle(s)" in text
        report = json.loads(out.read_text())
        assert report["format"] == "cuzchecker-audit-report-v1"
        assert report["totals"]["bundles"] == 2
        assert not (tmp_path / "ck.json").exists()
        # the trace carries per-chunk read spans with byte counts
        events = json.loads(trace.read_text())["traceEvents"]
        reads = [e for e in events if e.get("name") == "chunk_read"]
        assert len(reads) == report["totals"]["chunks"]
        assert all(e["args"]["bytes"] > 0 for e in reads)

    def test_audit_resume_matches_uninterrupted(self, chunked_tree, tmp_path, capsys):
        ref = tmp_path / "ref.json"
        rc = main([
            "audit", str(chunked_tree), "--out", str(ref),
            "--checkpoint", str(tmp_path / "ck_ref.json"),
        ])
        assert rc == 0

        out = tmp_path / "resumed.json"
        ck = tmp_path / "ck.json"
        with pytest.raises(AuditInterrupted):
            run_audit(chunked_tree, out_path=out, checkpoint_path=ck,
                      stop_after_chunks=3)
        rc = main([
            "audit", str(chunked_tree), "--out", str(out),
            "--checkpoint", str(ck),
        ])
        assert rc == 0
        assert "resuming from checkpoint" in capsys.readouterr().out
        assert out.read_bytes() == ref.read_bytes()

    def test_audit_fresh_discards_checkpoint(self, chunked_tree, tmp_path, capsys):
        out = tmp_path / "report.json"
        ck = tmp_path / "ck.json"
        with pytest.raises(AuditInterrupted):
            run_audit(chunked_tree, out_path=out, checkpoint_path=ck,
                      stop_after_chunks=2)
        # changed codec settings make the checkpoint stale
        with pytest.raises(CheckerError, match="fresh"):
            run_audit(chunked_tree, out_path=out, checkpoint_path=ck,
                      codec_args={"rel_bound": 1e-4})
        rc = main([
            "audit", str(chunked_tree), "--out", str(out),
            "--checkpoint", str(ck), "--rel-bound", "1e-4", "--fresh",
        ])
        assert rc == 0
        assert json.loads(out.read_text())["codec_args"] == {"rel_bound": 1e-4}

    def test_audit_empty_tree_fails(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        with pytest.raises(DataIOError, match="no bundles"):
            main(["audit", str(tmp_path / "empty")])

    def test_audit_workers_flag(self, chunked_tree, tmp_path, capsys):
        from repro.parallel import process_available

        if not process_available():
            pytest.skip("process pools unavailable")
        ref = tmp_path / "ref.json"
        assert main([
            "audit", str(chunked_tree), "--out", str(ref),
            "--checkpoint", str(tmp_path / "ck_ref.json"),
            "--audit-workers", "serial",
        ]) == 0
        out = tmp_path / "par.json"
        assert main([
            "audit", str(chunked_tree), "--out", str(out),
            "--checkpoint", str(tmp_path / "ck_par.json"),
            "--audit-workers", "2",
        ]) == 0
        assert out.read_bytes() == ref.read_bytes()

    def test_audit_workers_rejects_garbage(self, chunked_tree, tmp_path):
        with pytest.raises(CheckerError, match="audit workers"):
            main([
                "audit", str(chunked_tree),
                "--out", str(tmp_path / "r.json"),
                "--checkpoint", str(tmp_path / "ck.json"),
                "--audit-workers", "warp-speed",
            ])


class TestGenerateCodec:
    def test_generate_codec_writes_v3_and_audits(self, tmp_path, capsys):
        rc = main([
            "generate", "--dataset", "miranda", "--scale", "0.06",
            "--fields", "1", "--chunk", "4", "--codec", "zlib",
            "--out", str(tmp_path / "tree" / "m"),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "zlib-packed" in text
        bundle = load_bundle(tmp_path / "tree" / "m")
        assert bundle.version == 3
        assert bundle.codec == "zlib"
        rc = main([
            "audit", str(tmp_path / "tree"),
            "--out", str(tmp_path / "report.json"),
            "--checkpoint", str(tmp_path / "ck.json"),
        ])
        assert rc == 0
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["totals"]["fields"] == 1

    def test_codec_requires_chunk(self, tmp_path):
        with pytest.raises(CheckerError, match="--chunk"):
            main([
                "generate", "--dataset", "miranda", "--scale", "0.06",
                "--fields", "1", "--codec", "zlib",
                "--out", str(tmp_path / "m"),
            ])
