"""Every assessment entry point routes through the execution planner."""

import numpy as np
import pytest

from repro.cli import main
from repro.config.schema import CheckerConfig
from repro.core.checker import CuZChecker
from repro.core.compare import compare_data
from repro.core.streaming import StreamingChecker
from repro.engine import GpuSimBackend, build_plan
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.multigpu.checker import MultiGpuCuZC


def small_config(**kw):
    return CheckerConfig(
        pattern2=Pattern2Config(max_lag=kw.pop("max_lag", 3)),
        pattern3=Pattern3Config(window=kw.pop("window", 6)),
        **kw,
    )


class TestCheckerRouting:
    def test_checker_exposes_its_plan(self):
        checker = CuZChecker(small_config(metrics=("psnr", "ssim")))
        assert checker.plan.patterns == (1, 3)
        assert checker.needed_patterns() == (1, 3)
        assert "pattern 1" in checker.explain()

    def test_metric_subset_skips_kernel_launches(self, noisy_pair):
        be = GpuSimBackend()
        checker = CuZChecker(small_config(metrics=("psnr",)))
        report = checker.assess(*noisy_pair, backend=be)
        assert be.launched_patterns == (1,)
        assert report.pattern2 is None and report.pattern3 is None
        assert "psnr" in report.scalars()

    def test_config_backend_respected(self, noisy_pair):
        report = compare_data(
            *noisy_pair,
            config=small_config(backend="metric-oriented"),
            with_baselines=False,
        )
        baseline = compare_data(
            *noisy_pair, config=small_config(), with_baselines=False
        )
        assert report.scalars()["psnr"] == pytest.approx(
            baseline.scalars()["psnr"], rel=1e-12
        )

    def test_shared_checker_reused(self, noisy_pair):
        checker = CuZChecker(small_config(), with_baselines=False)
        r = compare_data(*noisy_pair, checker=checker)
        assert r.scalars() == checker.assess(*noisy_pair).scalars()


class TestStreamingFromConfig:
    def test_metric_selection_disables_streams(self):
        sc = StreamingChecker.from_config(
            (24, 28), config=small_config(metrics=("psnr",))
        )
        assert sc.max_lag == 0
        assert sc.ssim_config is None

    def test_full_config_matches_batch(self, noisy_pair):
        orig, dec = noisy_pair
        cfg = CheckerConfig(
            pattern2=Pattern2Config(max_lag=3),
            pattern3=Pattern3Config(window=6, dynamic_range=4.0),
        )
        sc = StreamingChecker.from_config(orig.shape[1:], config=cfg)
        for z in range(0, orig.shape[0], 5):
            sc.update(orig[z:z + 5], dec[z:z + 5])
        result = sc.finalize()
        batch = build_plan(cfg).execute(orig, dec)
        assert result.scalars()["psnr"] == pytest.approx(
            batch.scalars()["psnr"], rel=1e-12
        )
        np.testing.assert_allclose(
            result.autocorrelation,
            batch.pattern2.autocorrelation,
            rtol=1e-9,
        )


class TestMultiGpuRouting:
    def test_rank_plan_merge_matches_single_device(self, noisy_pair):
        orig, dec = noisy_pair
        merged = MultiGpuCuZC(3, config=small_config()).assess_pattern1(orig, dec)
        single = build_plan(small_config()).execute(
            orig, dec, backend="metric-oriented"
        ).pattern1
        assert merged.psnr == pytest.approx(single.psnr, rel=1e-12)
        assert merged.mse == pytest.approx(single.mse, rel=1e-12)


class TestExplainCli:
    def test_explain_default(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "pattern 1 (global reduction)" in out
        assert "backend=fused-host" in out

    def test_explain_subset_with_shape_and_backend(self, capsys):
        rc = main([
            "explain", "--metrics", "psnr,ssim",
            "--backend", "gpusim", "--shape", "20,24,28",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend=gpusim" in out
        assert "pattern 2" not in out
        assert "modelled kernels" in out

    def test_explain_typo_suggestion(self, capsys):
        from repro.errors import UnknownMetricError

        with pytest.raises(UnknownMetricError, match="did you mean 'psnr'"):
            main(["explain", "--metrics", "psn"])

    def test_analyze_metric_subset(self, tmp_path, noisy_pair, capsys):
        from repro.io.raw import write_raw

        orig, dec = noisy_pair
        a, b = tmp_path / "o.f32", tmp_path / "d.f32"
        write_raw(a, orig)
        write_raw(b, dec)
        shape = ",".join(map(str, orig.shape))
        rc = main([
            "analyze", str(a), str(b), "--shape", shape,
            "--metrics", "psnr,nrmse",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "psnr" in out
        assert "ssim" not in out
