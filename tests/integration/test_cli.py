"""CLI smoke tests: every subcommand via main()."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.io.raw import write_raw


@pytest.fixture()
def pair_files(tmp_path, banded_pair):
    orig, dec = banded_pair
    a = tmp_path / "orig.f32"
    b = tmp_path / "dec.f32"
    write_raw(a, orig)
    write_raw(b, dec)
    return a, b, orig.shape


class TestAnalyze:
    def test_text_report(self, pair_files, capsys):
        a, b, shape = pair_files
        rc = main([
            "analyze", str(a), str(b),
            "--shape", ",".join(map(str, shape)),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "psnr" in out
        assert "speedup vs ompZC" in out

    def test_json_and_dat_outputs(self, pair_files, tmp_path, capsys):
        a, b, shape = pair_files
        json_path = tmp_path / "r.json"
        dat_dir = tmp_path / "dats"
        rc = main([
            "analyze", str(a), str(b),
            "--shape", ",".join(map(str, shape)),
            "--json", str(json_path),
            "--dat-dir", str(dat_dir),
        ])
        assert rc == 0
        assert "metrics" in json.loads(json_path.read_text())
        assert (dat_dir / "autocorrelation.dat").exists()

    def test_with_config_file(self, pair_files, tmp_path, capsys):
        a, b, shape = pair_files
        cfg = tmp_path / "zc.cfg"
        cfg.write_text("[PATTERN3]\nwindow = 6\n")
        rc = main([
            "analyze", str(a), str(b),
            "--shape", ",".join(map(str, shape)),
            "--config", str(cfg),
        ])
        assert rc == 0

    def test_bad_shape_exits(self, pair_files):
        a, b, _ = pair_files
        with pytest.raises(SystemExit):
            main(["analyze", str(a), str(b), "--shape", "4,4"])


class TestOtherCommands:
    def test_assess(self, capsys):
        rc = main([
            "assess", "--dataset", "miranda", "--scale", "0.06",
            "--codec", "sz", "--rel-bound", "1e-3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compression_ratio" in out

    def test_generate(self, tmp_path, capsys):
        rc = main([
            "generate", "--dataset", "nyx", "--out", str(tmp_path / "b"),
            "--scale", "0.03", "--fields", "2",
        ])
        assert rc == 0
        assert (tmp_path / "b" / "manifest.json").exists()

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Category I" in out and "ssim" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "14.3k" in out and "17.0KB" in out

    def test_profile(self, tmp_path, capsys):
        rc = main([
            "profile", "--dataset", "miranda", "--scale", "0.05",
            "--metrics", "psnr", "--out-dir", str(tmp_path / "prof"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-kernel profile" in out
        assert (tmp_path / "prof" / "trace.json").exists()
        assert (tmp_path / "prof" / "spans.csv").exists()

    def test_speedups_overall(self, capsys):
        assert main(["speedups"]) == 0
        assert "ompZC" in capsys.readouterr().out

    def test_speedups_pattern(self, capsys):
        assert main(["speedups", "--pattern", "1"]) == 0
        assert "Pattern-1" in capsys.readouterr().out

    def test_throughput(self, capsys):
        assert main(["throughput", "--pattern", "3"]) == 0
        assert "MB/s" in capsys.readouterr().out
