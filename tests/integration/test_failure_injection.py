"""Failure injection: corrupted payloads, bad inputs, broken invariants.

A production assessment tool sits at the end of long pipelines; these
tests make sure corruption is *detected* (raising
:class:`~repro.errors.ReproError` subclasses) rather than silently
producing wrong science.
"""

import json

import numpy as np
import pytest

from repro.compressors.base import CompressedBuffer
from repro.compressors.lossless import LosslessCompressor
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.errors import CompressionError, DataIOError, ReproError


class TestCorruptedBuffers:
    def test_sz_truncated_payload(self, smooth_field):
        comp = SZCompressor(rel_bound=1e-3)
        buf = comp.compress(smooth_field)
        buf.payload = buf.payload[: len(buf.payload) // 2]
        with pytest.raises(ReproError):
            comp.decompress(buf)

    def test_sz_wrong_shape_metadata(self, smooth_field):
        comp = SZCompressor(rel_bound=1e-3)
        buf = comp.compress(smooth_field)
        buf.meta["shape"] = [2, 2, 2]
        with pytest.raises(CompressionError):
            comp.decompress(buf)

    def test_sz_outlier_record_mismatch(self, smooth_field):
        """Sentinel symbols without matching outlier records are a broken
        invariant, not a crash."""
        data = smooth_field.copy()
        data[0, 0, 0] = 1e6  # force an outlier
        comp = SZCompressor(abs_bound=1e-3, radius=64)
        buf = comp.compress(data)
        # chop the outlier records off the end
        import struct

        (stream_len,) = struct.unpack("<Q", buf.payload[:8])
        buf.payload = buf.payload[: 8 + stream_len] + struct.pack("<Q", 0)
        with pytest.raises(CompressionError):
            comp.decompress(buf)

    def test_zfp_truncated_columns(self, smooth_field):
        comp = ZFPCompressor(rate=8)
        buf = comp.compress(smooth_field)
        buf.payload = buf.payload[:-64]
        with pytest.raises(ReproError):
            comp.decompress(buf)

    def test_lossless_flipped_bytes(self, smooth_field):
        comp = LosslessCompressor()
        buf = comp.compress(smooth_field)
        corrupted = bytearray(buf.payload)
        corrupted[len(corrupted) // 2] ^= 0xFF
        buf.payload = bytes(corrupted)
        with pytest.raises((CompressionError, Exception)):
            comp.decompress(buf)

    def test_container_bad_magic(self):
        with pytest.raises(CompressionError):
            CompressedBuffer.from_bytes(b"XXXX" + b"\x00" * 32)

    def test_codec_crosswiring_rejected(self, smooth_field):
        sz_buf = SZCompressor(rel_bound=1e-3).compress(smooth_field)
        with pytest.raises(CompressionError):
            ZFPCompressor(rate=8).decompress(sz_buf)


class TestBadInputs:
    def test_nan_data_rejected_by_sz(self):
        data = np.zeros((4, 4, 4), dtype=np.float32)
        data[1, 1, 1] = np.nan
        with pytest.raises(CompressionError):
            SZCompressor(abs_bound=0.1).compress(data)

    def test_checker_rejects_nan_free_pass(self, smooth_field):
        """Metrics on NaN data produce NaN, never silently-wrong values."""
        from repro.metrics.rate_distortion import rate_distortion

        dec = smooth_field.copy()
        dec[0, 0, 0] = np.nan
        rd = rate_distortion(smooth_field, dec)
        assert np.isnan(rd.mse)

    def test_bundle_manifest_corruption(self, tmp_path, smooth_field):
        from repro.datasets.fields import Dataset, Field
        from repro.io.bundle import load_bundle, save_bundle

        ds = Dataset(name="x")
        ds.add(Field("f", smooth_field))
        save_bundle(ds, tmp_path / "b")
        manifest = tmp_path / "b" / "manifest.json"
        blob = json.loads(manifest.read_text())
        blob["shape"] = "not-a-shape"
        manifest.write_text(json.dumps(blob))
        with pytest.raises(DataIOError):
            load_bundle(tmp_path / "b")

    def test_truncated_raw_file(self, tmp_path, smooth_field):
        from repro.io.raw import read_raw, write_raw

        path = tmp_path / "f.f32"
        write_raw(path, smooth_field)
        path.write_bytes(path.read_bytes()[:-100])
        with pytest.raises(DataIOError):
            read_raw(path, smooth_field.shape)


class TestRoundTripUnderInjection:
    def test_single_bitflip_in_huffman_stream_detected_or_wrong(
        self, smooth_field
    ):
        """A bit flip in the entropy stream either raises or decodes to a
        *different* array — it must never return the original while
        claiming success with corrupted input."""
        from repro.compressors.huffman import huffman_decode, huffman_encode

        values = np.arange(-50, 50, dtype=np.int64).repeat(20)
        blob = bytearray(huffman_encode(values))
        blob[-10] ^= 0x01
        try:
            decoded = huffman_decode(bytes(blob))
        except CompressionError:
            return
        assert not np.array_equal(decoded, values)
