import numpy as np
import pytest

from repro.gpusim.warp import (
    WARP_SIZE,
    ballot,
    shfl_down,
    shfl_up,
    shfl_xor,
    warp_inclusive_scan,
    warp_reduce,
    warp_segmented_sum,
)


class TestShuffles:
    def test_shfl_down_shifts_lanes(self):
        lanes = np.arange(8.0)
        out = shfl_down(lanes, 3)
        assert np.array_equal(out[:5], lanes[3:])
        assert np.array_equal(out[5:], np.zeros(3))

    def test_shfl_down_zero_offset_is_identity(self):
        lanes = np.arange(32.0)
        assert np.array_equal(shfl_down(lanes, 0), lanes)

    def test_shfl_up_inverse_direction(self):
        lanes = np.arange(8.0)
        out = shfl_up(lanes, 2, fill=-1.0)
        assert np.array_equal(out[2:], lanes[:-2])
        assert np.all(out[:2] == -1.0)

    def test_shfl_xor_is_involution(self):
        lanes = np.arange(32.0)
        assert np.array_equal(shfl_xor(shfl_xor(lanes, 5), 5), lanes)

    def test_shfl_on_multidim_uses_last_axis(self):
        arr = np.arange(12.0).reshape(3, 4)
        out = shfl_down(arr, 1)
        assert np.array_equal(out[:, :3], arr[:, 1:])

    def test_oversized_warp_rejected(self):
        with pytest.raises(ValueError):
            shfl_down(np.zeros(33), 1)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            shfl_down(np.zeros(4), -1)


class TestBallot:
    def test_mask_bits(self):
        pred = np.array([True, False, True, True])
        assert ballot(pred) == 0b1101

    def test_empty_mask(self):
        assert ballot(np.zeros(4, dtype=bool)) == 0

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            ballot(np.zeros((2, 2), dtype=bool))


class TestWarpReduce:
    def test_full_warp_sum(self, rng):
        lanes = rng.normal(size=WARP_SIZE)
        assert warp_reduce(lanes) == pytest.approx(lanes.sum())

    def test_partial_warp_sum(self, rng):
        lanes = rng.normal(size=20)
        assert warp_reduce(lanes) == pytest.approx(lanes.sum())

    @pytest.mark.parametrize("lanes", [1, 2, 3, 7, 16, 31, 32])
    def test_all_widths(self, lanes, rng):
        vals = rng.normal(size=lanes)
        assert warp_reduce(vals) == pytest.approx(vals.sum())

    def test_min_max(self, rng):
        vals = rng.normal(size=27)
        assert warp_reduce(vals, np.minimum) == vals.min()
        assert warp_reduce(vals, np.maximum) == vals.max()

    def test_batched_rows(self, rng):
        arr = rng.normal(size=(5, 32))
        out = warp_reduce(arr)
        assert np.allclose(out, arr.sum(axis=-1))

    def test_empty_warp_rejected(self):
        with pytest.raises(ValueError):
            warp_reduce(np.zeros(0))


class TestSegmentedSum:
    def test_matches_sliding_sum(self, rng):
        lanes = rng.normal(size=32)
        seg = warp_segmented_sum(lanes, 4)
        for i in range(32 - 4 + 1):
            assert seg[i] == pytest.approx(lanes[i : i + 4].sum())

    def test_segment_one_is_identity(self, rng):
        lanes = rng.normal(size=16)
        assert np.allclose(warp_segmented_sum(lanes, 1), lanes)

    def test_invalid_segment(self):
        with pytest.raises(ValueError):
            warp_segmented_sum(np.zeros(8), 0)


class TestInclusiveScan:
    def test_matches_cumsum(self, rng):
        lanes = rng.normal(size=32)
        assert np.allclose(warp_inclusive_scan(lanes), np.cumsum(lanes))

    def test_partial_warp(self, rng):
        lanes = rng.normal(size=11)
        assert np.allclose(warp_inclusive_scan(lanes), np.cumsum(lanes))
