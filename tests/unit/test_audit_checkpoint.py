import json
import math

import numpy as np
import pytest

from repro.audit.checkpoint import (
    CHECKPOINT_FORMAT,
    AuditCheckpoint,
    decode_state,
    encode_state,
)
from repro.core.streaming import StreamingChecker
from repro.engine.tiling import TileAccumulator
from repro.errors import CheckerError, DataIOError, ShapeError
from repro.kernels.pattern3 import Pattern3Config


class TestStateCodec:
    def test_arrays_roundtrip_bit_identical(self, rng):
        for dtype in (np.float32, np.float64, np.int64):
            arr = rng.normal(size=(3, 4, 5)).astype(dtype)
            back = decode_state(json.loads(json.dumps(encode_state(arr))))
            assert back.dtype == np.dtype(dtype).newbyteorder("=")
            assert back.shape == arr.shape
            assert np.array_equal(
                back.view(np.uint8), arr.astype(back.dtype).view(np.uint8)
            )

    def test_infinities_survive_json(self):
        state = {"min_e": math.inf, "max_e": -math.inf, "sum": 0.1 + 0.2}
        back = decode_state(json.loads(json.dumps(encode_state(state))))
        assert back["min_e"] == math.inf
        assert back["max_e"] == -math.inf
        assert back["sum"] == state["sum"]  # exact repr round-trip

    def test_numpy_scalars_become_python(self):
        enc = encode_state(
            {"f": np.float64(1.5), "i": np.int32(7), "b": np.bool_(True)}
        )
        assert type(enc["f"]) is float
        assert type(enc["i"]) is int
        assert type(enc["b"]) is bool

    def test_nested_structures(self, rng):
        state = {"a": [1, {"b": rng.normal(size=(2, 2))}], "c": None}
        back = decode_state(json.loads(json.dumps(encode_state(state))))
        assert back["a"][0] == 1
        assert np.array_equal(back["a"][1]["b"], state["a"][1]["b"])
        assert back["c"] is None


class TestAuditCheckpointFile:
    def test_save_load_roundtrip(self, tmp_path, rng):
        ck = AuditCheckpoint(tmp_path / "ck.json")
        assert ck.load() is None
        payload = {"completed": ["a::x"], "arr": rng.normal(size=(2, 3))}
        ck.save(payload)
        doc = ck.load()
        assert doc["format"] == CHECKPOINT_FORMAT
        assert doc["completed"] == ["a::x"]
        assert np.array_equal(doc["arr"], payload["arr"])

    def test_save_leaves_no_temp_files(self, tmp_path):
        ck = AuditCheckpoint(tmp_path / "ck.json")
        ck.save({"completed": []})
        ck.save({"completed": ["one"]})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(DataIOError, match="corrupt"):
            AuditCheckpoint(path).load()

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(DataIOError, match="format"):
            AuditCheckpoint(path).load()

    def test_delete_idempotent(self, tmp_path):
        ck = AuditCheckpoint(tmp_path / "ck.json")
        ck.save({})
        ck.delete()
        assert not ck.exists()
        ck.delete()  # no error


def _feed(checker, orig, dec, chunk_nz):
    for z0 in range(0, orig.shape[0], chunk_nz):
        checker.update(orig[z0 : z0 + chunk_nz], dec[z0 : z0 + chunk_nz])


class TestAccumulatorStateRoundtrip:
    def test_tile_accumulator_bit_identical(self, rng):
        orig = rng.normal(size=(12, 9, 9))
        dec = orig + rng.normal(scale=1e-3, size=orig.shape)
        err = dec - orig

        ref = TileAccumulator((9, 9), max_lag=3, pwr_floor=1e-6)
        for z0 in range(0, 12, 4):
            ref.add_block(orig[z0 : z0 + 4], dec[z0 : z0 + 4], err[z0 : z0 + 4])

        a = TileAccumulator((9, 9), max_lag=3, pwr_floor=1e-6)
        a.add_block(orig[:4], dec[:4], err[:4])
        snapshot = json.loads(json.dumps(encode_state(a.state_dict())))
        b = TileAccumulator((9, 9), max_lag=3, pwr_floor=1e-6)
        b.load_state(decode_state(snapshot))
        for z0 in range(4, 12, 4):
            b.add_block(orig[z0 : z0 + 4], dec[z0 : z0 + 4], err[z0 : z0 + 4])

        assert b.n == ref.n and b.z == ref.z
        assert b.sum_sq_e == ref.sum_sq_e
        assert b.min_e == ref.min_e and b.max_e == ref.max_e
        assert np.array_equal(b.finalize_autocorr(), ref.finalize_autocorr())

    def test_load_state_rejects_wrong_deriv_keys(self):
        a = TileAccumulator((6, 6), max_lag=0)
        state = a.state_dict()
        state["deriv"] = {"3": {"count": 0}}
        b = TileAccumulator((6, 6), max_lag=0)
        with pytest.raises(ShapeError):
            b.load_state(state)


class TestStreamingCheckerStateRoundtrip:
    @pytest.mark.parametrize("kill_after", [1, 2, 3])
    def test_resume_bit_identical(self, rng, kill_after):
        nz, ny, nx = 16, 10, 10
        orig = rng.normal(size=(nz, ny, nx))
        dec = orig + rng.normal(scale=1e-3, size=orig.shape)
        rng_cfg = Pattern3Config(window=8, dynamic_range=float(np.ptp(orig)))

        def fresh():
            return StreamingChecker(
                (ny, nx), max_lag=4, ssim=rng_cfg, pwr_floor=1e-6
            )

        ref = fresh()
        _feed(ref, orig, dec, 4)
        ref_result = ref.finalize()

        a = fresh()
        _feed(a, orig[: kill_after * 4], dec[: kill_after * 4], 4)
        snapshot = json.loads(json.dumps(encode_state(a.state_dict())))

        b = fresh()
        b.load_state(decode_state(snapshot))
        _feed(b, orig[kill_after * 4 :], dec[kill_after * 4 :], 4)
        result = b.finalize()

        assert result.scalars() == ref_result.scalars()
        assert np.array_equal(result.autocorrelation, ref_result.autocorrelation)

    def test_restore_rejects_finalized_state(self, rng):
        checker = StreamingChecker((8, 8), max_lag=0)
        checker.update(rng.normal(size=(2, 8, 8)), rng.normal(size=(2, 8, 8)))
        state = checker.state_dict()
        checker.finalize()
        state["finalized"] = True
        with pytest.raises(CheckerError, match="finalised"):
            StreamingChecker((8, 8), max_lag=0).load_state(state)

    def test_restore_rejects_ssim_mismatch(self, rng):
        cfg = Pattern3Config(window=8, dynamic_range=1.0)
        checker = StreamingChecker((10, 10), max_lag=0, ssim=cfg)
        checker.update(rng.normal(size=(2, 10, 10)), rng.normal(size=(2, 10, 10)))
        state = checker.state_dict()
        with pytest.raises(CheckerError, match="SSIM"):
            StreamingChecker((10, 10), max_lag=0).load_state(state)


class TestResolveAuditWorkers:
    """Worker-count resolution: explicit counts honoured, "auto" priced
    by the dispatch cost model, tiny archives stay serial."""

    def test_serial_and_explicit(self):
        from repro.audit import resolve_audit_workers

        assert resolve_audit_workers("serial", 8, 1 << 20, 1 << 16) == 1
        assert resolve_audit_workers(3, 8, 1 << 20, 1 << 16) == 3
        assert resolve_audit_workers("3", 8, 1 << 20, 1 << 16) == 3

    def test_explicit_capped_by_pending_fields(self):
        from repro.audit import resolve_audit_workers

        assert resolve_audit_workers(8, 2, 1 << 20, 1 << 16) == 2

    def test_nonpositive_rejected(self):
        from repro.audit import resolve_audit_workers

        with pytest.raises(CheckerError, match="audit workers"):
            resolve_audit_workers(0, 4, 1 << 20, 1 << 16)
        with pytest.raises(CheckerError, match="audit workers"):
            resolve_audit_workers("banana", 4, 1 << 20, 1 << 16)

    def test_auto_single_pending_field_is_serial(self):
        from repro.audit import resolve_audit_workers

        assert resolve_audit_workers("auto", 1, 1 << 30, 1 << 20) == 1

    def test_auto_tiny_archive_prices_out_serial(self):
        from repro.audit import resolve_audit_workers

        # two 4 KiB fields can never amortise a process-pool spawn
        assert resolve_audit_workers("auto", 2, 4096, 1024) == 1
