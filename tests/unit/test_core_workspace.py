"""The shared metric workspace must equal the independent references.

The workspace is the host-side fusion cache every fused consumer reads
from; the :mod:`repro.metrics` functions are deliberately *not* routed
through it so they stay the oracle these tests compare against.
"""

import numpy as np
import pytest

from repro.core.workspace import MetricWorkspace, finalize_rate_distortion
from repro.errors import ConfigError, ShapeError
from repro.kernels.pattern1 import Pattern1Config, execute_pattern1
from repro.kernels.pattern2 import Pattern2Config, execute_pattern2
from repro.kernels.pattern3 import Pattern3Config, execute_pattern3
from repro.metrics import (
    data_properties,
    error_pdf,
    error_stats,
    pearson,
    pwr_error_stats,
    rate_distortion,
)


class TestWorkspaceVsReferences:
    def test_error_stats(self, noisy_pair):
        ws = MetricWorkspace(*noisy_pair)
        ref = error_stats(*noisy_pair)
        got = ws.error_stats()
        assert got.min_err == ref.min_err
        assert got.max_err == ref.max_err
        assert got.avg_err == pytest.approx(ref.avg_err, rel=1e-12, abs=1e-15)
        assert got.avg_abs_err == pytest.approx(ref.avg_abs_err, rel=1e-12)
        assert got.max_abs_err == ref.max_abs_err

    def test_rate_distortion(self, noisy_pair):
        ws = MetricWorkspace(*noisy_pair)
        ref = rate_distortion(*noisy_pair)
        got = ws.rate_distortion()
        assert got.mse == pytest.approx(ref.mse, rel=1e-12)
        assert got.rmse == pytest.approx(ref.rmse, rel=1e-12)
        assert got.nrmse == pytest.approx(ref.nrmse, rel=1e-12)
        assert got.psnr == pytest.approx(ref.psnr, rel=1e-12)
        assert got.snr == pytest.approx(ref.snr, rel=1e-12)
        assert got.value_range == ref.value_range

    def test_pwr_error_stats(self, noisy_pair):
        ws = MetricWorkspace(*noisy_pair, pwr_floor=0.5)
        ref = pwr_error_stats(*noisy_pair, floor=0.5)
        got = ws.pwr_error_stats()
        assert got.min_pwr_err == pytest.approx(ref.min_pwr_err, rel=1e-12)
        assert got.max_pwr_err == pytest.approx(ref.max_pwr_err, rel=1e-12)
        assert got.avg_pwr_err == pytest.approx(ref.avg_pwr_err, rel=1e-10)
        assert got.excluded == ref.excluded

    def test_pearson(self, noisy_pair):
        ws = MetricWorkspace(*noisy_pair)
        assert ws.pearson() == pytest.approx(pearson(*noisy_pair), rel=1e-12)

    def test_data_properties(self, noisy_pair):
        orig, dec = noisy_pair
        ws = MetricWorkspace(orig, dec)
        ref = data_properties(orig)
        got = ws.data_properties()
        assert got.min_value == ref.min_value
        assert got.max_value == ref.max_value
        assert got.mean == pytest.approx(ref.mean, rel=1e-12)
        assert got.std == pytest.approx(ref.std, rel=1e-12)
        assert got.entropy == pytest.approx(ref.entropy, rel=1e-12)
        assert got.zeros == ref.zeros
        assert got.n_elements == ref.n_elements

    def test_err_pdf(self, noisy_pair):
        ws = MetricWorkspace(*noisy_pair)
        ref = error_pdf(*noisy_pair)
        got = ws.err_pdf()
        assert np.array_equal(got.bin_edges, ref.bin_edges)
        assert np.allclose(got.density, ref.density, rtol=1e-12)

    def test_identical_inputs_degenerate(self, smooth_field):
        ws = MetricWorkspace(smooth_field, smooth_field.copy())
        assert ws.mse == 0.0
        assert ws.rate_distortion().psnr == np.inf
        assert ws.pearson() == pytest.approx(1.0, rel=1e-12)

    def test_constant_field_degenerate(self):
        orig = np.full((4, 5, 6), 3.0, dtype=np.float32)
        ws = MetricWorkspace(orig, orig + np.float32(0.25))
        rd = ws.rate_distortion()
        assert rd.value_range == 0.0
        assert np.isnan(rd.psnr)


class TestWorkspaceCaching:
    def test_arrays_materialised_once(self, noisy_pair):
        ws = MetricWorkspace(*noisy_pair)
        assert ws.err is ws.err
        assert ws.sq_err is ws.sq_err
        assert ws.o64 is ws.o64
        assert ws.moments is ws.moments

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            MetricWorkspace(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            MetricWorkspace(np.zeros(0), np.zeros(0))

    def test_finalize_rate_distortion_lossless(self):
        rd = finalize_rate_distortion(100, 0.0, 5.0, 1.0)
        assert rd.psnr == np.inf
        assert rd.nrmse == 0.0


class TestFusedKernelsEqualLegacy:
    """Each pattern kernel's workspace fast path equals its blocked path."""

    def test_pattern1(self, banded_pair):
        orig, dec = banded_pair
        ws = MetricWorkspace(orig, dec)
        legacy, _ = execute_pattern1(orig, dec)
        fused, _ = execute_pattern1(orig, dec, workspace=ws)
        assert fused.n == legacy.n
        assert fused.min_err == legacy.min_err
        assert fused.max_err == legacy.max_err
        assert fused.mse == pytest.approx(legacy.mse, rel=1e-12)
        assert fused.psnr == pytest.approx(legacy.psnr, rel=1e-12)
        assert fused.avg_pwr_err == pytest.approx(legacy.avg_pwr_err, rel=1e-10)

    def test_pattern1_pwr_floor_mismatch_rejected(self, banded_pair):
        ws = MetricWorkspace(*banded_pair, pwr_floor=0.1)
        with pytest.raises(ConfigError):
            execute_pattern1(*banded_pair, Pattern1Config(pwr_floor=0.2), workspace=ws)

    def test_pattern2(self, banded_pair):
        orig, dec = banded_pair
        ws = MetricWorkspace(orig, dec)
        cfg = Pattern2Config(max_lag=4)
        legacy, _ = execute_pattern2(orig, dec, cfg)
        fused, _ = execute_pattern2(orig, dec, cfg, workspace=ws)
        for attr in ("der1", "der2", "divergence", "laplacian"):
            lg, fu = getattr(legacy, attr), getattr(fused, attr)
            assert fu.mean_orig == pytest.approx(lg.mean_orig, rel=1e-12)
            assert fu.mean_dec == pytest.approx(lg.mean_dec, rel=1e-12)
            assert fu.rms_diff == pytest.approx(lg.rms_diff, rel=1e-12)
            assert fu.max_diff == lg.max_diff
        assert np.allclose(
            fused.autocorrelation, legacy.autocorrelation, atol=1e-10
        )

    def test_pattern3(self, banded_pair):
        orig, dec = banded_pair
        ws = MetricWorkspace(orig, dec)
        cfg = Pattern3Config(window=6)
        legacy, _ = execute_pattern3(orig, dec, cfg)
        fused, _ = execute_pattern3(orig, dec, cfg, workspace=ws)
        assert fused.n_windows == legacy.n_windows
        assert fused.ssim == pytest.approx(legacy.ssim, rel=1e-9)
        assert fused.min_window_ssim == pytest.approx(
            legacy.min_window_ssim, rel=1e-9
        )
        assert fused.max_window_ssim == pytest.approx(
            legacy.max_window_ssim, rel=1e-9
        )

    def test_modelled_costs_unchanged_by_workspace(self, banded_pair):
        """The fused host path must not alter the paper's modelled numbers."""
        orig, dec = banded_pair
        ws = MetricWorkspace(orig, dec)
        _, stats_legacy = execute_pattern1(orig, dec)
        _, stats_fused = execute_pattern1(orig, dec, workspace=ws)
        assert stats_fused == stats_legacy
        _, s2_legacy = execute_pattern2(orig, dec, Pattern2Config(max_lag=4))
        _, s2_fused = execute_pattern2(
            orig, dec, Pattern2Config(max_lag=4), workspace=ws
        )
        assert s2_fused == s2_legacy
