import math

import numpy as np
import pytest

from repro.metrics.rate_distortion import rate_distortion


class TestRateDistortion:
    def test_mse_rmse_identity(self, noisy_pair):
        rd = rate_distortion(*noisy_pair)
        assert rd.rmse == pytest.approx(math.sqrt(rd.mse))

    def test_nrmse_identity(self, noisy_pair):
        rd = rate_distortion(*noisy_pair)
        assert rd.nrmse == pytest.approx(rd.rmse / rd.value_range)

    def test_psnr_identity(self, noisy_pair):
        rd = rate_distortion(*noisy_pair)
        expected = 20 * math.log10(rd.value_range) - 10 * math.log10(rd.mse)
        assert rd.psnr == pytest.approx(expected)

    def test_psnr_nrmse_relation(self, noisy_pair):
        """PSNR = -20 log10(NRMSE)."""
        rd = rate_distortion(*noisy_pair)
        assert rd.psnr == pytest.approx(-20 * math.log10(rd.nrmse))

    def test_known_mse(self):
        orig = np.zeros((1, 2, 2))
        dec = np.array([[[1.0, -1.0], [2.0, 0.0]]])
        rd = rate_distortion(orig, dec)
        assert rd.mse == pytest.approx((1 + 1 + 4) / 4)

    def test_lossless_gives_infinite_psnr_snr(self, smooth_field):
        rd = rate_distortion(smooth_field, smooth_field)
        assert rd.mse == 0.0
        assert rd.psnr == math.inf
        assert rd.snr == math.inf
        assert rd.nrmse == 0.0

    def test_constant_field_nan_psnr(self):
        orig = np.full((2, 2, 2), 5.0)
        rd = rate_distortion(orig, orig + 0.1)
        assert math.isnan(rd.psnr)
        assert math.isnan(rd.nrmse)

    def test_constant_field_negative_infinite_snr(self):
        orig = np.full((2, 2, 2), 5.0)
        rd = rate_distortion(orig, orig + 0.1)
        assert rd.snr == -math.inf

    def test_snr_uses_signal_variance(self, noisy_pair):
        orig, dec = noisy_pair
        rd = rate_distortion(orig, dec)
        expected = 10 * math.log10(orig.astype(np.float64).var() / rd.mse)
        assert rd.snr == pytest.approx(expected)

    def test_tighter_noise_raises_psnr(self, smooth_field, rng):
        loud = smooth_field + rng.normal(scale=0.1, size=smooth_field.shape).astype(
            np.float32
        )
        quiet = smooth_field + rng.normal(scale=0.001, size=smooth_field.shape).astype(
            np.float32
        )
        assert (
            rate_distortion(smooth_field, quiet).psnr
            > rate_distortion(smooth_field, loud).psnr + 30
        )
