import pytest

from repro.config.defaults import default_config
from repro.core.frameworks import (
    CuZC,
    MoZC,
    OmpZC,
    device_by_name,
    get_framework,
)
from repro.errors import CheckerError

SHAPE = (64, 64, 64)


class TestFactory:
    def test_get_all(self):
        assert isinstance(get_framework("cuZC"), CuZC)
        assert isinstance(get_framework("moZC"), MoZC)
        assert isinstance(get_framework("ompZC"), OmpZC)

    def test_unknown(self):
        with pytest.raises(CheckerError):
            get_framework("gpuZC")

    def test_device_lookup(self):
        assert device_by_name("V100").name == "Tesla V100"
        with pytest.raises(CheckerError):
            device_by_name("TPU")


class TestEstimates:
    def test_all_patterns_present(self):
        timing = CuZC().estimate(SHAPE)
        assert set(timing.pattern_seconds) == {1, 2, 3}
        assert timing.total_seconds == pytest.approx(
            sum(timing.pattern_seconds.values())
        )

    def test_pattern_subset(self):
        cfg = default_config().with_patterns(1)
        timing = CuZC().estimate(SHAPE, cfg)
        assert set(timing.pattern_seconds) == {1}

    def test_cuzc_fastest(self):
        cu = CuZC().estimate(SHAPE).total_seconds
        mo = MoZC().estimate(SHAPE).total_seconds
        omp = OmpZC().estimate(SHAPE).total_seconds
        assert cu < mo < omp

    def test_throughput_accounting(self):
        timing = CuZC().estimate(SHAPE)
        n = 64**3
        assert timing.bytes_processed == 2 * n * 4
        assert timing.throughput() == pytest.approx(
            timing.bytes_processed / timing.total_seconds
        )

    def test_invalid_pattern_rejected(self):
        with pytest.raises(CheckerError):
            CuZC().pattern_seconds(4, SHAPE, default_config())

    def test_times_scale_with_volume(self):
        small = CuZC().estimate((32, 32, 32)).total_seconds
        large = CuZC().estimate((128, 128, 128)).total_seconds
        assert large > 10 * small


class TestOmpWorkloads:
    def test_pattern1_has_fourteen_passes(self):
        loads = OmpZC().workloads(1, SHAPE, default_config())
        assert len(loads) == 14

    def test_pattern2_includes_lags(self):
        loads = OmpZC().workloads(2, SHAPE, default_config())
        names = [w.name for w in loads]
        assert "autocorrelation" in names
        ac = next(w for w in loads if w.name == "autocorrelation")
        assert ac.passes == 10

    def test_pattern3_window_scaling(self):
        cfg = default_config()
        ssim = OmpZC().workloads(3, SHAPE, cfg)[0]
        assert ssim.cycles_per_element > 1000  # w^3-scaled scalar cost

    def test_ssim_cost_scales_with_window_volume(self):
        from dataclasses import replace

        from repro.kernels.pattern3 import Pattern3Config

        cfg8 = default_config()
        cfg4 = replace(cfg8, pattern3=Pattern3Config(window=4))
        c8 = OmpZC().workloads(3, SHAPE, cfg8)[0].cycles_per_element
        c4 = OmpZC().workloads(3, SHAPE, cfg4)[0].cycles_per_element
        assert c8 / c4 == pytest.approx(8.0)


class TestSmallDataCrossover:
    def test_gpu_loses_on_tiny_data_wins_at_scale(self):
        """Launch/sync overheads make the GPU slower than the CPU below a
        crossover size — the standard reason assessment tools batch small
        fields.  With a light metric load (small SSIM window, few lags)
        the fixed overheads dominate tiny fields; at scale the GPU's
        throughput advantage takes over.  The model reproduces both
        regimes and the crossover in between."""
        from dataclasses import replace

        from repro.kernels.pattern2 import Pattern2Config
        from repro.kernels.pattern3 import Pattern3Config

        cfg = replace(
            default_config(),
            pattern2=Pattern2Config(max_lag=3),
            pattern3=Pattern3Config(window=6),
        )
        tiny = (16, 16, 16)
        large = (64, 256, 256)
        cu_tiny = CuZC().estimate(tiny, cfg).total_seconds
        omp_tiny = OmpZC().estimate(tiny, cfg).total_seconds
        cu_large = CuZC().estimate(large, cfg).total_seconds
        omp_large = OmpZC().estimate(large, cfg).total_seconds
        assert cu_tiny > omp_tiny  # overhead-bound regime: GPU loses
        assert omp_large > 5 * cu_large  # throughput-bound regime
