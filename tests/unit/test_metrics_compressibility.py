import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics.compressibility import (
    delta_entropy,
    estimate_sz_ratio,
    slice_profiles,
)


class TestDeltaEntropy:
    def test_constant_field_near_zero_entropy(self):
        # only the corner residual (the raw quantised value) is nonzero
        data = np.full((8, 8, 8), 3.0, dtype=np.float32)
        assert delta_entropy(data, rel_bound=1e-3) < 0.05

    def test_smooth_field_low_entropy(self, smooth_field, rng):
        noise = rng.normal(size=smooth_field.shape).astype(np.float32) * 2
        h_smooth = delta_entropy(smooth_field, rel_bound=1e-3)
        h_noise = delta_entropy(noise, rel_bound=1e-3)
        assert h_smooth < h_noise

    def test_entropy_grows_with_tighter_bound(self, smooth_field):
        loose = delta_entropy(smooth_field, rel_bound=1e-2)
        tight = delta_entropy(smooth_field, rel_bound=1e-4)
        assert tight > loose

    def test_bound_validation(self, smooth_field):
        from repro.errors import CompressionError

        with pytest.raises(CompressionError):
            delta_entropy(smooth_field)

    def test_4d_rejected(self):
        with pytest.raises(ShapeError):
            delta_entropy(np.zeros((2, 2, 2, 2)), abs_bound=0.1)


class TestEstimateSzRatio:
    @pytest.mark.parametrize("rel", [1e-2, 1e-3, 1e-4])
    def test_predicts_real_ratio(self, smooth_field, rel):
        """The whole point: the estimate lands within ~10% of the real
        codec across two orders of magnitude of bounds."""
        from repro.compressors.sz import SZCompressor

        predicted = estimate_sz_ratio(smooth_field, rel_bound=rel)
        actual = SZCompressor(rel_bound=rel).ratio(smooth_field)
        assert predicted == pytest.approx(actual, rel=0.10)

    def test_monotone_in_bound(self, smooth_field):
        assert estimate_sz_ratio(smooth_field, rel_bound=1e-2) > estimate_sz_ratio(
            smooth_field, rel_bound=1e-4
        )

    def test_constant_field_huge_ratio(self):
        data = np.full((8, 8, 8), 3.0, dtype=np.float32)
        assert estimate_sz_ratio(data, rel_bound=1e-3) > 50


class TestSliceProfiles:
    def test_matches_numpy(self, smooth_field):
        prof = slice_profiles(smooth_field)
        d = smooth_field.astype(np.float64)
        assert np.allclose(prof.mean, d.mean(axis=(1, 2)))
        assert np.allclose(prof.min, d.min(axis=(1, 2)))
        assert np.allclose(prof.max, d.max(axis=(1, 2)))
        assert len(prof.z) == smooth_field.shape[0]

    def test_layered_field_trend(self):
        from repro.datasets.synthetic import layered_field

        prof = slice_profiles(layered_field((24, 10, 10), perturbation=0.1))
        assert prof.mean[0] > prof.mean[-1]

    def test_columns_for_gnuplot(self, smooth_field, tmp_path):
        from repro.viz.gnuplot import write_series

        prof = slice_profiles(smooth_field)
        path = write_series(tmp_path / "prof.dat", prof.as_columns())
        assert path.exists()

    def test_requires_3d(self):
        with pytest.raises(ShapeError):
            slice_profiles(np.zeros((4, 4)))
