import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels.pattern1 import (
    BLOCK_X,
    BLOCK_Y,
    N_ACCUMULATORS,
    REGS_PER_THREAD,
    SMEM_PER_BLOCK,
    Pattern1Config,
    execute_pattern1,
    plan_pattern1,
)
from repro.metrics.error_stats import error_stats
from repro.metrics.pwr_error import pwr_error_stats
from repro.metrics.rate_distortion import rate_distortion


class TestPlanPattern1:
    def test_table2_resources(self):
        """Paper Table II: 14k Regs/TB, 0.4KB SMem/TB for pattern 1."""
        stats = plan_pattern1((100, 500, 500))
        assert stats.regs_per_block == 14336  # "14k"
        assert stats.smem_per_block == 448  # "0.4KB"
        assert stats.threads_per_block == BLOCK_X * BLOCK_Y == 256

    @pytest.mark.parametrize(
        "shape,expected_iters",
        [
            ((100, 500, 500), 63 * 16),  # Hurricane  (paper: 977)
            ((512, 512, 512), 64 * 16),  # NYX        (paper: 1k)
            ((98, 1200, 1200), 150 * 38),  # Scale    (paper: 6.3k)
            ((256, 384, 384), 48 * 12),  # Miranda    (paper: 576)
        ],
    )
    def test_iters_per_thread(self, shape, expected_iters):
        assert plan_pattern1(shape).iters_per_thread == expected_iters

    def test_one_block_per_slice(self):
        assert plan_pattern1((100, 500, 500)).grid_blocks == 100

    def test_single_cooperative_launch(self):
        stats = plan_pattern1((64, 64, 64))
        assert stats.launches == 1
        assert stats.grid_syncs == 2

    def test_two_sweeps_of_both_fields(self):
        n = 64**3
        stats = plan_pattern1((64, 64, 64))
        assert stats.global_read_bytes == 2 * 2 * n * 4

    def test_histogram_atomics(self):
        n = 32 * 20 * 24
        assert plan_pattern1((32, 20, 24)).atomic_ops == 2 * n

    def test_invalid_shape(self):
        with pytest.raises(ShapeError):
            plan_pattern1((0, 4, 4))
        with pytest.raises(ShapeError):
            plan_pattern1((4, 4))


class TestExecutePattern1:
    def test_matches_references(self, banded_pair):
        orig, dec = banded_pair
        result, _ = execute_pattern1(orig, dec)
        es = error_stats(orig, dec)
        rd = rate_distortion(orig, dec)
        ps = pwr_error_stats(orig, dec)
        assert result.min_err == pytest.approx(es.min_err, abs=1e-12)
        assert result.max_err == pytest.approx(es.max_err, abs=1e-12)
        assert result.avg_err == pytest.approx(es.avg_err, abs=1e-12)
        assert result.avg_abs_err == pytest.approx(es.avg_abs_err, abs=1e-12)
        assert result.mse == pytest.approx(rd.mse, rel=1e-12)
        assert result.rmse == pytest.approx(rd.rmse, rel=1e-12)
        assert result.nrmse == pytest.approx(rd.nrmse, rel=1e-12)
        assert result.psnr == pytest.approx(rd.psnr, rel=1e-12)
        assert result.snr == pytest.approx(rd.snr, rel=1e-12)
        assert result.value_range == pytest.approx(rd.value_range)
        assert result.min_pwr_err == pytest.approx(ps.min_pwr_err, rel=1e-12)
        assert result.max_pwr_err == pytest.approx(ps.max_pwr_err, rel=1e-12)
        assert result.avg_pwr_err == pytest.approx(ps.avg_pwr_err, rel=1e-10)

    def test_odd_shapes_handle_block_padding(self, rng):
        """Corner cases at the edges (Algorithm 1's omitted handling)."""
        orig = rng.normal(size=(3, 13, 37)).astype(np.float32)
        dec = orig + rng.normal(scale=0.01, size=orig.shape).astype(np.float32)
        result, _ = execute_pattern1(orig, dec)
        es = error_stats(orig, dec)
        assert result.min_err == pytest.approx(es.min_err)
        assert result.max_err == pytest.approx(es.max_err)
        assert result.avg_err == pytest.approx(es.avg_err, abs=1e-12)

    def test_pdfs_integrate_to_one(self, noisy_pair):
        result, _ = execute_pattern1(*noisy_pair)
        assert result.err_pdf.integral() == pytest.approx(1.0, rel=1e-9)
        assert result.pwr_err_pdf.integral() == pytest.approx(1.0, rel=1e-9)

    def test_lossless_input(self, smooth_field):
        result, _ = execute_pattern1(smooth_field, smooth_field)
        assert result.mse == 0.0
        assert result.psnr == np.inf

    def test_zero_field_pwr_excluded(self):
        orig = np.zeros((4, 4, 4), dtype=np.float32)
        dec = orig + 1.0
        result, _ = execute_pattern1(orig, dec)
        assert result.extras["pwr_count"] == 0.0
        assert result.min_pwr_err == 0.0

    def test_returned_stats_equal_plan(self, noisy_pair):
        orig, dec = noisy_pair
        _, stats = execute_pattern1(orig, dec)
        assert stats == plan_pattern1(orig.shape)

    def test_as_dict_keys_match_registry(self, noisy_pair):
        from repro.metrics.base import METRIC_REGISTRY

        result, _ = execute_pattern1(*noisy_pair)
        for key in result.as_dict():
            assert key in METRIC_REGISTRY

    def test_config_bins_respected(self, noisy_pair):
        result, _ = execute_pattern1(
            *noisy_pair, Pattern1Config(pdf_bins=77)
        )
        assert len(result.err_pdf.density) == 77

    def test_shape_mismatch(self, smooth_field):
        with pytest.raises(ShapeError):
            execute_pattern1(smooth_field, smooth_field[:-1])
