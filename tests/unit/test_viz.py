import pytest

from repro.viz.ascii import ascii_bar_chart, ascii_line_plot, ascii_table
from repro.viz.gnuplot import write_gnuplot_script, write_series


class TestAsciiBarChart:
    def test_contains_labels_and_values(self):
        out = ascii_bar_chart({"cuZC": 29.5, "moZC": 1.5}, title="speedups")
        assert "speedups" in out
        assert "cuZC" in out and "29.5" in out

    def test_longest_bar_spans_width(self):
        out = ascii_bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = out.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_log_scale(self):
        out = ascii_bar_chart({"a": 1000.0, "b": 1.0}, width=30, log_scale=True)
        bars = [line.count("#") for line in out.splitlines()]
        assert bars[1] > 30 * 1 / 1000  # log compresses the gap

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})


class TestAsciiLinePlot:
    def test_grid_dimensions(self):
        out = ascii_line_plot([0, 1, 2], [0, 1, 4], width=20, height=5)
        lines = out.splitlines()
        assert len(lines) == 5 + 3  # grid + frame + axis line
        assert "*" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_line_plot([1, 2], [1])


class TestAsciiTable:
    def test_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        out = ascii_table(rows)
        lines = out.splitlines()
        assert len(set(len(line) for line in lines)) == 1

    def test_column_selection(self):
        out = ascii_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_table([])


class TestGnuplot:
    def test_series_format(self, tmp_path):
        path = write_series(
            tmp_path / "s.dat", {"x": [1.0, 2.0], "y": [3.0, 4.0]}, comment="test"
        )
        lines = path.read_text().splitlines()
        assert lines[0] == "# test"
        assert lines[1] == "# x  y"
        assert lines[2].split() == ["1", "3"]

    def test_unequal_columns_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_series(tmp_path / "s.dat", {"x": [1], "y": [1, 2]})

    def test_script_references_columns(self, tmp_path):
        path = write_gnuplot_script(
            tmp_path / "p.gp", "s.dat", "GB/s", "Fig 11", ["cuZC", "moZC"],
            logscale_y=True,
        )
        text = path.read_text()
        assert "using 1:2" in text and "using 1:3" in text
        assert "set logscale y" in text
