import numpy as np
import pytest

from repro.compressors.base import CompressedBuffer
from repro.compressors.registry import COMPRESSOR_NAMES, get_compressor
from repro.compressors.simple import DecimateCompressor, UniformQuantCompressor
from repro.errors import CompressionError


class TestUniformQuant:
    def test_bound_holds(self, smooth_field):
        comp = UniformQuantCompressor(abs_bound=0.005)
        dec = comp.decompress(comp.compress(smooth_field))
        err = np.abs(dec.astype(np.float64) - smooth_field.astype(np.float64))
        assert err.max() <= 0.005

    def test_ratio_above_one_for_smooth_data(self, smooth_field):
        assert UniformQuantCompressor(rel_bound=1e-3).ratio(smooth_field) > 1.5

    def test_constructor_validation(self):
        with pytest.raises(CompressionError):
            UniformQuantCompressor()


class TestDecimate:
    def test_shape_preserved(self, smooth_field):
        comp = DecimateCompressor(factor=2)
        dec = comp.decompress(comp.compress(smooth_field))
        assert dec.shape == smooth_field.shape

    def test_ratio_close_to_factor_cubed(self, smooth_field):
        comp = DecimateCompressor(factor=2)
        ratio = comp.ratio(smooth_field)
        assert 5.0 < ratio < 8.5  # ~2^3 minus header and rounding

    def test_kept_samples_exact(self, smooth_field):
        comp = DecimateCompressor(factor=2)
        dec = comp.decompress(comp.compress(smooth_field))
        assert np.allclose(dec[::2, ::2, ::2], smooth_field[::2, ::2, ::2],
                           atol=1e-6)

    def test_no_error_bound(self, rng):
        """Interpolation cannot bound errors on rough data."""
        noise = rng.normal(size=(16, 16, 16)).astype(np.float32)
        comp = DecimateCompressor(factor=2)
        dec = comp.decompress(comp.compress(noise))
        assert np.abs(dec - noise).max() > 0.5

    def test_linear_field_reconstructed_well(self):
        z, y, x = np.meshgrid(
            np.arange(12.0), np.arange(12.0), np.arange(12.0), indexing="ij"
        )
        field = (z + 2 * y + 3 * x).astype(np.float32)
        comp = DecimateCompressor(factor=2)
        dec = comp.decompress(comp.compress(field))
        interior = (slice(0, 11),) * 3  # last plane is extrapolated
        assert np.allclose(dec[interior], field[interior], atol=1e-4)

    def test_too_small_field_rejected(self):
        with pytest.raises(CompressionError):
            DecimateCompressor(factor=4).compress(np.zeros((3, 3, 3)))

    def test_invalid_factor(self):
        with pytest.raises(CompressionError):
            DecimateCompressor(factor=1)


class TestRegistry:
    def test_known_names(self):
        assert set(COMPRESSOR_NAMES) == {
            "sz", "sz2", "zfp", "uniform_quant", "decimate", "lossless",
        }

    def test_factory_kwargs_forwarded(self):
        comp = get_compressor("sz", rel_bound=1e-3)
        assert comp.rel_bound == 1e-3
        comp = get_compressor("zfp", rate=4)
        assert comp.rate == 4

    def test_unknown_rejected(self):
        with pytest.raises(CompressionError):
            get_compressor("gzip")


class TestCompressedBuffer:
    def test_bytes_roundtrip(self):
        buf = CompressedBuffer("sz", b"payload", {"shape": [2, 2, 2]})
        restored = CompressedBuffer.from_bytes(buf.to_bytes())
        assert restored.codec == "sz"
        assert restored.payload == b"payload"
        assert restored.meta == {"shape": [2, 2, 2]}

    def test_bad_magic_rejected(self):
        with pytest.raises(CompressionError):
            CompressedBuffer.from_bytes(b"NOPE" + b"\x00" * 16)

    def test_nbytes_includes_header(self):
        buf = CompressedBuffer("sz", b"x" * 100, {})
        assert buf.nbytes > 100
