"""Process executor: resolution, sizing, equality, isolation, plumbing."""

import warnings

import numpy as np
import pytest

from repro.compressors.registry import get_compressor
from repro.config.parser import format_config, parse_config_text
from repro.config.schema import CheckerConfig
from repro.datasets.registry import generate_dataset
from repro.engine.plan import build_plan, resolve_executor_name
from repro.errors import CheckerError, ConfigError
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.parallel import (
    auto_workers,
    parallel_assess_dataset,
    parallel_compare_pairs,
    parallel_stream_field,
    process_available,
    resolve_executor,
)
from repro.telemetry.tracer import Tracer

needs_process = pytest.mark.skipif(
    not process_available(), reason="platform cannot run the process executor"
)


def small_config() -> CheckerConfig:
    return CheckerConfig(
        pattern2=Pattern2Config(max_lag=3),
        pattern3=Pattern3Config(window=6),
    )


@pytest.fixture(scope="module")
def pairs():
    rng = np.random.default_rng(11)
    out = []
    for i in range(3):
        orig = rng.normal(size=(10, 12, 14)).astype(np.float32)
        dec = (orig + rng.normal(scale=1e-3, size=orig.shape)).astype(np.float32)
        out.append((f"field{i}", orig, dec))
    return out


class TestAutoWorkersExecutor:
    def test_ram_clamp_limits_process_workers(self, monkeypatch):
        from repro.parallel import executor as mod

        monkeypatch.setattr(mod, "_available_cores", lambda: 16)
        # half of 1 GiB free / (20 x 8 MiB per task) -> 3 affordable workers
        monkeypatch.setattr(mod, "_available_ram_bytes", lambda: 1 << 30)
        assert auto_workers(16, executor="process", task_nbytes=8 << 20) == 3

    def test_thread_mode_ignores_ram(self, monkeypatch):
        from repro.parallel import executor as mod

        monkeypatch.setattr(mod, "_available_cores", lambda: 4)
        monkeypatch.setattr(mod, "_available_ram_bytes", lambda: 1)
        assert auto_workers(8, executor="thread", task_nbytes=1 << 30) == 4

    def test_never_below_one(self, monkeypatch):
        from repro.parallel import executor as mod

        monkeypatch.setattr(mod, "_available_cores", lambda: 4)
        monkeypatch.setattr(mod, "_available_ram_bytes", lambda: 0)
        assert auto_workers(4, executor="process", task_nbytes=1 << 30) == 1

    def test_unknown_ram_means_no_clamp(self, monkeypatch):
        from repro.parallel import executor as mod

        monkeypatch.setattr(mod, "_available_cores", lambda: 4)
        monkeypatch.setattr(mod, "_available_ram_bytes", lambda: None)
        assert auto_workers(8, executor="process", task_nbytes=1 << 40) == 4


class TestResolveExecutor:
    def test_default_is_thread(self):
        assert resolve_executor() == "thread"

    def test_argument_beats_config(self):
        cfg = CheckerConfig(executor="thread")
        assert resolve_executor("serial", cfg) == "serial"

    def test_config_used_when_no_argument(self):
        cfg = CheckerConfig(executor="serial")
        assert resolve_executor(None, cfg) == "serial"

    def test_invalid_name_raises(self):
        with pytest.raises(CheckerError, match="executor must be"):
            resolve_executor("fibers")

    def test_auto_resolves_to_a_real_executor(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # auto must never warn
            assert resolve_executor("auto") in ("thread", "process")

    def test_auto_prefers_process_on_multicore(self, monkeypatch):
        from repro.parallel import executor as mod

        monkeypatch.setattr(mod, "process_available", lambda: True)
        monkeypatch.setattr(mod, "_available_cores", lambda: 8)
        assert resolve_executor("auto") == "process"

    def test_forced_process_falls_back_with_warning(self, monkeypatch):
        from repro.parallel import executor as mod

        monkeypatch.setattr(mod, "process_available", lambda: False)
        mod.reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            assert resolve_executor("process") == "thread"

    def test_fallback_warns_once_not_per_job(self, monkeypatch):
        # a resident session submitting many jobs on a host without
        # shared memory must see one RuntimeWarning, not job-count many
        from repro.parallel import executor as mod

        monkeypatch.setattr(mod, "process_available", lambda: False)
        mod.reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            resolve_executor("process")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any repeat warning -> failure
            for _ in range(5):
                assert resolve_executor("process") == "thread"
        mod.reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            resolve_executor("process")


@needs_process
class TestProcessComparePairs:
    def test_matches_serial_bitwise(self, pairs):
        serial = parallel_compare_pairs(pairs, config=small_config(), workers=1)
        proc = parallel_compare_pairs(
            pairs, config=small_config(), workers=2, executor="process"
        )
        assert list(proc.reports) == [name for name, _, _ in pairs]
        for name in serial.reports:
            s, p = serial.reports[name].scalars(), proc.reports[name].scalars()
            assert s == p  # bit-identical, not merely close
            assert np.array_equal(
                serial.reports[name].pattern2.autocorrelation,
                proc.reports[name].pattern2.autocorrelation,
            )

    def test_error_isolation_across_processes(self, pairs):
        bad = pairs + [("broken", pairs[0][1], pairs[0][2][:4])]
        batch = parallel_compare_pairs(
            bad, config=small_config(), workers=2,
            executor="process", on_error="record",
        )
        assert set(batch.reports) == {name for name, _, _ in pairs}
        assert "ShapeError" in batch.errors["broken"]

    def test_error_raise_crosses_process_boundary(self, pairs):
        from repro.errors import ShapeError

        bad = pairs + [("broken", pairs[0][1], pairs[0][2][:4])]
        with pytest.raises(ShapeError, match="differ"):
            parallel_compare_pairs(
                bad, config=small_config(), workers=2,
                executor="process", on_error="raise",
            )

    def test_worker_traces_merge_with_lanes(self, pairs):
        tracer = Tracer()
        parallel_compare_pairs(
            pairs, config=small_config(), workers=2,
            executor="process", tracer=tracer,
        )
        fields = [sp for sp in tracer.spans if sp.category == "field"]
        assert len(fields) == len(pairs)
        assert all(sp.track >= 1 for sp in fields)
        assert any("shm_bytes" in sp.attrs for sp in tracer.spans)
        assert any(sp.category == "kernel" for sp in tracer.spans)
        roots = [sp for sp in tracer.spans if sp.category == "batch"]
        assert roots and roots[0].attrs["executor"] == "process"


class _LambdaCompressor:
    """Deliberately unpicklable: refuses to serialise like a
    closure-bound codec would."""

    name = "lambda_quant"

    def compress(self, data):
        return data.copy()  # ndarray doubles as the "buffer" (has .nbytes)

    def decompress(self, buf):
        return buf

    def __getstate__(self):
        raise TypeError("cannot pickle closure-bound compressor")


@needs_process
class TestProcessAssessDataset:
    def test_matches_serial_bitwise(self):
        dataset = generate_dataset("hurricane", scale=0.12, n_fields=3)
        compressor = get_compressor("uniform_quant", rel_bound=1e-3)
        serial = parallel_assess_dataset(
            dataset, compressor, config=small_config(), workers=1
        )
        proc = parallel_assess_dataset(
            dataset, compressor, config=small_config(),
            workers=2, executor="process",
        )
        assert list(proc.reports) == list(serial.reports)
        for name in serial.reports:
            s, p = serial.reports[name].scalars(), proc.reports[name].scalars()
            assert s.keys() == p.keys()
            for key in s:
                if key.endswith("_throughput"):
                    continue  # wall-clock of this run, not a metric
                assert s[key] == p[key], key

    def test_unpicklable_compressor_falls_back_to_threads(self):
        from repro.parallel.executor import reset_fallback_warnings

        reset_fallback_warnings()
        dataset = generate_dataset("hurricane", scale=0.12, n_fields=2)
        with pytest.warns(RuntimeWarning, match="does not pickle"):
            batch = parallel_assess_dataset(
                dataset, _LambdaCompressor(), config=small_config(),
                workers=2, executor="process",
            )
        assert len(batch.reports) == 2


@needs_process
class TestProcessStreamField:
    def test_slabs_match_serial_bitwise(self):
        rng = np.random.default_rng(7)
        orig = rng.normal(size=(17, 12, 14)).astype(np.float32)
        dec = (orig + rng.normal(scale=1e-3, size=orig.shape)).astype(np.float32)
        span = float(orig.max() - orig.min())
        kwargs = dict(max_lag=3, ssim=Pattern3Config(window=6, dynamic_range=span))
        serial = parallel_stream_field(
            orig, dec, workers=3, executor="serial", **kwargs
        )
        proc = parallel_stream_field(
            orig, dec, workers=3, executor="process", **kwargs
        )
        assert serial.ssim == proc.ssim
        assert serial.pattern1.psnr == proc.pattern1.psnr
        assert np.array_equal(serial.autocorrelation, proc.autocorrelation)


class TestExecutorPlumbing:
    def test_config_validates_executor(self):
        with pytest.raises(ConfigError, match="executor must be"):
            CheckerConfig(executor="fibers").validate()

    def test_config_round_trips_executor(self):
        cfg = CheckerConfig(executor="process")
        text = format_config(cfg)
        assert "executor = process" in text
        assert parse_config_text(text) == cfg

    def test_default_config_omits_executor_line(self):
        assert "executor" not in format_config(CheckerConfig())

    def test_plan_carries_executor(self):
        plan = build_plan(CheckerConfig(executor="serial"))
        assert plan.executor == "serial"
        assert "executor: serial" in plan.explain()

    def test_plan_defaults_to_auto(self):
        plan = build_plan(CheckerConfig())
        assert plan.executor == "auto"
        assert "executor: auto" in plan.explain()

    def test_resolve_executor_name_precedence(self):
        cfg = CheckerConfig(executor="thread")
        assert resolve_executor_name(cfg) == "thread"
        assert resolve_executor_name(cfg, "serial") == "serial"
        assert resolve_executor_name(CheckerConfig()) == "auto"

    def test_assess_dataset_routes_executor(self):
        from repro.core.batch import assess_dataset

        dataset = generate_dataset("hurricane", scale=0.12, n_fields=2)
        compressor = get_compressor("uniform_quant", rel_bound=1e-3)
        serial = assess_dataset(dataset, compressor, config=small_config())
        routed = assess_dataset(
            dataset, compressor, config=small_config(),
            executor="thread", workers=2,
        )
        assert list(routed.reports) == list(serial.reports)
        for name in serial.reports:
            s, r = serial.reports[name].scalars(), routed.reports[name].scalars()
            assert s.keys() == r.keys()
            for key in s:
                if key.endswith("_throughput"):
                    continue  # wall-clock of this run, not a metric
                assert s[key] == pytest.approx(r[key], rel=1e-12), key


@needs_process
class TestPoolLifecycle:
    def test_shutdown_pools_releases_workers_and_is_idempotent(self):
        from repro.parallel import warm_process_pool
        from repro.parallel.executor import active_pool_counts, shutdown_pools

        warm_process_pool(2)
        assert 2 in active_pool_counts()
        shutdown_pools(wait=True)
        assert active_pool_counts() == ()
        shutdown_pools(wait=True)  # second call is a no-op

    def test_pools_rebuild_lazily_after_shutdown(self, pairs):
        from repro.parallel.executor import active_pool_counts, shutdown_pools

        shutdown_pools(wait=True)
        batch = parallel_compare_pairs(
            pairs, config=small_config(), workers=2, executor="process"
        )
        assert len(batch.reports) == len(pairs)
        shutdown_pools(wait=True)
        assert active_pool_counts() == ()
