import numpy as np
import pytest

from repro.analysis.comparison import compare_codecs
from repro.compressors.simple import DecimateCompressor
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.config.schema import CheckerConfig
from repro.core.acceptance import AcceptanceCriteria
from repro.errors import CheckerError, ShapeError
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.viz.slicemap import svg_error_map, svg_heatmap


@pytest.fixture(scope="module")
def comparison(smooth_field):
    config = CheckerConfig(
        pattern2=Pattern2Config(max_lag=3), pattern3=Pattern3Config(window=6)
    )
    return compare_codecs(
        smooth_field,
        {
            "sz@1e-3": SZCompressor(rel_bound=1e-3),
            "zfp@8": ZFPCompressor(rate=8),
            "decimate": DecimateCompressor(factor=2),
        },
        config=config,
        criteria=AcceptanceCriteria.lenient(),
        field_label="smooth",
    )


class TestCompareCodecs:
    def test_all_entries_present(self, comparison):
        assert [e.label for e in comparison.entries] == [
            "sz@1e-3", "zfp@8", "decimate",
        ]

    def test_sz_acceptable_decimate_not(self, comparison):
        assert comparison.entry("sz@1e-3").acceptable
        assert not comparison.entry("decimate").acceptable

    def test_best_ratio_excludes_unacceptable(self, comparison):
        best = comparison.best_ratio()
        assert best is not None
        assert best.acceptable
        # decimation has a great ratio but fails quality; it must not win
        assert best.label != "decimate"

    def test_best_rate_distortion_is_sz(self, comparison):
        assert comparison.best_rate_distortion().label == "sz@1e-3"

    def test_whitest_errors_is_a_quantiser(self, comparison):
        assert comparison.whitest_errors().label in ("sz@1e-3",)

    def test_table_rows(self, comparison):
        rows = comparison.table_rows()
        assert len(rows) == 3
        assert {"codec", "ratio", "psnr[dB]", "ssim", "whiteness",
                "acceptable"} <= set(rows[0])

    def test_unknown_label(self, comparison):
        with pytest.raises(CheckerError):
            comparison.entry("gzip")

    def test_empty_codecs_rejected(self, smooth_field):
        with pytest.raises(CheckerError):
            compare_codecs(smooth_field, {})


class TestSliceHeatmaps:
    def test_heatmap_structure(self, smooth_field):
        svg = svg_heatmap(smooth_field[0], label="slice 0")
        assert svg.startswith("<svg")
        assert svg.count("<rect") >= 16
        assert "slice 0" in svg

    def test_downsampling_bounds_cell_count(self, rng):
        big = rng.normal(size=(400, 400))
        svg = svg_heatmap(big, max_cells=32)
        assert svg.count("<rect") <= 33 * 33

    def test_error_map_diverging(self, smooth_field):
        dec = smooth_field + np.float32(0.05)
        svg = svg_error_map(smooth_field[0], dec[0])
        assert "signed error" in svg

    def test_constant_plane(self):
        svg = svg_heatmap(np.full((8, 8), 3.0))
        assert svg.count("<rect") == 64

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            svg_heatmap(np.zeros((2, 2, 2)))
        with pytest.raises(ShapeError):
            svg_error_map(np.zeros((4, 4)), np.zeros((4, 5)))
