"""The unified execution planner: plan building, backends, and errors."""

import pytest

from repro.config.schema import CheckerConfig
from repro.engine import (
    Backend,
    GpuSimBackend,
    build_plan,
    get_backend,
    known_backends,
    register_backend,
    resolve_backend_name,
)
from repro.errors import CheckerError, ConfigError, UnknownMetricError
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.metrics.base import (
    METRIC_REGISTRY,
    Pattern,
    canonical_metric_order,
    metrics_by_pattern,
    resolve_metrics,
    table1_row,
)

#: metrics the checker cannot produce from arrays alone (compressor
#: bookkeeping filled in by assess_compressor)
EXTERNAL = {"compression_ratio", "compression_throughput", "decompression_throughput"}

#: registry name -> report key(s) its value surfaces under
REPORT_KEYS = {
    "spectral": ("spectral_mean_rel_err", "spectral_noise_frequency"),
    "value_range": ("value_range",),
}


def small_config(**kw):
    return CheckerConfig(
        pattern2=Pattern2Config(max_lag=kw.pop("max_lag", 3)),
        pattern3=Pattern3Config(window=kw.pop("window", 6)),
        **kw,
    )


class TestPlanBuilding:
    def test_full_plan_covers_all_patterns(self):
        plan = build_plan(small_config())
        assert plan.patterns == (1, 2, 3)
        assert [s.kind for s in plan.steps] == [
            "pattern1", "pattern2", "pattern3", "auxiliary",
        ]

    def test_metrics_resolved_in_table1_order(self):
        plan = build_plan(small_config(metrics=("ssim", "psnr", "mse")))
        assert plan.metrics == ("mse", "psnr", "ssim")

    def test_subset_drops_unneeded_steps(self):
        plan = build_plan(small_config(metrics=("psnr",)))
        assert plan.patterns == (1,)
        assert len(plan.steps) == 1

    def test_disabled_pattern_moves_metric_to_unplanned(self):
        plan = build_plan(small_config(metrics=("psnr", "ssim"), patterns=(1,)))
        assert plan.patterns == (1,)
        assert "ssim" in plan.unplanned

    def test_auxiliary_off_plans_no_aux_step(self):
        plan = build_plan(small_config(auxiliary=False))
        assert all(s.kind != "auxiliary" for s in plan.steps)

    def test_pattern2_consumes_pattern1_moments(self):
        plan = build_plan(small_config())
        p2 = next(s for s in plan.steps if s.kind == "pattern2")
        assert "err_moments" in p2.consumes
        solo = build_plan(small_config(metrics=("autocorrelation",)))
        p2_solo = next(s for s in solo.steps if s.kind == "pattern2")
        assert "err_moments" not in p2_solo.consumes

    def test_validation_happens_at_build(self):
        with pytest.raises(ConfigError):
            build_plan(small_config(metrics=("psnr", "nope")))

    def test_explain_mentions_every_step_and_cost(self):
        plan = build_plan(small_config())
        text = plan.explain((20, 24, 28))
        for token in ("pattern 1", "pattern 2", "pattern 3", "auxiliary",
                      "err_moments", "modelled", "backend=fused-host"):
            assert token in text


class TestBackendResolution:
    def test_default_follows_fused_flag(self):
        assert resolve_backend_name(small_config(fused=True)) == "fused-host"
        assert resolve_backend_name(small_config(fused=False)) == "metric-oriented"

    def test_config_backend_beats_fused(self):
        cfg = small_config(fused=True, backend="gpusim")
        assert resolve_backend_name(cfg) == "gpusim"
        assert build_plan(cfg).backend == "gpusim"

    def test_argument_beats_config(self):
        cfg = small_config(backend="gpusim")
        assert resolve_backend_name(cfg, "metric-oriented") == "metric-oriented"

    def test_unknown_backend_rejected(self):
        with pytest.raises(CheckerError):
            get_backend("cuda")
        with pytest.raises(ConfigError):
            small_config(backend="cuda").validate()

    def test_known_backends(self):
        assert known_backends() == (
            "compiled-host", "fused-host", "gpusim", "metric-oriented"
        )

    def test_nameless_backend_rejected(self):
        class Anon(Backend):
            def _pattern1(self, ctx):  # pragma: no cover
                raise NotImplementedError

            _pattern2 = _pattern3 = _auxiliary = _pattern1

        with pytest.raises(ValueError):
            register_backend(Anon)


class TestRegistryBackendCompleteness:
    """Every registered metric is executable by every registered backend."""

    @pytest.mark.parametrize(
        "backend", ["fused-host", "compiled-host", "metric-oriented", "gpusim"]
    )
    @pytest.mark.parametrize("name", sorted(METRIC_REGISTRY))
    def test_single_metric_plan_executes(self, backend, name, noisy_pair):
        plan = build_plan(small_config(metrics=(name,)))
        report = plan.execute(*noisy_pair, backend=backend)
        if name in EXTERNAL:
            assert plan.steps == ()  # driver-provided, nothing to launch
            return
        produced = set(report.scalars())
        produced.update(v.name for v in report.values())
        for key in REPORT_KEYS.get(name, (name,)):
            assert key in produced, f"{backend} did not produce {name}"


class TestCrossBackendEquality:
    SUBSETS = [
        ("psnr",),
        ("ssim",),
        ("mse", "autocorrelation"),
        ("laplacian", "pearson", "entropy"),
        ("nrmse", "snr", "ssim", "divergence"),
    ]

    @pytest.mark.parametrize(
        "backend", ["fused-host", "compiled-host", "metric-oriented", "gpusim"]
    )
    def test_subset_equals_full_run(self, backend, noisy_pair):
        full = build_plan(small_config()).execute(*noisy_pair, backend=backend)
        full_scalars = full.scalars()
        for subset in self.SUBSETS:
            sub = build_plan(small_config(metrics=subset)).execute(
                *noisy_pair, backend=backend
            )
            for key, value in sub.scalars().items():
                assert value == full_scalars[key], (backend, subset, key)

    def test_backends_agree_closely(self, noisy_pair):
        plan = build_plan(small_config())
        reports = {b: plan.execute(*noisy_pair, backend=b)
                   for b in known_backends()}
        base = reports["fused-host"].scalars()
        for name, report in reports.items():
            for key, value in report.scalars().items():
                assert value == pytest.approx(base[key], rel=1e-9), (name, key)


class TestGpuSimBackend:
    def test_subset_skips_other_pattern_launches(self, noisy_pair):
        be = GpuSimBackend()
        build_plan(small_config(metrics=("psnr",))).execute(*noisy_pair, backend=be)
        assert be.launched_patterns == (1,)
        assert all(s.meta.get("pattern") == 1 for s in be.launch_log)

    def test_full_run_launches_all_patterns(self, noisy_pair):
        be = GpuSimBackend()
        build_plan(small_config()).execute(*noisy_pair, backend=be)
        assert be.launched_patterns == (1, 2, 3)
        assert all(t > 0 for t in be.modelled_seconds.values())

    def test_fresh_instance_per_named_execution(self, noisy_pair):
        plan = build_plan(small_config(metrics=("psnr",), backend="gpusim"))
        r1 = plan.execute(*noisy_pair)
        r2 = plan.execute(*noisy_pair)
        assert r1.scalars() == r2.scalars()


class TestUnknownMetricError:
    def test_suggestion_for_typo(self):
        with pytest.raises(UnknownMetricError) as exc_info:
            resolve_metrics(("psnrr",))
        err = exc_info.value
        assert err.metric == "psnrr"
        assert err.suggestion == "psnr"
        assert "did you mean 'psnr'?" in str(err)

    def test_valid_names_listed_sorted(self):
        with pytest.raises(UnknownMetricError) as exc_info:
            resolve_metrics(("zzz_not_a_metric",))
        message = str(exc_info.value)
        names = sorted(METRIC_REGISTRY)
        assert ", ".join(names) in message

    def test_caught_as_config_error(self):
        with pytest.raises(ConfigError):
            CheckerConfig(metrics=("mse", "spnr")).validate()

    def test_table1_row_unknown(self):
        with pytest.raises(UnknownMetricError):
            table1_row("nope")


class TestDeterministicOrdering:
    def test_canonical_order_matches_table1_rows(self):
        names = list(METRIC_REGISTRY)
        shuffled = names[::-1]
        assert canonical_metric_order(shuffled) == tuple(
            sorted(names, key=table1_row)
        )

    def test_metrics_by_pattern_sorted_by_row(self):
        for pattern in Pattern:
            names = metrics_by_pattern(pattern)
            assert list(names) == sorted(names, key=table1_row)

    def test_report_scalars_table1_ordered(self, noisy_pair):
        report = build_plan(small_config()).execute(*noisy_pair)
        keys = list(report.scalars())
        rows = [table1_row(k) for k in keys if k in METRIC_REGISTRY]
        assert rows == sorted(rows)
        unknown = [k for k in keys if k not in METRIC_REGISTRY]
        assert unknown == sorted(unknown)
        assert all(k in METRIC_REGISTRY for k in keys[: len(rows)])


class TestValidateOnce:
    def test_checker_validates_once(self, monkeypatch, noisy_pair):
        calls = {"n": 0}
        original = CheckerConfig.validate

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(CheckerConfig, "validate", counting)
        from repro.core.checker import CuZChecker

        checker = CuZChecker(small_config())
        built = calls["n"]
        assert built == 1
        checker.assess(*noisy_pair)
        checker.assess(*noisy_pair)
        assert calls["n"] == built

    def test_parallel_pairs_validate_once(self, monkeypatch, noisy_pair):
        calls = {"n": 0}
        original = CheckerConfig.validate

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(CheckerConfig, "validate", counting)
        from repro.parallel.executor import parallel_compare_pairs

        orig, dec = noisy_pair
        pairs = [(f"p{i}", orig, dec) for i in range(4)]
        parallel_compare_pairs(pairs, config=small_config(), workers=2)
        assert calls["n"] == 1
