"""SharedField lifecycle: zero-copy publication, ownership, leak-proofing."""

import pickle

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.errors import CheckerError
from repro.parallel import SharedField, shared_fields, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no shared memory"
)


def _segment_exists(name: str) -> bool:
    """Probe /dev/shm by name — the leak detector."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


class TestSharedFieldLifecycle:
    def test_round_trip_preserves_bytes(self):
        rng = np.random.default_rng(0)
        array = rng.normal(size=(7, 9, 11)).astype(np.float32)
        with SharedField.create(array) as handle:
            # attach through a *fresh* handle, the way a worker does
            view = SharedField(handle.name, handle.shape, handle.dtype).attach()
            assert view.dtype == array.dtype
            assert view.shape == array.shape
            assert view.tobytes() == array.tobytes()

    def test_attached_view_is_read_only(self):
        with SharedField.create(np.zeros((2, 2, 2), np.float32)) as handle:
            view = handle.attach()
            with pytest.raises(ValueError):
                view[0, 0, 0] = 1.0

    def test_create_copies_noncontiguous_input(self):
        array = np.arange(60, dtype=np.float64).reshape(3, 4, 5)[:, ::2]
        with SharedField.create(array) as handle:
            assert handle.attach().tobytes() == np.ascontiguousarray(array).tobytes()

    def test_handle_pickles_without_array_data(self):
        array = np.zeros((64, 64, 64), np.float32)  # 1 MiB of payload
        with SharedField.create(array) as handle:
            blob = pickle.dumps(handle)
            assert len(blob) < 256  # name/shape/dtype only, never bytes
            clone = pickle.loads(blob)
            assert clone.name == handle.name
            assert clone.shape == handle.shape
            assert clone.dtype == handle.dtype
            assert clone.nbytes == array.nbytes

    def test_unlink_is_owner_only(self):
        with SharedField.create(np.ones(4, np.float32)) as handle:
            attacher = SharedField(handle.name, handle.shape, handle.dtype)
            attacher.attach()
            with pytest.raises(CheckerError):
                attacher.unlink()
            attacher.close()

    def test_destroy_is_idempotent(self):
        handle = SharedField.create(np.ones(4, np.float32))
        handle.destroy()
        handle.destroy()  # already gone — not an error
        assert not _segment_exists(handle.name)


class TestSharedFieldsContext:
    def test_publishes_and_unlinks_all(self):
        arrays = [np.full((3, 3, 3), i, np.float32) for i in range(3)]
        with shared_fields(arrays) as handles:
            names = [h.name for h in handles]
            for array, handle in zip(arrays, handles):
                assert handle.attach().tobytes() == array.tobytes()
            assert all(_segment_exists(n) for n in names)
        assert not any(_segment_exists(n) for n in names)

    def test_no_leak_after_crash(self):
        """A failure mid-batch (worker crash, interrupt) must still unlink."""
        names = []
        with pytest.raises(RuntimeError):
            with shared_fields([np.zeros((4, 4), np.float32)]) as handles:
                names = [h.name for h in handles]
                raise RuntimeError("worker died")
        assert names and not any(_segment_exists(n) for n in names)
