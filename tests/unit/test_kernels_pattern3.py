import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels.pattern3 import (
    LANES,
    YROWS,
    Pattern3Config,
    execute_pattern3,
    plan_pattern3,
)
from repro.metrics.ssim import SsimConfig, ssim3d


class TestPattern3Config:
    def test_paper_defaults(self):
        cfg = Pattern3Config()
        assert cfg.window == 8
        assert cfg.step == 1
        assert cfg.xnum == LANES - 8 + 1 == 25
        assert cfg.ynum == YROWS - 8 + 1 == 5

    def test_smem_formula(self):
        cfg = Pattern3Config()
        assert cfg.smem_per_block == 25 * 5 * 8 * 5 * 4 == 20000

    def test_window_exceeding_warp_rejected(self):
        with pytest.raises(ShapeError):
            Pattern3Config(window=33).validate((40, 40, 40))

    def test_window_exceeding_rows_rejected(self):
        with pytest.raises(ShapeError):
            Pattern3Config(window=13).validate((40, 40, 40))


class TestPlanPattern3:
    def test_table2_resources(self):
        """Paper Table II: 11k Regs/TB, ~16KB SMem/TB for pattern 3."""
        stats = plan_pattern3((100, 500, 500))
        assert stats.regs_per_block == 11136  # "11k"
        assert 15_000 <= stats.smem_per_block <= 21_000  # "16KB"

    def test_iters_trend_matches_paper(self):
        """Table II: NYX (8.7k) > SCALE (3.4k) > Miranda (2.9k) >
        Hurricane (1.8k)."""
        hur = plan_pattern3((100, 500, 500)).iters_per_thread
        nyx = plan_pattern3((512, 512, 512)).iters_per_thread
        scale = plan_pattern3((98, 1200, 1200)).iters_per_thread
        mira = plan_pattern3((256, 384, 384)).iters_per_thread
        assert nyx > scale > mira > hur

    def test_chain_length_is_z_walk(self):
        stats = plan_pattern3((512, 512, 512))
        assert stats.meta["chain_length"] == stats.iters_per_thread

    def test_fifo_reads_each_slice_once(self):
        """The FIFO's defining property: global traffic is independent of
        the window size (one read per staged element)."""
        with_fifo = plan_pattern3((64, 64, 64), fifo=True)
        without = plan_pattern3((64, 64, 64), fifo=False)
        assert without.global_read_bytes == pytest.approx(
            8 * with_fifo.global_read_bytes, rel=1e-12
        )

    def test_nofifo_recompute_overhead(self):
        with_fifo = plan_pattern3((64, 64, 64), fifo=True)
        without = plan_pattern3((64, 64, 64), fifo=False)
        assert without.flops > with_fifo.flops
        # but far below the 8x a naive model would charge (the paper
        # measures only ~1.5x end-to-end)
        assert without.flops < 2.5 * with_fifo.flops

    def test_step_reduces_window_count(self):
        dense = plan_pattern3((64, 64, 64), Pattern3Config(window=8, step=1))
        strided = plan_pattern3((64, 64, 64), Pattern3Config(window=8, step=2))
        assert strided.meta["n_windows"] < dense.meta["n_windows"]


class TestExecutePattern3:
    def test_matches_reference(self, banded_pair):
        orig, dec = banded_pair
        result, _ = execute_pattern3(orig, dec, Pattern3Config(window=8, step=1))
        ref = ssim3d(orig, dec, SsimConfig(window=8, step=1))
        assert result.ssim == pytest.approx(ref.ssim, rel=1e-12)
        assert result.n_windows == ref.n_windows
        assert result.min_window_ssim == pytest.approx(ref.min_window_ssim, rel=1e-10)
        assert result.max_window_ssim == pytest.approx(ref.max_window_ssim, rel=1e-10)

    @pytest.mark.parametrize("window,step", [(4, 1), (6, 2), (8, 3), (5, 5)])
    def test_window_step_combinations(self, noisy_pair, window, step):
        orig, dec = noisy_pair
        result, _ = execute_pattern3(
            orig, dec, Pattern3Config(window=window, step=step)
        )
        ref = ssim3d(orig, dec, SsimConfig(window=window, step=step))
        assert result.ssim == pytest.approx(ref.ssim, rel=1e-12)
        assert result.n_windows == ref.n_windows

    def test_identical_inputs_score_one(self, smooth_field):
        result, _ = execute_pattern3(
            smooth_field, smooth_field, Pattern3Config(window=6)
        )
        assert result.ssim == pytest.approx(1.0)

    def test_explicit_dynamic_range(self, noisy_pair):
        orig, dec = noisy_pair
        result, _ = execute_pattern3(
            orig, dec, Pattern3Config(window=6, dynamic_range=100.0)
        )
        ref = ssim3d(orig, dec, SsimConfig(window=6, dynamic_range=100.0))
        assert result.ssim == pytest.approx(ref.ssim, rel=1e-12)

    def test_window_larger_than_z_raises(self, rng):
        orig = rng.normal(size=(4, 20, 20)).astype(np.float32)
        with pytest.raises(ShapeError):
            execute_pattern3(orig, orig, Pattern3Config(window=8))

    def test_as_dict(self, noisy_pair):
        result, _ = execute_pattern3(*noisy_pair, Pattern3Config(window=6))
        assert set(result.as_dict()) == {"ssim"}
