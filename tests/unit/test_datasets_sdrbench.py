import numpy as np
import pytest

from repro.datasets.registry import PAPER_SHAPES
from repro.datasets.sdrbench import (
    SDRBENCH_ENV,
    load_field,
    locate_field_file,
)
from repro.errors import DataIOError
from repro.io.raw import write_raw


@pytest.fixture()
def fake_sdrbench(tmp_path, monkeypatch):
    """A directory shaped like a real SDRBench download.

    The Hurricane catalogue shape is patched down so the fixture writes
    kilobytes instead of the real 100 MB per field.
    """
    small_shape = (10, 20, 20)
    monkeypatch.setitem(PAPER_SHAPES, "hurricane", small_shape)
    root = tmp_path / "sdrbench"
    hur = root / "hurricane"
    hur.mkdir(parents=True)
    rng = np.random.default_rng(0)
    data = rng.normal(size=small_shape).astype(np.float32)
    write_raw(hur / "Uf48.f32", data)
    monkeypatch.setenv(SDRBENCH_ENV, str(root))
    return root, data


class TestLocate:
    def test_found_via_env(self, fake_sdrbench):
        root, _ = fake_sdrbench
        path = locate_field_file("hurricane", "Uf48")
        assert path is not None
        assert path.name == "Uf48.f32"

    def test_found_via_explicit_root(self, fake_sdrbench, monkeypatch):
        root, _ = fake_sdrbench
        monkeypatch.delenv(SDRBENCH_ENV)
        assert locate_field_file("hurricane", "Uf48", root=root) is not None

    def test_missing_returns_none(self, fake_sdrbench):
        assert locate_field_file("hurricane", "Vf48") is None


class TestLoadField:
    def test_real_file_preferred(self, fake_sdrbench):
        _, data = fake_sdrbench
        src = load_field("hurricane", "Uf48")
        assert src.source == "sdrbench"
        assert np.array_equal(src.field.data, data)

    def test_fallback_to_synthetic(self, fake_sdrbench):
        src = load_field("hurricane", "Vf48")
        assert src.source == "synthetic"
        assert src.field.shape == PAPER_SHAPES["hurricane"]

    def test_require_real_raises_when_absent(self, fake_sdrbench):
        with pytest.raises(DataIOError):
            load_field("hurricane", "Vf48", require_real=True)

    def test_scaled_requests_synthesise(self, fake_sdrbench):
        src = load_field("hurricane", "Uf48", scale=0.1)
        assert src.source == "synthetic"
        assert src.field.shape != PAPER_SHAPES["hurricane"]

    def test_require_real_incompatible_with_scale(self, fake_sdrbench):
        with pytest.raises(DataIOError):
            load_field("hurricane", "Uf48", scale=0.5, require_real=True)

    def test_truncated_real_file_detected(self, fake_sdrbench):
        root, _ = fake_sdrbench
        path = root / "hurricane" / "Uf48.f32"
        path.write_bytes(path.read_bytes()[:-100])
        with pytest.raises(DataIOError):
            load_field("hurricane", "Uf48")

    def test_unknown_field(self, fake_sdrbench):
        with pytest.raises(DataIOError):
            load_field("hurricane", "nope")
