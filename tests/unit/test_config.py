import pytest

from repro.config.defaults import PAPER_EVALUATION_CONFIG, default_config
from repro.config.parser import load_config, parse_config_text
from repro.config.schema import CheckerConfig
from repro.errors import ConfigError


class TestSchema:
    def test_default_validates(self):
        default_config().validate()

    def test_paper_config_matches_section_iv(self):
        cfg = PAPER_EVALUATION_CONFIG
        assert cfg.pattern2.max_lag == 10
        assert cfg.pattern2.orders == (1, 2)
        assert cfg.pattern3.window == 8
        assert cfg.pattern3.step == 1
        assert cfg.device == "V100"
        assert cfg.patterns == (1, 2, 3)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigError):
            CheckerConfig(metrics=("mse", "nope")).validate()

    def test_bad_pattern_rejected(self):
        with pytest.raises(ConfigError):
            CheckerConfig(patterns=(1, 4)).validate()

    def test_bad_device_rejected(self):
        with pytest.raises(ConfigError):
            CheckerConfig(device="H100").validate()

    def test_with_patterns(self):
        cfg = default_config().with_patterns(3)
        assert cfg.patterns == (3,)
        assert cfg.pattern3 == default_config().pattern3

    def test_metric_names_expansion(self):
        assert len(default_config().metric_names) >= 20
        cfg = CheckerConfig(metrics=("mse", "ssim"))
        assert cfg.metric_names == ("mse", "ssim")


class TestParser:
    GOOD = """
    [GLOBAL]
    metrics = all
    patterns = 1, 3
    device = A100

    [PATTERN1]
    pdf_bins = 512

    [PATTERN2]
    maxAutoCorrLags = 5
    orders = 1

    [PATTERN3]
    ssimWindowSize = 6
    ssimStep = 2
    """

    def test_parse_full(self):
        cfg = parse_config_text(self.GOOD)
        assert cfg.patterns == (1, 3)
        assert cfg.device == "A100"
        assert cfg.pattern1.pdf_bins == 512
        assert cfg.pattern2.max_lag == 5
        assert cfg.pattern2.orders == (1,)
        assert cfg.pattern3.window == 6
        assert cfg.pattern3.step == 2

    def test_metric_list(self):
        cfg = parse_config_text("[GLOBAL]\nmetrics = mse, psnr, ssim\n")
        assert cfg.metrics == ("mse", "psnr", "ssim")

    def test_defaults_when_empty_sections(self):
        cfg = parse_config_text("[GLOBAL]\n")
        assert cfg == default_config()

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("[PATTERN9]\nfoo = 1\n")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("[PATTERN1]\nbogus = 1\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("[PATTERN1]\npdf_bins = many\n")

    def test_malformed_ini_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("not an ini file at all [")

    def test_inline_comments_stripped(self):
        cfg = parse_config_text("[PATTERN3]\nwindow = 6 ; per side\n")
        assert cfg.pattern3.window == 6

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "zc.cfg"
        path.write_text(self.GOOD)
        assert load_config(path) == parse_config_text(self.GOOD)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_config(tmp_path / "absent.cfg")


class TestAuditWorkers:
    def test_default_is_auto(self):
        assert default_config().audit_workers == "auto"

    @pytest.mark.parametrize("value", ["auto", "serial", 1, 4])
    def test_valid_values_accepted(self, value):
        CheckerConfig(audit_workers=value).validate()

    @pytest.mark.parametrize("value", [0, -2, True, "many", ""])
    def test_invalid_values_rejected(self, value):
        with pytest.raises(ConfigError, match="audit_workers"):
            CheckerConfig(audit_workers=value).validate()

    def test_parse_count(self):
        cfg = parse_config_text("[GLOBAL]\naudit_workers = 3\n")
        assert cfg.audit_workers == 3

    def test_parse_serial(self):
        cfg = parse_config_text("[GLOBAL]\naudit_workers = Serial\n")
        assert cfg.audit_workers == "serial"

    def test_parse_garbage_rejected(self):
        with pytest.raises(ConfigError, match="audit_workers"):
            parse_config_text("[GLOBAL]\naudit_workers = faster\n")

    def test_format_roundtrip(self):
        from repro.config.parser import format_config

        cfg = CheckerConfig(audit_workers=2)
        assert "audit_workers = 2" in format_config(cfg)
        assert parse_config_text(format_config(cfg)) == cfg
        # the default stays out of the serialised form
        assert "audit_workers" not in format_config(default_config())
