import numpy as np
import pytest

from repro.compressors.lossless import LosslessCompressor
from repro.errors import CompressionError


class TestLosslessCompressor:
    def test_bit_exact_roundtrip(self, smooth_field):
        comp = LosslessCompressor()
        dec = comp.decompress(comp.compress(smooth_field))
        assert np.array_equal(dec, smooth_field)
        assert dec.dtype == smooth_field.dtype

    def test_float64_roundtrip(self, rng):
        data = rng.normal(size=(6, 7, 8))
        comp = LosslessCompressor()
        assert np.array_equal(comp.decompress(comp.compress(data)), data)

    def test_special_values_preserved(self):
        data = np.array(
            [0.0, -0.0, np.inf, -np.inf, np.nan, 1e-38, 3.14], dtype=np.float32
        )
        comp = LosslessCompressor()
        dec = comp.decompress(comp.compress(data))
        assert np.array_equal(
            dec.view(np.uint32), data.view(np.uint32)
        )  # bitwise, incl. NaN payloads and signed zero

    def test_paper_intro_ratio_claim(self, smooth_field):
        """Section I: lossless compressors get 'around 2:1 in most cases'
        on scientific floats, while error-bounded lossy gets far more."""
        from repro.compressors.sz import SZCompressor

        lossless_ratio = LosslessCompressor().ratio(smooth_field)
        lossy_ratio = SZCompressor(rel_bound=1e-2).ratio(smooth_field)
        assert 1.05 <= lossless_ratio <= 3.0
        assert lossy_ratio > 2 * lossless_ratio

    def test_shuffle_helps(self, smooth_field):
        shuffled = LosslessCompressor(shuffle=True).ratio(smooth_field)
        plain = LosslessCompressor(shuffle=False).ratio(smooth_field)
        assert shuffled > plain

    def test_random_bytes_incompressible(self, rng):
        noise = rng.random(size=(12, 12, 12)).astype(np.float32)
        assert LosslessCompressor().ratio(noise) < 1.5

    def test_level_validation(self):
        with pytest.raises(CompressionError):
            LosslessCompressor(level=0)

    def test_integer_dtype_rejected(self):
        with pytest.raises(CompressionError):
            LosslessCompressor().compress(np.zeros((2, 2), dtype=np.int32))

    def test_corrupt_payload_detected(self, smooth_field):
        comp = LosslessCompressor()
        buf = comp.compress(smooth_field)
        buf.meta["shape"] = [1, 1, 1]  # size mismatch after inflate
        with pytest.raises(CompressionError):
            comp.decompress(buf)
