import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics.spectral import amplitude_spectrum, spectral_comparison


class TestAmplitudeSpectrum:
    def test_shape_and_finiteness(self, smooth_field):
        spec = amplitude_spectrum(smooth_field, bins=16)
        assert spec.shape == (16,)
        assert np.isfinite(spec).all()
        assert (spec >= 0).all()

    def test_smooth_field_is_red(self, smooth_field):
        """Power-law fields concentrate amplitude at low frequency."""
        spec = amplitude_spectrum(smooth_field, bins=16)
        assert spec[0] > 10 * spec[-1]

    def test_white_noise_is_flat(self, rng):
        noise = rng.normal(size=(32, 32, 32))
        spec = amplitude_spectrum(noise, bins=8)
        assert spec.max() / spec.min() < 3.0

    def test_pure_tone_peaks_in_right_shell(self):
        n = 64
        x = np.arange(n)
        tone = np.sin(2 * np.pi * 16 * x / n)  # normalised frequency 0.25
        spec = amplitude_spectrum(tone, bins=10)
        assert np.argmax(spec) == 5  # shell covering |k| = 0.25

    def test_1d_2d_3d_supported(self, rng):
        for shape in ((64,), (16, 16), (8, 8, 8)):
            spec = amplitude_spectrum(rng.normal(size=shape), bins=8)
            assert spec.shape == (8,)

    def test_invalid_inputs(self):
        with pytest.raises(ShapeError):
            amplitude_spectrum(np.zeros((2, 2, 2, 2)))
        with pytest.raises(ValueError):
            amplitude_spectrum(np.zeros(8), bins=0)


class TestSpectralComparison:
    def test_identical_fields_zero_error(self, smooth_field):
        cmp = spectral_comparison(smooth_field, smooth_field.copy())
        assert cmp.mean_rel_err == 0.0
        assert cmp.max_rel_err == 0.0
        assert cmp.noise_frequency == 0.5

    def test_noise_floor_detected_at_high_frequency(self, rng):
        """White reconstruction noise corrupts the (weak) high-frequency
        tail of a steep red spectrum first."""
        from repro.datasets.synthetic import spectral_field

        field = spectral_field((24, 24, 24), slope=5.0, seed=3, std=2.0)
        noisy = field + rng.normal(scale=0.05, size=field.shape).astype(
            np.float32
        )
        cmp = spectral_comparison(field, noisy, bins=16)
        assert cmp.max_rel_err > 0.10
        assert 0.0 < cmp.noise_frequency < 0.5
        # low-frequency shells survive
        assert cmp.shell_errors[0] < 0.05

    def test_sz_preserves_more_spectrum_than_decimation(self, smooth_field):
        from repro.compressors.simple import DecimateCompressor
        from repro.compressors.sz import SZCompressor

        sz = SZCompressor(rel_bound=1e-4)
        sz_dec = sz.decompress(sz.compress(smooth_field))
        deci = DecimateCompressor(factor=2)
        deci_dec = deci.decompress(deci.compress(smooth_field))
        cmp_sz = spectral_comparison(smooth_field, sz_dec)
        cmp_deci = spectral_comparison(smooth_field, deci_dec)
        assert cmp_sz.noise_frequency >= cmp_deci.noise_frequency
        assert cmp_sz.mean_rel_err < cmp_deci.mean_rel_err

    def test_shape_mismatch(self, smooth_field):
        with pytest.raises(ShapeError):
            spectral_comparison(smooth_field, smooth_field[:-1])
