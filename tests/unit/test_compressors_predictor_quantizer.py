import numpy as np
import pytest

from repro.compressors.predictor import lorenzo_reconstruct, lorenzo_residuals
from repro.compressors.quantizer import (
    dequantize,
    prequantize,
    resolve_error_bound,
)
from repro.errors import CompressionError, ShapeError


class TestLorenzo:
    @pytest.mark.parametrize("shape", [(50,), (12, 17), (7, 9, 11)])
    def test_roundtrip_exact(self, shape, rng):
        q = rng.integers(-1000, 1000, size=shape).astype(np.int64)
        assert np.array_equal(lorenzo_reconstruct(lorenzo_residuals(q)), q)

    def test_3d_residual_formula(self, rng):
        q = rng.integers(-10, 10, size=(4, 5, 6)).astype(np.int64)
        r = lorenzo_residuals(q)
        qp = np.pad(q, ((1, 0), (1, 0), (1, 0)))
        i, j, k = 2, 3, 4  # interior point, padded coords
        pred = (
            qp[i - 1, j, k] + qp[i, j - 1, k] + qp[i, j, k - 1]
            - qp[i - 1, j - 1, k] - qp[i - 1, j, k - 1] - qp[i, j - 1, k - 1]
            + qp[i - 1, j - 1, k - 1]
        )
        assert r[i - 1, j - 1, k - 1] == q[i - 1, j - 1, k - 1] - pred

    def test_smooth_data_gives_small_residuals(self):
        z = np.arange(20)[:, None, None]
        y = np.arange(20)[None, :, None]
        x = np.arange(20)[None, None, :]
        q = (3 * z + 2 * y + x).astype(np.int64)  # trilinear lattice
        r = lorenzo_residuals(q)
        # Lorenzo predicts linear fields exactly away from the boundary
        assert np.all(r[1:, 1:, 1:] == 0)

    def test_float_input_rejected(self):
        with pytest.raises(TypeError):
            lorenzo_residuals(np.zeros((3, 3, 3)))

    def test_4d_rejected(self):
        with pytest.raises(ShapeError):
            lorenzo_residuals(np.zeros((2, 2, 2, 2), dtype=np.int64))


class TestQuantizer:
    def test_bound_holds(self, rng):
        data = rng.normal(size=1000) * 100
        eb = 0.01
        q = prequantize(data, eb)
        rec = np.asarray(q, dtype=np.float64) * 2 * eb
        assert np.abs(rec - data).max() <= eb * (1 + 1e-12)

    def test_dequantize_dtype(self):
        out = dequantize(np.array([1, 2], dtype=np.int64), 0.5)
        assert out.dtype == np.float32

    def test_invalid_bound(self):
        with pytest.raises(CompressionError):
            prequantize(np.zeros(4), 0.0)

    def test_nonfinite_rejected(self):
        with pytest.raises(CompressionError):
            prequantize(np.array([1.0, np.nan]), 0.1)

    def test_overflow_guard(self):
        with pytest.raises(CompressionError):
            prequantize(np.array([1e30]), 1e-10)


class TestResolveErrorBound:
    def test_abs_passthrough(self):
        assert resolve_error_bound(np.zeros(4), abs_bound=0.5) == 0.5

    def test_rel_scales_with_range(self):
        data = np.array([0.0, 10.0])
        assert resolve_error_bound(data, rel_bound=1e-3) == pytest.approx(0.01)

    def test_constant_field_rel(self):
        data = np.full(8, 3.0)
        assert resolve_error_bound(data, rel_bound=1e-3) == pytest.approx(1e-3)

    def test_both_or_neither_rejected(self):
        with pytest.raises(CompressionError):
            resolve_error_bound(np.zeros(4))
        with pytest.raises(CompressionError):
            resolve_error_bound(np.zeros(4), abs_bound=0.1, rel_bound=0.1)

    def test_nonpositive_rejected(self):
        with pytest.raises(CompressionError):
            resolve_error_bound(np.zeros(4), abs_bound=-1.0)
        with pytest.raises(CompressionError):
            resolve_error_bound(np.zeros(4), rel_bound=0.0)
