"""Unit coverage of the tiled execution layer: slab resolution, the
shared TileAccumulator, the scratch pool, config plumbing, plan
explanation, telemetry memory attributes, and worker auto-detection."""

import os
import tracemalloc
from dataclasses import replace

import numpy as np
import pytest

from repro.config.defaults import default_config
from repro.config.parser import format_config, parse_config_text
from repro.config.schema import CheckerConfig
from repro.core.compare import compare_data
from repro.core.workspace import MetricWorkspace, ScratchPool, default_scratch_pool
from repro.engine.plan import build_plan
from repro.engine.tiling import (
    AUTO_MIN_BYTES,
    TileAccumulator,
    TiledAssessment,
    resolve_slab,
)
from repro.errors import ConfigError
from repro.metrics.autocorrelation import spatial_autocorrelation
from repro.parallel.executor import auto_workers
from repro.telemetry.export import kernel_summary
from repro.telemetry.tracer import Tracer


def _pair(shape=(12, 13, 14), seed=9):
    rng = np.random.default_rng(seed)
    orig = rng.normal(2.0, 1.0, size=shape).astype(np.float32)
    dec = (orig + rng.normal(scale=0.02, size=shape)).astype(np.float32)
    return orig, dec


class TestResolveSlab:
    BIG = (256, 256, 256)  # 64 MiB at float32

    def test_off_is_whole_array(self):
        assert resolve_slab(self.BIG, "off") is None

    def test_non_3d_is_whole_array(self):
        assert resolve_slab((4096, 4096), "auto") is None
        assert resolve_slab((2, 3, 4, 5), 8) is None

    def test_explicit_int_always_tiles(self):
        assert resolve_slab((6, 7, 8), 4) == 4
        # clamped to nz, never beyond
        assert resolve_slab((6, 7, 8), 100) == 6

    def test_bool_and_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            resolve_slab(self.BIG, True)
        with pytest.raises(ConfigError):
            resolve_slab(self.BIG, 0)
        with pytest.raises(ConfigError):
            resolve_slab(self.BIG, "sometimes")

    def test_auto_small_field_stays_whole(self):
        shape = (16, 32, 32)
        assert shape[0] * shape[1] * shape[2] * 4 < AUTO_MIN_BYTES
        assert resolve_slab(shape, "auto") is None

    def test_auto_large_field_tiles(self):
        slab = resolve_slab(self.BIG, "auto")
        assert slab is not None
        assert 4 <= slab <= 64
        assert slab < self.BIG[0]

    def test_auto_shallow_field_stays_whole(self):
        # plenty of bytes but too few z planes for a sub-nz slab
        assert resolve_slab((4, 2048, 2048), "auto") is None


class TestTileAccumulator:
    def test_moments_match_workspace(self):
        orig, dec = _pair()
        o64 = orig.astype(np.float64)
        d64 = dec.astype(np.float64)
        acc = TileAccumulator(orig.shape[1:], pwr_floor=0.0)
        for z0 in range(0, orig.shape[0], 5):
            z1 = min(z0 + 5, orig.shape[0])
            acc.add_block(o64[z0:z1], d64[z0:z1], d64[z0:z1] - o64[z0:z1])
        ws = MetricWorkspace(orig, dec)
        err = ws.err
        assert acc.n == err.size
        assert acc.min_e == err.min()
        assert acc.max_e == err.max()
        assert acc.sum_e == pytest.approx(err.sum(), rel=1e-12)
        assert acc.sum_sq_e == pytest.approx((err * err).sum(), rel=1e-12)
        assert acc.mean_e == pytest.approx(err.mean(), rel=1e-12)
        assert acc.var_e == pytest.approx(err.var(), rel=1e-10)

    @pytest.mark.parametrize("block", [1, 2, 3, 5, 12])
    def test_autocorr_matches_reference(self, block):
        orig, dec = _pair()
        err = dec.astype(np.float64) - orig.astype(np.float64)
        ref = spatial_autocorrelation(err, max_lag=4)
        acc = TileAccumulator(orig.shape[1:], max_lag=4)
        for z0 in range(0, orig.shape[0], block):
            z1 = min(z0 + block, orig.shape[0])
            o = orig[z0:z1].astype(np.float64)
            d = dec[z0:z1].astype(np.float64)
            acc.add_block(o, d, d - o)
        np.testing.assert_allclose(
            acc.finalize_autocorr(), ref, rtol=1e-7, atol=1e-9
        )

    def test_carry_bounded_by_max_lag(self):
        acc = TileAccumulator((8, 9), max_lag=3)
        block = np.ones((2, 8, 9))
        for _ in range(5):
            acc.add_block(block, block * 1.5, block * 0.5)
        assert acc._carry.shape == (3, 8, 9)

    def test_no_carry_without_lags(self):
        acc = TileAccumulator((8, 9), max_lag=0)
        assert acc._carry is None


class TestScratchPool:
    def test_reuse_identity(self):
        pool = ScratchPool()
        a = pool.get("buf", (4, 5))
        b = pool.get("buf", (4, 5))
        assert a is b
        assert pool.get("buf", (4, 6)) is not a
        assert pool.get("other", (4, 5)) is not a

    def test_nbytes_and_clear(self):
        pool = ScratchPool()
        pool.get("x", (10, 10))
        assert pool.nbytes() == 10 * 10 * 8
        pool.clear()
        assert pool.nbytes() == 0

    def test_default_pool_is_per_thread_singleton(self):
        assert default_scratch_pool() is default_scratch_pool()

    def test_tiled_run_reuses_buffers_across_assessments(self):
        orig, dec = _pair()
        pool = ScratchPool()
        config = default_config()
        t1 = TiledAssessment(orig, dec, config, 4, scratch=pool)
        t1.sweep2()
        n1 = pool.nbytes()
        t2 = TiledAssessment(orig, dec, config, 4, scratch=pool)
        t2.sweep2()
        # steady state: second assessment allocated nothing new
        assert pool.nbytes() == n1


class TestConfigTiling:
    def test_default_is_auto(self):
        assert default_config().tiling == "auto"

    def test_parse_and_format_round_trip(self):
        for raw, value in (("auto", "auto"), ("off", "off"), ("8", 8)):
            cfg = parse_config_text(f"[GLOBAL]\ntiling = {raw}\n")
            assert cfg.tiling == value
            assert parse_config_text(format_config(cfg)).tiling == value

    def test_parse_bad_value_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("[GLOBAL]\ntiling = banana\n")

    def test_validate_rejects_bad_values(self):
        for bad in (0, -3, True, "sometimes"):
            with pytest.raises(ConfigError):
                replace(CheckerConfig(), tiling=bad).validate()

    def test_explain_reports_tiling(self):
        plan = build_plan(replace(default_config(), tiling=8))
        text = plan.explain((64, 256, 256))
        assert "tiling: 8" in text
        assert "slab_nz=8" in text
        text_off = build_plan(replace(default_config(), tiling="off")).explain(
            (64, 256, 256)
        )
        assert "tiling: off" in text_off
        assert "whole-array" in text_off


class TestTiledBackendTelemetry:
    def test_spans_carry_slab_and_bytes(self):
        orig, dec = _pair()
        tracer = Tracer()
        config = replace(default_config(), tiling=4)
        compare_data(orig, dec, config=config, with_baselines=False, tracer=tracer)
        tiled_spans = [s for s in tracer.spans if "tiling_slab" in s.attrs]
        assert tiled_spans
        assert all(s.attrs["tiling_slab"] == 4 for s in tiled_spans)
        assert any(s.attrs.get("host_bytes", 0) > 0 for s in tiled_spans)

    def test_memory_attrs_nested_peaks(self):
        tracer = Tracer(trace_memory=True)
        tracemalloc.start()
        try:
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    blob = np.empty(512 * 1024)  # ~4 MB inside the child
                    blob[0] = 1.0
        finally:
            tracemalloc.stop()
        assert "mem_peak_kb" in outer.attrs and "mem_peak_kb" in inner.attrs
        assert inner.attrs["mem_peak_kb"] >= 4000
        # the parent's high-water mark includes its child's
        assert outer.attrs["mem_peak_kb"] >= inner.attrs["mem_peak_kb"]

    def test_kernel_summary_peak_column(self):
        tracer = Tracer(trace_memory=True)
        tracemalloc.start()
        try:
            with tracer.span("k1", category="kernel", bytes=1024):
                buf = np.empty(256 * 1024)
                buf[0] = 1.0
        finally:
            tracemalloc.stop()
        rows = kernel_summary(tracer.spans)
        assert rows and rows[0]["peak_MB"] >= 1.9

    def test_memory_off_by_default(self):
        tracer = Tracer()
        tracemalloc.start()
        try:
            with tracer.span("plain") as sp:
                pass
        finally:
            tracemalloc.stop()
        assert "mem_peak_kb" not in sp.attrs


class TestAutoWorkers:
    def test_single_core_means_serial(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0}, raising=False)
        assert auto_workers() == 1
        assert auto_workers(8) == 1

    def test_respects_affinity_not_machine(self, monkeypatch):
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 1, 2, 3}, raising=False
        )
        assert auto_workers() == 4
        assert auto_workers(2) == 2

    def test_falls_back_without_affinity_api(self, monkeypatch):
        def boom(pid):
            raise AttributeError("no sched_getaffinity on this platform")

        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert auto_workers() == 3
