import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics.ssim import SsimConfig, ssim3d
from repro.metrics.twod import (
    box_sums_2d,
    derivative_metrics_2d,
    gradient_magnitude_2d,
    spatial_autocorrelation_2d,
    ssim2d,
)


@pytest.fixture(scope="module")
def plane(smooth_field=None):
    from repro.datasets.synthetic import spectral_field

    return spectral_field((2, 40, 44), slope=3.0, seed=9, mean=1.0)[0]


class TestBoxSums2d:
    def test_matches_brute_force(self, rng):
        a = rng.normal(size=(10, 12))
        sums = box_sums_2d(a, 4, 2)
        for i in range(sums.shape[0]):
            for j in range(sums.shape[1]):
                y, x = i * 2, j * 2
                assert sums[i, j] == pytest.approx(a[y : y + 4, x : x + 4].sum())

    def test_requires_2d(self):
        with pytest.raises(ShapeError):
            box_sums_2d(np.zeros((4, 4, 4)), 2)


class TestSsim2d:
    def test_self_similarity(self, plane):
        assert ssim2d(plane, plane.copy()).ssim == pytest.approx(1.0)

    def test_consistent_with_3d_on_thin_volume(self, plane, rng):
        """A (w, ny, nx) volume with window w has one z-position; its 3-D
        SSIM must equal... a genuinely 3-D window.  Instead check the 2-D
        score drops with noise like the 3-D one does."""
        noisy = plane + rng.normal(scale=0.05, size=plane.shape).astype(np.float32)
        cfg = SsimConfig(window=8)
        vol_o = np.repeat(plane[None, :, :], 8, axis=0)
        vol_d = np.repeat(noisy[None, :, :], 8, axis=0)
        s2 = ssim2d(plane, noisy, cfg).ssim
        s3 = ssim3d(vol_o, vol_d, cfg).ssim
        # replicating along z makes each 3-D window's stats equal the 2-D
        # window's (variance/covariance identical), so scores agree
        assert s2 == pytest.approx(s3, rel=1e-9)

    def test_noise_monotonicity(self, plane, rng):
        small = plane + rng.normal(scale=0.01, size=plane.shape).astype(np.float32)
        big = plane + rng.normal(scale=0.3, size=plane.shape).astype(np.float32)
        assert ssim2d(plane, small).ssim > ssim2d(plane, big).ssim

    def test_requires_2d(self, plane):
        with pytest.raises(ShapeError):
            ssim2d(plane[None], plane[None])


class TestGradient2d:
    def test_linear_plane(self):
        y, x = np.meshgrid(np.arange(10.0), np.arange(12.0), indexing="ij")
        f = 2 * y + 3 * x
        assert np.allclose(gradient_magnitude_2d(f), np.hypot(2, 3))

    def test_comparison_zero_for_identical(self, plane):
        cmp = derivative_metrics_2d(plane, plane.copy())
        assert cmp.rms_diff == 0.0


class TestAutocorrelation2d:
    def test_lag_zero(self, rng):
        e = rng.normal(size=(20, 20))
        assert spatial_autocorrelation_2d(e, 3)[0] == 1.0

    def test_white_noise_near_zero(self, rng):
        e = rng.normal(size=(48, 48))
        ac = spatial_autocorrelation_2d(e, 4)
        assert np.all(np.abs(ac[1:]) < 0.06)

    def test_smooth_plane_correlated(self, plane):
        ac = spatial_autocorrelation_2d(plane.astype(np.float64), 3)
        assert ac[1] > 0.5

    def test_constant_plane(self):
        ac = spatial_autocorrelation_2d(np.ones((8, 8)), 2)
        assert np.all(ac[1:] == 0.0)

    def test_bounds(self, rng):
        with pytest.raises(ShapeError):
            spatial_autocorrelation_2d(rng.normal(size=(5, 5)), 5)
