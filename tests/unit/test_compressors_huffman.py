import numpy as np
import pytest

from repro.compressors.huffman import (
    HuffmanCode,
    huffman_decode,
    huffman_encode,
)
from repro.errors import CompressionError


class TestHuffmanRoundtrip:
    def test_skewed_distribution(self, rng):
        """SZ-like: one dominant symbol plus a light tail."""
        values = rng.choice(
            [0, 0, 0, 0, 0, 0, 1, -1, 2], size=5000
        ).astype(np.int64)
        assert np.array_equal(huffman_decode(huffman_encode(values)), values)

    def test_uniform_alphabet(self, rng):
        values = rng.integers(-50, 50, size=2000)
        assert np.array_equal(huffman_decode(huffman_encode(values)), values)

    def test_single_symbol(self):
        values = np.full(100, 42, dtype=np.int64)
        assert np.array_equal(huffman_decode(huffman_encode(values)), values)

    def test_two_symbols(self):
        values = np.array([7, -3, 7, 7, -3], dtype=np.int64)
        assert np.array_equal(huffman_decode(huffman_encode(values)), values)

    def test_empty(self):
        assert huffman_decode(huffman_encode(np.zeros(0))).size == 0

    def test_large_symbol_values(self):
        values = np.array([2**40, -(2**40), 0, 2**40], dtype=np.int64)
        assert np.array_equal(huffman_decode(huffman_encode(values)), values)

    def test_skewed_beats_uniform_rate(self, rng):
        skewed = rng.choice([0] * 95 + [1] * 5, size=10_000).astype(np.int64)
        uniform = rng.integers(0, 256, size=10_000)
        assert len(huffman_encode(skewed)) < len(huffman_encode(uniform)) / 3

    def test_compression_near_entropy(self, rng):
        """Average code length within ~10% of the Shannon bound."""
        p = np.array([0.6, 0.2, 0.1, 0.05, 0.05])
        values = rng.choice(5, size=20_000, p=p).astype(np.int64)
        blob = huffman_encode(values)
        _, counts = np.unique(values, return_counts=True)
        freq = counts / values.size
        entropy_bits = -(freq * np.log2(freq)).sum() * values.size
        header = 4 + 8 + 4 + 5 * 9 + 8
        payload_bits = (len(blob) - header) * 8
        assert payload_bits < entropy_bits * 1.15 + 64

    def test_truncated_stream_detected(self):
        values = np.arange(100, dtype=np.int64)
        blob = huffman_encode(values)
        with pytest.raises(CompressionError):
            huffman_decode(blob[: len(blob) // 2])


class TestCanonicalCodes:
    def test_prefix_free(self):
        code = HuffmanCode(
            symbols=np.array([1, 2, 3, 4], dtype=np.int64),
            lengths=np.array([1, 2, 3, 3], dtype=np.uint8),
        )
        codes = code.assign_codes()
        bitstrings = [
            format(int(c), f"0{int(l)}b")
            for c, l in zip(codes, code.lengths)
        ]
        for i, a in enumerate(bitstrings):
            for j, b in enumerate(bitstrings):
                if i != j:
                    assert not b.startswith(a)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CompressionError):
            HuffmanCode(
                symbols=np.array([1, 2], dtype=np.int64),
                lengths=np.array([1], dtype=np.uint8),
            )

    def test_kraft_inequality(self, rng):
        """Code lengths produced from any frequency table satisfy Kraft."""
        values = rng.integers(0, 30, size=3000)
        blob = huffman_encode(values)
        decoded = huffman_decode(blob)
        assert np.array_equal(decoded, values)
