import json

import pytest

from repro.gpusim.trace import trace_events, write_chrome_trace
from repro.kernels.metric_oriented import plan_mo_pattern1
from repro.kernels.pattern1 import plan_pattern1
from repro.viz.html import (
    render_report_html,
    svg_bar_chart,
    svg_line_plot,
    write_report_html,
)


@pytest.fixture(scope="module")
def report():
    from repro.compressors.sz import SZCompressor
    from repro.config.schema import CheckerConfig
    from repro.core.compare import compare_data
    from repro.datasets.synthetic import spectral_field
    from repro.kernels.pattern2 import Pattern2Config
    from repro.kernels.pattern3 import Pattern3Config

    orig = spectral_field((12, 14, 16), slope=3.0, seed=2, mean=1.0)
    comp = SZCompressor(rel_bound=1e-3)
    dec = comp.decompress(comp.compress(orig))
    config = CheckerConfig(
        pattern2=Pattern2Config(max_lag=2), pattern3=Pattern3Config(window=6)
    )
    return compare_data(orig, dec, config=config)


class TestSvgPrimitives:
    def test_line_plot_structure(self):
        svg = svg_line_plot([0, 1, 2], [1.0, 4.0, 2.0], label="pdf")
        assert svg.startswith("<svg")
        assert "polyline" in svg and "pdf" in svg

    def test_line_plot_skips_nonfinite(self):
        svg = svg_line_plot([0, 1, 2], [1.0, float("inf"), 2.0])
        assert "inf" not in svg.split("<text")[0]

    def test_line_plot_rejects_empty(self):
        with pytest.raises(ValueError):
            svg_line_plot([], [])

    def test_bar_chart_escapes_labels(self):
        svg = svg_bar_chart({"<cuZC>": 1.0})
        assert "&lt;cuZC&gt;" in svg

    def test_bar_chart_rejects_empty(self):
        with pytest.raises(ValueError):
            svg_bar_chart({})


class TestHtmlReport:
    def test_self_contained_document(self, report):
        doc = render_report_html(report, title="t<e>st")
        assert doc.startswith("<!DOCTYPE html>")
        assert "t&lt;e&gt;st" in doc
        assert "psnr" in doc
        assert doc.count("<svg") >= 2  # error PDF + autocorrelation
        assert "http" not in doc.split("xmlns")[0]  # no external assets

    def test_timing_bars_present(self, report):
        doc = render_report_html(report)
        assert "ompZC" in doc and "cuZC" in doc

    def test_write_to_disk(self, report, tmp_path):
        path = write_report_html(report, tmp_path / "r.html")
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestChromeTrace:
    def test_event_stream_structure(self):
        events = trace_events([plan_pattern1((32, 32, 32))])
        kinds = [e["ph"] for e in events]
        assert kinds[0] == "M"  # process metadata
        assert kinds.count("X") == 2  # launch + exec
        exec_event = events[-1]
        assert exec_event["dur"] > 0
        assert exec_event["args"]["bound"] in ("memory", "compute", "smem")

    def test_sequential_timestamps(self):
        plans = plan_mo_pattern1((32, 32, 32))
        events = [e for e in trace_events(plans) if e["ph"] == "X"]
        ends = [e["ts"] + e["dur"] for e in events]
        starts = [e["ts"] for e in events]
        for prev_end, next_start in zip(ends, starts[1:]):
            assert next_start >= prev_end - 1e-9

    def test_mozc_trace_shows_many_launches(self):
        events = trace_events(plan_mo_pattern1((32, 32, 32)))
        launches = [e for e in events if e["name"].startswith("launch:")]
        assert len(launches) == 10  # one per metric pipeline

    def test_json_file_valid(self, tmp_path):
        path = write_chrome_trace(
            [plan_pattern1((16, 16, 16))], tmp_path / "trace.json"
        )
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert len(payload["traceEvents"]) >= 2
