import numpy as np
import pytest

from repro.datasets.fields import Dataset, Field
from repro.datasets.registry import (
    DATASET_NAMES,
    PAPER_SHAPES,
    dataset_info,
    generate_dataset,
    generate_field,
    scaled_shape,
)
from repro.datasets.synthetic import (
    gaussian_bumps,
    layered_field,
    particle_density_field,
    spectral_field,
    turbulence_field,
)
from repro.errors import DataIOError, ShapeError


class TestPaperShapes:
    def test_section_iva_shapes(self):
        assert PAPER_SHAPES["hurricane"] == (100, 500, 500)
        assert PAPER_SHAPES["nyx"] == (512, 512, 512)
        assert PAPER_SHAPES["scale_letkf"] == (98, 1200, 1200)
        assert PAPER_SHAPES["miranda"] == (256, 384, 384)

    def test_field_counts(self):
        """13 Hurricane fields, 6 NYX, 6 Scale-LETKF, 7 Miranda."""
        assert dataset_info("hurricane").n_fields == 13
        assert dataset_info("nyx").n_fields == 6
        assert dataset_info("scale_letkf").n_fields == 6
        assert dataset_info("miranda").n_fields == 7

    def test_unknown_dataset(self):
        with pytest.raises(DataIOError):
            dataset_info("fluidsim")

    def test_scaled_shape(self):
        assert scaled_shape("nyx", 0.125) == (64, 64, 64)
        assert scaled_shape("hurricane", 0.1, min_extent=16) == (16, 50, 50)

    def test_scaled_shape_invalid(self):
        with pytest.raises(ValueError):
            scaled_shape("nyx", 0.0)


class TestGenerators:
    @pytest.mark.parametrize(
        "gen",
        [spectral_field, turbulence_field, layered_field, gaussian_bumps,
         particle_density_field],
    )
    def test_shape_dtype_finite(self, gen):
        out = gen((10, 12, 14), seed=3)
        assert out.shape == (10, 12, 14)
        assert out.dtype == np.float32
        assert np.isfinite(out).all()

    def test_deterministic(self):
        a = spectral_field((8, 8, 8), seed=5)
        b = spectral_field((8, 8, 8), seed=5)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = spectral_field((8, 8, 8), seed=5)
        b = spectral_field((8, 8, 8), seed=6)
        assert not np.array_equal(a, b)

    def test_spectral_moments(self):
        out = spectral_field((16, 16, 16), mean=10.0, std=2.0, seed=1)
        assert out.mean() == pytest.approx(10.0, abs=0.2)
        assert out.std() == pytest.approx(2.0, rel=0.1)

    def test_slope_controls_smoothness(self):
        rough = spectral_field((16, 16, 16), slope=1.0, seed=2)
        smooth = spectral_field((16, 16, 16), slope=5.0, seed=2)

        def grad_energy(f):
            return float(np.mean(np.diff(f, axis=2) ** 2) / np.var(f))

        assert grad_energy(smooth) < grad_energy(rough)

    def test_layered_field_stratified(self):
        out = layered_field((20, 8, 8), seed=0, perturbation=0.5)
        profile = out.mean(axis=(1, 2))
        assert profile[0] > profile[-1]  # decreases with height index

    def test_density_field_positive_heavy_tailed(self):
        out = particle_density_field((16, 16, 16), seed=4)
        assert (out > 0).all()
        assert out.max() / np.median(out) > 10

    def test_bumps_mostly_background(self):
        out = gaussian_bumps((16, 16, 16), n_bumps=2, seed=1)
        assert np.median(out) < 0.25 * out.max()

    def test_invalid_shape(self):
        with pytest.raises(ShapeError):
            spectral_field((1, 8, 8))


class TestGenerateField:
    def test_per_field_seeds_stable(self):
        a = generate_field("nyx", "temperature", shape=(8, 8, 8))
        b = generate_field("nyx", "temperature", shape=(8, 8, 8))
        assert np.array_equal(a.data, b.data)

    def test_fields_differ(self):
        a = generate_field("nyx", "velocity_x", shape=(8, 8, 8))
        b = generate_field("nyx", "velocity_y", shape=(8, 8, 8))
        assert not np.array_equal(a.data, b.data)

    def test_unknown_field(self):
        with pytest.raises(DataIOError):
            generate_field("nyx", "QCLOUDf48")

    def test_all_registered_fields_generate(self):
        for name in DATASET_NAMES:
            info = dataset_info(name)
            field = generate_field(name, info.field_names[0], shape=(8, 8, 8))
            assert field.data.shape == (8, 8, 8)


class TestDatasetContainers:
    def test_generate_dataset_scaled(self):
        ds = generate_dataset("miranda", scale=0.05, n_fields=2)
        assert len(ds) == 2
        assert ds[0].shape == scaled_shape("miranda", 0.05)

    def test_lookup_by_name_and_index(self):
        ds = generate_dataset("nyx", scale=0.02, n_fields=3)
        assert ds["temperature"].name == "temperature"
        assert ds[1].name == ds.field_names[1]
        with pytest.raises(KeyError):
            ds["nope"]

    def test_duplicate_field_rejected(self):
        ds = Dataset(name="d")
        ds.add(Field("a", np.zeros((2, 2, 2))))
        with pytest.raises(ValueError):
            ds.add(Field("a", np.zeros((2, 2, 2))))

    def test_field_validates_dims(self):
        with pytest.raises(ShapeError):
            Field("bad", np.zeros((4, 4)))

    def test_field_casts_to_float32(self):
        f = Field("x", np.zeros((2, 2, 2), dtype=np.int32))
        assert f.data.dtype == np.float32

    def test_field_preserves_float_precision(self):
        f = Field("x", np.zeros((2, 2, 2), dtype=np.float64))
        assert f.data.dtype == np.float64

    def test_nbytes(self):
        ds = generate_dataset("nyx", scale=0.02, n_fields=2)
        assert ds.nbytes == sum(f.nbytes for f in ds)
