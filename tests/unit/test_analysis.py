import numpy as np
import pytest

from repro.analysis.speedup import overall_speedups, speedup_table
from repro.analysis.sweep import sweep_error_bounds, sweep_ssim_windows
from repro.analysis.throughput import overall_throughputs, pattern_throughputs

SHAPES = {"hurricane": (100, 500, 500), "miranda": (256, 384, 384)}


class TestThroughput:
    def test_row_units(self):
        rows = pattern_throughputs(SHAPES, 1)
        row = rows[0]
        assert row.gbps == pytest.approx(row.bytes_per_second / 1e9)
        assert row.mbps == pytest.approx(row.bytes_per_second / 1e6)

    def test_framework_ordering_per_pattern(self):
        for pattern in (1, 2, 3):
            rows = pattern_throughputs(SHAPES, pattern)
            by = {(r.framework, r.dataset): r.bytes_per_second for r in rows}
            for ds in SHAPES:
                assert by[("cuZC", ds)] > by[("moZC", ds)] > by[("ompZC", ds)]

    def test_pattern1_fastest_pattern3_slowest(self):
        """Fig. 11: throughputs order P1 >> P2 >> P3 for every framework."""
        t1 = pattern_throughputs(SHAPES, 1)
        t2 = pattern_throughputs(SHAPES, 2)
        t3 = pattern_throughputs(SHAPES, 3)
        for r1, r2, r3 in zip(t1, t2, t3):
            assert r1.bytes_per_second > r2.bytes_per_second > r3.bytes_per_second

    def test_overall_rows(self):
        rows = overall_throughputs(SHAPES)
        assert len(rows) == 6
        assert all(r.pattern is None for r in rows)


class TestSpeedups:
    def test_overall_beats_baselines(self):
        rows = overall_speedups(SHAPES)
        for row in rows:
            if row.baseline == "ompZC":
                assert row.speedup > 20
            else:
                assert row.speedup > 1.4

    def test_pattern_table_structure(self):
        rows = speedup_table(SHAPES, 1)
        assert len(rows) == 4  # 2 baselines x 2 datasets
        assert {r.baseline for r in rows} == {"ompZC", "moZC"}


class TestSweeps:
    def test_rate_distortion_monotone(self, smooth_field):
        points = sweep_error_bounds(smooth_field, [1e-2, 1e-3, 1e-4])
        ratios = [p.metrics["ratio"] for p in points]
        psnrs = [p.metrics["psnr"] for p in points]
        assert ratios[0] > ratios[1] > ratios[2]
        assert psnrs[0] < psnrs[1] < psnrs[2]

    def test_sweep_includes_ssim(self, smooth_field):
        points = sweep_error_bounds(smooth_field, [1e-3])
        assert 0.9 < points[0].metrics["ssim"] <= 1.0

    def test_custom_compressor_factory(self, smooth_field):
        from repro.compressors.zfp import ZFPCompressor

        points = sweep_error_bounds(
            smooth_field, [4, 8], compressor_factory=lambda r: ZFPCompressor(rate=r)
        )
        assert points[0].metrics["ratio"] > points[1].metrics["ratio"]

    def test_ssim_window_sweep_cost_grows(self):
        points = sweep_ssim_windows((100, 500, 500), windows=(4, 8, 12))
        secs = [p.metrics["seconds"] for p in points]
        assert secs[0] < secs[-1]
