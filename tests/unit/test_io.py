import numpy as np
import pytest

from repro.datasets.fields import Dataset, Field
from repro.errors import DataIOError
from repro.io.bundle import load_bundle, save_bundle
from repro.io.npyio import read_array, write_array
from repro.io.raw import read_raw, write_raw


class TestRawIO:
    def test_roundtrip(self, tmp_path, smooth_field):
        path = tmp_path / "f.f32"
        write_raw(path, smooth_field)
        back = read_raw(path, smooth_field.shape)
        assert np.array_equal(back, smooth_field)

    def test_big_endian_roundtrip(self, tmp_path, smooth_field):
        path = tmp_path / "f.f32be"
        write_raw(path, smooth_field, endian="big")
        back = read_raw(path, smooth_field.shape, endian="big")
        assert np.array_equal(back, smooth_field)

    def test_float64(self, tmp_path, rng):
        data = rng.normal(size=(4, 5, 6))
        path = tmp_path / "f.f64"
        write_raw(path, data, dtype="float64")
        back = read_raw(path, data.shape, dtype="float64")
        assert np.array_equal(back, data)

    def test_size_mismatch_detected(self, tmp_path, smooth_field):
        path = tmp_path / "f.f32"
        write_raw(path, smooth_field)
        with pytest.raises(DataIOError):
            read_raw(path, (1, 2, 3))

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataIOError):
            read_raw(tmp_path / "absent.f32", (2, 2, 2))

    def test_bad_dtype(self, tmp_path):
        with pytest.raises(DataIOError):
            read_raw(tmp_path / "x", (2,), dtype="int8")

    def test_bad_endian(self, tmp_path):
        with pytest.raises(DataIOError):
            read_raw(tmp_path / "x", (2,), endian="middle")


class TestNpyIO:
    def test_npy_roundtrip(self, tmp_path, smooth_field):
        path = tmp_path / "f.npy"
        write_array(path, smooth_field)
        assert np.array_equal(read_array(path), smooth_field)

    def test_npz_single_entry(self, tmp_path, smooth_field):
        path = tmp_path / "f.npz"
        np.savez(path, data=smooth_field)
        assert np.array_equal(read_array(path), smooth_field)

    def test_npz_key_selection(self, tmp_path, smooth_field):
        path = tmp_path / "f.npz"
        np.savez(path, a=smooth_field, b=smooth_field * 2)
        assert np.array_equal(read_array(path, key="b"), smooth_field * 2)
        with pytest.raises(DataIOError):
            read_array(path)  # ambiguous
        with pytest.raises(DataIOError):
            read_array(path, key="c")

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "f.h5"
        path.write_bytes(b"")
        with pytest.raises(DataIOError):
            read_array(path)

    def test_write_requires_npy(self, tmp_path):
        with pytest.raises(DataIOError):
            write_array(tmp_path / "f.bin", np.zeros(3))


class TestBundles:
    def _dataset(self):
        ds = Dataset(name="mini", description="test")
        for i in range(3):
            ds.add(Field(f"field{i}", np.full((4, 5, 6), float(i), np.float32)))
        return ds

    def test_save_load_roundtrip(self, tmp_path):
        bundle = save_bundle(self._dataset(), tmp_path / "mini")
        loaded = load_bundle(tmp_path / "mini")
        assert loaded.name == "mini"
        assert loaded.shape == (4, 5, 6)
        assert loaded.field_names == ("field0", "field1", "field2")
        ds = loaded.load()
        assert np.array_equal(ds["field2"].data, np.full((4, 5, 6), 2.0))

    def test_load_single_field(self, tmp_path):
        save_bundle(self._dataset(), tmp_path / "mini")
        bundle = load_bundle(tmp_path / "mini")
        f = bundle.load_field("field1")
        assert float(f.data[0, 0, 0]) == 1.0
        with pytest.raises(DataIOError):
            bundle.load_field("fieldX")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DataIOError):
            load_bundle(tmp_path)

    def test_missing_field_file_detected(self, tmp_path):
        save_bundle(self._dataset(), tmp_path / "mini")
        (tmp_path / "mini" / "field1.f32").unlink()
        with pytest.raises(DataIOError):
            load_bundle(tmp_path / "mini")

    def test_mixed_shapes_rejected(self, tmp_path):
        ds = Dataset(name="bad")
        ds.add(Field("a", np.zeros((2, 2, 2))))
        ds.add(Field("b", np.zeros((3, 3, 3))))
        with pytest.raises(DataIOError):
            save_bundle(ds, tmp_path / "bad")

    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(DataIOError):
            save_bundle(Dataset(name="empty"), tmp_path / "e")
