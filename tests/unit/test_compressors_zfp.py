import numpy as np
import pytest

from repro.compressors.zfp import (
    ZFPCompressor,
    _coeff_widths,
    _fwd_axis,
    _inv_axis,
)
from repro.errors import CompressionError


class TestTransform:
    def test_lifting_reversible(self, rng):
        ints = rng.integers(-(2**24), 2**24, size=(50, 4, 4, 4)).astype(np.int64)
        fwd = ints
        for axis in (1, 2, 3):
            fwd = _fwd_axis(fwd, axis)
        inv = fwd
        for axis in (3, 2, 1):
            inv = _inv_axis(inv, axis)
        assert np.array_equal(inv, ints)

    def test_lowpass_first(self):
        block = np.full((1, 4, 4, 4), 100, dtype=np.int64)
        out = block
        for axis in (1, 2, 3):
            out = _fwd_axis(out, axis)
        # a constant block concentrates all energy in coefficient (0,0,0)
        assert out[0, 0, 0, 0] == 100
        flat = out.ravel().copy()
        flat[0] = 0
        assert np.all(flat == 0)


class TestCoeffWidths:
    def test_budget_respected(self):
        for rate in (2, 4, 8, 16):
            widths = _coeff_widths(rate)
            assert widths.sum() <= rate * 64 - 16

    def test_low_frequency_gets_more_bits(self):
        widths = _coeff_widths(8).reshape(4, 4, 4)
        assert widths[0, 0, 0] >= widths[3, 3, 3]

    def test_tiny_rate_rejected(self):
        with pytest.raises(CompressionError):
            _coeff_widths(0.25)


class TestZFPCompressor:
    def test_fixed_rate_exact_size_scaling(self, smooth_field):
        """Fixed rate: compressed size is shape-determined, data-blind."""
        comp = ZFPCompressor(rate=8)
        a = comp.compress(smooth_field)
        b = comp.compress(smooth_field * 100 + 3)
        assert a.nbytes == b.nbytes

    def test_ratio_matches_rate(self, smooth_field):
        comp = ZFPCompressor(rate=8)
        ratio = comp.ratio(smooth_field)
        # 32-bit values at ~8 bits each (+ per-block exponent, headers)
        assert 3.0 < ratio < 4.2

    def test_quality_improves_with_rate(self, smooth_field):
        def rmse(rate):
            comp = ZFPCompressor(rate=rate)
            dec = comp.decompress(comp.compress(smooth_field))
            return float(
                np.sqrt(np.mean((dec.astype(np.float64) - smooth_field) ** 2))
            )

        assert rmse(16) < rmse(8) < rmse(4)

    def test_high_rate_near_lossless(self, smooth_field):
        comp = ZFPCompressor(rate=24)
        dec = comp.decompress(comp.compress(smooth_field))
        nrmse = np.sqrt(np.mean((dec - smooth_field) ** 2)) / (
            smooth_field.max() - smooth_field.min()
        )
        assert nrmse < 1e-4

    def test_non_multiple_of_four_shapes(self, rng):
        data = rng.normal(size=(9, 10, 13)).astype(np.float32)
        comp = ZFPCompressor(rate=12)
        dec = comp.decompress(comp.compress(data))
        assert dec.shape == data.shape
        assert np.corrcoef(dec.ravel(), data.ravel())[0, 1] > 0.98

    def test_constant_field_high_rate_near_exact(self):
        data = np.full((8, 8, 8), 7.25, dtype=np.float32)
        comp = ZFPCompressor(rate=16)
        dec = comp.decompress(comp.compress(data))
        assert np.allclose(dec, data, atol=1e-5)

    def test_zero_field(self):
        data = np.zeros((8, 8, 8), dtype=np.float32)
        dec = ZFPCompressor(rate=4).decompress(ZFPCompressor(rate=4).compress(data))
        assert np.array_equal(dec, data)

    def test_no_error_bound_guarantee(self, smooth_field):
        """The paper's motivating contrast: fixed-rate mode cannot bound
        pointwise error the way SZ's abs mode does."""
        comp = ZFPCompressor(rate=2)
        dec = comp.decompress(comp.compress(smooth_field))
        err = np.abs(dec.astype(np.float64) - smooth_field.astype(np.float64))
        assert err.max() > 0.01  # visibly lossy at 2 bits/value

    def test_non_3d_rejected(self):
        with pytest.raises(CompressionError):
            ZFPCompressor(rate=8).compress(np.zeros((4, 4)))

    def test_nonfinite_rejected(self):
        data = np.zeros((4, 4, 4), dtype=np.float32)
        data[0, 0, 0] = np.inf
        with pytest.raises(CompressionError):
            ZFPCompressor(rate=8).compress(data)
