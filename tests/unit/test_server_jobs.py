"""Tests for the server job model: admission, fairness, spec execution."""

from __future__ import annotations

import base64
import io

import numpy as np
import pytest

from repro.errors import CheckerError
from repro.server.jobs import Job, JobQueue, QueueFullError, execute_job
from repro.service.session import CheckerSession


def _npy_b64(arr: np.ndarray) -> str:
    buf = io.BytesIO()
    np.save(buf, arr)
    return base64.b64encode(buf.getvalue()).decode("ascii")


@pytest.fixture()
def session():
    with CheckerSession() as s:
        yield s


class TestJob:
    def test_defaults(self):
        job = Job(spec={"dataset": "miranda"})
        assert job.status == "queued"
        assert job.id.startswith("job-")
        assert job.tenant == "default"

    def test_to_dict_shapes(self):
        job = Job(spec={}, tenant="acme")
        d = job.to_dict()
        assert d["status"] == "queued"
        assert d["tenant"] == "acme"
        assert "report" not in d
        assert "error" not in d
        assert d["progress"]["spans"] == 0

    def test_summary_never_carries_report(self, session, noisy_pair):
        orig, dec = noisy_pair
        job = Job(
            spec={
                "original_npy_b64": _npy_b64(orig),
                "decompressed_npy_b64": _npy_b64(dec),
            }
        )
        job.report = execute_job(session, job)
        assert "report" in job.to_dict()
        assert "report" not in job.summary()

    def test_progress_reads_span_feed(self, session, noisy_pair):
        orig, dec = noisy_pair
        job = Job(
            spec={
                "original_npy_b64": _npy_b64(orig),
                "decompressed_npy_b64": _npy_b64(dec),
            }
        )
        execute_job(session, job)
        prog = job.progress()
        assert prog["spans"] > 0
        assert "last_span" in prog


class TestJobQueue:
    def test_bounded_admission(self):
        q = JobQueue(max_pending=2)
        q.submit(Job(spec={}))
        q.submit(Job(spec={}))
        with pytest.raises(QueueFullError):
            q.submit(Job(spec={}))

    def test_bound_frees_up_after_dispatch(self):
        q = JobQueue(max_pending=1)
        q.submit(Job(spec={}))
        assert q.next_job() is not None
        q.submit(Job(spec={}))  # no raise

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(CheckerError):
            JobQueue(max_pending=0)

    def test_fifo_within_tenant(self):
        q = JobQueue()
        jobs = [Job(spec={"n": i}) for i in range(3)]
        for job in jobs:
            q.submit(job)
        assert [q.next_job() for _ in range(3)] == jobs

    def test_round_robin_across_tenants(self):
        q = JobQueue()
        a = [Job(spec={}, tenant="a") for _ in range(3)]
        b = [Job(spec={}, tenant="b") for _ in range(1)]
        c = [Job(spec={}, tenant="c") for _ in range(1)]
        for job in a:
            q.submit(job)
        for job in b + c:
            q.submit(job)
        # a flooding tenant gets every k-th slot, not a monopoly
        order = [q.next_job().tenant for _ in range(5)]
        assert order == ["a", "b", "c", "a", "a"]
        assert q.next_job() is None

    def test_depths_and_len(self):
        q = JobQueue()
        q.submit(Job(spec={}, tenant="a"))
        q.submit(Job(spec={}, tenant="a"))
        q.submit(Job(spec={}, tenant="b"))
        assert len(q) == 3
        assert q.depths() == {"a": 2, "b": 1}
        q.next_job()
        assert len(q) == 2


class TestExecuteJob:
    def test_npy_job_matches_direct_assess(self, session, noisy_pair):
        orig, dec = noisy_pair
        job = Job(
            spec={
                "original_npy_b64": _npy_b64(orig),
                "decompressed_npy_b64": _npy_b64(dec),
            }
        )
        report = execute_job(session, job)
        direct = session.assess(orig, dec)
        assert report.to_dict() == direct.to_dict()

    def test_path_job(self, session, tmp_path, noisy_pair):
        orig, dec = noisy_pair
        op, dp = tmp_path / "o.bin", tmp_path / "d.bin"
        op.write_bytes(orig.tobytes())
        dp.write_bytes(dec.tobytes())
        job = Job(
            spec={
                "original_path": str(op),
                "decompressed_path": str(dp),
                "shape": list(orig.shape),
            }
        )
        report = execute_job(session, job)
        assert report.to_dict() == session.assess(orig, dec).to_dict()

    def test_synthetic_job(self, session):
        job = Job(
            spec={"dataset": "miranda", "scale": 0.05, "codec": "sz",
                  "rel_bound": 1e-3}
        )
        report = execute_job(session, job)
        assert report.scalars()["psnr"] > 0

    def test_metric_override_flows_through(self, session, noisy_pair):
        orig, dec = noisy_pair
        job = Job(
            spec={
                "original_npy_b64": _npy_b64(orig),
                "decompressed_npy_b64": _npy_b64(dec),
                "metrics": "psnr,nrmse",
            }
        )
        report = execute_job(session, job)
        scalars = report.scalars()
        assert "psnr" in scalars
        assert "ssim" not in scalars

    def test_path_job_needs_both_paths(self, session):
        with pytest.raises(CheckerError, match="both"):
            execute_job(session, Job(spec={"original_path": "/x"}))

    def test_path_job_needs_3d_shape(self, session, tmp_path):
        p = tmp_path / "x.bin"
        p.write_bytes(b"\0" * 16)
        spec = {
            "original_path": str(p),
            "decompressed_path": str(p),
            "shape": [2, 2],
        }
        with pytest.raises(CheckerError, match="3-element shape"):
            execute_job(session, Job(spec=spec))

    def test_npy_job_rejects_bad_base64(self, session):
        spec = {
            "original_npy_b64": "!!!not-base64!!!",
            "decompressed_npy_b64": "!!!not-base64!!!",
        }
        with pytest.raises(CheckerError, match="invalid .npy upload"):
            execute_job(session, Job(spec=spec))

    def test_unknown_spec_rejected(self, session):
        with pytest.raises(CheckerError, match="unrecognised job spec"):
            execute_job(session, Job(spec={"bogus": True}))

    def test_audit_job(self, session, tmp_path):
        from repro.datasets.fields import Dataset, Field
        from repro.io.bundle import save_bundle_chunked

        rng = np.random.default_rng(3)
        ds = Dataset(name="tree")
        ds.add(Field("f", rng.normal(size=(6, 8, 8)).astype(np.float32)))
        save_bundle_chunked(ds, tmp_path / "tree" / "b", chunk_nz=3)

        job = Job(spec={
            "audit_root": str(tmp_path / "tree"),
            "audit_workers": "serial",
            "use_ssim": False,
        })
        report = execute_job(session, job)
        doc = report.to_dict()
        assert doc["format"] == "cuzchecker-audit-report-v1"
        assert doc["totals"]["fields"] == 1
        job.report = report
        assert job.to_dict()["report"]["totals"]["fields"] == 1
        # the job's tracer carried the per-chunk progress spans
        assert any(s.name == "chunk_read" for s in job.tracer.spans)
