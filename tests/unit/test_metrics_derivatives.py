import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics.derivatives import (
    derivative_l1,
    derivative_metrics,
    divergence,
    field_comparison,
    gradient_magnitude,
    laplacian,
    second_derivative_magnitude,
)


def linear_field(shape, a=2.0, b=-3.0, c=0.5):
    """f = a·z + b·y + c·x — known analytic derivatives everywhere."""
    nz, ny, nx = shape
    z, y, x = np.meshgrid(
        np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
    )
    return a * z + b * y + c * x


class TestGradientMagnitude:
    def test_linear_field_constant_gradient(self):
        f = linear_field((6, 7, 8))
        grad = gradient_magnitude(f)
        expected = np.sqrt(2.0**2 + 3.0**2 + 0.5**2)
        assert np.allclose(grad, expected)

    def test_interior_shape(self):
        grad = gradient_magnitude(np.zeros((5, 6, 7)))
        assert grad.shape == (3, 4, 5)

    def test_constant_field_zero_gradient(self):
        assert np.all(gradient_magnitude(np.full((4, 4, 4), 9.0)) == 0.0)

    def test_too_small_raises(self):
        with pytest.raises(ShapeError):
            gradient_magnitude(np.zeros((2, 5, 5)))

    def test_non_3d_raises(self):
        with pytest.raises(ShapeError):
            gradient_magnitude(np.zeros((5, 5)))


class TestDerivativeL1:
    def test_linear_field(self):
        f = linear_field((5, 5, 5))
        der = derivative_l1(f)
        # Eq (1): |f(+1)-f(-1)| per axis = 2*|coef|
        assert np.allclose(der, 2 * 2.0 + 2 * 3.0 + 2 * 0.5)

    def test_l1_upper_bounds_gradient(self, smooth_field):
        """Triangle inequality: L1 form >= 2 * gradient magnitude."""
        l1 = derivative_l1(smooth_field)
        grad = gradient_magnitude(smooth_field)
        assert np.all(l1 + 1e-9 >= 2 * grad)


class TestSecondDerivatives:
    def test_quadratic_field(self):
        nz, ny, nx = 6, 6, 6
        z, y, x = np.meshgrid(
            np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij", sparse=False
        )
        f = 1.5 * z**2  # d2f/dz2 = 3, others 0
        der2 = second_derivative_magnitude(f)
        assert np.allclose(der2, 3.0)
        lap = laplacian(f)
        assert np.allclose(lap, 3.0)

    def test_linear_field_zero_second_derivative(self):
        f = linear_field((5, 5, 5))
        assert np.allclose(second_derivative_magnitude(f), 0.0)
        assert np.allclose(laplacian(f), 0.0)


class TestDivergence:
    def test_linear_field_divergence(self):
        f = linear_field((5, 5, 5), a=1.0, b=2.0, c=3.0)
        assert np.allclose(divergence(f), 6.0)

    def test_sign_cancellation(self):
        f = linear_field((5, 5, 5), a=1.0, b=-1.0, c=0.0)
        assert np.allclose(divergence(f), 0.0)


class TestDerivativeMetrics:
    def test_identical_fields_zero_diff(self, smooth_field):
        cmp = derivative_metrics(smooth_field, smooth_field, order=1)
        assert cmp.rms_diff == 0.0
        assert cmp.max_diff == 0.0
        assert cmp.mean_orig == cmp.mean_dec

    def test_order_2(self, noisy_pair):
        cmp = derivative_metrics(*noisy_pair, order=2)
        assert cmp.rms_diff > 0
        assert cmp.max_diff >= cmp.rms_diff

    def test_invalid_order(self, noisy_pair):
        with pytest.raises(ValueError):
            derivative_metrics(*noisy_pair, order=3)

    def test_noise_amplification(self, rng):
        """Differentiation amplifies white noise relative to the signal —
        the phenomenon that makes derivatives a compression-quality
        indicator (paper Section III-B2).  Uses a genuinely smooth field
        (long-wavelength sine) whose per-grid-point gradients are small."""
        n = 24
        z, y, x = np.meshgrid(
            np.arange(n), np.arange(n), np.arange(n), indexing="ij"
        )
        field = np.sin(2 * np.pi * z / n) + np.cos(2 * np.pi * (y + x) / n)
        field = field.astype(np.float32)
        noise = rng.normal(scale=0.005, size=field.shape).astype(np.float32)
        cmp = derivative_metrics(field, field + noise, order=1)
        rel_field_err = 0.005 / field.std()
        rel_der_err = cmp.rms_diff / cmp.mean_orig
        assert rel_der_err > 2 * rel_field_err


class TestFieldComparison:
    def test_aggregates(self):
        a = np.array([1.0, -2.0, 3.0])
        b = np.array([1.5, -2.0, 2.0])
        cmp = field_comparison(a, b)
        assert cmp.mean_orig == pytest.approx(2.0)
        assert cmp.mean_dec == pytest.approx((1.5 + 2.0 + 2.0) / 3)
        assert cmp.max_diff == pytest.approx(1.0)
        assert cmp.rms_diff == pytest.approx(np.sqrt((0.25 + 0 + 1) / 3))
