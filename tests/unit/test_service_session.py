"""Tests for the CheckerSession warm-state service layer.

The service contract: an explicit lifecycle (open -> assess -> close),
warm results bit-identical to cold one-shot runs, observable cache
counters, and leak-free teardown (no resident pools or scratch bytes
after close).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.checker import CuZChecker
from repro.core.workspace import scratch_pool_bytes
from repro.parallel.executor import active_pool_counts
from repro.service.session import CheckerSession, SessionClosedError
from repro.telemetry.tracer import Tracer


class TestLifecycle:
    def test_open_close_states(self):
        s = CheckerSession()
        assert not s.is_open
        s.open()
        assert s.is_open
        s.close()
        assert not s.is_open

    def test_context_manager_opens_and_closes(self):
        with CheckerSession() as s:
            assert s.is_open
        assert not s.is_open

    def test_close_is_idempotent(self):
        s = CheckerSession().open()
        s.close()
        s.close()

    def test_closed_session_refuses_jobs(self, noisy_pair):
        orig, dec = noisy_pair
        s = CheckerSession().open()
        s.close()
        with pytest.raises(SessionClosedError):
            s.assess(orig, dec)

    def test_closed_session_cannot_reopen(self):
        s = CheckerSession().open()
        s.close()
        with pytest.raises(SessionClosedError):
            s.open()

    def test_assess_auto_opens_new_session(self, noisy_pair):
        orig, dec = noisy_pair
        s = CheckerSession()
        report = s.assess(orig, dec)
        assert s.is_open
        assert report.scalars()["psnr"] > 0
        s.close()

    def test_close_releases_pools_and_scratch(self, noisy_pair):
        orig, dec = noisy_pair
        with CheckerSession() as s:
            s.assess(orig, dec)
        assert active_pool_counts() == ()
        assert scratch_pool_bytes() == 0


class TestWarmEquality:
    def test_warm_assess_matches_cold_bitwise(self, noisy_pair):
        orig, dec = noisy_pair
        with CheckerSession() as s:
            warm1 = s.assess(orig, dec)
            warm2 = s.assess(orig, dec)
        cold = CuZChecker().assess(orig, dec)
        assert warm1.to_dict() == cold.to_dict()
        assert warm2.to_dict() == cold.to_dict()

    def test_warm_assess_compressor_matches_cold(self, smooth_field):
        from repro.compressors.registry import get_compressor
        from repro.core.compare import assess_compressor

        codec = get_compressor("sz", rel_bound=1e-3)
        with CheckerSession() as s:
            warm = s.assess_compressor(smooth_field, codec)
        cold = assess_compressor(smooth_field, codec)
        w, c = warm.scalars(), cold.scalars()
        assert w.keys() == c.keys()
        for key in w:
            if key.endswith("_throughput"):
                continue  # wall-clock of this run, not a metric
            assert w[key] == c[key], key

    def test_with_baselines_flows_through(self, noisy_pair):
        orig, dec = noisy_pair
        with CheckerSession(with_baselines=True) as s:
            report = s.assess(orig, dec)
        cold = CuZChecker(with_baselines=True).assess(orig, dec)
        assert report.timings  # baseline framework timings present
        assert report.to_dict() == cold.to_dict()


class TestWarmCounters:
    def test_plan_memo_hits_on_repeat_shape(self, noisy_pair):
        orig, dec = noisy_pair
        with CheckerSession() as s:
            s.assess(orig, dec)
            stats1 = s.stats()
            s.assess(orig, dec)
            stats2 = s.stats()
        assert stats1["plan_cache_misses"] == 1
        assert stats1["plan_cache_hits"] == 0
        assert stats2["plan_cache_hits"] == 1
        assert stats2["plan_cache_misses"] == 1  # no new build

    def test_checker_cache_reuses_default(self, noisy_pair):
        orig, dec = noisy_pair
        with CheckerSession() as s:
            c1 = s.checker_for()
            s.assess(orig, dec)
            c2 = s.checker_for()
            assert c1 is c2
            assert s.checker_cache_hits >= 2
            assert s.checker_cache_misses == 1

    def test_distinct_configs_get_distinct_checkers(self):
        from dataclasses import replace

        from repro.config.defaults import default_config

        with CheckerSession() as s:
            base = s.checker_for()
            other = s.checker_for(
                config=replace(default_config(), metrics=("psnr",))
            )
            assert base is not other

    def test_job_span_records_plan_cache_attr(self, noisy_pair):
        orig, dec = noisy_pair
        tracer = Tracer()
        with CheckerSession(tracer=tracer) as s:
            s.assess(orig, dec)
            s.assess(orig, dec)
        jobs = [sp for sp in tracer.spans if sp.category == "job"]
        assert len(jobs) == 2
        assert jobs[0].attrs["plan_cache"] == "miss"
        assert jobs[1].attrs["plan_cache"] == "hit"
        assert all(sp.attrs["session"] == s.session_id for sp in jobs)
        assert all("job_id" in sp.attrs for sp in jobs)

    def test_explicit_job_id_lands_on_span(self, noisy_pair):
        orig, dec = noisy_pair
        tracer = Tracer()
        with CheckerSession(tracer=tracer) as s:
            s.assess(orig, dec, name="job:x", job_id="job-42")
        sp = [sp for sp in tracer.spans if sp.category == "job"][0]
        assert sp.attrs["job_id"] == "job-42"
        assert sp.name == "job:x"


class TestBatchRouting:
    def test_assess_dataset_through_session_matches_direct(self):
        from repro.compressors.registry import get_compressor
        from repro.core.batch import assess_dataset
        from repro.datasets.registry import generate_dataset

        dataset = generate_dataset("hurricane", scale=0.1, n_fields=2)
        codec = get_compressor("sz", rel_bound=1e-3)
        direct = assess_dataset(dataset, codec, executor="serial")
        with CheckerSession() as s:
            warm = s.assess_dataset(dataset, codec, executor="serial")
        assert list(warm.reports) == list(direct.reports)
        for name in direct.reports:
            w = warm.reports[name].scalars()
            d = direct.reports[name].scalars()
            for key in d:
                if key.endswith("_throughput"):
                    continue
                assert w[key] == d[key], key

    def test_compare_pairs_through_session(self, noisy_pair):
        orig, dec = noisy_pair
        with CheckerSession() as s:
            batch = s.compare_pairs(
                [("a", orig, dec), ("b", orig, dec)], executor="serial"
            )
        assert list(batch.reports) == ["a", "b"]
        assert batch.reports["a"].to_dict() == batch.reports["b"].to_dict()

    def test_open_stream_returns_streaming_checker(self):
        from repro.core.streaming import StreamingChecker

        with CheckerSession() as s:
            stream = s.open_stream((24, 28), max_lag=4)
        assert isinstance(stream, StreamingChecker)


class TestIntrospection:
    def test_stats_keys(self):
        with CheckerSession() as s:
            stats = s.stats()
        for key in (
            "session_id",
            "state",
            "uptime_s",
            "jobs",
            "plan_cache_hits",
            "plan_cache_misses",
            "checker_cache_size",
            "dispatch_decision_cache",
            "scratch_pool_bytes",
            "process_pools",
            "calibration",
        ):
            assert key in stats, key

    def test_describe_warm_state_mentions_shape_verdict(self, noisy_pair):
        orig, dec = noisy_pair
        with CheckerSession() as s:
            s.assess(orig, dec)
            text = s.describe_warm_state(orig.shape)
            assert s.session_id in text
            assert "warm (dispatch skipped)" in text
            cold_text = s.describe_warm_state((12, 24, 24))
            assert "cold on first job" in cold_text


class TestThreadSafety:
    def test_concurrent_assess_bit_identical(self, noisy_pair):
        orig, dec = noisy_pair
        cold = CuZChecker().assess(orig, dec).to_dict()
        results: list[dict] = []
        errors: list[BaseException] = []

        with CheckerSession() as s:

            def job():
                try:
                    results.append(s.assess(orig, dec).to_dict())
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=job) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert len(results) == 4
        assert all(r == cold for r in results)

    def test_concurrent_distinct_shapes(self):
        rng = np.random.default_rng(3)
        shapes = [(12, 24, 24), (14, 24, 28), (12, 26, 24), (13, 25, 24)]
        pairs = []
        for shape in shapes:
            o = rng.normal(size=shape).astype(np.float32)
            d = (o + rng.normal(scale=1e-3, size=shape)).astype(np.float32)
            pairs.append((o, d))
        cold = [CuZChecker().assess(o, d).to_dict() for o, d in pairs]
        warm: dict[int, dict] = {}

        with CheckerSession() as s:

            def job(i):
                o, d = pairs[i]
                warm[i] = s.assess(o, d).to_dict()

            threads = [
                threading.Thread(target=job, args=(i,))
                for i in range(len(pairs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i, expected in enumerate(cold):
            assert warm[i] == expected
