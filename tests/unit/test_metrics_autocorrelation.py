import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics.autocorrelation import (
    series_autocorrelation,
    spatial_autocorrelation,
)


class TestSpatialAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        e = rng.normal(size=(12, 12, 12))
        assert spatial_autocorrelation(e, 4)[0] == 1.0

    def test_white_noise_near_zero(self, rng):
        e = rng.normal(size=(24, 24, 24))
        ac = spatial_autocorrelation(e, 5)
        assert np.all(np.abs(ac[1:]) < 0.05)

    def test_smooth_field_strongly_correlated(self, smooth_field):
        ac = spatial_autocorrelation(smooth_field.astype(np.float64), 3)
        assert ac[1] > 0.6
        # correlation decays with distance for smooth fields
        assert ac[1] >= ac[2] >= ac[3]

    def test_constant_error_returns_zeros(self):
        ac = spatial_autocorrelation(np.full((8, 8, 8), 2.0), 3)
        assert ac[0] == 1.0
        assert np.all(ac[1:] == 0.0)

    def test_alternating_pattern_negative_lag1(self):
        """A checkerboard along every axis anti-correlates at lag 1."""
        n = 12
        z, y, x = np.meshgrid(
            np.arange(n), np.arange(n), np.arange(n), indexing="ij"
        )
        e = ((z + y + x) % 2).astype(np.float64) * 2 - 1
        ac = spatial_autocorrelation(e, 2)
        assert ac[1] < -0.9
        assert ac[2] > 0.9

    def test_max_lag_bounds(self, rng):
        e = rng.normal(size=(6, 6, 6))
        with pytest.raises(ShapeError):
            spatial_autocorrelation(e, 6)
        with pytest.raises(ValueError):
            spatial_autocorrelation(e, -1)

    def test_non_3d_raises(self):
        with pytest.raises(ShapeError):
            spatial_autocorrelation(np.zeros((4, 4)), 1)

    def test_output_length(self, rng):
        e = rng.normal(size=(10, 10, 10))
        assert len(spatial_autocorrelation(e, 7)) == 8


class TestSeriesAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        assert series_autocorrelation(rng.normal(size=1000), 5)[0] == 1.0

    def test_white_noise_near_zero(self, rng):
        ac = series_autocorrelation(rng.normal(size=50_000), 5)
        assert np.all(np.abs(ac[1:]) < 0.02)

    def test_sine_wave_periodicity(self):
        t = np.arange(2000)
        e = np.sin(2 * np.pi * t / 100)
        ac = series_autocorrelation(e, 100)
        assert ac[50] < -0.9  # half period: anticorrelated
        assert ac[100] > 0.9  # full period: correlated

    def test_constant_series(self):
        ac = series_autocorrelation(np.full(100, 3.0), 4)
        assert np.all(ac[1:] == 0.0)

    def test_matches_manual_estimator(self, rng):
        e = rng.normal(size=500)
        ac = series_autocorrelation(e, 3)
        c = e - e.mean()
        manual = np.dot(c[:-2], c[2:]) / (len(e) * e.var())
        assert ac[2] == pytest.approx(manual)

    def test_lag_exceeding_length_raises(self):
        with pytest.raises(ShapeError):
            series_autocorrelation(np.zeros(5), 5)
