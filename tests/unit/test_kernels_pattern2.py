import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels.pattern2 import (
    Pattern2Config,
    execute_pattern2,
    plan_pattern2,
)
from repro.metrics.autocorrelation import spatial_autocorrelation
from repro.metrics.derivatives import derivative_metrics, divergence, laplacian


class TestPattern2Config:
    def test_defaults_match_paper(self):
        cfg = Pattern2Config()
        assert cfg.max_lag == 10
        assert cfg.orders == (1, 2)
        assert cfg.n_sweeps == 10

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            Pattern2Config(orders=(3,)).validate((20, 20, 20))

    def test_reach_exceeds_shape(self):
        with pytest.raises(ShapeError):
            Pattern2Config(max_lag=10).validate((8, 20, 20))

    def test_sweeps_cover_orders_without_lags(self):
        assert Pattern2Config(max_lag=0, orders=(1, 2)).n_sweeps == 2


class TestPlanPattern2:
    def test_table2_resources(self):
        """Paper Table II: 2.3k Regs/TB, 17KB SMem/TB for pattern 2."""
        stats = plan_pattern2((100, 500, 500))
        assert stats.regs_per_block == 2304  # "2.3k"
        assert stats.smem_per_block == 17408  # "17KB"

    def test_blocks_follow_z_axis(self):
        """Paper: 'the number of TBs in pattern 2 is decided by the
        z-axis size' (Hurricane: 100)."""
        assert plan_pattern2((100, 500, 500)).grid_blocks == 100
        assert plan_pattern2((512, 512, 512)).grid_blocks == 512

    def test_iters_trend_matches_paper(self):
        """Table II trend: SCALE >> Hurricane ≈ NYX > Miranda."""
        hur = plan_pattern2((100, 500, 500)).iters_per_thread
        nyx = plan_pattern2((512, 512, 512)).iters_per_thread
        scale = plan_pattern2((98, 1200, 1200)).iters_per_thread
        mira = plan_pattern2((256, 384, 384)).iters_per_thread
        assert scale > nyx >= hur > mira
        # the paper's ratios: 1.1k/205 ≈ 5.4; ours: 5625/1024 ≈ 5.5
        assert scale / nyx == pytest.approx(5.5, rel=0.1)

    def test_fused_single_launch(self):
        stats = plan_pattern2((40, 40, 40))
        assert stats.launches == 1
        assert stats.grid_syncs == stats.meta["sweeps"]

    def test_traffic_grows_with_lags(self):
        few = plan_pattern2((40, 40, 40), Pattern2Config(max_lag=2))
        many = plan_pattern2((40, 40, 40), Pattern2Config(max_lag=10))
        assert many.global_read_bytes > few.global_read_bytes
        assert many.flops > few.flops

    def test_derivative_fields_written(self):
        n = 40**3
        stats = plan_pattern2((40, 40, 40))
        assert stats.global_write_bytes >= 2 * 2 * n * 4


class TestExecutePattern2:
    def test_derivatives_match_reference(self, banded_pair):
        orig, dec = banded_pair
        result, _ = execute_pattern2(orig, dec, Pattern2Config(max_lag=3))
        ref1 = derivative_metrics(orig, dec, 1)
        ref2 = derivative_metrics(orig, dec, 2)
        assert result.der1.rms_diff == pytest.approx(ref1.rms_diff, rel=1e-10)
        assert result.der1.mean_orig == pytest.approx(ref1.mean_orig, rel=1e-10)
        assert result.der1.max_diff == pytest.approx(ref1.max_diff, rel=1e-10)
        assert result.der2.rms_diff == pytest.approx(ref2.rms_diff, rel=1e-10)

    def test_divergence_laplacian_match_reference(self, banded_pair):
        orig, dec = banded_pair
        result, _ = execute_pattern2(orig, dec, Pattern2Config(max_lag=1))
        o64 = orig.astype(np.float64)
        d64 = dec.astype(np.float64)
        div_diff = divergence(d64) - divergence(o64)
        lap_diff = laplacian(d64) - laplacian(o64)
        assert result.divergence.rms_diff == pytest.approx(
            float(np.sqrt(np.mean(div_diff**2))), rel=1e-10
        )
        assert result.laplacian.rms_diff == pytest.approx(
            float(np.sqrt(np.mean(lap_diff**2))), rel=1e-10
        )

    def test_autocorrelation_matches_reference(self, banded_pair):
        orig, dec = banded_pair
        result, _ = execute_pattern2(orig, dec, Pattern2Config(max_lag=6))
        e = dec.astype(np.float64) - orig.astype(np.float64)
        ref = spatial_autocorrelation(e, 6)
        assert np.allclose(result.autocorrelation, ref, atol=1e-12)

    def test_supplied_moments_reused(self, noisy_pair):
        """Cross-pattern reuse: supplying the pattern-1 error moments must
        reproduce the standalone result."""
        orig, dec = noisy_pair
        e = dec.astype(np.float64) - orig.astype(np.float64)
        standalone, _ = execute_pattern2(orig, dec, Pattern2Config(max_lag=4))
        reused, _ = execute_pattern2(
            orig,
            dec,
            Pattern2Config(max_lag=4),
            err_mean=float(e.mean()),
            err_var=float(e.var()),
        )
        assert np.allclose(
            standalone.autocorrelation, reused.autocorrelation, atol=1e-12
        )

    def test_orders_subset(self, noisy_pair):
        result, _ = execute_pattern2(
            *noisy_pair, Pattern2Config(max_lag=2, orders=(1,))
        )
        assert result.der2 is None
        assert result.laplacian is None
        assert result.der1 is not None

    def test_slab_boundaries_exact(self, rng):
        """Shapes straddling slab boundaries (z = 16) stay exact."""
        for nz in (15, 16, 17, 33):
            orig = rng.normal(size=(nz, 20, 20)).astype(np.float32)
            dec = orig + rng.normal(scale=0.01, size=orig.shape).astype(np.float32)
            result, _ = execute_pattern2(orig, dec, Pattern2Config(max_lag=2))
            ref = derivative_metrics(orig, dec, 1)
            assert result.der1.rms_diff == pytest.approx(ref.rms_diff, rel=1e-10)

    def test_as_dict(self, noisy_pair):
        result, _ = execute_pattern2(*noisy_pair, Pattern2Config(max_lag=2))
        d = result.as_dict()
        assert set(d) == {
            "derivative_order1",
            "derivative_order2",
            "divergence",
            "laplacian",
            "autocorrelation_lag1",
        }
