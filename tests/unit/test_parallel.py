"""Parallel batch execution must equal serial for any worker count."""

import numpy as np
import pytest

from repro.config.schema import CheckerConfig
from repro.core.batch import assess_dataset
from repro.core.compare import compare_data
from repro.core.streaming import StreamingChecker
from repro.datasets.registry import generate_dataset
from repro.errors import CheckerError, ShapeError
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.parallel import (
    auto_workers,
    parallel_assess_dataset,
    parallel_compare_pairs,
    parallel_stream_field,
    z_chunks,
)


def small_config():
    return CheckerConfig(
        pattern2=Pattern2Config(max_lag=3),
        pattern3=Pattern3Config(window=6),
    )


@pytest.fixture(scope="module")
def pairs():
    rng = np.random.default_rng(11)
    out = []
    for i in range(3):
        orig = rng.normal(size=(10, 12, 14)).astype(np.float32)
        dec = orig + rng.normal(scale=1e-3, size=orig.shape).astype(np.float32)
        out.append((f"f{i}", orig, dec))
    return out


class TestZChunks:
    def test_balanced_cover(self):
        assert z_chunks(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_chunks_than_slices(self):
        chunks = z_chunks(3, 8)
        assert chunks == [(0, 1), (1, 2), (2, 3)]

    @pytest.mark.parametrize("nz,k", [(1, 1), (7, 2), (24, 5), (24, 24)])
    def test_partition_properties(self, nz, k):
        chunks = z_chunks(nz, k)
        assert chunks[0][0] == 0 and chunks[-1][1] == nz
        for (a0, a1), (b0, b1) in zip(chunks, chunks[1:]):
            assert a1 == b0 and a1 > a0
        sizes = [z1 - z0 for z0, z1 in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid(self):
        with pytest.raises(ShapeError):
            z_chunks(0, 2)


class TestAutoWorkers:
    def test_clamped_to_tasks(self):
        assert auto_workers(1) == 1
        assert auto_workers(10_000) >= 1

    def test_unbounded(self):
        assert auto_workers() >= 1


class TestParallelComparePairs:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_equals_serial(self, pairs, workers):
        cfg = small_config()
        batch = parallel_compare_pairs(pairs, config=cfg, workers=workers)
        assert list(batch.reports) == [name for name, _, _ in pairs]
        for name, orig, dec in pairs:
            serial = compare_data(orig, dec, config=cfg, with_baselines=False)
            got = batch.reports[name].scalars()
            want = serial.scalars()
            assert set(got) == set(want)
            for key, val in want.items():
                assert got[key] == pytest.approx(val, rel=1e-12), key

    def test_empty_rejected(self):
        with pytest.raises(CheckerError):
            parallel_compare_pairs([])

    def test_error_isolation_records(self, pairs):
        bad = pairs + [("broken", np.zeros((4, 4, 4)), np.zeros((5, 5, 5)))]
        batch = parallel_compare_pairs(
            bad, config=small_config(), workers=2, on_error="record"
        )
        assert set(batch.reports) == {name for name, _, _ in pairs}
        assert "broken" in batch.errors
        assert "ShapeError" in batch.errors["broken"]

    def test_error_isolation_raises_by_default(self, pairs):
        bad = pairs + [("broken", np.zeros((4, 4, 4)), np.zeros((5, 5, 5)))]
        with pytest.raises(ShapeError):
            parallel_compare_pairs(bad, config=small_config(), workers=2)

    def test_invalid_on_error(self, pairs):
        with pytest.raises(CheckerError):
            parallel_compare_pairs(pairs, on_error="ignore")


class _ExplodingCompressor:
    name = "exploding"

    def compress(self, data):
        raise ValueError("boom")

    def decompress(self, blob):
        raise ValueError("boom")


class TestParallelAssessDataset:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_equals_serial(self, workers):
        from repro.compressors.registry import get_compressor

        dataset = generate_dataset("hurricane", scale=0.12, n_fields=3)
        comp = get_compressor("uniform_quant", rel_bound=1e-3)
        cfg = small_config()
        serial = assess_dataset(dataset, comp, config=cfg)
        par = parallel_assess_dataset(dataset, comp, config=cfg, workers=workers)
        assert list(par.reports) == list(serial.reports)
        for name, report in serial.reports.items():
            got = par.reports[name].scalars()
            for key, val in report.scalars().items():
                if key.endswith("_throughput"):  # wall-clock, run-dependent
                    continue
                assert got[key] == pytest.approx(val, rel=1e-12), key

    def test_failure_isolated(self):
        dataset = generate_dataset("hurricane", scale=0.12, n_fields=2)
        batch = parallel_assess_dataset(
            dataset, _ExplodingCompressor(), workers=2, on_error="record"
        )
        assert not batch.reports
        assert len(batch.errors) == 2
        assert all("ValueError" in msg for msg in batch.errors.values())


class TestParallelStreamField:
    @pytest.fixture(scope="class")
    def field_pair(self):
        rng = np.random.default_rng(5)
        orig = np.cumsum(
            rng.normal(size=(18, 16, 20)), axis=0
        ).astype(np.float32)
        dec = orig + rng.normal(scale=1e-2, size=orig.shape).astype(np.float32)
        return orig, dec

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_equals_streaming_checker(self, field_pair, workers):
        orig, dec = field_pair
        L = float(orig.max() - orig.min())
        ssim_cfg = Pattern3Config(window=6, dynamic_range=L)
        checker = StreamingChecker(
            orig.shape[1:], max_lag=4, ssim=ssim_cfg
        )
        checker.update(orig, dec)
        ref = checker.finalize()
        got = parallel_stream_field(
            orig, dec, max_lag=4, ssim=ssim_cfg, workers=workers
        )
        assert got.pattern1.mse == pytest.approx(ref.pattern1.mse, rel=1e-10)
        assert got.pattern1.min_err == ref.pattern1.min_err
        assert got.pattern1.max_err == ref.pattern1.max_err
        assert got.pattern1.psnr == pytest.approx(ref.pattern1.psnr, rel=1e-10)
        assert np.allclose(
            got.autocorrelation, ref.autocorrelation, atol=1e-9
        )
        assert got.ssim == pytest.approx(ref.ssim, rel=1e-10)

    def test_ssim_needs_dynamic_range(self, field_pair):
        with pytest.raises(CheckerError):
            parallel_stream_field(*field_pair, ssim=Pattern3Config(window=6))

    def test_shape_guards(self, field_pair):
        orig, dec = field_pair
        with pytest.raises(ShapeError):
            parallel_stream_field(orig[0], dec[0])
        with pytest.raises(ShapeError):
            parallel_stream_field(orig, dec, max_lag=30)
