"""Tests for the vortex wind generator and config serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.parser import format_config, parse_config_text, save_config
from repro.config.schema import CheckerConfig
from repro.datasets.synthetic import vortex_field
from repro.kernels.pattern1 import Pattern1Config
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config


class TestVortexField:
    def test_shape_dtype(self):
        out = vortex_field((8, 32, 32), "u", seed=2)
        assert out.shape == (8, 32, 32)
        assert out.dtype == np.float32
        assert np.isfinite(out).all()

    def test_deterministic(self):
        a = vortex_field((6, 20, 20), "v", seed=9)
        b = vortex_field((6, 20, 20), "v", seed=9)
        assert np.array_equal(a, b)

    def test_components_differ(self):
        u = vortex_field((6, 24, 24), "u", seed=1)
        v = vortex_field((6, 24, 24), "v", seed=1)
        assert not np.array_equal(u, v)

    def test_rotational_structure(self):
        """The u/v pair carries concentrated vorticity near the storm
        core — the curl magnitude peaks well above its median."""
        u = vortex_field((4, 64, 64), "u", seed=5, max_wind=80.0)
        v = vortex_field((4, 64, 64), "v", seed=5, max_wind=80.0)
        # curl_z = dv/dx - du/dy on a mid-level slice
        curl = np.gradient(v[2], axis=1) - np.gradient(u[2], axis=0)
        mag = np.abs(curl)
        assert mag.max() > 10 * np.median(mag)

    def test_wind_weakens_with_altitude(self):
        u = vortex_field((20, 40, 40), "u", seed=3, max_wind=60.0)
        low = np.abs(u[1]).max()
        high = np.abs(u[-1]).max()
        assert high < low

    def test_invalid_component(self):
        with pytest.raises(ValueError):
            vortex_field((4, 8, 8), "w")


class TestConfigSerialisation:
    def test_default_roundtrip(self):
        from repro.config.defaults import default_config

        c = default_config()
        assert parse_config_text(format_config(c)) == c

    def test_save_and_load(self, tmp_path):
        from repro.config.parser import load_config

        c = CheckerConfig(metrics=("mse", "psnr"), patterns=(1,))
        path = save_config(c, tmp_path / "zc.cfg")
        assert load_config(path) == c

    @settings(max_examples=40, deadline=None)
    @given(
        metrics=st.one_of(
            st.just("all"),
            st.sets(
                st.sampled_from(["mse", "psnr", "ssim", "laplacian", "pearson"]),
                min_size=1,
            ).map(tuple),
        ),
        patterns=st.sets(st.sampled_from([1, 2, 3]), min_size=1).map(
            lambda s: tuple(sorted(s))
        ),
        pdf_bins=st.integers(2, 4096),
        max_lag=st.integers(0, 12),
        orders=st.sampled_from([(1,), (2,), (1, 2)]),
        window=st.integers(2, 10),
        step=st.integers(1, 4),
        yrows=st.integers(10, 24),
        device=st.sampled_from(["V100", "A100"]),
        auxiliary=st.booleans(),
    )
    def test_roundtrip_property(
        self, metrics, patterns, pdf_bins, max_lag, orders, window, step,
        yrows, device, auxiliary,
    ):
        config = CheckerConfig(
            metrics=metrics,
            patterns=patterns,
            pattern1=Pattern1Config(pdf_bins=pdf_bins),
            pattern2=Pattern2Config(max_lag=max_lag, orders=orders),
            pattern3=Pattern3Config(window=window, step=step, yrows=yrows),
            device=device,
            auxiliary=auxiliary,
        )
        assert parse_config_text(format_config(config)) == config
