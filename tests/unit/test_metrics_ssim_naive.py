"""Sliding-sum SSIM fast path vs the explicit per-window oracle."""

import numpy as np
import pytest

from repro.metrics.ssim import SsimConfig, ssim3d, ssim3d_naive


@pytest.fixture(scope="module")
def pair():
    rng = np.random.default_rng(31)
    orig = np.cumsum(rng.normal(size=(12, 14, 16)), axis=1).astype(np.float32)
    dec = orig + rng.normal(scale=5e-3, size=orig.shape).astype(np.float32)
    return orig, dec


class TestSlidingEqualsNaive:
    @pytest.mark.parametrize("window,step", [
        (4, 1), (4, 2), (4, 3), (6, 1), (6, 2), (8, 4), (12, 1),
    ])
    def test_window_step_sweep(self, pair, window, step):
        cfg = SsimConfig(window=window, step=step)
        fast = ssim3d(*pair, cfg)
        slow = ssim3d_naive(*pair, cfg)
        assert fast.n_windows == slow.n_windows
        assert fast.ssim == pytest.approx(slow.ssim, rel=1e-9)
        assert fast.min_window_ssim == pytest.approx(
            slow.min_window_ssim, rel=1e-9
        )
        assert fast.max_window_ssim == pytest.approx(
            slow.max_window_ssim, rel=1e-9
        )

    def test_window_covers_whole_field(self, pair):
        cfg = SsimConfig(window=12, step=1)
        fast = ssim3d(*pair, cfg)
        slow = ssim3d_naive(*pair, cfg)
        assert fast.n_windows == slow.n_windows
        assert fast.ssim == pytest.approx(slow.ssim, rel=1e-9)

    def test_explicit_dynamic_range(self, pair):
        cfg = SsimConfig(window=5, step=2, dynamic_range=10.0)
        assert ssim3d(*pair, cfg).ssim == pytest.approx(
            ssim3d_naive(*pair, cfg).ssim, rel=1e-9
        )

    def test_identical_inputs_score_one(self, pair):
        orig, _ = pair
        cfg = SsimConfig(window=4, step=2)
        assert ssim3d(orig, orig, cfg).ssim == pytest.approx(1.0)
        assert ssim3d_naive(orig, orig, cfg).ssim == pytest.approx(1.0)

    def test_constant_field(self):
        orig = np.full((6, 6, 6), 2.5, dtype=np.float32)
        cfg = SsimConfig(window=4)
        assert ssim3d(orig, orig.copy(), cfg).ssim == pytest.approx(1.0)
        assert ssim3d_naive(orig, orig.copy(), cfg).ssim == pytest.approx(1.0)


class TestMethodDispatch:
    def test_naive_method_routes_to_oracle(self, pair):
        via_config = ssim3d(*pair, SsimConfig(window=5, method="naive"))
        direct = ssim3d_naive(*pair, SsimConfig(window=5))
        assert via_config == direct

    def test_invalid_method_rejected(self, pair):
        with pytest.raises(ValueError):
            ssim3d(*pair, SsimConfig(window=5, method="magic"))

    def test_default_is_sliding(self):
        assert SsimConfig().method == "sliding"
