import numpy as np
import pytest

from repro.metrics.pwr_error import pwr_error_pdf, pwr_error_stats, pwr_errors


class TestPwrErrors:
    def test_known_ratios(self):
        orig = np.array([[[2.0, 4.0], [1.0, 8.0]]])
        dec = np.array([[[2.2, 3.6], [1.0, 8.8]]])
        rel, excluded = pwr_errors(orig, dec)
        assert excluded == 0
        assert np.allclose(sorted(rel), sorted([0.1, -0.1, 0.0, 0.1]))

    def test_zero_values_excluded(self):
        orig = np.array([[[0.0, 2.0]]])
        dec = np.array([[[1.0, 2.2]]])
        rel, excluded = pwr_errors(orig, dec)
        assert excluded == 1
        assert rel.size == 1
        assert rel[0] == pytest.approx(0.1)

    def test_floor_excludes_small_magnitudes(self):
        orig = np.array([[[1e-8, 2.0]]])
        dec = np.array([[[2e-8, 2.2]]])
        rel, excluded = pwr_errors(orig, dec, floor=1e-6)
        assert excluded == 1
        assert rel.size == 1

    def test_all_zero_field(self):
        orig = np.zeros((2, 2, 2))
        rel, excluded = pwr_errors(orig, orig + 1.0)
        assert rel.size == 0
        assert excluded == 8


class TestPwrErrorStats:
    def test_stats_of_uniform_relative_error(self, smooth_field):
        orig = np.abs(smooth_field) + 1.0  # strictly positive
        dec = orig * np.float32(1.001)
        stats = pwr_error_stats(orig, dec)
        assert stats.min_pwr_err == pytest.approx(0.001, rel=1e-3)
        assert stats.max_pwr_err == pytest.approx(0.001, rel=1e-3)
        assert stats.avg_pwr_err == pytest.approx(0.001, rel=1e-3)
        assert stats.excluded == 0

    def test_negative_origin_keeps_sign_convention(self):
        orig = np.array([[[-2.0]]])
        dec = np.array([[[-2.2]]])
        stats = pwr_error_stats(orig, dec)
        # e = -0.2, orig = -2 -> rel = +0.1
        assert stats.avg_pwr_err == pytest.approx(0.1)

    def test_degenerate_all_excluded(self):
        orig = np.zeros((2, 2, 2))
        stats = pwr_error_stats(orig, orig + 1.0)
        assert stats.excluded == 8
        assert stats.min_pwr_err == stats.max_pwr_err == 0.0


class TestPwrErrorPdf:
    def test_integrates_to_one(self, noisy_pair):
        orig, dec = noisy_pair
        pdf = pwr_error_pdf(orig, dec, bins=128)
        assert pdf.integral() == pytest.approx(1.0, rel=1e-9)

    def test_constant_ratio_spike(self):
        orig = np.full((3, 3, 3), 2.0)
        pdf = pwr_error_pdf(orig, orig * 1.01)
        assert len(pdf.density) == 1

    def test_zero_field_degenerate_pdf(self):
        orig = np.zeros((2, 2, 2))
        pdf = pwr_error_pdf(orig, orig + 1.0)
        assert pdf.integral() == pytest.approx(1.0)
