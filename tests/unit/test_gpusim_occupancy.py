import pytest

from repro.errors import ResourceExhausted
from repro.gpusim.counters import KernelStats
from repro.gpusim.device import V100
from repro.gpusim.occupancy import blocks_per_sm_limit, occupancy_for


class TestBlocksPerSmLimit:
    def test_register_limited_pattern1(self):
        """The paper's own arithmetic: 64k regs / 14k per TB = 4."""
        assert blocks_per_sm_limit(V100, 256, 56, 448) == 4

    def test_smem_limited(self):
        # 96 KB SM / 20 KB per block = 4
        assert blocks_per_sm_limit(V100, 128, 16, 20 * 1024) == 4

    def test_thread_limited(self):
        assert blocks_per_sm_limit(V100, 1024, 16, 0) == 2

    def test_block_slot_limited(self):
        assert blocks_per_sm_limit(V100, 32, 8, 0) == V100.max_blocks_per_sm

    def test_oversubscription_raises(self):
        with pytest.raises(ResourceExhausted):
            blocks_per_sm_limit(V100, 1024, 255, 0)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            blocks_per_sm_limit(V100, 0, 32, 0)


class TestOccupancyFor:
    def _stats(self, grid, threads=256, regs=56, smem=448):
        return KernelStats(
            grid_blocks=grid,
            threads_per_block=threads,
            regs_per_thread=regs,
            smem_per_block=smem,
        )

    def test_nyx_pattern1_matches_paper(self):
        """NYX pattern-1: 512 blocks on 80 SMs -> 7 assigned, 4 concurrent
        (the paper's Table II discussion)."""
        occ = occupancy_for(V100, self._stats(512))
        assert occ.table2_row == (7, 4)

    def test_small_grid_active_sms(self):
        occ = occupancy_for(V100, self._stats(7))
        assert occ.active_sms == 7
        assert occ.blocks_per_sm == 1

    def test_waves_for_oversubscribed_grid(self):
        # slots = 80 SMs x 4 concurrent = 320
        occ = occupancy_for(V100, self._stats(640))
        assert occ.waves == 2
        assert occ.wave_balance == pytest.approx(1.0)

    def test_ragged_last_wave_balance(self):
        occ = occupancy_for(V100, self._stats(321))
        assert occ.waves == 2
        assert occ.wave_balance == pytest.approx(321 / 640)

    def test_average_residency_is_fractional(self):
        occ = occupancy_for(V100, self._stats(100))
        assert occ.active_warps_per_sm == pytest.approx(100 / 80 * 8)

    def test_occupancy_fraction_bounded(self):
        occ = occupancy_for(V100, self._stats(10_000))
        assert 0 < occ.occupancy <= 1.0

    def test_concurrency_monotone_in_registers(self):
        low = occupancy_for(V100, self._stats(512, regs=32))
        high = occupancy_for(V100, self._stats(512, regs=64))
        assert (
            low.concurrent_blocks_per_sm >= high.concurrent_blocks_per_sm
        )
