import numpy as np
import pytest

from repro.compressors.base import CompressedBuffer
from repro.compressors.sz import SZCompressor
from repro.errors import CompressionError


class TestSZCompressor:
    def test_error_bound_abs(self, smooth_field):
        comp = SZCompressor(abs_bound=0.01)
        dec = comp.decompress(comp.compress(smooth_field))
        err = np.abs(dec.astype(np.float64) - smooth_field.astype(np.float64))
        assert err.max() <= 0.01

    @pytest.mark.parametrize("rel", [1e-2, 1e-3, 1e-4])
    def test_error_bound_rel(self, smooth_field, rel):
        comp = SZCompressor(rel_bound=rel)
        buf = comp.compress(smooth_field)
        dec = comp.decompress(buf)
        err = np.abs(dec.astype(np.float64) - smooth_field.astype(np.float64))
        assert err.max() <= buf.meta["abs_bound"]

    def test_ratio_grows_with_bound(self, smooth_field):
        loose = SZCompressor(rel_bound=1e-2).ratio(smooth_field)
        tight = SZCompressor(rel_bound=1e-4).ratio(smooth_field)
        assert loose > tight > 1.0

    def test_smooth_data_compresses_well(self, smooth_field):
        assert SZCompressor(rel_bound=1e-3).ratio(smooth_field) > 3.0

    def test_prediction_beats_no_prediction(self):
        """The Lorenzo predictor is the point of SZ: it must out-compress
        plain uniform quantisation at the same bound on smooth data
        (where neighbouring deltas fit in few quantisation bins)."""
        from repro.compressors.simple import UniformQuantCompressor
        from repro.datasets.synthetic import spectral_field

        field = spectral_field((32, 32, 32), slope=4.0, seed=7, mean=5.0, std=2.0)
        sz = SZCompressor(rel_bound=1e-3).ratio(field)
        uq = UniformQuantCompressor(rel_bound=1e-3).ratio(field)
        assert sz > 1.2 * uq

    def test_white_noise_barely_compresses(self, rng):
        noise = rng.normal(size=(16, 16, 16)).astype(np.float32)
        ratio = SZCompressor(rel_bound=1e-4).ratio(noise)
        assert ratio < 2.0

    @pytest.mark.parametrize("shape", [(200,), (24, 30), (8, 10, 12)])
    def test_dimensionalities(self, shape, rng):
        data = rng.normal(size=shape).astype(np.float32)
        comp = SZCompressor(abs_bound=0.01)
        dec = comp.decompress(comp.compress(data))
        assert dec.shape == data.shape
        assert np.abs(dec - data).max() <= 0.01

    def test_outliers_handled(self, smooth_field):
        """A few huge spikes exceed the quantisation radius and must be
        stored exactly (to within the bound)."""
        data = smooth_field.copy()
        data[3, 4, 5] = 1e6
        data[7, 8, 9] = -1e6
        comp = SZCompressor(abs_bound=1e-4, radius=128)
        buf = comp.compress(data)
        dec = comp.decompress(buf)
        assert np.abs(dec.astype(np.float64) - data.astype(np.float64)).max() <= 1e-4

    def test_constant_field(self):
        data = np.full((8, 8, 8), 2.5, dtype=np.float32)
        comp = SZCompressor(rel_bound=1e-3)
        dec = comp.decompress(comp.compress(data))
        assert np.abs(dec - data).max() <= 1e-3

    def test_buffer_serialisation_roundtrip(self, smooth_field):
        comp = SZCompressor(rel_bound=1e-3)
        buf = comp.compress(smooth_field)
        restored = CompressedBuffer.from_bytes(buf.to_bytes())
        dec = comp.decompress(restored)
        err = np.abs(dec.astype(np.float64) - smooth_field.astype(np.float64))
        assert err.max() <= buf.meta["abs_bound"]

    def test_wrong_codec_rejected(self, smooth_field):
        from repro.compressors.zfp import ZFPCompressor

        buf = ZFPCompressor(rate=8).compress(smooth_field)
        with pytest.raises(CompressionError):
            SZCompressor(rel_bound=1e-3).decompress(buf)

    def test_constructor_validation(self):
        with pytest.raises(CompressionError):
            SZCompressor()
        with pytest.raises(CompressionError):
            SZCompressor(abs_bound=0.1, rel_bound=0.1)
        with pytest.raises(CompressionError):
            SZCompressor(abs_bound=0.1, radius=1)

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            SZCompressor(abs_bound=0.1).compress(np.zeros((0, 3, 3)))

    def test_banded_error_structure(self, smooth_field):
        """SZ errors are quantisation-banded: |e| concentrates near the
        bound, unlike white noise — the structure Z-checker's error PDF
        is designed to reveal."""
        comp = SZCompressor(rel_bound=1e-3)
        buf = comp.compress(smooth_field)
        dec = comp.decompress(buf)
        e = np.abs(dec.astype(np.float64) - smooth_field.astype(np.float64))
        eb = buf.meta["abs_bound"]
        assert np.quantile(e, 0.95) > 0.5 * eb
