import pytest

from repro.gpusim.costmodel import kernel_time, kernels_time
from repro.gpusim.counters import KernelStats
from repro.gpusim.device import A100, V100


def make_stats(**kw):
    base = dict(
        name="k",
        launches=1,
        global_read_bytes=100 * 1024 * 1024,
        flops=50_000_000,
        grid_blocks=1000,
        threads_per_block=256,
        regs_per_thread=32,
        smem_per_block=0,
    )
    base.update(kw)
    return KernelStats(**base)


class TestKernelTime:
    def test_components_positive(self):
        cost = kernel_time(make_stats(), V100)
        assert cost.launch_time > 0
        assert cost.mem_time > 0
        assert cost.compute_time > 0
        assert cost.total >= cost.pipeline_time

    def test_roofline_takes_max(self):
        cost = kernel_time(make_stats(), V100)
        assert cost.pipeline_time >= max(cost.mem_time, cost.compute_time)

    def test_bound_label(self):
        mem_bound = kernel_time(make_stats(flops=1), V100)
        assert mem_bound.bound == "memory"
        compute_bound = kernel_time(
            make_stats(global_read_bytes=64, flops=10**10), V100
        )
        assert compute_bound.bound == "compute"

    def test_time_scales_with_traffic(self):
        small = kernel_time(make_stats(), V100).total
        big = kernel_time(make_stats(global_read_bytes=10**9, flops=1), V100).total
        assert big > small

    def test_monotone_in_data_size(self):
        """Doubling every volumetric counter must not reduce time."""
        s1 = make_stats()
        s2 = s1.scaled(2.0)
        assert kernel_time(s2, V100).pipeline_time >= kernel_time(
            s1, V100
        ).pipeline_time

    def test_launch_overhead_additive(self):
        one = kernel_time(make_stats(launches=1), V100)
        ten = kernel_time(make_stats(launches=10), V100)
        assert ten.launch_time == pytest.approx(10 * one.launch_time)

    def test_grid_sync_cost(self):
        without = kernel_time(make_stats(grid_syncs=0), V100).total
        with_sync = kernel_time(make_stats(grid_syncs=5), V100).total
        assert with_sync == pytest.approx(
            without + 5 * V100.grid_sync_latency
        )

    def test_small_grid_is_slower_per_byte(self):
        full = kernel_time(make_stats(grid_blocks=2000), V100)
        tiny = kernel_time(make_stats(grid_blocks=4), V100)
        assert tiny.mem_time > full.mem_time

    def test_chain_length_slows_compute(self):
        fast = make_stats(flops=10**10, global_read_bytes=64)
        slow = make_stats(
            flops=10**10, global_read_bytes=64, meta={"chain_length": 40000}
        )
        assert (
            kernel_time(slow, V100).compute_time
            > 1.5 * kernel_time(fast, V100).compute_time
        )

    def test_atomics_cost_more_than_flops(self):
        plain = kernel_time(make_stats(flops=10**8, global_read_bytes=64), V100)
        atomic = kernel_time(
            make_stats(flops=0, atomic_ops=10**8, global_read_bytes=64), V100
        )
        assert atomic.compute_time > plain.compute_time

    def test_a100_faster_than_v100(self):
        stats = make_stats(global_read_bytes=10**9)
        assert kernel_time(stats, A100).total < kernel_time(stats, V100).total

    def test_invalid_stats_rejected(self):
        with pytest.raises(ValueError):
            kernel_time(make_stats(flops=-1), V100)


class TestKernelsTime:
    def test_sequence_sums(self):
        stats = make_stats()
        single = kernel_time(stats, V100).total
        assert kernels_time([stats] * 3, V100) == pytest.approx(3 * single)

    def test_empty_sequence(self):
        assert kernels_time([], V100) == 0.0
