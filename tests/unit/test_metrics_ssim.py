import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics.ssim import SsimConfig, box_sums, ssim3d, window_positions


class TestWindowPositions:
    @pytest.mark.parametrize(
        "n,w,s,expected",
        [(10, 4, 1, 7), (10, 4, 2, 4), (8, 8, 1, 1), (7, 8, 1, 0), (9, 3, 3, 3)],
    )
    def test_counts(self, n, w, s, expected):
        assert window_positions(n, w, s) == expected


class TestBoxSums:
    def test_matches_brute_force(self, rng):
        a = rng.normal(size=(9, 10, 11))
        w, step = 4, 2
        sums = box_sums(a, w, step)
        for i in range(sums.shape[0]):
            for j in range(sums.shape[1]):
                for k in range(sums.shape[2]):
                    z, y, x = i * step, j * step, k * step
                    brute = a[z : z + w, y : y + w, x : x + w].sum()
                    assert sums[i, j, k] == pytest.approx(brute, rel=1e-10)

    def test_full_window_equals_total(self, rng):
        a = rng.normal(size=(6, 6, 6))
        sums = box_sums(a, 6, 1)
        assert sums.shape == (1, 1, 1)
        assert sums[0, 0, 0] == pytest.approx(a.sum())

    def test_ones_field(self):
        sums = box_sums(np.ones((8, 8, 8)), 4, 1)
        assert np.allclose(sums, 64.0)


class TestSsim3d:
    def test_identical_fields_score_one(self, smooth_field):
        result = ssim3d(smooth_field, smooth_field, SsimConfig(window=6))
        assert result.ssim == pytest.approx(1.0)
        assert result.min_window_ssim == pytest.approx(1.0)

    def test_identical_constant_fields_score_one(self):
        c = np.full((8, 8, 8), 5.0)
        assert ssim3d(c, c.copy()).ssim == pytest.approx(1.0)

    def test_bounded_by_one(self, noisy_pair):
        result = ssim3d(*noisy_pair, SsimConfig(window=6))
        assert result.max_window_ssim <= 1.0 + 1e-12

    def test_uncorrelated_fields_score_low(self, rng):
        a = rng.normal(size=(16, 16, 16))
        b = rng.normal(size=(16, 16, 16))
        assert ssim3d(a, b).ssim < 0.2

    def test_monotone_in_noise(self, smooth_field, rng):
        small = smooth_field + rng.normal(scale=0.01, size=smooth_field.shape).astype(
            np.float32
        )
        large = smooth_field + rng.normal(scale=0.3, size=smooth_field.shape).astype(
            np.float32
        )
        cfg = SsimConfig(window=6)
        assert ssim3d(smooth_field, small, cfg).ssim > ssim3d(
            smooth_field, large, cfg
        ).ssim

    def test_window_count(self, smooth_field):
        cfg = SsimConfig(window=8, step=2)
        result = ssim3d(smooth_field, smooth_field, cfg)
        nz, ny, nx = smooth_field.shape
        expected = (
            window_positions(nz, 8, 2)
            * window_positions(ny, 8, 2)
            * window_positions(nx, 8, 2)
        )
        assert result.n_windows == expected

    def test_explicit_dynamic_range(self, noisy_pair):
        orig, dec = noisy_pair
        default = ssim3d(orig, dec)
        wide = ssim3d(orig, dec, SsimConfig(dynamic_range=1e6))
        # an absurdly wide range swamps the comparison: SSIM -> 1
        assert wide.ssim > default.ssim
        assert wide.ssim == pytest.approx(1.0, abs=1e-6)

    def test_shape_mismatch_raises(self, smooth_field):
        with pytest.raises(ShapeError):
            ssim3d(smooth_field, smooth_field[:-1])

    def test_window_larger_than_field_raises(self):
        with pytest.raises(ShapeError):
            ssim3d(np.zeros((4, 4, 4)), np.zeros((4, 4, 4)), SsimConfig(window=8))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SsimConfig(window=0).validate((8, 8, 8))
        with pytest.raises(ValueError):
            SsimConfig(step=0).validate((8, 8, 8))

    def test_mean_brightness_shift_penalised(self, smooth_field):
        shifted = smooth_field + np.float32(2.0)
        result = ssim3d(smooth_field, shifted, SsimConfig(window=6))
        # a structure-preserving brightness shift costs luminance
        # similarity but not structure: clearly below 1, well above 0
        assert 0.5 < result.ssim < 0.97
