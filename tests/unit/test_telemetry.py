"""Tracer, exporter, and summary unit tests (deterministic clock)."""

import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.kernels.pattern1 import execute_pattern1
from repro.telemetry.export import (
    chrome_trace_events,
    csv_text,
    kernel_summary,
    metric_summary,
    summary_tables,
    write_chrome_trace,
    write_csv,
)
from repro.telemetry.tracer import NULL_TRACER, Span, Tracer

GOLDEN = Path(__file__).resolve().parent.parent / "golden"


class ManualClock:
    """Injectable clock: time only moves when the test advances it."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def golden_trace() -> Tracer:
    """The fixed plan→step→kernel scenario behind the golden files."""
    clock = ManualClock()
    tr = Tracer(clock=clock)
    with tr.span("plan", category="plan", bytes=2048, backend="fused-host"):
        clock.advance(0.001)
        with tr.span("pattern1", category="step", pattern=1, metrics="psnr"):
            clock.advance(0.002)
            with tr.span("cuZC.pattern1", category="kernel", bytes=1024, pattern=1):
                clock.advance(0.003)
        clock.advance(0.0005)
    return tr


class TestNesting:
    def test_stack_nesting_and_ids(self):
        clock = ManualClock()
        tr = Tracer(clock=clock)
        with tr.span("outer") as outer:
            clock.advance(0.001)
            with tr.span("inner") as inner:
                clock.advance(0.001)
            with tr.span("sibling") as sibling:
                clock.advance(0.001)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert len({outer.span_id, inner.span_id, sibling.span_id}) == 3
        # spans are appended on exit, so children precede the root
        assert [s.name for s in tr.spans] == ["inner", "sibling", "outer"]
        assert [s.name for s in tr.sorted_spans()] == ["outer", "inner", "sibling"]
        assert tr.roots() == [outer]
        assert tr.children(outer) == [inner, sibling]

    def test_timestamps_from_injected_clock(self):
        tr = golden_trace()
        by_name = {s.name: s for s in tr.spans}
        assert by_name["plan"].start_us == 0.0
        assert round(by_name["plan"].duration_us, 3) == 6500.0
        assert round(by_name["pattern1"].start_us, 3) == 1000.0
        assert round(by_name["cuZC.pattern1"].duration_us, 3) == 3000.0

    def test_explicit_parent_beats_stack(self):
        tr = Tracer(clock=ManualClock())
        with tr.span("root") as root:
            with tr.span("open"):
                with tr.span("handed", parent=root) as handed:
                    pass
        assert handed.parent_id == root.span_id

    def test_cross_thread_parent_handoff(self):
        """Worker threads have empty stacks; parent= carries nesting over."""
        tr = Tracer(clock=ManualClock())
        seen = {}

        def worker(root):
            with tr.span("task", parent=root) as sp:
                seen["task"] = sp
            with tr.span("orphan") as sp:
                seen["orphan"] = sp

        with tr.span("root") as root:
            t = threading.Thread(target=worker, args=(root,))
            t.start()
            t.join()
        assert seen["task"].parent_id == root.span_id
        # without a handoff the worker's span is a root, not a child of
        # whatever the main thread had open
        assert seen["orphan"].parent_id is None
        # each thread gets its own export track
        assert seen["task"].track != root.track


class TestDisabled:
    def test_null_span_is_shared_singleton(self):
        a = NULL_TRACER.span("x", category="kernel", bytes=4)
        b = NULL_TRACER.span("y")
        assert a is b

    def test_no_spans_recorded(self):
        tr = Tracer(enabled=False)
        with tr.span("plan") as sp:
            sp.name = "renamed"
            sp.bytes = 123
            sp.attrs["k"] = 1
        assert tr.spans == []

    def test_overhead_under_five_percent(self):
        """Disabled tracing hooks on the fused pattern-1 microbenchmark."""
        rng = np.random.default_rng(3)
        orig = rng.normal(size=(8, 16, 16)).astype(np.float32)
        dec = orig + rng.normal(scale=1e-3, size=orig.shape).astype(np.float32)
        iters = 20

        def bare() -> float:
            t0 = time.perf_counter()
            for _ in range(iters):
                execute_pattern1(orig, dec)
            return time.perf_counter() - t0

        def traced() -> float:
            t0 = time.perf_counter()
            for _ in range(iters):
                with NULL_TRACER.span("pattern1", category="kernel"):
                    execute_pattern1(orig, dec)
            return time.perf_counter() - t0

        bare()  # warm caches before timing
        # best-of-5 with retries: absolute overhead is ~1 us per iteration
        # of attribute checks, but CI machines jitter
        for attempt in range(3):
            best_bare = min(bare() for _ in range(5))
            best_traced = min(traced() for _ in range(5))
            if best_traced <= best_bare * 1.05:
                return
        assert best_traced <= best_bare * 1.05


class TestMerge:
    def test_stable_ids_epoch_shift_and_track(self):
        clock = ManualClock()
        tr = Tracer(clock=clock)
        with tr.span("driver") as root:
            clock.advance(0.010)
        sub = Tracer(clock=clock)  # epoch = 10 ms after the parent's
        with sub.span("rank-plan") as plan:
            clock.advance(0.001)
            with sub.span("rank-kernel", category="kernel"):
                clock.advance(0.002)
        tr.merge(sub, parent=root, track=5)

        merged = {s.name: s for s in tr.spans if s.name.startswith("rank")}
        assert len(merged) == 2
        # ids were remapped past the parent tracer's counter: no collisions
        ids = [s.span_id for s in tr.spans]
        assert len(ids) == len(set(ids))
        assert merged["rank-plan"].parent_id == root.span_id
        assert merged["rank-kernel"].parent_id == merged["rank-plan"].span_id
        assert merged["rank-plan"].track == 5
        assert merged["rank-kernel"].track == 5
        # timestamps shifted onto the parent epoch: sub's t=0 is 10 ms in
        assert round(merged["rank-plan"].start_us, 3) == 10000.0
        # ids reserved during merge: the next live span doesn't collide
        with tr.span("after") as after:
            pass
        assert after.span_id not in ids
        assert plan.span_id != merged["rank-plan"].span_id  # sub untouched

    def test_merge_empty_sub_is_noop(self):
        tr = Tracer(clock=ManualClock())
        tr.merge(Tracer(clock=ManualClock()))
        assert tr.spans == []


class TestExporters:
    def test_chrome_trace_golden(self, tmp_path):
        tr = golden_trace()
        path = write_chrome_trace(tr.spans, tmp_path / "trace.json")
        assert path.read_text() == (GOLDEN / "trace.json").read_text()

    def test_csv_golden(self, tmp_path):
        tr = golden_trace()
        path = write_csv(tr.spans, tmp_path / "spans.csv")
        assert path.read_text() == (GOLDEN / "spans.csv").read_text()

    def test_chrome_events_structure(self):
        events = chrome_trace_events(golden_trace().spans)
        meta, first, *rest = events
        assert meta["ph"] == "M"
        assert first["name"] == "plan" and first["ph"] == "X"
        assert first["args"]["bytes"] == 2048
        assert "parent_id" not in first["args"]
        kernel = events[-1]
        assert kernel["name"] == "cuZC.pattern1"
        assert kernel["args"]["parent_id"] == events[2]["args"]["span_id"]
        # valid JSON end to end
        json.loads(json.dumps({"traceEvents": events}))

    def test_csv_quotes_attrs(self):
        text = csv_text(golden_trace().spans)
        lines = text.strip().split("\n")
        assert lines[0].startswith("span_id,parent_id,track,")
        assert len(lines) == 4
        assert '"{""backend"": ""fused-host""}"' in lines[1]


class TestSummaries:
    @staticmethod
    def _kernel(name, start, end, nbytes, **attrs):
        return Span(
            name=name, category="kernel", start_us=start, end_us=end,
            span_id=attrs.pop("span_id", 0), parent_id=attrs.pop("parent_id", None),
            bytes=nbytes, attrs=attrs,
        )

    def test_kernel_summary_aggregates(self):
        spans = [
            self._kernel("cuZC.pattern1", 0, 1000, 10**6, pattern=1),
            self._kernel("cuZC.pattern1", 2000, 4000, 10**6, pattern=1),
            self._kernel(
                "cuZC.pattern3", 0, 500, 2000, pattern=3,
                modelled_ms=1.5, modelled_cycles=4000, occupancy=0.25,
            ),
        ]
        rows = {r["kernel"]: r for r in kernel_summary(spans)}
        p1 = rows["cuZC.pattern1"]
        assert p1["calls"] == 2
        assert p1["wall_ms"] == 3.0
        assert p1["bytes"] == 2 * 10**6
        assert p1["GB/s"] == round(2e6 / 3e-3 / 1e9, 2)
        assert "modelled_ms" not in p1
        p3 = rows["cuZC.pattern3"]
        assert p3["modelled_ms"] == 1.5
        assert p3["modelled_cycles"] == 4000
        assert p3["occupancy"] == 0.25

    def test_metric_summary_splits_and_orders(self):
        step1 = Span(
            name="pattern1", category="step", start_us=0, end_us=2000,
            span_id=1, attrs={"pattern": 1, "metrics": "psnr,max_err"},
        )
        step3 = Span(
            name="pattern3", category="step", start_us=2000, end_us=5000,
            span_id=2, attrs={"pattern": 3, "metrics": "ssim"},
        )
        kern = self._kernel(
            "cuZC.pattern1", 0, 1000, 64, pattern=1, span_id=3, parent_id=1
        )
        rows = metric_summary([step1, step3, kern])
        by_metric = {r["metric"]: r for r in rows}
        assert set(by_metric) == {"psnr", "max_err", "ssim"}
        # Table-I order: error metrics before PSNR before SSIM
        names = [r["metric"] for r in rows]
        assert names.index("max_err") < names.index("psnr") < names.index("ssim")
        assert by_metric["psnr"]["wall_ms"] == 2.0  # shared step time
        assert by_metric["psnr"]["kernels"] == "cuZC.pattern1"
        assert by_metric["ssim"]["kernels"] == ""

    def test_summary_tables_renders(self):
        tr = golden_trace()
        text = summary_tables(tr.spans)
        assert "per-kernel profile" in text
        assert "per-metric profile (Table I order)" in text
        assert "cuZC.pattern1" in text

    def test_summary_tables_empty(self):
        assert "no kernel or step spans" in summary_tables([])
