import pytest

from repro.gpusim.costmodel import kernels_time
from repro.gpusim.device import V100
from repro.kernels.metric_oriented import (
    MO_PATTERN1_KERNELS,
    plan_mo_pattern1,
    plan_mo_pattern2,
    plan_mo_pattern3,
)
from repro.kernels.pattern1 import plan_pattern1
from repro.kernels.pattern2 import Pattern2Config, plan_pattern2
from repro.kernels.pattern3 import plan_pattern3

SHAPE = (100, 500, 500)  # Hurricane


class TestMoPattern1:
    def test_ten_metric_pipelines(self):
        """Paper: 'moZC contains 10 CUDA kernels for pattern 1'."""
        assert len(MO_PATTERN1_KERNELS) == 10
        assert len(plan_mo_pattern1(SHAPE)) == 10

    def test_pdf_pipelines_use_atomics(self):
        plans = {p.meta["metric"]: p for p in plan_mo_pattern1(SHAPE)}
        assert plans["err_pdf"].atomic_ops > 0
        assert plans["mse"].atomic_ops == 0

    def test_each_pipeline_re_reads_inputs(self):
        n = SHAPE[0] * SHAPE[1] * SHAPE[2]
        for plan in plan_mo_pattern1(SHAPE):
            assert plan.global_read_bytes >= 2 * n * 4

    def test_total_traffic_exceeds_fused(self):
        """The fusion claim: moZC moves several times cuZC's bytes."""
        mo_bytes = sum(p.global_bytes for p in plan_mo_pattern1(SHAPE))
        cu_bytes = plan_pattern1(SHAPE).global_bytes
        assert mo_bytes > 4 * cu_bytes

    def test_launch_count_exceeds_fused(self):
        mo_launches = sum(p.launches for p in plan_mo_pattern1(SHAPE))
        assert mo_launches >= 20
        assert plan_pattern1(SHAPE).launches == 1


class TestMoPattern2:
    def test_kernel_inventory(self):
        """2 derivative kernels + 2 summation reductions + moments +
        10 lag kernels."""
        plans = plan_mo_pattern2(SHAPE, Pattern2Config(max_lag=10))
        names = [p.meta["metric"] for p in plans]
        assert names.count("derivative_order1") == 1
        assert names.count("derivative_order2") == 1
        assert "divergence" in names
        assert "laplacian" in names
        assert "err_moments" in names
        assert sum(1 for n in names if n.startswith("autocorr_lag")) == 10
        assert len(plans) == 15

    def test_slower_than_fused_by_paper_factor(self):
        """Fig. 12(b): cuZC ≈ 1.8x moZC on pattern 2."""
        cfg = Pattern2Config()
        t_mo = kernels_time(plan_mo_pattern2(SHAPE, cfg), V100)
        t_cu = kernels_time([plan_pattern2(SHAPE, cfg)], V100)
        assert 1.6 < t_mo / t_cu < 2.1

    def test_no_lags_no_moments_pass(self):
        plans = plan_mo_pattern2(SHAPE, Pattern2Config(max_lag=0))
        names = [p.meta["metric"] for p in plans]
        assert "err_moments" not in names


class TestMoPattern3:
    def test_single_nofifo_kernel(self):
        plans = plan_mo_pattern3(SHAPE)
        assert len(plans) == 1
        assert plans[0].meta["fifo"] is False

    def test_fifo_gain_in_paper_range(self):
        """Fig. 12(c): the FIFO buys 1.42-1.63x."""
        t_mo = kernels_time(plan_mo_pattern3(SHAPE), V100)
        t_cu = kernels_time([plan_pattern3(SHAPE)], V100)
        assert 1.35 < t_mo / t_cu < 1.7
