import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics.error_stats import ErrorStats, Pdf, error_pdf, error_stats


class TestErrorStats:
    def test_known_values(self):
        orig = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        dec = np.array([[[1.5, 1.0], [3.0, 4.25]]])
        stats = error_stats(orig, dec)
        assert stats.min_err == -1.0
        assert stats.max_err == 0.5
        assert stats.avg_err == pytest.approx((0.5 - 1.0 + 0.0 + 0.25) / 4)
        assert stats.avg_abs_err == pytest.approx((0.5 + 1.0 + 0.0 + 0.25) / 4)
        assert stats.max_abs_err == 1.0

    def test_identical_inputs(self, smooth_field):
        stats = error_stats(smooth_field, smooth_field)
        assert stats == ErrorStats(0.0, 0.0, 0.0, 0.0, 0.0)

    def test_sign_convention_is_dec_minus_orig(self):
        orig = np.zeros((2, 2, 2))
        dec = np.full((2, 2, 2), 3.0)
        stats = error_stats(orig, dec)
        assert stats.min_err == stats.max_err == 3.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            error_stats(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            error_stats(np.zeros((0,)), np.zeros((0,)))

    def test_float32_inputs_promoted(self, noisy_pair):
        orig, dec = noisy_pair
        stats = error_stats(orig, dec)
        # float64 accumulation: mean of errors matches numpy reference
        ref = float(dec.astype(np.float64).mean() - orig.astype(np.float64).mean())
        assert stats.avg_err == pytest.approx(ref, abs=1e-12)


class TestErrorPdf:
    def test_density_integrates_to_one(self, noisy_pair):
        pdf = error_pdf(*noisy_pair, bins=256)
        assert pdf.integral() == pytest.approx(1.0, rel=1e-9)

    def test_bin_count(self, noisy_pair):
        pdf = error_pdf(*noisy_pair, bins=64)
        assert len(pdf.density) == 64
        assert len(pdf.bin_edges) == 65
        assert len(pdf.bin_centers) == 64

    def test_constant_error_single_spike(self):
        # integer-valued data so the +0.5 offset is exact in float32
        orig = np.zeros((4, 4, 4), dtype=np.float32)
        pdf = error_pdf(orig, orig + np.float32(0.5))
        assert len(pdf.density) == 1
        assert pdf.integral() == pytest.approx(1.0)

    def test_lossless_is_zero_spike(self, smooth_field):
        pdf = error_pdf(smooth_field, smooth_field)
        assert pdf.bin_edges[0] < 0 < pdf.bin_edges[-1]
        assert pdf.integral() == pytest.approx(1.0)

    def test_range_spans_extrema(self, noisy_pair):
        orig, dec = noisy_pair
        e = dec.astype(np.float64) - orig.astype(np.float64)
        pdf = error_pdf(orig, dec, bins=128)
        assert pdf.bin_edges[0] == pytest.approx(e.min())
        assert pdf.bin_edges[-1] == pytest.approx(e.max())

    def test_invalid_bins(self, noisy_pair):
        with pytest.raises(ValueError):
            error_pdf(*noisy_pair, bins=0)

    def test_pdf_mass_concentrated_for_small_noise(self, noisy_pair):
        """99.7% of Gaussian noise mass lies within 3 sigma."""
        orig, dec = noisy_pair
        pdf = error_pdf(orig, dec, bins=512)
        widths = np.diff(pdf.bin_edges)
        centers = pdf.bin_centers
        mass_within = np.sum((pdf.density * widths)[np.abs(centers) < 0.03])
        assert mass_within > 0.99
