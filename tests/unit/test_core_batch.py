import math

import pytest

from repro.compressors.sz import SZCompressor
from repro.config.schema import CheckerConfig
from repro.core.batch import assess_dataset
from repro.datasets.fields import Dataset
from repro.datasets.registry import generate_dataset
from repro.errors import CheckerError
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config


@pytest.fixture(scope="module")
def batch():
    ds = generate_dataset("miranda", scale=0.05, n_fields=3)
    config = CheckerConfig(
        pattern2=Pattern2Config(max_lag=2),
        pattern3=Pattern3Config(window=6),
    )
    return assess_dataset(
        ds, SZCompressor(rel_bound=1e-3), config=config, with_baselines=True
    )


class TestBatchAssessment:
    def test_all_fields_assessed(self, batch):
        assert batch.n_fields == 3
        assert set(batch.reports) == {"density", "diffusivity", "pressure"}

    def test_summaries(self, batch):
        rows = batch.summaries()
        assert len(rows) == 3
        for row in rows:
            assert row.compression_ratio > 1.0
            assert math.isfinite(row.psnr)
            assert 0.0 < row.ssim <= 1.0

    def test_aggregates(self, batch):
        assert math.isfinite(batch.mean_psnr())
        assert 0.0 < batch.min_ssim() <= 1.0
        assert batch.overall_ratio() > 1.0

    def test_overall_ratio_is_size_weighted(self, batch):
        rows = batch.summaries()
        ratios = [r.compression_ratio for r in rows]
        # equal-size fields: the size-weighted ratio is the harmonic-style
        # mean, bounded by the extremes
        assert min(ratios) <= batch.overall_ratio() <= max(ratios)

    def test_mean_speedup(self, batch):
        assert batch.mean_speedup("ompZC") > 1.0
        assert batch.mean_speedup("moZC") > 1.0

    def test_speedup_requires_baselines(self):
        ds = generate_dataset("nyx", scale=0.03, n_fields=1)
        config = CheckerConfig(
            pattern2=Pattern2Config(max_lag=2),
            pattern3=Pattern3Config(window=6),
        )
        batch = assess_dataset(ds, SZCompressor(rel_bound=1e-3), config=config)
        with pytest.raises(CheckerError):
            batch.mean_speedup("ompZC")

    def test_empty_dataset_rejected(self):
        with pytest.raises(CheckerError):
            assess_dataset(Dataset(name="empty"), SZCompressor(rel_bound=1e-3))
