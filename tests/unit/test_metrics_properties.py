import math

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics.properties import data_properties, entropy


class TestEntropy:
    def test_constant_field_zero_entropy(self):
        assert entropy(np.full((4, 4), 3.0)) == 0.0

    def test_uniform_two_level_field_one_bit(self):
        data = np.array([0.0] * 500 + [1.0] * 500)
        assert entropy(data, bins=2) == pytest.approx(1.0)

    def test_entropy_bounded_by_log2_bins(self, smooth_field):
        h = entropy(smooth_field, bins=64)
        assert 0.0 < h <= 6.0

    def test_uniform_distribution_maximises_entropy(self, rng):
        uniform = rng.uniform(size=100_000)
        peaked = rng.normal(size=100_000)
        assert entropy(uniform, bins=256) > entropy(peaked, bins=256)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            entropy(np.ones(4), bins=0)

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            entropy(np.zeros(0))


class TestDataProperties:
    def test_matches_numpy(self, smooth_field):
        props = data_properties(smooth_field)
        d = smooth_field.astype(np.float64)
        assert props.min_value == d.min()
        assert props.max_value == d.max()
        assert props.value_range == pytest.approx(d.max() - d.min())
        assert props.mean == pytest.approx(d.mean())
        assert props.std == pytest.approx(d.std())
        assert props.variance == pytest.approx(d.var())
        assert props.n_elements == d.size

    def test_std_variance_consistency(self, smooth_field):
        props = data_properties(smooth_field)
        assert props.std == pytest.approx(math.sqrt(props.variance))

    def test_zero_count(self):
        data = np.array([[[0.0, 1.0], [0.0, 2.0]]])
        assert data_properties(data).zeros == 2
