import pytest

from repro.compressors.sz import SZCompressor
from repro.compressors.simple import DecimateCompressor
from repro.config.schema import CheckerConfig
from repro.core.acceptance import AcceptanceCriteria
from repro.core.compare import compare_data
from repro.errors import CheckerError
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config


def _report(field, codec):
    dec = codec.decompress(codec.compress(field))
    config = CheckerConfig(
        pattern2=Pattern2Config(max_lag=3), pattern3=Pattern3Config(window=6)
    )
    return compare_data(field, dec, config=config, with_baselines=False)


@pytest.fixture(scope="module")
def good_report(smooth_field):
    return _report(smooth_field, SZCompressor(rel_bound=1e-4))


@pytest.fixture(scope="module")
def bad_report(smooth_field):
    return _report(smooth_field, DecimateCompressor(factor=2))


class TestAcceptance:
    def test_tight_sz_passes_strict(self, good_report):
        verdict = AcceptanceCriteria.strict().evaluate(good_report)
        assert verdict.passed, verdict.describe()

    def test_decimation_fails_strict(self, bad_report):
        verdict = AcceptanceCriteria.strict().evaluate(bad_report)
        assert not verdict.passed
        assert verdict.failures

    def test_failure_report_names_criterion(self, bad_report):
        verdict = AcceptanceCriteria(min_psnr=200.0).evaluate(bad_report)
        assert len(verdict.failures) == 1
        assert "psnr" in verdict.failures[0].name
        assert "FAIL" in verdict.describe()

    def test_error_bound_criterion(self, good_report):
        eb = good_report.scalars()["value_range"] * 1e-4
        ok = AcceptanceCriteria(max_abs_err=eb * 1.01).evaluate(good_report)
        assert ok.passed
        bad = AcceptanceCriteria(max_abs_err=eb * 0.1).evaluate(good_report)
        assert not bad.passed

    def test_autocorr_criterion_flags_structured_errors(self, bad_report):
        verdict = AcceptanceCriteria(max_abs_autocorr=0.05).evaluate(bad_report)
        assert not verdict.passed

    def test_spectral_criterion(self, good_report, bad_report):
        crit = AcceptanceCriteria(min_noise_frequency=0.3)
        assert crit.evaluate(good_report).passed
        assert not crit.evaluate(bad_report).passed

    def test_missing_metric_raises(self, smooth_field):
        config = CheckerConfig(patterns=(1,), pattern3=Pattern3Config(window=6))
        codec = SZCompressor(rel_bound=1e-3)
        dec = codec.decompress(codec.compress(smooth_field))
        report = compare_data(smooth_field, dec, config=config,
                              with_baselines=False)
        with pytest.raises(CheckerError):
            AcceptanceCriteria(min_ssim=0.9).evaluate(report)

    def test_no_criteria_rejected(self, good_report):
        with pytest.raises(CheckerError):
            AcceptanceCriteria().evaluate(good_report)

    def test_lenient_weaker_than_strict(self, smooth_field):
        mid = _report(smooth_field, SZCompressor(rel_bound=3e-3))
        lenient = AcceptanceCriteria.lenient().evaluate(mid)
        strict = AcceptanceCriteria.strict().evaluate(mid)
        assert lenient.passed
        assert not strict.passed

    def test_describe_includes_summary(self, good_report):
        text = AcceptanceCriteria.lenient().evaluate(good_report).describe()
        assert "ACCEPTABLE" in text
        assert "criteria met" in text
