import math

import numpy as np
import pytest

from repro.metrics.correlation import pearson


class TestPearson:
    def test_identical_fields(self, smooth_field):
        assert pearson(smooth_field, smooth_field) == pytest.approx(1.0)

    def test_affine_transform_is_perfectly_correlated(self, smooth_field):
        assert pearson(smooth_field, 2.0 * smooth_field + 3.0) == pytest.approx(1.0)

    def test_negated_field_anticorrelated(self, smooth_field):
        assert pearson(smooth_field, -smooth_field) == pytest.approx(-1.0)

    def test_matches_numpy_corrcoef(self, noisy_pair):
        orig, dec = noisy_pair
        expected = np.corrcoef(orig.ravel(), dec.ravel())[0, 1]
        assert pearson(orig, dec) == pytest.approx(expected, abs=1e-10)

    def test_good_reconstruction_above_five_nines(self, smooth_field):
        """Z-checker's acceptability guidance: rho > 0.99999 for a
        tight-bound reconstruction."""
        from repro.compressors.sz import SZCompressor

        comp = SZCompressor(rel_bound=1e-4)
        dec = comp.decompress(comp.compress(smooth_field))
        assert pearson(smooth_field, dec) > 0.99999

    def test_constant_equal_fields(self):
        c = np.full((2, 2, 2), 7.0)
        assert pearson(c, c.copy()) == 1.0

    def test_constant_vs_varying_is_nan(self, smooth_field):
        c = np.full(smooth_field.shape, 7.0)
        assert math.isnan(pearson(c, smooth_field))

    def test_independent_noise_near_zero(self, rng):
        a = rng.normal(size=(16, 16, 16))
        b = rng.normal(size=(16, 16, 16))
        assert abs(pearson(a, b)) < 0.1
