"""Tests for the optional compiled (Numba) hot-path backend.

The registry suite in ``test_engine.py`` already runs every metric
through ``compiled-host``; this file covers what that sweep cannot:
kernel-level agreement with the NumPy reference implementations, the
no-op ``njit`` fallback on hosts without Numba, and the build-time
degradation to ``fused-host``.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
import pytest

from repro.config.schema import CheckerConfig
from repro.engine import build_plan, get_backend
from repro.engine.compiled import (
    NUMBA_AVAILABLE,
    available,
    compiled_ssim_accumulate,
    compiled_stencil_partials,
)
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.metrics.ssim import SsimConfig, ssim3d


def small_config(**kw):
    return CheckerConfig(
        pattern2=Pattern2Config(max_lag=kw.pop("max_lag", 3)),
        pattern3=Pattern3Config(window=kw.pop("window", 6)),
        **kw,
    )


class TestAvailability:
    def test_available_reflects_import(self):
        assert available() is NUMBA_AVAILABLE

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
    def test_njit_fallback_is_noop(self):
        from repro.engine.compiled import njit

        def f(x):
            return x + 1

        assert njit(f) is f
        assert njit(cache=True)(f) is f
        assert njit(f)(1) == 2


class TestStencilKernel:
    def test_matches_fused_pattern2(self, noisy_pair):
        """Compiled partials reproduce the fused NumPy stencil stats."""
        plan = small_config()
        full = build_plan(plan).execute(*noisy_pair, backend="fused-host")
        compiled = build_plan(plan).execute(*noisy_pair, backend="compiled-host")
        for key in (
            "derivative_order1", "derivative_order2",
            "divergence", "laplacian",
        ):
            f = full.scalars()[key]
            c = compiled.scalars()[key]
            assert math.isclose(f, c, rel_tol=1e-9, abs_tol=1e-12), key

    def test_partials_shape_and_nonnegativity(self, noisy_pair):
        o, d = noisy_pair
        parts = compiled_stencil_partials(
            o.astype(np.float64), d.astype(np.float64)
        )
        assert parts.shape == (4, 4)
        # sq-diff sums and max-abs-diffs cannot be negative
        assert (parts[:, 2] >= 0).all()
        assert (parts[:, 3] >= 0).all()

    def test_identical_inputs_zero_diffs(self):
        o = np.linspace(0, 1, 6 * 6 * 6).reshape(6, 6, 6)
        parts = compiled_stencil_partials(o, o.copy())
        assert parts[:, 2] == pytest.approx(0.0)
        assert parts[:, 3] == pytest.approx(0.0)


class TestSsimKernel:
    @pytest.mark.parametrize("step", [1, 2, 6])
    def test_matches_sliding_ssim(self, noisy_pair, step):
        """Cascaded sliding sums agree with the summed-area reference,
        including the step<window overlap reuse and step>=window reset
        paths."""
        o, d = noisy_pair
        cfg = SsimConfig(window=6, step=step)
        ref = ssim3d(o, d, cfg)
        L = float(o.max() - o.min())
        c1 = (cfg.k1 * L) ** 2
        c2 = (cfg.k2 * L) ** 2
        total, count, vmin, vmax = compiled_ssim_accumulate(
            o.astype(np.float64), d.astype(np.float64),
            cfg.window, cfg.step, c1, c2,
        )
        assert count == ref.n_windows
        assert total / count == pytest.approx(ref.ssim, rel=1e-9)
        assert vmin == pytest.approx(ref.min_window_ssim, rel=1e-9)
        assert vmax == pytest.approx(ref.max_window_ssim, rel=1e-9)

    def test_backend_level_ssim_equality(self, noisy_pair):
        full = build_plan(small_config(metrics=("ssim",))).execute(
            *noisy_pair, backend="fused-host"
        )
        compiled = build_plan(small_config(metrics=("ssim",))).execute(
            *noisy_pair, backend="compiled-host"
        )
        assert compiled.scalars()["ssim"] == pytest.approx(
            full.scalars()["ssim"], rel=1e-9
        )


class TestGracefulDegradation:
    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
    def test_build_plan_falls_back_with_warning(self):
        with pytest.warns(RuntimeWarning, match="falling back to fused-host"):
            plan = build_plan(small_config(backend="compiled-host"))
        assert plan.backend == "fused-host"

    def test_backend_still_registered(self):
        # the backend object itself always exists (explicit execute()
        # overrides may exercise it interpreted); only *planning* gates
        # on availability
        backend = get_backend("compiled-host")
        assert backend.name == "compiled-host"

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
    def test_dispatcher_never_enumerates_unavailable_backend(self):
        from repro.engine.dispatch import choose

        decision = choose(build_plan(small_config()), (8, 16, 16), 4)
        assert all(c.backend != "compiled-host" for c in decision.candidates)


class TestTiledFallback:
    def test_tiled_pattern2_delegates_to_fused(self, noisy_pair):
        """compiled-host refuses the tiled pattern-2 surface and defers
        to the parent fused implementation — results stay identical."""
        cfg = small_config(tiling=8)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            tiled = build_plan(cfg).execute(*noisy_pair, backend="compiled-host")
            whole = build_plan(small_config()).execute(
                *noisy_pair, backend="fused-host"
            )
        assert tiled.scalars()["laplacian"] == pytest.approx(
            whole.scalars()["laplacian"], rel=1e-9
        )
