import numpy as np
import pytest

from repro.compressors.bitstream import (
    BitReader,
    BitWriter,
    pack_fixed_width,
    unpack_fixed_width,
)
from repro.errors import CompressionError


class TestBitWriterReader:
    def test_roundtrip_mixed_widths(self):
        w = BitWriter()
        values = [(5, 3), (0, 1), (1023, 10), (1, 1), (0xDEADBEEF, 32)]
        for v, n in values:
            w.write(v, n)
        r = BitReader(w.getvalue())
        for v, n in values:
            assert r.read(n) == v

    def test_bit_length_tracking(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b1, 1)
        assert w.bit_length == 4

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write(7, 0)
        assert w.bit_length == 0

    def test_value_masked_to_width(self):
        w = BitWriter()
        w.write(0xFF, 4)
        r = BitReader(w.getvalue())
        assert r.read(4) == 0xF

    def test_unary_roundtrip(self):
        w = BitWriter()
        for v in (0, 1, 5, 13):
            w.write_unary(v)
        r = BitReader(w.getvalue())
        for v in (0, 1, 5, 13):
            assert r.read_unary() == v

    def test_exhausted_stream_raises(self):
        r = BitReader(b"\x01")
        r.read(8)
        with pytest.raises(CompressionError):
            r.read(1)

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        r.read(5)
        assert r.bits_remaining == 11

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(1, -1)
        with pytest.raises(ValueError):
            BitReader(b"\x00").read(-1)


class TestFixedWidthPacking:
    def test_roundtrip(self, rng):
        for width in (1, 3, 7, 8, 13, 31, 33, 64):
            top = min(width, 62)
            values = rng.integers(0, 2**top, size=100).astype(np.uint64)
            blob = pack_fixed_width(values, width)
            out = unpack_fixed_width(blob, width, 100)
            assert np.array_equal(out, values)

    def test_packed_size(self):
        blob = pack_fixed_width(np.zeros(10, dtype=np.uint64), 12)
        assert len(blob) == (10 * 12 + 7) // 8

    def test_overflow_rejected(self):
        with pytest.raises(CompressionError):
            pack_fixed_width(np.array([8], dtype=np.uint64), 3)

    def test_zero_width(self):
        assert pack_fixed_width(np.zeros(5, dtype=np.uint64), 0) == b""
        assert np.array_equal(
            unpack_fixed_width(b"", 0, 5), np.zeros(5, dtype=np.uint64)
        )

    def test_truncated_payload_rejected(self):
        with pytest.raises(CompressionError):
            unpack_fixed_width(b"\x00", 16, 10)

    def test_matches_bitwriter(self):
        values = np.array([3, 1, 7, 5], dtype=np.uint64)
        blob = pack_fixed_width(values, 3)
        r = BitReader(blob)
        for v in values:
            assert r.read(3) == v
