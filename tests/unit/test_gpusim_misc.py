"""Device specs, counters, CPU model, launch validation, memory helpers."""

import numpy as np
import pytest

from repro.errors import LaunchConfigError, ResourceExhausted
from repro.gpusim.counters import KernelStats
from repro.gpusim.cpu import (
    CPU_CYCLES_PER_ELEM,
    CpuWorkload,
    cpu_pass_time,
    cpu_workload_time,
)
from repro.gpusim.device import V100, XEON_6148
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.memory import SmemFifo, TrafficRecorder


class TestDeviceSpec:
    def test_v100_headline_numbers(self):
        """Section IV: 80 SMs, 64 cores/SM (5120 total), 32 GB HBM."""
        assert V100.sm_count == 80
        assert V100.cuda_cores == 5120
        assert V100.global_mem_bytes == 32 * 1024**3
        assert V100.max_warps_per_sm == 64

    def test_xeon_headline_numbers(self):
        assert XEON_6148.cores == 20
        assert XEON_6148.frequency_hz == pytest.approx(2.4e9)
        assert XEON_6148.op_rate < XEON_6148.cores * XEON_6148.frequency_hz


class TestKernelStats:
    def test_derived_properties(self):
        s = KernelStats(
            threads_per_block=256,
            regs_per_thread=56,
            global_read_bytes=100,
            global_write_bytes=20,
        )
        assert s.regs_per_block == 14336
        assert s.global_bytes == 120

    def test_merged_accumulates_traffic(self):
        a = KernelStats(name="a", launches=1, global_read_bytes=10, flops=5)
        b = KernelStats(name="b", launches=2, global_read_bytes=20, flops=7)
        m = a.merged(b)
        assert m.launches == 3
        assert m.global_read_bytes == 30
        assert m.flops == 12

    def test_merged_keeps_max_resources(self):
        a = KernelStats(regs_per_thread=56, smem_per_block=448)
        b = KernelStats(regs_per_thread=30, smem_per_block=17408)
        m = a.merged(b)
        assert m.regs_per_thread == 56
        assert m.smem_per_block == 17408

    def test_scaled(self):
        s = KernelStats(global_read_bytes=100, flops=10)
        d = s.scaled(2.5)
        assert d.global_read_bytes == 250
        assert d.flops == 25
        assert d.threads_per_block == s.threads_per_block

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            KernelStats(flops=-1).validate()

    def test_validate_rejects_traffic_without_launch(self):
        with pytest.raises(ValueError):
            KernelStats(launches=0, global_read_bytes=8).validate()


class TestCpuModel:
    def test_pass_time_scales_linearly(self):
        w1 = CpuWorkload("m", 10**6, 40.0, bytes_streamed=8 * 10**6)
        w2 = CpuWorkload("m", 2 * 10**6, 40.0, bytes_streamed=16 * 10**6)
        t1 = cpu_pass_time(w1)
        t2 = cpu_pass_time(w2)
        assert t2 == pytest.approx(2 * t1 - XEON_6148.omp_fork_latency, rel=1e-6)

    def test_memory_floor(self):
        """A nearly-free metric is still bounded by streaming bandwidth."""
        w = CpuWorkload("cheap", 10**8, 0.01, bytes_streamed=8 * 10**8)
        t = cpu_pass_time(w)
        assert t >= 8 * 10**8 / XEON_6148.mem_bandwidth

    def test_workload_time_sums(self):
        w = CpuWorkload("m", 10**6, 40.0)
        assert cpu_workload_time([w, w]) == pytest.approx(2 * cpu_pass_time(w))

    def test_multi_pass_workload(self):
        one = CpuWorkload("ac", 10**6, 48.0, passes=1)
        ten = CpuWorkload("ac", 10**6, 48.0, passes=10)
        assert ten.total_cycles == 10 * one.total_cycles

    def test_cycle_table_covers_all_patterns(self):
        for name in ("mse", "psnr", "derivative_order1", "autocorrelation",
                     "ssim", "err_pdf"):
            assert CPU_CYCLES_PER_ELEM[name] > 0


class TestLaunchConfig:
    def test_valid_config(self):
        LaunchConfig(grid_x=100, block_x=32, block_y=8).validate(V100)

    def test_too_many_threads(self):
        with pytest.raises(LaunchConfigError):
            LaunchConfig(grid_x=1, block_x=64, block_y=32).validate(V100)

    def test_too_much_smem(self):
        with pytest.raises(ResourceExhausted):
            LaunchConfig(
                grid_x=1, block_x=32, smem_per_block=64 * 1024
            ).validate(V100)

    def test_bad_grid(self):
        with pytest.raises(LaunchConfigError):
            LaunchConfig(grid_x=0, block_x=32).validate(V100)

    def test_warps_per_block_rounds_up(self):
        assert LaunchConfig(grid_x=1, block_x=33).warps_per_block == 2

    def test_cooperative_grid_limit(self):
        cfg = LaunchConfig(grid_x=1, block_x=256)
        assert cfg.cooperative_max_blocks(V100, 4) == 320


class TestTrafficRecorder:
    def test_counters_accumulate(self):
        rec = TrafficRecorder()
        rec.read_global(10)
        rec.write_global(5)
        rec.touch_shared(3)
        rec.shuffle(7)
        rec.compute(11)
        rec.atomic(2)
        assert rec.global_bytes == 60
        assert rec.shared_bytes == 12
        assert rec.shuffle_ops == 7
        assert rec.flops == 11
        assert rec.atomic_ops == 2

    def test_trace_events(self):
        rec = TrafficRecorder(trace=True)
        rec.read_global(1, what="slice")
        assert rec.events == [("gread", "slice", 4)]


class TestSmemFifo:
    def test_rolling_reduce_matches_window_sum(self, rng):
        depth = 4
        slices = rng.normal(size=(10, 3, 5))
        fifo = SmemFifo(depth, (3, 5))
        for k in range(10):
            fifo.push(k, slices[k])
            if k >= depth - 1:
                expected = slices[k - depth + 1 : k + 1].sum(axis=0)
                assert np.allclose(fifo.reduce(), expected)

    def test_reduce_before_fill_raises(self):
        fifo = SmemFifo(3, (2,))
        fifo.push(0, np.zeros(2))
        with pytest.raises(RuntimeError):
            fifo.reduce()

    def test_wrong_slot_shape_rejected(self):
        fifo = SmemFifo(2, (2, 2))
        with pytest.raises(ValueError):
            fifo.push(0, np.zeros(3))

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            SmemFifo(0, (1,))
