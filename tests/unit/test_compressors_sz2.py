import numpy as np
import pytest

from repro.compressors.sz import SZCompressor
from repro.compressors.sz2 import (
    SZ2Compressor,
    _cumsum3,
    _diff3,
    _fit_planes,
    _predict_planes,
)
from repro.errors import CompressionError


class TestBlockPrimitives:
    def test_local_lorenzo_roundtrip(self, rng):
        blocks = rng.integers(-1000, 1000, size=(20, 6, 6, 6)).astype(np.int64)
        assert np.array_equal(_cumsum3(_diff3(blocks)), blocks)

    def test_plane_fit_exact_on_planes(self):
        z, y, x = np.meshgrid(np.arange(6), np.arange(6), np.arange(6),
                              indexing="ij")
        plane = (3.0 + 2.0 * z - 1.0 * y + 0.5 * x)[None]
        q = np.rint(plane).astype(np.int64)
        coeff_q, residuals = _fit_planes(q, plane)
        # a perfect plane leaves only coefficient-grid rounding residuals
        assert np.abs(residuals).max() <= 1

    def test_predict_matches_fit(self, rng):
        scaled = rng.normal(size=(5, 6, 6, 6)) * 10
        q = np.rint(scaled).astype(np.int64)
        coeff_q, residuals = _fit_planes(q, scaled)
        pred = _predict_planes(coeff_q)
        assert np.array_equal(
            q.reshape(5, -1), residuals + pred
        )


class TestSZ2Compressor:
    @pytest.mark.parametrize("rel", [1e-1, 1e-2, 1e-3])
    def test_error_bound_holds(self, smooth_field, rel):
        comp = SZ2Compressor(rel_bound=rel)
        buf = comp.compress(smooth_field)
        dec = comp.decompress(buf)
        err = np.abs(dec.astype(np.float64) - smooth_field.astype(np.float64))
        assert err.max() <= buf.meta["abs_bound"]

    def test_non_multiple_of_block_shapes(self, rng):
        data = rng.normal(size=(7, 13, 20)).astype(np.float32)
        comp = SZ2Compressor(abs_bound=0.01)
        dec = comp.decompress(comp.compress(data))
        assert dec.shape == data.shape
        assert np.abs(dec.astype(np.float64) - data.astype(np.float64)).max() <= 0.01

    def test_beats_lorenzo_at_high_compression(self):
        """The paper's §I claim: the SZ-2.1 predictor wins 'especially
        for high compression cases' (loose bounds)."""
        from repro.datasets.synthetic import spectral_field

        field = spectral_field((48, 48, 48), slope=3.0, seed=3, mean=5.0,
                               std=2.0)
        gain = (
            SZ2Compressor(rel_bound=1e-1).ratio(field)
            / SZCompressor(rel_bound=1e-1).ratio(field)
        )
        assert gain > 1.15

    def test_near_parity_at_tight_bounds(self):
        """At tight bounds both predictors hit the same entropy floor."""
        from repro.datasets.synthetic import spectral_field

        field = spectral_field((48, 48, 48), slope=3.0, seed=3, mean=5.0,
                               std=2.0)
        gain = (
            SZ2Compressor(rel_bound=1e-3).ratio(field)
            / SZCompressor(rel_bound=1e-3).ratio(field)
        )
        assert 0.85 < gain < 1.1

    def test_adaptivity_uses_both_predictors(self):
        """A field with smooth and rough regions should split blocks
        between the predictors."""
        from repro.datasets.synthetic import spectral_field

        rng = np.random.default_rng(0)
        field = spectral_field((24, 24, 24), slope=4.0, seed=1, std=2.0)
        field[:, :12, :] += rng.normal(
            scale=1.0, size=(24, 12, 24)
        ).astype(np.float32)
        comp = SZ2Compressor(rel_bound=3e-2)
        buf = comp.compress(field)
        import struct

        nb, n_reg = struct.unpack("<QQ", buf.payload[:16])
        assert 0 < n_reg < nb

    def test_constant_field(self):
        data = np.full((12, 12, 12), 4.0, dtype=np.float32)
        comp = SZ2Compressor(rel_bound=1e-3)
        dec = comp.decompress(comp.compress(data))
        assert np.abs(dec - data).max() <= 1e-3

    def test_constructor_validation(self):
        with pytest.raises(CompressionError):
            SZ2Compressor()
        with pytest.raises(CompressionError):
            SZ2Compressor(abs_bound=0.1, rel_bound=0.1)

    def test_non_3d_rejected(self):
        with pytest.raises(CompressionError):
            SZ2Compressor(abs_bound=0.1).compress(np.zeros((4, 4)))

    def test_corrupt_coeff_stream_detected(self, smooth_field):
        comp = SZ2Compressor(rel_bound=1e-2)
        buf = comp.compress(smooth_field)
        buf.payload = buf.payload[:20] + b"\x00" * (len(buf.payload) - 20)
        with pytest.raises(Exception):
            comp.decompress(buf)
