import json
import warnings

import numpy as np
import pytest

from repro.datasets.fields import Dataset, Field
from repro.errors import DataIOError
from repro.io.chunkcodec import zstd_available
from repro.io.bundle import (
    DEFAULT_CHUNK_NZ,
    ChunkedFieldWriter,
    load_bundle,
    save_bundle,
    save_bundle_chunked,
    verify_bundle,
)


def _dataset(rng, shape=(11, 6, 7), n_fields=2, dtype=np.float32):
    ds = Dataset(name="mini", description="test")
    for i in range(n_fields):
        ds.add(Field(f"field{i}", rng.normal(size=shape).astype(dtype)))
    return ds


class TestChunkedRoundtrip:
    def test_save_load_roundtrip(self, tmp_path, rng):
        ds = _dataset(rng)
        bundle = save_bundle_chunked(ds, tmp_path / "c", chunk_nz=4)
        assert bundle.version == 2
        assert bundle.field_names == ("field0", "field1")
        back = bundle.load()
        for f in ds.fields:
            assert np.array_equal(back[f.name].data, f.data)

    def test_manifest_records_chunk_geometry(self, tmp_path, rng):
        save_bundle_chunked(_dataset(rng, shape=(10, 4, 5)), tmp_path / "c", chunk_nz=4)
        manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
        assert manifest["format"] == "chunked-v2"
        table = manifest["chunks"]["field0"]
        # 10 slices in 4-deep slabs -> 4 + 4 + 2
        assert [c["nz"] for c in table] == [4, 4, 2]
        assert [c["z0"] for c in table] == [0, 4, 8]
        plane = 4 * 5 * 4  # ny * nx * itemsize
        assert [c["offset"] for c in table] == [0, 4 * plane, 8 * plane]
        assert all(len(c["sha256"]) == 64 for c in table)
        assert len(manifest["file_sha256"]["field0"]) == 64

    def test_manifest_records_value_range(self, tmp_path, rng):
        ds = _dataset(rng, n_fields=1)
        bundle = save_bundle_chunked(ds, tmp_path / "c", chunk_nz=3)
        lo, hi = bundle.value_range("field0")
        data = ds["field0"].data
        assert lo == pytest.approx(float(data.min()))
        assert hi == pytest.approx(float(data.max()))

    def test_iter_chunks_reassembles_exactly(self, tmp_path, rng):
        ds = _dataset(rng, n_fields=1)
        bundle = save_bundle_chunked(ds, tmp_path / "c", chunk_nz=3)
        blocks = [b for _, b in bundle.iter_field_chunks("field0")]
        assert np.array_equal(np.concatenate(blocks), ds["field0"].data)

    def test_iter_chunks_start_skips(self, tmp_path, rng):
        ds = _dataset(rng, n_fields=1)
        bundle = save_bundle_chunked(ds, tmp_path / "c", chunk_nz=3)
        rest = list(bundle.iter_field_chunks("field0", start=2))
        assert rest[0][0].index == 2
        assert rest[0][0].z0 == 6
        assert np.array_equal(
            np.concatenate([b for _, b in rest]), ds["field0"].data[6:]
        )

    def test_data_files_stay_v1_readable(self, tmp_path, rng):
        """v2 keeps the raw contiguous layout, so a v1 reader still works."""
        ds = _dataset(rng, n_fields=1)
        save_bundle_chunked(ds, tmp_path / "c", chunk_nz=4)
        manifest_path = tmp_path / "c" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        for key in ("chunks", "file_sha256", "stats", "chunk_nz", "endian"):
            manifest.pop(key)
        manifest["format"] = "raw-f32-little-c"
        manifest_path.write_text(json.dumps(manifest))
        v1 = load_bundle(tmp_path / "c")
        assert v1.version == 1
        assert np.array_equal(v1.load_field("field0").data, ds["field0"].data)

    def test_v1_bundle_synthesises_chunk_table(self, tmp_path, rng):
        ds = _dataset(rng, n_fields=1)
        bundle = save_bundle(ds, tmp_path / "v1")
        assert bundle.version == 1
        assert bundle.value_range("field0") is None
        table = load_bundle(tmp_path / "v1").field_chunks("field0", chunk_nz=4)
        assert [c.nz for c in table] == [4, 4, 3]
        assert all(c.sha256 is None for c in table)
        blocks = [
            b for _, b in load_bundle(tmp_path / "v1").iter_field_chunks(
                "field0", chunk_nz=4
            )
        ]
        assert np.array_equal(np.concatenate(blocks), ds["field0"].data)

    def test_default_chunk_depth(self, tmp_path, rng):
        ds = _dataset(rng, shape=(DEFAULT_CHUNK_NZ + 1, 4, 4), n_fields=1)
        bundle = save_bundle_chunked(ds, tmp_path / "c")
        assert [c.nz for c in bundle.field_chunks("field0")] == [DEFAULT_CHUNK_NZ, 1]


class TestFloat64Bundles:
    def test_field_path_follows_dtype(self, tmp_path, rng):
        """Regression: field_path hardcoded .f32, breaking float64 bundles."""
        ds = _dataset(rng, dtype=np.float64, n_fields=1)
        bundle = save_bundle(ds, tmp_path / "d")
        assert bundle.dtype == "float64"
        assert bundle.field_path("field0").suffix == ".f64"
        assert bundle.field_path("field0").exists()

    def test_float64_roundtrip_lossless(self, tmp_path, rng):
        ds = _dataset(rng, dtype=np.float64, n_fields=1)
        save_bundle(ds, tmp_path / "d")
        back = load_bundle(tmp_path / "d").load_field("field0")
        assert back.data.dtype == np.float64
        assert np.array_equal(back.data, ds["field0"].data)

    def test_float64_chunked_roundtrip(self, tmp_path, rng):
        ds = _dataset(rng, dtype=np.float64, n_fields=1)
        bundle = save_bundle_chunked(ds, tmp_path / "d", chunk_nz=4)
        assert bundle.dtype == "float64"
        blocks = [b for _, b in bundle.iter_field_chunks("field0")]
        joined = np.concatenate(blocks)
        assert joined.dtype == np.float64
        assert np.array_equal(joined, ds["field0"].data)

    def test_mixed_dtypes_rejected(self, tmp_path, rng):
        ds = Dataset(name="mixed")
        ds.add(Field("a", rng.normal(size=(3, 4, 5)).astype(np.float32)))
        ds.add(Field("b", rng.normal(size=(3, 4, 5)).astype(np.float64)))
        with pytest.raises(DataIOError):
            save_bundle(ds, tmp_path / "m")


class TestChunkedFieldWriter:
    def test_overflow_rejected(self, tmp_path, rng):
        writer = ChunkedFieldWriter(tmp_path, "f", (4, 3, 3))
        writer.append(rng.normal(size=(3, 3, 3)))
        with pytest.raises(DataIOError, match="overflows"):
            writer.append(rng.normal(size=(2, 3, 3)))

    def test_incomplete_field_rejected(self, tmp_path, rng):
        writer = ChunkedFieldWriter(tmp_path, "f", (4, 3, 3))
        writer.append(rng.normal(size=(2, 3, 3)))
        with pytest.raises(DataIOError, match="incomplete"):
            writer.close()

    def test_wrong_plane_rejected(self, tmp_path, rng):
        writer = ChunkedFieldWriter(tmp_path, "f", (4, 3, 3))
        with pytest.raises(DataIOError):
            writer.append(rng.normal(size=(2, 3, 4)))

    def test_closed_writer_rejects_append(self, tmp_path, rng):
        writer = ChunkedFieldWriter(tmp_path, "f", (2, 3, 3))
        writer.append(rng.normal(size=(2, 3, 3)))
        writer.close()
        with pytest.raises(DataIOError, match="closed"):
            writer.append(rng.normal(size=(1, 3, 3)))

    def test_bad_dtype_rejected(self, tmp_path):
        with pytest.raises(DataIOError):
            ChunkedFieldWriter(tmp_path, "f", (2, 3, 3), dtype="int8")


class TestVerifyBundle:
    def test_verify_counts(self, tmp_path, rng):
        bundle = save_bundle_chunked(
            _dataset(rng, shape=(10, 4, 5)), tmp_path / "c", chunk_nz=4
        )
        report = verify_bundle(bundle)
        assert report["fields"] == 2
        assert report["chunks"] == 6  # 3 chunks x 2 fields
        assert report["bytes"] == 2 * 10 * 4 * 5 * 4

    def test_verify_accepts_path(self, tmp_path, rng):
        save_bundle_chunked(_dataset(rng), tmp_path / "c", chunk_nz=4)
        assert verify_bundle(tmp_path / "c")["fields"] == 2

    def test_corrupt_chunk_named(self, tmp_path, rng):
        bundle = save_bundle_chunked(
            _dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3
        )
        path = bundle.field_path("field0")
        target = bundle.field_chunks("field0")[2]
        raw = bytearray(path.read_bytes())
        raw[target.offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(DataIOError, match="chunk 2"):
            verify_bundle(bundle)
        with pytest.raises(DataIOError, match="chunk 2"):
            list(bundle.iter_field_chunks("field0"))
        # verification is opt-out for already-trusted data
        blocks = [b for _, b in bundle.iter_field_chunks("field0", verify=False)]
        assert len(blocks) == 4

    def test_truncated_file_detected(self, tmp_path, rng):
        bundle = save_bundle_chunked(
            _dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3
        )
        path = bundle.field_path("field0")
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(DataIOError, match="size"):
            verify_bundle(bundle)

    def test_shallow_verify_skips_checksums(self, tmp_path, rng):
        bundle = save_bundle_chunked(
            _dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3
        )
        path = bundle.field_path("field0")
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert verify_bundle(bundle, deep=False)["chunks"] == 0


class TestManifestValidation:
    def test_non_contiguous_chunk_table_rejected(self, tmp_path, rng):
        save_bundle_chunked(_dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3)
        manifest_path = tmp_path / "c" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["chunks"]["field0"][1]["z0"] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DataIOError, match="contiguous"):
            load_bundle(tmp_path / "c")

    def test_short_chunk_table_rejected(self, tmp_path, rng):
        save_bundle_chunked(_dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3)
        manifest_path = tmp_path / "c" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["chunks"]["field0"].pop()
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DataIOError, match="covers"):
            load_bundle(tmp_path / "c")

    def test_unknown_format_rejected(self, tmp_path, rng):
        save_bundle(_dataset(rng, n_fields=1), tmp_path / "c")
        manifest_path = tmp_path / "c" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "parquet"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DataIOError, match="format"):
            load_bundle(tmp_path / "c")


class TestCompressedChunks:
    """chunked-v3: zlib/zstd-packed chunk payloads, raw-byte digests."""

    def test_zlib_roundtrip(self, tmp_path, rng):
        ds = _dataset(rng)
        bundle = save_bundle_chunked(ds, tmp_path / "c", chunk_nz=4, codec="zlib")
        assert bundle.version == 3
        assert bundle.codec == "zlib"
        loaded = load_bundle(tmp_path / "c")
        assert loaded.codec == "zlib"
        for name in ds.field_names:
            assert np.array_equal(loaded.load_field(name).data, ds[name].data)
            blocks = [b for _, b in loaded.iter_field_chunks(name)]
            assert np.concatenate(blocks).tobytes() == ds[name].data.tobytes()

    def test_compressible_data_stores_fewer_bytes(self, tmp_path, rng):
        ds = Dataset(name="flat")
        ds.add(Field("f", np.zeros((8, 16, 16), dtype=np.float32)))
        bundle = save_bundle_chunked(ds, tmp_path / "c", chunk_nz=4, codec="zlib")
        report = verify_bundle(bundle)
        assert report["codec"] == "zlib"
        assert report["bytes_stored"] < report["bytes_raw"]
        assert report["bytes_raw"] == 8 * 16 * 16 * 4
        infos = bundle.field_chunks("f")
        assert all(i.stored_nbytes is not None for i in infos)
        assert all(i.stored < i.nbytes for i in infos)

    def test_manifest_carries_codec_and_stored_nbytes(self, tmp_path, rng):
        save_bundle_chunked(
            _dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3, codec="zlib"
        )
        manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
        assert manifest["format"] == "chunked-v3"
        assert manifest["codec"] == "zlib"
        assert all(
            "stored_nbytes" in entry for entry in manifest["chunks"]["field0"]
        )

    def test_raw_codec_manifest_unchanged(self, tmp_path, rng):
        """codec="raw" must emit a byte-identical v2 manifest — the knob
        cannot disturb the committed format."""
        ds = _dataset(rng, n_fields=1)
        save_bundle_chunked(ds, tmp_path / "a", chunk_nz=3)
        save_bundle_chunked(ds, tmp_path / "b", chunk_nz=3, codec="raw")
        a = (tmp_path / "a" / "manifest.json").read_bytes()
        b = (tmp_path / "b" / "manifest.json").read_bytes()
        assert a == b

    def test_digests_cover_uncompressed_bytes(self, tmp_path, rng):
        ds = _dataset(rng, n_fields=1)
        raw = save_bundle_chunked(ds, tmp_path / "raw", chunk_nz=3)
        zl = save_bundle_chunked(ds, tmp_path / "zl", chunk_nz=3, codec="zlib")
        assert [c.sha256 for c in raw.field_chunks("field0")] == [
            c.sha256 for c in zl.field_chunks("field0")
        ]
        assert raw.file_sha256["field0"] == zl.file_sha256["field0"]

    def test_verify_reports_every_corrupt_chunk(self, tmp_path, rng):
        bundle = save_bundle_chunked(
            _dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3, codec="zlib"
        )
        path = bundle.field_path("field0")
        raw = bytearray(path.read_bytes())
        infos = bundle.field_chunks("field0")
        for target in (infos[1], infos[3]):
            raw[target.offset + 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(DataIOError, match="2 integrity failure") as exc:
            verify_bundle(bundle)
        msg = str(exc.value)
        assert "chunk 1" in msg and "chunk 3" in msg

    def test_verify_reports_failures_across_fields(self, tmp_path, rng):
        bundle = save_bundle_chunked(_dataset(rng), tmp_path / "c", chunk_nz=4)
        for name in ("field0", "field1"):
            path = bundle.field_path(name)
            raw = bytearray(path.read_bytes())
            raw[0] ^= 0xFF
            path.write_bytes(bytes(raw))
        with pytest.raises(DataIOError) as exc:
            verify_bundle(bundle)
        msg = str(exc.value)
        assert "'field0'" in msg and "'field1'" in msg

    def test_zstd_write_falls_back_to_zlib_when_missing(self, tmp_path, rng):
        from repro.io import chunkcodec

        if chunkcodec.zstd_available():
            pytest.skip("zstandard installed; fallback path not reachable")
        chunkcodec.reset_codec_warnings()
        with pytest.warns(RuntimeWarning, match="zstandard is not installed"):
            bundle = save_bundle_chunked(
                _dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3,
                codec="zstd",
            )
        assert bundle.codec == "zlib"
        # the warning fires once per process, not once per bundle
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            save_bundle_chunked(
                _dataset(rng, n_fields=1), tmp_path / "d", chunk_nz=3,
                codec="zstd",
            )

    def test_reading_zstd_without_package_is_a_clear_error(self, tmp_path, rng):
        from repro.io import chunkcodec

        if chunkcodec.zstd_available():
            pytest.skip("zstandard installed; missing-reader path unreachable")
        save_bundle_chunked(
            _dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3, codec="zlib"
        )
        manifest_path = tmp_path / "c" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["codec"] = "zstd"
        manifest_path.write_text(json.dumps(manifest))
        loaded = load_bundle(tmp_path / "c")
        with pytest.raises(DataIOError, match="zstandard"):
            list(loaded.iter_field_chunks("field0"))
        with pytest.raises(DataIOError, match="zstandard"):
            verify_bundle(loaded)

    @pytest.mark.skipif(not zstd_available(), reason="zstandard not installed")
    def test_zstd_roundtrip(self, tmp_path, rng):
        ds = _dataset(rng, n_fields=1)
        bundle = save_bundle_chunked(ds, tmp_path / "c", chunk_nz=3, codec="zstd")
        assert bundle.codec == "zstd"
        loaded = load_bundle(tmp_path / "c")
        assert np.array_equal(loaded.load_field("field0").data, ds["field0"].data)
        report = verify_bundle(loaded)
        assert report["codec"] == "zstd"

    def test_v3_manifest_missing_codec_rejected(self, tmp_path, rng):
        save_bundle_chunked(
            _dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3, codec="zlib"
        )
        manifest_path = tmp_path / "c" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["codec"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DataIOError, match="codec"):
            load_bundle(tmp_path / "c")

    def test_unknown_codec_rejected(self, tmp_path, rng):
        with pytest.raises(DataIOError, match="codec"):
            save_bundle_chunked(
                _dataset(rng, n_fields=1), tmp_path / "c", chunk_nz=3,
                codec="lz4",
            )
