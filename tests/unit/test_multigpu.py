import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels.pattern1 import execute_pattern1
from repro.multigpu.checker import MultiGpuCuZC, merge_pattern1
from repro.multigpu.comm import NVLINK_V100, allreduce_time, halo_exchange_time
from repro.multigpu.partition import partition_z


class TestPartition:
    def test_even_split(self):
        parts = partition_z(100, 4)
        assert [p.owned for p in parts] == [25, 25, 25, 25]
        assert parts[0].z0 == 0 and parts[-1].z1 == 100

    def test_uneven_split_spreads_remainder(self):
        parts = partition_z(10, 3)
        assert [p.owned for p in parts] == [4, 3, 3]

    def test_contiguous_coverage(self):
        parts = partition_z(97, 5, halo=2)
        for a, b in zip(parts, parts[1:]):
            assert a.z1 == b.z0

    def test_halo_clipped_at_edges(self):
        parts = partition_z(20, 2, halo=7)
        assert parts[0].halo_lo == 0
        assert parts[0].halo_hi == 7
        assert parts[-1].halo_hi == 0

    def test_with_halo_extent(self):
        parts = partition_z(20, 2, halo=3)
        assert parts[1].with_halo == (10 - 3, 20)

    def test_too_many_gpus(self):
        with pytest.raises(ShapeError):
            partition_z(3, 4)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            partition_z(10, 0)
        with pytest.raises(ValueError):
            partition_z(10, 2, halo=-1)


class TestCommModel:
    def test_single_gpu_free(self):
        assert allreduce_time(1024, 1) == 0.0

    def test_allreduce_grows_with_size_and_ranks(self):
        assert allreduce_time(10**6, 4) < allreduce_time(10**7, 4)
        assert allreduce_time(10**6, 2) < allreduce_time(10**6, 8)

    def test_ring_model_formula(self):
        t = allreduce_time(8 * 10**6, 4)
        expected = 2 * 3 * (NVLINK_V100.latency + 2 * 10**6 / NVLINK_V100.bandwidth)
        assert t == pytest.approx(expected)

    def test_halo_exchange(self):
        assert halo_exchange_time(0) == 0.0
        assert halo_exchange_time(10**6) > NVLINK_V100.latency


class TestMultiGpuCuZC:
    def test_strong_scaling_speedup(self):
        shape = (512, 512, 512)
        t1 = MultiGpuCuZC(1).estimate(shape).total_seconds
        t4 = MultiGpuCuZC(4).estimate(shape).total_seconds
        assert t4 < t1
        assert MultiGpuCuZC(4).estimate(shape).scaling_efficiency(t1) > 0.5

    def test_halo_from_config(self):
        checker = MultiGpuCuZC(2)
        # max(autocorr lag 10, ssim window-1 = 7) = 10
        assert checker._halo() == 10

    def test_pattern1_merge_matches_single_device(self, banded_pair):
        orig, dec = banded_pair
        multi = MultiGpuCuZC(4).assess_pattern1(orig, dec)
        single, _ = execute_pattern1(orig, dec)
        assert multi.n == single.n
        assert multi.min_err == single.min_err
        assert multi.max_err == single.max_err
        assert multi.mse == pytest.approx(single.mse, rel=1e-12)
        assert multi.psnr == pytest.approx(single.psnr, rel=1e-12)
        assert multi.snr == pytest.approx(single.snr, rel=1e-12)
        assert multi.avg_pwr_err == pytest.approx(single.avg_pwr_err, rel=1e-10)
        assert multi.value_range == pytest.approx(single.value_range)

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_pattern1([])

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            MultiGpuCuZC(0)
