"""Tests for the cost-model-driven adaptive dispatcher.

Covers the calibration table (persistence, geometric-EMA folding,
corruption tolerance), candidate enumeration invariants, decision
caching, and the pool-cost worker model.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace

import pytest

from repro.config.defaults import default_config
from repro.engine.dispatch import (
    CalibrationTable,
    calibration_key,
    choose,
    clear_decision_cache,
    default_calibration_path,
    dispatch_plan,
    estimate_assess_seconds,
    host_fingerprint,
    predict_pool_seconds,
    resolve_calibration,
)
from repro.engine.plan import build_plan
from repro.engine.tiling import AUTO_MIN_BYTES, slab_candidates

SMALL = (12, 24, 24)  # valid for all default kernels, far below AUTO_MIN_BYTES
LARGE = (128, 256, 256)  # above AUTO_MIN_BYTES at itemsize 4


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_decision_cache()
    yield
    clear_decision_cache()


class TestCalibrationTable:
    def test_empty_table_ratio_is_identity(self, tmp_path):
        table = CalibrationTable.load(tmp_path / "missing.json")
        assert table.ratio("fused-host.pattern2.whole") == 1.0

    def test_first_fold_adopts_observation(self, tmp_path):
        # the identity prior is the absence of data: one fit run must
        # already produce correctly-ordered predictions
        table = CalibrationTable.load(tmp_path / "cal.json")
        after = table.fold("k", measured_s=2.0, predicted_s=1.0)
        assert after == pytest.approx(2.0)

    def test_fold_moves_ratio_toward_measurement(self, tmp_path):
        table = CalibrationTable.load(tmp_path / "cal.json")
        key = "fused-host.pattern2.whole"
        table.fold(key, measured_s=1.0, predicted_s=1.0)
        # measured 2x the prediction: ratio must rise, but (EMA) not all
        # the way to 2.0 in one step
        after = table.fold(key, measured_s=2.0, predicted_s=1.0)
        assert 1.0 < after < 2.0
        # repeated folds converge on the true ratio
        for _ in range(40):
            after = table.fold(key, measured_s=2.0, predicted_s=1.0)
        assert after == pytest.approx(2.0, rel=1e-3)

    def test_fold_is_geometric(self, tmp_path):
        # after seeding, the EMA runs in log space: the second fold lands
        # at r0^(1-a) * r1^a (an arithmetic EMA would not)
        from repro.engine.dispatch import CALIBRATION_ALPHA as A

        table = CalibrationTable.load(tmp_path / "cal.json")
        table.fold("k", 2.0, 1.0)
        after = table.fold("k", 8.0, 1.0)
        assert math.isclose(after, 2.0 ** (1 - A) * 8.0**A, rel_tol=1e-9)

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "cal.json"
        table = CalibrationTable.load(path)
        table.host = host_fingerprint()
        table.fold("a.pattern1.whole", 3.0, 1.0)
        table.fold("a.pattern1.slab", 0.5, 1.0)
        table.save(path)

        loaded = CalibrationTable.load(path)
        assert loaded.ratio("a.pattern1.whole") == pytest.approx(
            table.ratio("a.pattern1.whole")
        )
        assert loaded.ratio("a.pattern1.slab") == pytest.approx(
            table.ratio("a.pattern1.slab")
        )
        assert loaded.host.get("cpu_count") == host_fingerprint()["cpu_count"]

    def test_corrupt_file_loads_as_empty(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text("{not json")
        table = CalibrationTable.load(path)
        assert table.ratio("anything") == 1.0

    def test_wrong_schema_loads_as_empty(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text(json.dumps([1, 2, 3]))
        table = CalibrationTable.load(path)
        assert table.ratio("anything") == 1.0

    def test_sample_counts_persist(self, tmp_path):
        path = tmp_path / "cal.json"
        table = CalibrationTable.load(path)
        table.fold("k", 1.5, 1.0)
        table.fold("k", 1.5, 1.0)
        table.save(path)
        doc = json.loads(path.read_text())
        assert doc["entries"]["k"]["samples"] == 2


class TestCalibrationConcurrency:
    """Regression: concurrent saves must never corrupt the table."""

    def test_merge_keeps_disk_only_keys(self, tmp_path):
        path = tmp_path / "cal.json"
        first = CalibrationTable.load(path)
        first.fold("a.pattern1.whole", 2.0, 1.0)
        first.save(path)
        # a second writer that never observed key "a..." must not clobber it
        second = CalibrationTable.load(tmp_path / "elsewhere.json")
        second.fold("b.pattern2.slab", 3.0, 1.0)
        second.save(path)
        loaded = CalibrationTable.load(path)
        assert loaded.ratio("a.pattern1.whole") == pytest.approx(2.0)
        assert loaded.ratio("b.pattern2.slab") == pytest.approx(3.0)

    def test_merge_is_per_key_last_writer_wins(self, tmp_path):
        path = tmp_path / "cal.json"
        stale = CalibrationTable.load(path)
        stale.fold("k", 2.0, 1.0)
        stale.save(path)
        fresh = CalibrationTable.load(path)
        fresh.fold("k", 8.0, 1.0)  # EMA from 2.0 toward 8.0
        fresh.save(path)
        # the writer's own observation of a shared key wins over disk
        assert CalibrationTable.load(path).ratio("k") == pytest.approx(
            fresh.ratio("k")
        )

    def test_save_without_merge_clobbers(self, tmp_path):
        path = tmp_path / "cal.json"
        first = CalibrationTable.load(path)
        first.fold("a", 2.0, 1.0)
        first.save(path)
        second = CalibrationTable.load(tmp_path / "other.json")
        second.fold("b", 3.0, 1.0)
        second.save(path, merge=False)
        loaded = CalibrationTable.load(path)
        assert loaded.ratio("a") == 1.0  # gone: whole-file replace
        assert loaded.ratio("b") == pytest.approx(3.0)

    def test_concurrent_savers_never_corrupt(self, tmp_path):
        import threading

        path = tmp_path / "cal.json"
        n_writers, rounds = 8, 5
        errors: list[BaseException] = []

        def writer(i: int):
            try:
                for r in range(rounds):
                    table = CalibrationTable.load(path)
                    table.fold(f"w{i}.pattern1.whole", 1.0 + i + r, 1.0)
                    table.save(path)
                    # every intermediate state must be complete JSON —
                    # os.replace guarantees no reader ever sees a torn file
                    json.loads(path.read_text())
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(n_writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = CalibrationTable.load(path)
        # merge semantics: every writer's (distinct) key survived
        for i in range(n_writers):
            assert f"w{i}.pattern1.whole" in final.entries
        assert not list(tmp_path.glob(".cal.json.*.tmp"))  # no litter


class TestResolveCalibration:
    def test_off_is_none(self):
        assert resolve_calibration("off") is None

    def test_auto_is_default_path(self):
        assert resolve_calibration("auto").path == default_calibration_path()
        assert resolve_calibration("").path == default_calibration_path()

    def test_explicit_path(self, tmp_path):
        p = tmp_path / "t.json"
        assert resolve_calibration(str(p)).path == p


class TestCalibrationKey:
    def test_layout_in_key(self):
        assert calibration_key("fused-host", "pattern2", None).endswith(".whole")
        assert calibration_key("fused-host", "pattern2", 16).endswith(".slab")

    def test_backend_and_kind_in_key(self):
        key = calibration_key("metric-oriented", "pattern3", None)
        assert key.startswith("metric-oriented.pattern3")


class TestChoose:
    def _plan(self, **overrides):
        cfg = replace(default_config(), calibration="off", **overrides)
        return build_plan(cfg)

    def test_small_shape_gets_only_whole_candidates(self):
        decision = choose(self._plan(), SMALL, 4)
        assert SMALL[0] * SMALL[1] * SMALL[2] * 4 < AUTO_MIN_BYTES
        assert all(c.slab is None for c in decision.candidates)

    def test_large_shape_gets_slab_candidates(self):
        decision = choose(self._plan(), LARGE, 4)
        slabs = {c.slab for c in decision.candidates}
        assert None in slabs
        assert any(s is not None for s in slabs)
        # the slab candidates come from the tiling module's enumeration
        expected = set(slab_candidates(LARGE, "auto"))
        assert {c.slab for c in decision.candidates if c.backend == "fused-host"} \
            <= expected

    def test_pinned_backend_restricts_candidates(self):
        decision = choose(self._plan(), SMALL, 4, pinned="metric-oriented")
        assert {c.backend for c in decision.candidates} == {"metric-oriented"}
        assert decision.chosen.backend == "metric-oriented"

    def test_unfused_config_skips_fused_backends(self):
        decision = choose(self._plan(fused=False), SMALL, 4)
        assert {c.backend for c in decision.candidates} == {"metric-oriented"}

    def test_chosen_is_cheapest(self):
        decision = choose(self._plan(), LARGE, 4)
        cheapest = min(decision.candidates, key=lambda c: c.total_ms)
        assert decision.chosen.total_ms == cheapest.total_ms

    def test_gpusim_candidate_priced_by_model(self):
        decision = choose(self._plan(backend="gpusim"), SMALL, 4,
                          pinned="gpusim")
        assert all(c.source == "gpusim-model" for c in decision.candidates)

    def test_calibration_can_flip_the_choice(self, tmp_path):
        plan = self._plan()
        baseline = choose(plan, SMALL, 4)
        loser = next(
            c for c in baseline.candidates
            if c.label != baseline.chosen.label
        )
        # make every step of the current winner look 1000x slower
        table = CalibrationTable.load(tmp_path / "cal.json")
        for step in baseline.chosen.steps:
            table.fold(step.key, measured_s=1000.0, predicted_s=1.0)
            for _ in range(60):
                table.fold(step.key, 1000.0, 1.0)
        flipped = choose(plan, SMALL, 4, table=table)
        assert flipped.chosen.backend == loser.backend

    def test_decision_to_dict_is_json_serialisable(self):
        decision = choose(self._plan(), SMALL, 4)
        doc = json.loads(json.dumps(decision.to_dict()))
        assert doc["chosen"] == decision.chosen.label
        labels = [c["label"] for c in doc["candidates"]]
        assert doc["chosen"] in labels


class TestDispatchPlan:
    def _plan(self, **overrides):
        cfg = replace(default_config(), calibration="off", **overrides)
        return build_plan(cfg)

    def test_attaches_decision_and_backend(self):
        plan = dispatch_plan(self._plan(), SMALL, 4)
        assert plan.decision is not None
        assert plan.backend == plan.decision.chosen.backend

    def test_bad_shape_returns_undecided_plan(self):
        plan = self._plan()
        out = dispatch_plan(plan, (0, 0, 0), 4)
        assert out.decision is None
        assert out.backend == plan.backend

    def test_preserves_user_tiling_when_choice_matches_default(self):
        plan = self._plan()
        out = dispatch_plan(plan, SMALL, 4)
        # small shape -> whole-array choice == the "auto" default, so the
        # user's literal tiling setting must survive into reports
        assert out.config.tiling == plan.config.tiling

    def test_decision_is_cached(self):
        plan = self._plan()
        a = dispatch_plan(plan, SMALL, 4)
        b = dispatch_plan(plan, SMALL, 4)
        assert a.decision is b.decision

    def test_cache_distinguishes_shapes(self):
        plan = self._plan()
        a = dispatch_plan(plan, SMALL, 4)
        b = dispatch_plan(plan, (14, 24, 24), 4)
        assert a.decision is not b.decision


class TestWorkerModel:
    def test_estimate_scales_with_bytes(self):
        assert estimate_assess_seconds(2 << 20) == pytest.approx(
            2 * estimate_assess_seconds(1 << 20)
        )

    def test_serial_ignores_workers(self):
        a = predict_pool_seconds(8, 0.1, 1, "serial")
        b = predict_pool_seconds(8, 0.1, 4, "serial")
        assert a == b

    def test_process_pool_amortises_large_tasks(self):
        # large tasks: 4 workers beat 1
        big = predict_pool_seconds(8, 1.0, 1, "process")
        par = predict_pool_seconds(8, 1.0, 4, "process")
        assert par < big

    def test_process_overhead_penalises_tiny_tasks(self):
        # tiny tasks: worker spawn overhead dominates, serial-ish wins
        one = predict_pool_seconds(2, 1e-5, 1, "process")
        many = predict_pool_seconds(2, 1e-5, 32, "process")
        assert one < many

    def test_thread_pool_partial_parallelism(self):
        t1 = predict_pool_seconds(8, 0.1, 1, "thread")
        t4 = predict_pool_seconds(8, 0.1, 4, "thread")
        # threads help (GIL releases in NumPy) but sublinearly
        assert t4 < t1
        assert t4 > t1 / 4
