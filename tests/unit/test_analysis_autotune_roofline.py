import pytest

from repro.analysis.autotune import project_devices, tune_pattern3_yrows
from repro.errors import GpuSimError
from repro.gpusim.device import A100, V100
from repro.gpusim.roofline import roofline_point, roofline_report
from repro.kernels.pattern1 import plan_pattern1
from repro.kernels.pattern2 import plan_pattern2
from repro.kernels.pattern3 import Pattern3Config, plan_pattern3

HURRICANE = (100, 500, 500)


class TestAutotune:
    def test_paper_geometry_is_the_model_optimum(self):
        """The model independently recovers the paper's hand-tuned
        operating point (12 rows -> 11k regs / ~16-20KB smem / 4 TB/SM)."""
        points, best = tune_pattern3_yrows(HURRICANE)
        assert best.yrows == 12
        assert best.concurrent_blocks_per_sm == 4

    def test_tradeoff_shape(self):
        """Cost is U-shaped: too few rows re-read ghosts, too many rows
        kill concurrency."""
        points, best = tune_pattern3_yrows(HURRICANE)
        by = {p.yrows: p.seconds for p in points if p.valid}
        assert by[8] > by[best.yrows]
        assert by[18] > by[best.yrows]

    def test_oversized_fifo_flagged_invalid(self):
        points, _ = tune_pattern3_yrows(HURRICANE)
        too_big = [p for p in points if p.smem_per_block > 48 * 1024]
        assert too_big and all(not p.valid for p in too_big)

    def test_candidates_below_window_skipped(self):
        points, _ = tune_pattern3_yrows(
            HURRICANE, Pattern3Config(window=8), candidates=[4, 6, 8, 10]
        )
        assert min(p.yrows for p in points) == 8

    def test_no_valid_geometry_raises(self):
        with pytest.raises(GpuSimError):
            tune_pattern3_yrows(
                HURRICANE, Pattern3Config(window=8), candidates=[2, 4]
            )

    def test_project_devices(self):
        out = project_devices(HURRICANE, plan_pattern3, [V100, A100])
        assert out["A100-SXM4-40GB"] < out["Tesla V100"]


class TestRoofline:
    def test_pattern1_memory_side_pattern3_compute_side(self):
        p1 = roofline_point(plan_pattern1(HURRICANE))
        p3 = roofline_point(plan_pattern3(HURRICANE))
        assert p3.arithmetic_intensity > p1.arithmetic_intensity
        assert p3.limiting_roof == "compute"

    def test_achieved_below_attainable(self):
        for plan in (plan_pattern1(HURRICANE), plan_pattern2(HURRICANE),
                     plan_pattern3(HURRICANE)):
            pt = roofline_point(plan)
            assert 0.0 < pt.roof_fraction <= 1.0 + 1e-9

    def test_attainable_is_roofline_min(self):
        pt = roofline_point(plan_pattern1(HURRICANE))
        assert pt.attainable_ops <= V100.sustained_op_rate
        assert pt.attainable_ops <= (
            pt.arithmetic_intensity * V100.peak_bandwidth * 1.0001
        )

    def test_report_covers_all_plans(self):
        plans = [plan_pattern1(HURRICANE), plan_pattern3(HURRICANE)]
        report = roofline_report(plans)
        assert [r.name for r in report] == ["cuZC.pattern1", "cuZC.pattern3"]
