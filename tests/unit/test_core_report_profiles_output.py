import json
import math

import numpy as np
import pytest

from repro.core.checker import CuZChecker
from repro.core.output import report_to_text, write_report_dats, write_report_json
from repro.core.profiles import runtime_profile
from repro.datasets.registry import PAPER_SHAPES
from repro.metrics.base import Pattern


@pytest.fixture(scope="module")
def report():
    from repro.datasets.synthetic import spectral_field
    from repro.compressors.sz import SZCompressor

    orig = spectral_field((16, 18, 20), slope=3.0, seed=11, mean=2.0)
    comp = SZCompressor(rel_bound=1e-3)
    dec = comp.decompress(comp.compress(orig))
    checker = CuZChecker(with_baselines=True)
    return checker.assess(orig, dec)


class TestAssessmentReport:
    def test_scalars_cover_patterns(self, report):
        scalars = report.scalars()
        for key in ("mse", "psnr", "ssim", "derivative_order1", "pearson"):
            assert key in scalars

    def test_values_typed(self, report):
        values = {v.name: v for v in report.values()}
        assert values["mse"].pattern is Pattern.GLOBAL_REDUCTION
        assert values["ssim"].pattern is Pattern.SLIDING_WINDOW
        assert values["mse"].is_scalar
        assert not values["err_pdf"].is_scalar

    def test_speedups_readable(self, report):
        assert report.speedup("ompZC") > 1.0
        assert report.speedup("moZC") > 1.0

    def test_to_dict_json_serialisable(self, report):
        blob = json.dumps(report.to_dict())
        parsed = json.loads(blob)
        assert parsed["shape"] == [16, 18, 20]
        assert "timings" in parsed
        assert "autocorrelation" in parsed

    def test_nonfinite_metrics_nulled_in_dict(self):
        from repro.datasets.synthetic import spectral_field

        orig = spectral_field((16, 16, 16), seed=1)
        checker = CuZChecker()
        rep = checker.assess(orig, orig.copy())  # lossless: inf PSNR
        d = rep.to_dict()
        assert d["metrics"]["psnr"] is None


class TestRuntimeProfile:
    def test_table2_reproduction(self):
        rows = runtime_profile(PAPER_SHAPES)
        assert len(rows) == 12  # 3 patterns x 4 datasets
        by = {(r.pattern, r.dataset): r for r in rows}
        # paper Table II resource columns
        assert by[(1, "hurricane")].regs_per_block == 14336
        assert by[(1, "hurricane")].smem_per_block == 448
        assert by[(2, "nyx")].regs_per_block == 2304
        assert by[(2, "nyx")].smem_per_block == 17408
        assert by[(3, "miranda")].regs_per_block == 11136
        # paper: pattern-1 concurrency capped at 4 by registers (64k/14k)
        assert by[(1, "nyx")].concurrent_blocks_per_sm == 4
        assert by[(1, "nyx")].blocks_per_sm == 7

    def test_formatted_cells(self):
        rows = runtime_profile({"hurricane": PAPER_SHAPES["hurricane"]})
        cells = rows[0].formatted()
        assert cells["Regs/TB"] == "14.3k"
        assert cells["SMem/TB"] == "0.4KB"


class TestOutputEngine:
    def test_text_report_mentions_key_metrics(self, report):
        text = report_to_text(report)
        assert "psnr" in text
        assert "ssim" in text
        assert "speedup vs ompZC" in text

    def test_json_written(self, report, tmp_path):
        path = write_report_json(report, tmp_path / "report.json")
        parsed = json.loads(path.read_text())
        assert "metrics" in parsed

    def test_dat_series_written(self, report, tmp_path):
        paths = write_report_dats(report, tmp_path / "dats")
        names = {p.name for p in paths}
        assert names == {"err_pdf.dat", "pwr_err_pdf.dat", "autocorrelation.dat"}
        content = (tmp_path / "dats" / "autocorrelation.dat").read_text()
        first_row = content.splitlines()[2].split()
        assert float(first_row[0]) == 0.0
        assert float(first_row[1]) == 1.0
