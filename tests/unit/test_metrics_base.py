import pytest

from repro.errors import UnknownMetricError
from repro.metrics.base import (
    METRIC_REGISTRY,
    PATTERN1_METRICS,
    PATTERN2_METRICS,
    PATTERN3_METRICS,
    MetricSpec,
    Pattern,
    metrics_by_pattern,
    pattern_of,
    register_metric,
    table1,
)


class TestRegistry:
    def test_paper_metric_counts(self):
        """Table I: 14 global-reduction metrics (13 user-facing + value
        range), 5 stencil metrics, 1 sliding-window metric."""
        assert len(PATTERN1_METRICS) == 14
        assert len(PATTERN2_METRICS) == 5
        assert PATTERN3_METRICS == ("ssim",)

    def test_total_supported_metrics_over_twenty(self):
        """The paper: 'cuZ-Checker aims to support 20+ assessment
        metrics'."""
        assert len(METRIC_REGISTRY) >= 20

    def test_table1_contents(self):
        t = table1()
        cat1 = t["Category I (global reduction)"]
        for name in ("min_err", "max_err", "avg_err", "err_pdf", "mse",
                     "rmse", "nrmse", "snr", "psnr"):
            assert name in cat1
        cat2 = t["Category II (stencil-like)"]
        for name in ("derivative_order1", "divergence", "laplacian",
                     "autocorrelation"):
            assert name in cat2
        assert t["Category III (sliding window)"] == ("ssim",)

    def test_pattern_of(self):
        assert pattern_of("mse") is Pattern.GLOBAL_REDUCTION
        assert pattern_of("laplacian") is Pattern.STENCIL
        assert pattern_of("ssim") is Pattern.SLIDING_WINDOW
        assert pattern_of("compression_ratio") is Pattern.AUXILIARY

    def test_pattern_of_unknown_raises(self):
        with pytest.raises(UnknownMetricError):
            pattern_of("does_not_exist")

    def test_metrics_by_pattern_partition(self):
        all_names = set(METRIC_REGISTRY)
        partitioned = set()
        for pattern in Pattern:
            partitioned |= set(metrics_by_pattern(pattern))
        assert partitioned == all_names

    def test_reuse_links_registered(self):
        assert "mse" in METRIC_REGISTRY["rmse"].reuses
        assert "value_range" in METRIC_REGISTRY["psnr"].reuses

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError):
            register_metric(
                MetricSpec("mse", Pattern.STENCIL, "conflicting description")
            )

    def test_idempotent_registration(self):
        spec = METRIC_REGISTRY["mse"]
        assert register_metric(spec) is spec

    def test_category_labels(self):
        assert Pattern.GLOBAL_REDUCTION.category == "Category I"
        assert Pattern.STENCIL.category == "Category II"
        assert Pattern.SLIDING_WINDOW.category == "Category III"

    def test_vector_valued_flags(self):
        assert METRIC_REGISTRY["err_pdf"].vector_valued
        assert METRIC_REGISTRY["autocorrelation"].vector_valued
        assert not METRIC_REGISTRY["mse"].vector_valued
