"""Perf-regression gate for the host-fusion benchmark.

Compares a fresh ``bench_host_fusion.py`` run against the committed
``BENCH_host_fusion.json`` trajectory and fails (exit 1) when any fused
path regressed by more than the threshold.  Absolute wall-clock differs
wildly across CI machines, so the *gated* quantities are the in-run
speedup ratios (fused vs unfused, sliding vs naive SSIM) — a slowdown
of the fused implementation shows up as a drop in its speedup over the
reference implementation measured on the same machine in the same run.
Raw seconds are printed in the delta table for context but not gated.

Baseline values are the medians over the committed runs with the same
``--quick`` flag as the fresh run, which keeps one noisy historical
entry from moving the gate.

The process-executor sections additionally pass through an *absolute*
core-aware gate (:func:`process_gate`): hosts with two or more usable
cores must show a real x4 speedup over serial, single-core hosts must
stay within the parity floor — overhead bounded even where parallelism
is physically unavailable.

The ``dispatch`` section passes through :func:`dispatch_gate`: on every
case the calibrated adaptive plan must either pick the measured-best
static (backend, tiling) candidate or land within 5% of its wall-clock.

The ``audit_parallel`` section passes through :func:`audit_gate`, the
same core-aware split as :func:`process_gate`: a multi-core host must
audit faster with two workers than serially, a single-core host only
has its coordinator/part-file overhead bounded.

Usage::

    PYTHONPATH=src python benchmarks/bench_host_fusion.py --quick --output fresh.json
    python tools/check_bench.py --fresh fresh.json [--baseline BENCH_host_fusion.json]
        [--threshold 0.15]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: (label, path into one run entry, gated?) — gated rows are speedup
#: ratios and fail the check when fresh < baseline * (1 - threshold);
#: seconds rows are informational
ROWS = [
    ("fused vs unfused speedup", ("fused", "speedup"), True),
    ("sliding vs naive SSIM speedup", ("ssim", "speedup"), True),
    ("tiled vs whole speedup", ("tiled", "speedup"), True),
    ("tiled peak-memory reduction", ("tiled", "peak_reduction"), True),
    ("fused seconds", ("fused", "fused_seconds"), False),
    ("tiled seconds", ("tiled", "tiled_seconds"), False),
    ("whole-array seconds", ("tiled", "whole_seconds"), False),
    ("unfused seconds", ("fused", "unfused_seconds"), False),
    ("sliding SSIM seconds", ("ssim", "sliding_seconds"), False),
    ("parallel x1 seconds", ("parallel", "workers", "1", "seconds"), False),
    ("parallel x4 seconds", ("parallel", "workers", "4", "seconds"), False),
    ("slab x1 seconds", ("slab", "workers", "1", "seconds"), False),
    ("slab x4 seconds", ("slab", "workers", "4", "seconds"), False),
    ("process batch x4 speedup",
     ("parallel_process", "workers", "4", "speedup_vs_1"), False),
    ("process slab x4 speedup",
     ("slab_process", "workers", "4", "speedup_vs_1"), False),
    ("process vs thread batch x4", ("parallel_process", "vs_thread_x4"), False),
    ("process vs thread slab x4", ("slab_process", "vs_thread_x4"), False),
    ("process batch x4 seconds",
     ("parallel_process", "workers", "4", "seconds"), False),
    ("process slab x4 seconds",
     ("slab_process", "workers", "4", "seconds"), False),
    ("audit parallel speedup",
     ("audit_parallel", "speedup_vs_serial"), False),
    ("audit serial seconds", ("audit_parallel", "serial_seconds"), False),
    ("audit parallel seconds",
     ("audit_parallel", "parallel_seconds"), False),
]

#: absolute floors on the process executor's best speedup-vs-serial
#: (max over the 2- and 4-worker rows), keyed by whether the run's host
#: could actually parallelise.  A multi-core host must beat serial
#: outright at some worker count; a host with one usable core physically
#: cannot (there is no second core to run the second worker), so the
#: floor there only bounds the pool's dispatch + attach + context-switch
#: overhead (measured 0.6-0.85x on the 1-core reference container,
#: task-size dependent — the smaller the field, the larger the IPC share).
PROCESS_FLOOR_MULTI_CORE = 1.0
PROCESS_FLOOR_SINGLE_CORE = 0.5

#: absolute floors on the parallel audit's speedup over the serial loop
#: (same core-aware split as the process-executor gate).  Audits stream
#: from disk through per-chunk checkpoints, so the single-core floor is
#: lower than the in-memory pools': the coordinator's poll/merge loop
#: and the per-worker part-file writes are pure overhead when both
#: workers share one core (measured ~0.4-0.7x there).
AUDIT_FLOOR_MULTI_CORE = 1.0
AUDIT_FLOOR_SINGLE_CORE = 0.4

#: adaptive dispatch must land within this factor of the measured-best
#: static candidate on every ``dispatch`` section case (unless it chose
#: the best candidate outright, in which case timing noise is irrelevant)
DISPATCH_TOLERANCE = 1.05


def dispatch_gate(fresh: dict) -> list[str]:
    """Absolute gate: adaptive plan within 5% of the best static plan."""
    cases = (fresh.get("dispatch") or {}).get("cases") or []
    failures = []
    for case in cases:
        if case.get("matched_best"):
            continue
        ratio = float(case.get("adaptive_vs_best", 0.0))
        if ratio > DISPATCH_TOLERANCE:
            failures.append(
                f"dispatch {tuple(case.get('shape', ()))}: adaptive chose "
                f"{case.get('adaptive_chosen')} at {ratio:.3f}x the best "
                f"static {case.get('best_static')} "
                f"(tolerance {DISPATCH_TOLERANCE}x)"
            )
    return failures


def process_gate(fresh: dict) -> list[str]:
    """Core-aware absolute gate on the process executor sections."""
    cores = int(fresh.get("avail_cores") or 1)
    multi = cores >= 2
    floor = PROCESS_FLOOR_MULTI_CORE if multi else PROCESS_FLOOR_SINGLE_CORE
    kind = "speedup" if multi else "parity"
    failures = []
    for label, section in (
        ("process batch", "parallel_process"), ("process slab", "slab_process"),
    ):
        values = [
            _lookup(fresh, (section, "workers", w, "speedup_vs_1"))
            for w in ("2", "4")
        ]
        values = [v for v in values if v is not None]
        if not values:
            continue  # host cannot run the process executor at all
        best = max(values)
        if best <= floor:
            failures.append(
                f"{label}: best speedup_vs_1 {best:.3f} is below the "
                f"{kind} floor {floor} ({cores} usable cores)"
            )
    return failures


def audit_gate(fresh: dict) -> list[str]:
    """Core-aware absolute gate on the parallel archive audit."""
    speedup = _lookup(fresh, ("audit_parallel", "speedup_vs_serial"))
    if speedup is None:
        return []  # host cannot run the process executor at all
    cores = int(fresh.get("avail_cores") or 1)
    multi = cores >= 2
    floor = AUDIT_FLOOR_MULTI_CORE if multi else AUDIT_FLOOR_SINGLE_CORE
    kind = "speedup" if multi else "parity"
    if speedup <= floor:
        return [
            f"parallel audit: speedup_vs_serial {speedup:.3f} is below the "
            f"{kind} floor {floor} ({cores} usable cores)"
        ]
    return []


def _lookup(entry: dict, path: tuple[str, ...]) -> float | None:
    node = entry
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node)


def _load_runs(path: Path) -> list[dict]:
    doc = json.loads(path.read_text())
    runs = doc.get("runs", [])
    if not runs:
        raise SystemExit(f"{path} contains no benchmark runs")
    return runs


def compare(fresh: dict, baseline_runs: list[dict], threshold: float):
    """Build the delta table and the list of gate failures."""
    matching = [r for r in baseline_runs if r.get("quick") == fresh.get("quick")]
    if not matching:
        matching = baseline_runs
    table = []
    failures = []
    for label, path, gated in ROWS:
        fresh_val = _lookup(fresh, path)
        base_vals = [v for v in (_lookup(r, path) for r in matching) if v is not None]
        if fresh_val is None or not base_vals:
            continue
        base = statistics.median(base_vals)
        delta = (fresh_val - base) / base if base else 0.0
        row = {
            "metric": label,
            "baseline": f"{base:.4g}",
            "fresh": f"{fresh_val:.4g}",
            "delta": f"{delta:+.1%}",
            "gate": f"> {-threshold:.0%}" if gated else "(info)",
        }
        if gated and fresh_val < base * (1.0 - threshold):
            row["gate"] = "FAIL"
            failures.append(
                f"{label}: {fresh_val:.4g} is more than {threshold:.0%} below "
                f"the baseline median {base:.4g}"
            )
        table.append(row)
    return table, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", type=Path, required=True,
                        help="JSON written by a fresh bench_host_fusion.py run")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_host_fusion.json",
    )
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="maximum tolerated fractional slowdown (default 0.15)")
    parser.add_argument(
        "--require-multicore", action="store_true",
        help="fail unless the fresh run saw >= 2 usable cores, so the "
        "process gate's >1x speedup floor (not just the single-core "
        "parity floor) is the one actually exercised",
    )
    args = parser.parse_args(argv)

    fresh = _load_runs(args.fresh)[-1]
    baseline_runs = _load_runs(args.baseline)
    table, failures = compare(fresh, baseline_runs, args.threshold)
    if args.require_multicore:
        cores = int(fresh.get("avail_cores") or 1)
        if cores < 2:
            failures.append(
                f"--require-multicore: fresh run saw only {cores} usable "
                f"core(s); the >1x process-executor floor was not exercised"
            )
    failures += process_gate(fresh)
    failures += dispatch_gate(fresh)
    failures += audit_gate(fresh)

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    try:
        from repro.viz.ascii import ascii_table

        print(ascii_table(table, title="host-fusion benchmark vs committed baseline"))
    except ImportError:  # keep the gate usable without the package
        for row in table:
            print(row)

    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nperf regression gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
