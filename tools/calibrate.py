#!/usr/bin/env python3
"""Calibration harness.

Two modes:

``report`` (default)
    Prints every paper-target quantity side by side.  Run after touching
    any cost-model constant; EXPERIMENTS.md records the final numbers.
    Targets come from the paper's Section IV:

      Fig 10  overall speedups:   cuZC/ompZC 22.6-31.2, cuZC/moZC 1.49-1.7
      Fig 11a pattern-1 GB/s:     cuZC 103-137, moZC 17-31, ompZC 0.44-0.51
      Fig 11c pattern-3 MB/s:     cuZC 497-758, moZC 351-514, ompZC 24.8-26.6
      Fig 12a pattern-1 speedups: 227-268 (ompZC), 3.49-6.38 (moZC)
      Fig 12b pattern-2 speedups: 17.1-47.4 (ompZC), 1.79-1.86 (moZC)
      Fig 12c pattern-3 speedups: 19.2-28.5 (ompZC), 1.42-1.63 (moZC)

``fit``
    The measure half of the adaptive-dispatch loop: runs traced
    assessments of every static (backend, tiling) candidate on this
    host, extracts per-step (measured, predicted) pairs from the span
    attrs, folds the ratios into the persistent calibration table with
    the geometric EMA, and saves it (host-fingerprinted).  Subsequent
    ``build_plan(shape=...)`` calls read the table and their predictions
    move toward this host's measured behaviour.

      python tools/calibrate.py fit [--table PATH] [--repeats N] [--quick]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from collections import defaultdict
from pathlib import Path


def fmt_range(values):
    return f"{min(values):8.3f} – {max(values):8.3f}"


def cmd_report(args) -> int:
    from repro.config.defaults import default_config
    from repro.core.frameworks import CuZC, MoZC, OmpZC
    from repro.datasets.registry import PAPER_SHAPES

    config = default_config()
    fw = {"cuZC": CuZC(), "moZC": MoZC(), "ompZC": OmpZC()}
    est = {
        name: {ds: f.estimate(shape, config) for ds, shape in PAPER_SHAPES.items()}
        for name, f in fw.items()
    }

    print("=== per-pattern throughput (paper counts orig+dec bytes) ===")
    for p, unit, div in ((1, "GB/s", 1e9), (2, "GB/s", 1e9), (3, "MB/s", 1e6)):
        for name in fw:
            vals = {
                ds: est[name][ds].throughput(p) / div for ds in PAPER_SHAPES
            }
            print(
                f"  P{p} {name:6s} [{unit}]: "
                + "  ".join(f"{ds[:4]}={v:9.3f}" for ds, v in vals.items())
            )
        print()

    print("=== per-pattern speedups of cuZC ===")
    for p in (1, 2, 3):
        for base in ("ompZC", "moZC"):
            named = {
                ds: est[base][ds].pattern_seconds[p]
                / est["cuZC"][ds].pattern_seconds[p]
                for ds in PAPER_SHAPES
            }
            print(
                f"  P{p} vs {base:6s}: {fmt_range(list(named.values()))}   "
                + "  ".join(f"{ds[:4]}={v:7.2f}" for ds, v in named.items())
            )
        print()

    print("=== overall speedups (Fig 10) ===")
    for base in ("ompZC", "moZC"):
        named = {
            ds: est[base][ds].total_seconds / est["cuZC"][ds].total_seconds
            for ds in PAPER_SHAPES
        }
        print(
            f"  overall vs {base:6s}: {fmt_range(list(named.values()))}   "
            + "  ".join(f"{ds[:4]}={v:7.2f}" for ds, v in named.items())
        )

    print()
    print("=== absolute cuZC pattern times (s) ===")
    for ds in PAPER_SHAPES:
        t = est["cuZC"][ds]
        print(
            f"  {ds:12s}: "
            + "  ".join(f"P{p}={s:9.5f}" for p, s in t.pattern_seconds.items())
            + f"  total={t.total_seconds:9.5f}"
        )
    return 0


def _fit_pairs(shape, rng):
    import numpy as np

    orig = rng.standard_normal(shape).astype(np.float32)
    dec = (orig + rng.normal(scale=1e-3, size=shape)).astype(np.float32)
    return orig, dec


def _static_candidates(shape):
    """Every (backend, tiling) the dispatcher could pick for ``shape``."""
    from repro.engine import compiled
    from repro.engine.tiling import slab_candidates

    backends = ["fused-host", "metric-oriented"]
    if compiled.available():
        backends.append("compiled-host")
    out = []
    for backend in backends:
        slabs = (
            (None,)
            if backend == "compiled-host"
            else slab_candidates(shape, "auto")
        )
        for slab in slabs:
            out.append((backend, "off" if slab is None else int(slab)))
    return out


def cmd_fit(args) -> int:
    import numpy as np

    from repro.config.defaults import default_config
    from repro.engine.dispatch import (
        CalibrationTable,
        clear_decision_cache,
        default_calibration_path,
        host_fingerprint,
    )
    from repro.engine.plan import build_plan
    from repro.telemetry.tracer import Tracer, calibration_observations

    path = Path(args.table) if args.table else default_calibration_path()
    table = CalibrationTable.load(path)
    table.host = host_fingerprint()

    shapes = [(24, 64, 64)] if args.quick else [(24, 64, 64), (48, 128, 128)]
    rng = np.random.default_rng(args.seed)
    # calibration="off": the fit runs must record the *raw* roofline
    # predictions, not ones already corrected by the existing table
    base_cfg = dataclasses.replace(default_config(), calibration="off")

    observations: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for shape in shapes:
        orig, dec = _fit_pairs(shape, rng)
        for backend, tiling in _static_candidates(shape):
            cfg = dataclasses.replace(base_cfg, backend=backend, tiling=tiling)
            plan = build_plan(cfg, shape=shape, itemsize=orig.dtype.itemsize)
            tracer = Tracer()
            for _ in range(max(1, args.repeats)):
                plan.execute(orig, dec, tracer=tracer)
            for key, measured, base in calibration_observations(tracer.spans):
                observations[key].append((measured, base))
            print(
                f"  measured {backend}/tiling={tiling} on {shape}: "
                f"{len(tracer.spans)} spans"
            )

    for key in sorted(observations):
        # best-of-repeats is the least noisy estimate of the achievable
        # time; fold one observation per key per fit run
        measured, base = min(observations[key], key=lambda mb: mb[0])
        before = table.ratio(key)
        after = table.fold(key, measured, base)
        print(
            f"  {key:40s} ratio {before:8.4f} -> {after:8.4f} "
            f"(measured {measured * 1e3:8.3f} ms, predicted {base * 1e3:8.3f} ms)"
        )
    if not observations:
        print("no calibration observations collected; table unchanged")
        return 1
    saved = table.save(path)
    clear_decision_cache()
    print(f"calibration table written to {saved}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="mode")
    sub.add_parser("report", help="print paper-target quantities")
    p = sub.add_parser("fit", help="fit the dispatch calibration table")
    p.add_argument("--table", default=None,
                   help="table path (default: the per-user cache)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timed repeats per candidate (best-of wins)")
    p.add_argument("--quick", action="store_true",
                   help="one small shape only")
    p.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.mode in (None, "report"):
        return cmd_report(args)
    return cmd_fit(args)


if __name__ == "__main__":
    sys.exit(main())
