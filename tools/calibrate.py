#!/usr/bin/env python3
"""Calibration harness: prints every paper-target quantity side by side.

Run after touching any cost-model constant; EXPERIMENTS.md records the
final numbers.  Targets come from the paper's Section IV:

  Fig 10  overall speedups:   cuZC/ompZC 22.6-31.2, cuZC/moZC 1.49-1.7
  Fig 11a pattern-1 GB/s:     cuZC 103-137, moZC 17-31, ompZC 0.44-0.51
  Fig 11c pattern-3 MB/s:     cuZC 497-758, moZC 351-514, ompZC 24.8-26.6
  Fig 12a pattern-1 speedups: 227-268 (ompZC), 3.49-6.38 (moZC)
  Fig 12b pattern-2 speedups: 17.1-47.4 (ompZC), 1.79-1.86 (moZC)
  Fig 12c pattern-3 speedups: 19.2-28.5 (ompZC), 1.42-1.63 (moZC)
"""

from repro.config.defaults import default_config
from repro.core.frameworks import CuZC, MoZC, OmpZC
from repro.datasets.registry import PAPER_SHAPES

CONFIG = default_config()
FW = {"cuZC": CuZC(), "moZC": MoZC(), "ompZC": OmpZC()}


def fmt_range(values):
    return f"{min(values):8.3f} – {max(values):8.3f}"


def main():
    est = {
        name: {ds: fw.estimate(shape, CONFIG) for ds, shape in PAPER_SHAPES.items()}
        for name, fw in FW.items()
    }

    print("=== per-pattern throughput (paper counts orig+dec bytes) ===")
    for p, unit, div in ((1, "GB/s", 1e9), (2, "GB/s", 1e9), (3, "MB/s", 1e6)):
        for name in FW:
            vals = {
                ds: est[name][ds].throughput(p) / div for ds in PAPER_SHAPES
            }
            print(
                f"  P{p} {name:6s} [{unit}]: "
                + "  ".join(f"{ds[:4]}={v:9.3f}" for ds, v in vals.items())
            )
        print()

    print("=== per-pattern speedups of cuZC ===")
    for p in (1, 2, 3):
        for base in ("ompZC", "moZC"):
            vals = [
                est[base][ds].pattern_seconds[p] / est["cuZC"][ds].pattern_seconds[p]
                for ds in PAPER_SHAPES
            ]
            named = {
                ds: est[base][ds].pattern_seconds[p]
                / est["cuZC"][ds].pattern_seconds[p]
                for ds in PAPER_SHAPES
            }
            print(
                f"  P{p} vs {base:6s}: {fmt_range(vals)}   "
                + "  ".join(f"{ds[:4]}={v:7.2f}" for ds, v in named.items())
            )
        print()

    print("=== overall speedups (Fig 10) ===")
    for base in ("ompZC", "moZC"):
        named = {
            ds: est[base][ds].total_seconds / est["cuZC"][ds].total_seconds
            for ds in PAPER_SHAPES
        }
        print(
            f"  overall vs {base:6s}: {fmt_range(list(named.values()))}   "
            + "  ".join(f"{ds[:4]}={v:7.2f}" for ds, v in named.items())
        )

    print()
    print("=== absolute cuZC pattern times (s) ===")
    for ds in PAPER_SHAPES:
        t = est["cuZC"][ds]
        print(
            f"  {ds:12s}: "
            + "  ".join(f"P{p}={s:9.5f}" for p, s in t.pattern_seconds.items())
            + f"  total={t.total_seconds:9.5f}"
        )


if __name__ == "__main__":
    main()
