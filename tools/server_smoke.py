#!/usr/bin/env python3
"""CI smoke test for ``cuzchecker serve``.

Boots the real server as a subprocess on an ephemeral port, then proves
the service contract end to end:

1. the CLI and the server produce the *same* report for the same bytes
   (``cuzchecker analyze --json`` vs a path-reference job over HTTP);
2. a second identical job hits the warm plan memo (``/metrics`` cache
   counters move) and returns a byte-identical report;
3. ``POST /shutdown`` exits cleanly — exit code 0, no orphan worker
   processes, no leaked shared-memory segments.

Run from the repo root: ``PYTHONPATH=src python tools/server_smoke.py``.
Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

SHAPE = (16, 24, 28)
TIMEOUT_S = 180


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request(url: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method="POST" if data else "GET")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        fail(f"{req.method} {url} -> HTTP {err.code}: {err.read().decode()}")


def wait_for(base: str, job_id: str) -> dict:
    deadline = time.monotonic() + TIMEOUT_S
    while time.monotonic() < deadline:
        job = request(f"{base}/jobs/{job_id}")
        if job["status"] == "done":
            return job
        if job["status"] == "failed":
            fail(f"job {job_id} failed: {job.get('error')}")
        time.sleep(0.2)
    fail(f"job {job_id} did not finish within {TIMEOUT_S}s")


def comparable(report: dict) -> str:
    """Canonical JSON of a report minus modelled baseline timings (the
    CLI runs ``analyze`` with baselines on; server jobs default off)."""
    return json.dumps(
        {k: v for k, v in report.items() if k != "timings"}, sort_keys=True
    )


def main() -> int:
    import numpy as np

    workdir = Path(tempfile.mkdtemp(prefix="cuzchecker-smoke-"))
    rng = np.random.default_rng(20210921)
    orig = rng.normal(size=SHAPE).astype(np.float32)
    dec = (orig + rng.normal(scale=1e-3, size=SHAPE)).astype(np.float32)
    orig_path = workdir / "orig.bin"
    dec_path = workdir / "dec.bin"
    orig_path.write_bytes(orig.tobytes())
    dec_path.write_bytes(dec.tobytes())

    # -- 1. the CLI's view of this pair ------------------------------------
    cli_json = workdir / "cli_report.json"
    shape_arg = ",".join(str(x) for x in SHAPE)
    cli = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", str(orig_path),
         str(dec_path), "--shape", shape_arg, "--json", str(cli_json)],
        capture_output=True, text=True, timeout=TIMEOUT_S,
    )
    if cli.returncode != 0:
        fail(f"cuzchecker analyze exited {cli.returncode}:\n{cli.stderr}")
    cli_report = json.loads(cli_json.read_text())

    # -- 2. boot the server ------------------------------------------------
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    base = None
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = re.search(r"serving on (http://\S+)", line)
            if match:
                base = match.group(1)
                break
        if base is None:
            fail("server never printed its address")
        print(f"server up at {base}")

        health = request(f"{base}/healthz")
        if health.get("status") != "ok":
            fail(f"healthz not ok: {health}")

        spec = {
            "original_path": str(orig_path),
            "decompressed_path": str(dec_path),
            "shape": list(SHAPE),
        }
        job1 = wait_for(base, request(f"{base}/jobs", spec)["id"])
        if comparable(job1["report"]) != comparable(cli_report):
            fail("server report differs from CLI analyze report")
        print("server report matches CLI analyze output")

        before = request(f"{base}/metrics")["session"]
        job2 = wait_for(base, request(f"{base}/jobs", spec)["id"])
        after = request(f"{base}/metrics")["session"]
        if json.dumps(job1["report"], sort_keys=True) != json.dumps(
            job2["report"], sort_keys=True
        ):
            fail("second identical job was not byte-identical")
        if after["plan_cache_hits"] <= before["plan_cache_hits"]:
            fail(
                "second identical job did not hit the plan memo: "
                f"{before['plan_cache_hits']} -> {after['plan_cache_hits']}"
            )
        if after["plan_cache_misses"] != before["plan_cache_misses"]:
            fail("second identical job rebuilt the plan")
        print(
            "second identical job: byte-identical, plan memo hit "
            f"({before['plan_cache_hits']} -> {after['plan_cache_hits']} hits)"
        )

        # -- 3. clean shutdown ---------------------------------------------
        request(f"{base}/shutdown", {})
        out, _ = proc.communicate(timeout=60)
        if proc.returncode != 0:
            fail(f"server exited {proc.returncode}:\n{out}")
        match = re.search(r"live shm segments: (\d+)", out)
        if not match:
            fail(f"server never reported its shutdown leak probe:\n{out}")
        if int(match.group(1)) != 0:
            fail(f"{match.group(1)} shared-memory segment(s) leaked")
        children = subprocess.run(
            ["pgrep", "-P", str(proc.pid)], capture_output=True, text=True
        )
        if children.stdout.strip():
            fail(f"orphan worker processes survive: {children.stdout}")
        print("clean shutdown: exit 0, no orphan workers, no shm segments")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    print("server smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
