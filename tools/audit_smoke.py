"""Kill/resume smoke test for the resumable archive audit (CI gate).

Builds a small chunked bundle tree, then proves the audit's crash
contract with a *real* SIGKILL:

1. run ``cuzchecker audit`` uninterrupted -> reference report;
2. run it again on a second checkpoint, SIGKILL the process once the
   checkpoint shows progress (at least one chunk committed);
3. resume from the surviving checkpoint;
4. assert the resumed report equals the reference **byte-for-byte**, and
   that the checkpoint was deleted after success.

Exit code 0 on success.  On failure the workdir keeps the checkpoints,
reports, and chunk-span traces for the CI artifact upload.

``--workers`` forwards to ``--audit-workers`` on every run (so CI can
SIGKILL a *parallel* audit and prove the part-file merge resumes it
byte-identically) and ``--bundle-codec`` packs the generated tree's
chunks with zlib/zstd.

Usage::

    PYTHONPATH=src python tools/audit_smoke.py [--workdir audit_work]
        [--workers 2] [--bundle-codec zlib]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def _audit_cmd(
    root: Path, out: Path, ckpt: Path, trace: Path, workers: str | None = None
) -> list[str]:
    cmd = [
        sys.executable, "-m", "repro", "audit", str(root),
        "--out", str(out), "--checkpoint", str(ckpt),
        "--codec", "sz", "--rel-bound", "1e-3",
        "--trace", str(trace),
    ]
    if workers is not None:
        cmd += ["--audit-workers", str(workers)]
    return cmd


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(SRC)
    return env


def build_tree(root: Path, codec: str | None = None) -> None:
    sys.path.insert(0, str(SRC))
    from repro.datasets.registry import generate_dataset
    from repro.io.bundle import save_bundle, save_bundle_chunked, verify_bundle

    specs = [
        ("setA/miranda", "miranda", 0.08, 2, 4),
        ("setA/hurricane", "hurricane", 0.07, 2, 3),
        ("setB/nyx", "nyx", 0.06, 1, 4),
    ]
    for rel, dataset, scale, n_fields, chunk_nz in specs:
        ds = generate_dataset(dataset, scale=scale, n_fields=n_fields)
        bundle = save_bundle_chunked(
            ds, root / rel, chunk_nz=chunk_nz, codec=codec
        )
        verify_bundle(bundle)
    # one v1 (unchunked) bundle proves the audit walks mixed generations
    ds = generate_dataset("scale_letkf", scale=0.05, n_fields=1)
    save_bundle(ds, root / "setB/letkf_v1")
    n = len(list(root.rglob("manifest.json")))
    print(f"built {n} bundles under {root}")


def checkpoint_progress(ckpt: Path) -> tuple[int, int]:
    """(completed fields, max chunks done across in-flight fields).

    A serial run carries one ``in_progress`` field; a parallel run's
    coordinator merges the worker part files into an ``in_flight`` map
    on every poll.  Both shapes count as progress here.
    """
    if not ckpt.exists():
        return (0, 0)
    try:
        doc = json.loads(ckpt.read_text())
    except (json.JSONDecodeError, OSError):
        return (0, 0)  # mid-replace on some exotic fs; treat as no progress
    progress = doc.get("in_progress") or {}
    chunks = int(progress.get("chunks_done", 0))
    for state in (doc.get("in_flight") or {}).values():
        chunks = max(chunks, int(state.get("chunks_done", 0)))
    return (len(doc.get("completed", [])), chunks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", type=Path, default=Path("audit_smoke_work"))
    parser.add_argument(
        "--min-chunks", type=int, default=2,
        help="kill once this many chunks of the in-flight field are "
        "committed (or once any field completed)",
    )
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument(
        "--workers", default=None,
        help="forwarded to --audit-workers on every audit invocation "
        "(default: the config default, 'auto')",
    )
    parser.add_argument(
        "--bundle-codec", default=None, choices=("raw", "zlib", "zstd"),
        help="chunk codec for the generated bundle tree (default raw)",
    )
    args = parser.parse_args(argv)

    work = args.workdir
    work.mkdir(parents=True, exist_ok=True)
    archive = work / "archive"
    if not (archive / "setA/miranda/manifest.json").exists():
        build_tree(archive, codec=args.bundle_codec)

    ref = work / "report_reference.json"
    killed = work / "report_killed.json"
    ck_ref = work / "checkpoint_reference.json"
    ck_kill = work / "checkpoint_killed.json"
    env = _env()

    # 1. uninterrupted reference
    t0 = time.monotonic()
    subprocess.run(
        _audit_cmd(
            archive, ref, ck_ref, work / "trace_reference.json",
            workers=args.workers,
        ),
        env=env, check=True, timeout=args.timeout,
    )
    print(f"reference audit: {time.monotonic() - t0:.1f}s")
    if ck_ref.exists():
        print("FAIL: reference run left its checkpoint behind", file=sys.stderr)
        return 1

    # 2. SIGKILL a second run mid-flight
    proc = subprocess.Popen(
        _audit_cmd(
            archive, killed, ck_kill, work / "trace_killed.json",
            workers=args.workers,
        ),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + args.timeout
    killed_mid_run = False
    while time.monotonic() < deadline:
        done_fields, chunks = checkpoint_progress(ck_kill)
        if proc.poll() is not None:
            break  # finished before we could kill it
        if done_fields >= 1 or chunks >= args.min_chunks:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            killed_mid_run = True
            print(
                f"SIGKILLed audit at {done_fields} field(s) done, "
                f"{chunks} chunk(s) into the next"
            )
            break
        time.sleep(0.002)
    if not killed_mid_run:
        print(
            "FAIL: audit finished before the kill threshold was reached — "
            "grow the tree or lower --min-chunks", file=sys.stderr,
        )
        return 1
    if not ck_kill.exists():
        print("FAIL: no checkpoint survived the SIGKILL", file=sys.stderr)
        return 1
    if killed.exists():
        print("FAIL: killed run should not have written a report", file=sys.stderr)
        return 1

    # 3. resume
    t0 = time.monotonic()
    subprocess.run(
        _audit_cmd(
            archive, killed, ck_kill, work / "trace_resumed.json",
            workers=args.workers,
        ),
        env=env, check=True, timeout=args.timeout,
    )
    print(f"resumed audit: {time.monotonic() - t0:.1f}s")

    # 4. byte-for-byte equality + checkpoint cleanup
    if ck_kill.exists():
        print("FAIL: resumed run left its checkpoint behind", file=sys.stderr)
        return 1
    parts = ck_kill.with_name(ck_kill.name + ".parts")
    if parts.exists():
        print(
            "FAIL: resumed run left its worker part files behind",
            file=sys.stderr,
        )
        return 1
    ref_bytes = ref.read_bytes()
    killed_bytes = killed.read_bytes()
    if ref_bytes != killed_bytes:
        print(
            f"FAIL: resumed report differs from the uninterrupted one "
            f"({len(ref_bytes)} vs {len(killed_bytes)} bytes) — see "
            f"{ref} / {killed}", file=sys.stderr,
        )
        return 1
    totals = json.loads(ref_bytes)["totals"]
    print(
        f"PASS: kill/resume report byte-identical to the uninterrupted run "
        f"({totals['fields']} fields, {totals['chunks']} chunks, "
        f"{totals['bytes_streamed']} bytes streamed)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
