"""Terminal plotting primitives for reports and benchmark output."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_bar_chart", "ascii_line_plot", "ascii_table"]


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Horizontal bar chart; the longest bar spans ``width`` characters."""
    if not values:
        raise ValueError("nothing to plot")
    lines = [title] if title else []
    label_width = max(len(k) for k in values)

    def _mag(v: float) -> float:
        if not log_scale:
            return max(v, 0.0)
        return math.log10(max(v, 1e-12)) - math.log10(1e-12)

    mags = {k: _mag(v) for k, v in values.items()}
    peak = max(mags.values()) or 1.0
    for key, value in values.items():
        bar = "#" * max(1, round(width * mags[key] / peak))
        lines.append(f"{key:<{label_width}} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def ascii_line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Scatter/line plot on a character grid."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - xmin) / xspan * (width - 1)))
        row = min(height - 1, int((ymax - y) / yspan * (height - 1)))
        grid[row][col] = "*"
    lines = [title] if title else []
    lines.append(f"{ymax:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{ymin:10.3g} +" + "-" * width)
    lines.append(" " * 12 + f"{xmin:<10.3g}{'':^{max(0, width - 20)}}{xmax:>10.3g}")
    return "\n".join(lines)


def ascii_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Fixed-width table from a list of dict rows."""
    if not rows:
        raise ValueError("nothing to tabulate")
    columns = list(columns or rows[0].keys())
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = " | ".join(f"{c:<{widths[c]}}" for c in columns)
    sep = "-+-".join("-" * widths[c] for c in columns)
    body = [
        " | ".join(f"{str(r.get(c, '')):<{widths[c]}}" for c in columns)
        for r in rows
    ]
    lines = [title] if title else []
    lines += [header, sep, *body]
    return "\n".join(lines)
