"""Gnuplot-compatible exports (Z-checker's native plotting pathway)."""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["write_series", "write_gnuplot_script"]


def write_series(
    path: str | Path,
    columns: Mapping[str, Sequence[float]],
    comment: str = "",
) -> Path:
    """Write aligned columns as a whitespace-separated ``.dat`` file."""
    path = Path(path)
    names = list(columns)
    if not names:
        raise ValueError("no columns to write")
    lengths = {len(columns[n]) for n in names}
    if len(lengths) != 1:
        raise ValueError(f"columns have unequal lengths: {lengths}")
    lines = []
    if comment:
        lines.append(f"# {comment}")
    lines.append("# " + "  ".join(names))
    for row in zip(*(columns[n] for n in names)):
        lines.append("  ".join(f"{v:.10g}" for v in row))
    path.write_text("\n".join(lines) + "\n")
    return path


def write_gnuplot_script(
    path: str | Path,
    dat_file: str | Path,
    ylabel: str,
    title: str,
    columns: Sequence[str],
    logscale_y: bool = False,
) -> Path:
    """Emit a minimal ``.gp`` script plotting ``dat_file``'s columns."""
    path = Path(path)
    plot_parts = [
        f"'{Path(dat_file).name}' using 1:{i + 2} with linespoints title '{c}'"
        for i, c in enumerate(columns)
    ]
    script = [
        f"set title '{title}'",
        f"set ylabel '{ylabel}'",
        "set key outside",
        "set grid",
    ]
    if logscale_y:
        script.append("set logscale y")
    script.append("plot " + ", \\\n     ".join(plot_parts))
    path.write_text("\n".join(script) + "\n")
    return path
