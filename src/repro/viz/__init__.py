"""Visualisation engine substitution: terminal plots and gnuplot exports.

Z-checker ships a gnuplot-based visualisation engine and a web Z-server;
in this reproduction the same series (PDFs, autocorrelations, speedup
bars) render as ASCII in the terminal and export as gnuplot-compatible
``.dat``/``.gp`` files.
"""

from repro.viz.ascii import ascii_bar_chart, ascii_line_plot, ascii_table
from repro.viz.gnuplot import write_series, write_gnuplot_script
from repro.viz.html import render_report_html, write_report_html
from repro.viz.slicemap import svg_heatmap, svg_error_map

__all__ = [
    "ascii_bar_chart",
    "ascii_line_plot",
    "ascii_table",
    "write_series",
    "write_gnuplot_script",
    "render_report_html",
    "write_report_html",
    "svg_heatmap",
    "svg_error_map",
]
