"""SVG slice heatmaps (data + error-map visualisation).

The Z-checker/Foresight workflow inspects a slice of the reconstructed
field next to a map of where the errors live.  These helpers render a
2-D slice as a pure-SVG heatmap (rect grid, downsampled to a bounded
cell count — no raster dependencies), embeddable in the HTML reports.
"""

from __future__ import annotations

import html as _html

import numpy as np

from repro.errors import ShapeError

__all__ = ["svg_heatmap", "svg_error_map"]

#: blue → white → red diverging ramp for signed data
_DIVERGING = ((33, 102, 172), (247, 247, 247), (178, 24, 43))
#: white → dark sequential ramp for magnitudes
_SEQUENTIAL = ((255, 255, 245), (254, 178, 76), (128, 0, 38))


def _lerp(c0, c1, t):
    return tuple(int(round(a + (b - a) * t)) for a, b in zip(c0, c1))


def _ramp(colors, t: float) -> str:
    t = min(max(t, 0.0), 1.0)
    if t < 0.5:
        rgb = _lerp(colors[0], colors[1], t * 2)
    else:
        rgb = _lerp(colors[1], colors[2], (t - 0.5) * 2)
    return f"#{rgb[0]:02x}{rgb[1]:02x}{rgb[2]:02x}"


def _downsample(plane: np.ndarray, max_cells: int) -> np.ndarray:
    ny, nx = plane.shape
    step = max(1, int(np.ceil(max(ny, nx) / max_cells)))
    if step == 1:
        return plane
    ty = (ny // step) * step
    tx = (nx // step) * step
    view = plane[:ty, :tx].reshape(ty // step, step, tx // step, step)
    return view.mean(axis=(1, 3))


def svg_heatmap(
    plane: np.ndarray,
    max_cells: int = 64,
    cell: int = 6,
    label: str = "",
    diverging: bool = False,
) -> str:
    """Render a 2-D array as an SVG rect-grid heatmap.

    ``diverging=True`` centres the colour ramp on zero (error maps);
    otherwise the ramp spans [min, max].
    """
    plane = np.asarray(plane, dtype=np.float64)
    if plane.ndim != 2 or min(plane.shape) < 1:
        raise ShapeError(f"heatmap needs a non-empty 2-D array, got {plane.shape}")
    grid = _downsample(plane, max_cells)
    ny, nx = grid.shape
    if diverging:
        peak = float(np.abs(grid).max()) or 1.0
        norm = (grid / peak + 1.0) / 2.0
        colors = _DIVERGING
    else:
        lo, hi = float(grid.min()), float(grid.max())
        span = (hi - lo) or 1.0
        norm = (grid - lo) / span
        colors = _SEQUENTIAL
    width = nx * cell
    height = ny * cell + 16
    rects = []
    for j in range(ny):
        for i in range(nx):
            rects.append(
                f'<rect x="{i * cell}" y="{j * cell}" width="{cell}" '
                f'height="{cell}" fill="{_ramp(colors, float(norm[j, i]))}"/>'
            )
    caption = (
        f'<text x="2" y="{height - 4}" font-size="10">'
        f"{_html.escape(label)} [{grid.min():.3g}, {grid.max():.3g}]</text>"
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg">' + "".join(rects) + caption + "</svg>"
    )


def svg_error_map(
    orig_slice: np.ndarray,
    dec_slice: np.ndarray,
    max_cells: int = 64,
    cell: int = 6,
) -> str:
    """Diverging heatmap of the signed error of one slice."""
    orig_slice = np.asarray(orig_slice, dtype=np.float64)
    dec_slice = np.asarray(dec_slice, dtype=np.float64)
    if orig_slice.shape != dec_slice.shape:
        raise ShapeError(
            f"slice shapes differ: {orig_slice.shape} vs {dec_slice.shape}"
        )
    return svg_heatmap(
        dec_slice - orig_slice,
        max_cells=max_cells,
        cell=cell,
        label="signed error",
        diverging=True,
    )
