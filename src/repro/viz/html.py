"""Static HTML report engine (the Z-server substitution).

Z-checker ships a web server for browsing assessment results online;
this module renders the same content — metric tables, error PDF,
autocorrelation, and timing bars — as a single self-contained HTML file
with inline SVG (no JavaScript, no external assets), suitable for CI
artifacts and offline review.
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.report import AssessmentReport

__all__ = ["svg_line_plot", "svg_bar_chart", "render_report_html", "write_report_html"]

_CSS = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { border-bottom: 2px solid #444; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #bbb; padding: 4px 10px; text-align: left; }
th { background: #eee; }
figure { margin: 1.5em 0; }
figcaption { font-size: 0.9em; color: #555; }
"""


def _scale(values, lo, hi, out_lo, out_hi):
    span = (hi - lo) or 1.0
    return [out_lo + (v - lo) / span * (out_hi - out_lo) for v in values]


def svg_line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 480,
    height: int = 220,
    label: str = "",
) -> str:
    """A minimal inline-SVG line plot."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    pad = 40
    finite = [(x, y) for x, y in zip(xs, ys) if math.isfinite(x) and math.isfinite(y)]
    if not finite:
        raise ValueError("nothing finite to plot")
    fx = [p[0] for p in finite]
    fy = [p[1] for p in finite]
    sx = _scale(fx, min(fx), max(fx), pad, width - pad)
    sy = _scale(fy, min(fy), max(fy), height - pad, pad)
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(sx, sy))
    return (
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg">'
        f'<rect width="{width}" height="{height}" fill="#fafafa" '
        f'stroke="#ccc"/>'
        f'<polyline points="{points}" fill="none" stroke="#1f77b4" '
        f'stroke-width="1.5"/>'
        f'<text x="{pad}" y="{height - 8}" font-size="11">'
        f"{html.escape(label)} | x: {min(fx):.3g}..{max(fx):.3g} "
        f"y: {min(fy):.3g}..{max(fy):.3g}</text>"
        f"</svg>"
    )


def svg_bar_chart(
    values: dict[str, float], width: int = 480, height: int = 40, label: str = ""
) -> str:
    """Horizontal SVG bars, one per entry."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values.values()) or 1.0
    bar_h = 18
    total_h = height + bar_h * len(values)
    rows = []
    for i, (key, value) in enumerate(values.items()):
        w = max(2.0, 300.0 * value / peak)
        y = 10 + i * bar_h
        rows.append(
            f'<rect x="130" y="{y}" width="{w:.1f}" height="{bar_h - 4}" '
            f'fill="#2ca02c"/>'
            f'<text x="4" y="{y + 11}" font-size="11">{html.escape(key)}</text>'
            f'<text x="{134 + w:.1f}" y="{y + 11}" font-size="11">'
            f"{value:.4g}</text>"
        )
    return (
        f'<svg width="{width}" height="{total_h}" '
        f'xmlns="http://www.w3.org/2000/svg">'
        f'<text x="4" y="{total_h - 6}" font-size="11">{html.escape(label)}'
        f"</text>" + "".join(rows) + "</svg>"
    )


def render_report_html(
    report: AssessmentReport,
    title: str = "cuZ-Checker report",
    orig=None,
    dec=None,
) -> str:
    """Render one assessment as a self-contained HTML document.

    When the raw ``orig``/``dec`` volumes are supplied, the report also
    embeds mid-slice heatmaps of the data and of the signed error (the
    Foresight-style visual inspection).
    """
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>shape: {report.shape} "
        f"({report.shape[0] * report.shape[1] * report.shape[2]:,} elements)</p>",
        "<h2>Metrics</h2><table><tr><th>metric</th><th>value</th></tr>",
    ]
    for name, value in sorted(report.scalars().items()):
        shown = f"{value:.6g}" if isinstance(value, float) else str(value)
        parts.append(
            f"<tr><td>{html.escape(name)}</td><td>{html.escape(shown)}</td></tr>"
        )
    parts.append("</table>")

    if report.pattern1 is not None and report.pattern1.err_pdf is not None:
        pdf = report.pattern1.err_pdf
        parts.append(
            "<figure>"
            + svg_line_plot(
                list(pdf.bin_centers), list(pdf.density), label="error PDF"
            )
            + "<figcaption>compression error PDF</figcaption></figure>"
        )
    if report.pattern2 is not None:
        ac = np.asarray(report.pattern2.autocorrelation)
        parts.append(
            "<figure>"
            + svg_line_plot(
                list(range(len(ac))), list(ac), label="autocorrelation"
            )
            + "<figcaption>spatial autocorrelation of errors "
            "(lag 0..max)</figcaption></figure>"
        )
    if orig is not None and dec is not None:
        from repro.viz.slicemap import svg_error_map, svg_heatmap

        orig = np.asarray(orig)
        dec = np.asarray(dec)
        mid = orig.shape[0] // 2
        parts.append(
            "<h2>Mid-slice view</h2><figure>"
            + svg_heatmap(orig[mid], label=f"original z={mid}")
            + svg_error_map(orig[mid], dec[mid])
            + "<figcaption>left: data; right: signed error "
            "(blue = undershoot, red = overshoot)</figcaption></figure>"
        )
    if report.timings:
        bars = {
            fw: t.total_seconds * 1e3 for fw, t in report.timings.items()
        }
        parts.append(
            "<h2>Modelled execution time [ms]</h2>"
            + svg_bar_chart(bars, label="lower is better")
        )
    parts.append("</body></html>")
    return "".join(parts)


def write_report_html(
    report: AssessmentReport,
    path: str | Path,
    title: str = "cuZ-Checker report",
    orig=None,
    dec=None,
) -> Path:
    path = Path(path)
    path.write_text(render_report_html(report, title, orig=orig, dec=dec))
    return path
