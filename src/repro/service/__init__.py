"""Warm-state service layer: resident assessment sessions."""

from repro.service.session import CheckerSession, SessionClosedError

__all__ = ["CheckerSession", "SessionClosedError"]
