"""CheckerSession: one owner for all cross-request warm state.

Every prior performance layer of this reproduction — the memoised
dispatch plans, the :class:`~repro.core.workspace.ScratchPool`, the
persistent process pools, the calibration table — was built to amortise
cost *across assessments*, yet the one-shot entry points historically
rebuilt and discarded all of it per invocation.  A
:class:`CheckerSession` turns those module-scattered caches into one
object with an explicit lifecycle:

``open``
    validates the configuration once and builds the default checker
    (and therefore its :class:`~repro.engine.plan.ExecutionPlan`);
``assess`` / ``assess_compressor`` / ``assess_dataset`` / ``compare_pairs``
    run jobs against the shared warm state, thread-safely, each under a
    ``job`` telemetry span tagged with the session and job ids plus
    whether the per-shape plan memo hit;
``close``
    releases what the session kept warm: the persistent process pools
    (``wait=True`` so worker interpreters are really gone) and every
    thread's scratch-pool buffers.

The CLI subcommands and the :mod:`repro.server` HTTP endpoint both route
through this class, so there is exactly one warm path — and the
property tests assert that N sequential session assessments are
bit-identical to N fresh one-shot :class:`~repro.core.checker.CuZChecker`
runs.
"""

from __future__ import annotations

import secrets
import threading
import time

import numpy as np

from repro.config.defaults import default_config
from repro.config.schema import CheckerConfig
from repro.core.checker import CuZChecker
from repro.core.report import AssessmentReport
from repro.core.workspace import clear_scratch_pools, scratch_pool_bytes
from repro.errors import CheckerError
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["CheckerSession", "SessionClosedError"]


class SessionClosedError(CheckerError):
    """A job was submitted to a session after :meth:`CheckerSession.close`."""


class CheckerSession:
    """A resident assessment service: warm state with a lifecycle.

    Parameters
    ----------
    config:
        Default configuration for jobs that do not carry their own;
        validated once at :meth:`open`.
    with_baselines:
        Whether job reports carry the modelled moZC/ompZC baselines.
    tracer:
        Session-wide tracer; every job span lands here (servers read it
        as the progress feed).  Defaults to the disabled tracer.
    session_id:
        Stable id stamped on every job span (defaults to a random tag).

    A session may be used from many threads: checker construction is
    lock-guarded, execution plans are immutable, scratch pools are
    thread-local, and the per-shape dispatch memo is a GIL-atomic dict.
    """

    def __init__(
        self,
        config: CheckerConfig | None = None,
        with_baselines: bool = False,
        tracer: Tracer | None = None,
        session_id: str | None = None,
    ):
        self.config = config or default_config()
        self.with_baselines = with_baselines
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.session_id = session_id or f"s{secrets.token_hex(4)}"
        self._lock = threading.RLock()
        self._checkers: dict[tuple, CuZChecker] = {}
        self._state = "new"  # new -> open -> closed
        self._opened_at: float | None = None
        self._jobs = 0
        self.checker_cache_hits = 0
        self.checker_cache_misses = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self._state == "open"

    def open(self) -> "CheckerSession":
        """Validate the configuration and build the default checker."""
        with self._lock:
            if self._state == "closed":
                raise SessionClosedError(
                    f"session {self.session_id} is closed and cannot reopen"
                )
            if self._state == "new":
                self._state = "open"
                self._opened_at = time.monotonic()
                self.checker_for()  # builds + validates the default plan
        return self

    def close(self, wait: bool = True) -> None:
        """Release everything the session kept warm.  Idempotent.

        Persistent process pools are shut down (``wait=True`` blocks
        until the worker interpreters exit, so leak probes right after
        close see zero workers) and every thread's default scratch pool
        is cleared.  Shared-memory segments never outlive their batch —
        the drivers unlink them in a ``finally`` — so a clean close plus
        :func:`repro.parallel.shm.active_segment_count` == 0 means
        leak-free.
        """
        with self._lock:
            if self._state == "closed":
                return
            self._state = "closed"
            self._checkers.clear()
        from repro.parallel.executor import shutdown_pools

        shutdown_pools(wait=wait)
        clear_scratch_pools()

    def __enter__(self) -> "CheckerSession":
        return self.open()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _require_open(self) -> None:
        if self._state == "closed":
            raise SessionClosedError(
                f"session {self.session_id} is closed; open a new one"
            )
        if self._state == "new":
            self.open()

    # -- warm state --------------------------------------------------------

    def checker_for(
        self,
        config: CheckerConfig | None = None,
        with_baselines: bool | None = None,
        backend: str | None = None,
    ) -> CuZChecker:
        """The cached checker for a job's effective configuration.

        One :class:`CuZChecker` (and therefore one validated
        :class:`~repro.engine.plan.ExecutionPlan` plus one per-shape
        dispatch memo) serves every job with the same configuration for
        the life of the session.
        """
        cfg = config if config is not None else self.config
        wb = self.with_baselines if with_baselines is None else with_baselines
        key = (cfg, wb, backend)
        with self._lock:
            checker = self._checkers.get(key)
            if checker is None:
                checker = CuZChecker(
                    config=cfg, with_baselines=wb, backend=backend,
                    tracer=self.tracer,
                )
                self._checkers[key] = checker
                self.checker_cache_misses += 1
            else:
                self.checker_cache_hits += 1
        return checker

    # -- jobs --------------------------------------------------------------

    def _job_span(self, tracer: Tracer, name: str, job_id: str | None, nbytes: int):
        with self._lock:
            self._jobs += 1
            seq = self._jobs
        return tracer.span(
            name,
            category="job",
            bytes=nbytes,
            session=self.session_id,
            job_id=job_id or f"{self.session_id}.{seq}",
        )

    def assess(
        self,
        orig: np.ndarray,
        dec: np.ndarray,
        name: str | None = None,
        job_id: str | None = None,
        config: CheckerConfig | None = None,
        with_baselines: bool | None = None,
        backend: str | None = None,
        tracer: Tracer | None = None,
        extras: dict | None = None,
    ) -> AssessmentReport:
        """Assess one original/decompressed pair on the warm state.

        Identical results to a fresh one-shot
        :class:`~repro.core.checker.CuZChecker` run (property-tested);
        only the cost differs — repeated shapes skip dispatch, repeated
        configurations skip plan construction, and derived-array storage
        comes from the resident scratch pool.
        """
        self._require_open()
        checker = self.checker_for(config, with_baselines, backend)
        tr = tracer if tracer is not None else self.tracer
        orig = np.asarray(orig)
        dec = np.asarray(dec)
        hits0 = checker.plan_cache_hits
        with self._job_span(
            tr, name or "job:assess", job_id, orig.nbytes + dec.nbytes
        ) as sp:
            report = checker.assess(orig, dec, tracer=tr, extras=extras)
            sp.attrs["plan_cache"] = (
                "hit" if checker.plan_cache_hits > hits0 else "miss"
            )
            sp.attrs["scratch_bytes"] = scratch_pool_bytes()
        return report

    def assess_compressor(
        self,
        data: np.ndarray,
        compressor,
        name: str | None = None,
        job_id: str | None = None,
        config: CheckerConfig | None = None,
        with_baselines: bool | None = None,
        tracer: Tracer | None = None,
    ) -> AssessmentReport:
        """Compress + decompress + assess one field on the warm state."""
        self._require_open()
        from repro.core.compare import assess_compressor

        checker = self.checker_for(config, with_baselines)
        tr = tracer if tracer is not None else self.tracer
        data = np.asarray(data)
        hits0 = checker.plan_cache_hits
        with self._job_span(tr, name or "job:compress", job_id, data.nbytes) as sp:
            report = assess_compressor(data, compressor, checker=checker, tracer=tr)
            sp.attrs["plan_cache"] = (
                "hit" if checker.plan_cache_hits > hits0 else "miss"
            )
            sp.attrs["scratch_bytes"] = scratch_pool_bytes()
        return report

    def assess_dataset(
        self,
        dataset,
        compressor,
        on_error: str = "raise",
        executor: str | None = None,
        workers: int | None = None,
        config: CheckerConfig | None = None,
        with_baselines: bool | None = None,
        tracer: Tracer | None = None,
    ):
        """Batch-assess a dataset through the session's warm checker."""
        self._require_open()
        from repro.core.batch import assess_dataset

        return assess_dataset(
            dataset,
            compressor,
            config=config if config is not None else self.config,
            with_baselines=(
                self.with_baselines if with_baselines is None else with_baselines
            ),
            on_error=on_error,
            tracer=tracer if tracer is not None else self.tracer,
            executor=executor,
            workers=workers,
            session=self,
        )

    def compare_pairs(
        self,
        pairs,
        on_error: str = "raise",
        executor: str | None = None,
        workers: int | None = None,
        dataset_name: str = "pairs",
        tracer: Tracer | None = None,
    ):
        """Assess many (name, orig, dec) pairs through the warm state."""
        self._require_open()
        from repro.parallel.executor import parallel_compare_pairs

        return parallel_compare_pairs(
            pairs,
            config=self.config,
            with_baselines=self.with_baselines,
            workers=workers,
            on_error=on_error,
            dataset_name=dataset_name,
            tracer=tracer if tracer is not None else self.tracer,
            executor=executor,
            session=self,
        )

    def open_stream(
        self, plane_shape, max_lag=10, ssim=None, pwr_floor=0.0, tracer=None
    ):
        """A :class:`~repro.core.streaming.StreamingChecker` recording
        into the session tracer (chunk spans land on the same feed the
        server streams job progress from), or into an explicit one."""
        self._require_open()
        from repro.core.streaming import StreamingChecker

        return StreamingChecker(
            plane_shape,
            max_lag=max_lag,
            ssim=ssim,
            pwr_floor=pwr_floor,
            tracer=tracer if tracer is not None else self.tracer,
        )

    def audit_archive(self, root, out_path=None, **kwargs):
        """Resumable out-of-core audit of a bundle tree on this session.

        Thin wrapper over :func:`repro.audit.runner.run_audit`: every
        field under ``root`` streams chunk-by-chunk through this
        session's warm state with checkpoint/resume; see the runner for
        the full parameter set.
        """
        self._require_open()
        from repro.audit.runner import run_audit

        return run_audit(root, out_path=out_path, session=self, **kwargs)

    def explain(self, shape=None) -> str:
        """Execution schedule of the session's default configuration."""
        self._require_open()
        return self.checker_for().explain(shape)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Warm-state counters (the server's ``/metrics`` payload core)."""
        from repro.engine.dispatch import (
            decision_cache_size,
            resolve_calibration,
        )
        from repro.parallel.executor import active_pool_counts

        with self._lock:
            checkers = list(self._checkers.values())
            jobs = self._jobs
            checker_hits = self.checker_cache_hits
            checker_misses = self.checker_cache_misses
        table = resolve_calibration(getattr(self.config, "calibration", "auto"))
        return {
            "session_id": self.session_id,
            "state": self._state,
            "uptime_s": (
                round(time.monotonic() - self._opened_at, 3)
                if self._opened_at is not None
                else 0.0
            ),
            "jobs": jobs,
            "plan_cache_hits": sum(c.plan_cache_hits for c in checkers),
            "plan_cache_misses": sum(c.plan_cache_misses for c in checkers),
            "plan_cache_shapes": sum(len(c._plans) for c in checkers),
            "checker_cache_size": len(checkers),
            "checker_cache_hits": checker_hits,
            "checker_cache_misses": checker_misses,
            "dispatch_decision_cache": decision_cache_size(),
            "scratch_pool_bytes": scratch_pool_bytes(),
            "process_pools": list(active_pool_counts()),
            "calibration": (
                "off" if table is None else str(table.path or "(in-memory)")
            ),
            "calibration_entries": 0 if table is None else len(table.entries),
        }

    def describe_warm_state(self, shape=None) -> str:
        """Human-readable warm-cache summary (``cuzchecker explain
        --session``): which caches a resident session reuses across
        requests, and whether a given shape would hit them."""
        s = self.stats()
        lines = [
            f"resident session {s['session_id']} "
            f"({s['state']}, {s['jobs']} job(s) served):",
            f"  plan memo: {s['plan_cache_shapes']} shape(s) cached, "
            f"{s['plan_cache_hits']} hit(s) / {s['plan_cache_misses']} miss(es)",
        ]
        if shape is not None:
            shape = tuple(int(x) for x in shape)
            cached = any(
                any(k[0] == shape for k in c._plans)
                for c in self._checkers.values()
            )
            verdict = (
                "warm (dispatch skipped)" if cached
                else "cold on first job, warm for every identical job after"
            )
            lines.append(f"    shape {shape}: {verdict}")
        lines += [
            f"  dispatch decisions: {s['dispatch_decision_cache']} "
            "memoised in this process",
            f"  calibration: {s['calibration']}"
            + (
                f" ({s['calibration_entries']} entries)"
                if s["calibration"] != "off"
                else ""
            ),
            f"  scratch pool: {s['scratch_pool_bytes']} bytes resident "
            "(reused across requests, zero steady-state allocations)",
            "  process pools: "
            + (
                "workers " + str(s["process_pools"]) + " persistent across jobs"
                if s["process_pools"]
                else "none alive (spawned on first parallel batch, "
                "released on close)"
            ),
        ]
        return "\n".join(lines)
