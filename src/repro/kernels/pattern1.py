"""Pattern-1 kernel: fused global reductions (paper Algorithm 1).

One cooperative kernel computes all 14 Category-I metrics:

* **Sweep 1** — each z-slice is assigned to a thread block of (32, 8)
  threads; every thread grid-strides over its slice accumulating all 14
  reduction accumulators in registers (one global read feeds *every*
  metric — the fusion the paper highlights in Fig. 3); warp-shuffle tree
  reductions collapse lanes, a shared-memory staging row collapses warps,
  and a cooperative-grid sync enables the final cross-block reduction.
* **Sweep 2** — with the global error/pwr extrema now known, the same grid
  re-scans the data to build the two PDFs (histograms) with atomics.

The functional execution below mirrors this decomposition exactly —
per-slice partials via per-thread/warp-structured NumPy reductions,
followed by an explicit grid-level reduction — so its results equal the
independent references in :mod:`repro.metrics` to FP tolerance, and its
event counts equal :func:`plan_pattern1` exactly (asserted in tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.gpusim.counters import KernelStats
from repro.gpusim.warp import warp_reduce
from repro.metrics.error_stats import Pdf

__all__ = [
    "Pattern1Config",
    "Pattern1Result",
    "plan_pattern1",
    "execute_pattern1",
    "result_from_sums",
    "BLOCK_X",
    "BLOCK_Y",
    "REGS_PER_THREAD",
    "N_ACCUMULATORS",
]

#: block geometry: one warp wide, 8 warps tall (256 threads)
BLOCK_X = 32
BLOCK_Y = 8
#: register demand of the fused kernel: 14 live accumulators plus address
#: arithmetic and loop state — 56 regs/thread × 256 threads = 14336 ≈ the
#: paper's "14k Regs/TB" (Table II)
REGS_PER_THREAD = 56
#: fused accumulators staged through shared memory between warps
N_ACCUMULATORS = 14
#: shared staging: BLOCK_Y warp slots × N_ACCUMULATORS × 4 B = 448 B ≈
#: the paper's "0.4KB SMem/TB"
SMEM_PER_BLOCK = BLOCK_Y * N_ACCUMULATORS * 4

#: useful device operations per element in sweep 1 (error, |e|, e², pwr
#: division + mask, running min/max/sums for 14 accumulators)
OPS_SWEEP1 = 30
#: operations per element in sweep 2 (two bin computations + bounds tests)
OPS_SWEEP2 = 10
#: calibrated issue-efficiency inflation: real fused-reduction kernels on
#: V100 sustain well below peak issue rate (register pressure at 4
#: blocks/SM, predicated lanes, atomics in sweep 2).  The factor is fitted
#: once against Fig. 11(a)'s measured 103-137 GB/s and reused everywhere.
P1_STALL_FACTOR = 2.3


@dataclass(frozen=True)
class Pattern1Config:
    """User-visible knobs of the fused reduction kernel."""

    pdf_bins: int = 1024
    #: |orig| values at or below this are excluded from pwr-error stats
    pwr_floor: float = 0.0


@dataclass
class Pattern1Result:
    """All Category-I metric values produced by one fused launch."""

    n: int
    min_err: float
    max_err: float
    avg_err: float
    avg_abs_err: float
    max_abs_err: float
    mse: float
    rmse: float
    value_range: float
    nrmse: float
    snr: float
    psnr: float
    min_pwr_err: float
    max_pwr_err: float
    avg_pwr_err: float
    min_orig: float
    max_orig: float
    mean_orig: float
    var_orig: float
    err_pdf: Pdf | None = None
    pwr_err_pdf: Pdf | None = None
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """Scalar metrics keyed by registry name."""
        return {
            "min_err": self.min_err,
            "max_err": self.max_err,
            "avg_err": self.avg_err,
            "mse": self.mse,
            "rmse": self.rmse,
            "nrmse": self.nrmse,
            "snr": self.snr,
            "psnr": self.psnr,
            "value_range": self.value_range,
            "min_pwr_err": self.min_pwr_err,
            "max_pwr_err": self.max_pwr_err,
            "avg_pwr_err": self.avg_pwr_err,
        }


def _shape3d(shape: tuple[int, ...]) -> tuple[int, int, int]:
    if len(shape) != 3 or min(shape) < 1:
        raise ShapeError(f"pattern kernels expect 3-D shapes, got {shape}")
    return shape  # type: ignore[return-value]


def plan_pattern1(
    shape: tuple[int, int, int], config: Pattern1Config | None = None
) -> KernelStats:
    """Closed-form event counts for the fused pattern-1 kernel."""
    config = config or Pattern1Config()
    nz, ny, nx = _shape3d(shape)
    n = nz * ny * nx
    iters = math.ceil(ny / BLOCK_Y) * math.ceil(nx / BLOCK_X)
    warps_per_block = BLOCK_Y
    # warp tree (5 shuffle steps) + cross-warp tree (3 steps over 8 slots),
    # once per accumulator per sweep-1 block reduction
    shuffles = nz * (warps_per_block * 5 + 3) * N_ACCUMULATORS
    # grid-level reduction re-reads each block's partials
    partial_bytes = nz * N_ACCUMULATORS * 4
    stats = KernelStats(
        name="cuZC.pattern1",
        launches=1,
        grid_syncs=2,  # after sweep-1 reduction; after histogram sweep
        # sweep 1 + sweep 2 each read both fields once
        global_read_bytes=2 * (2 * n * 4),
        # block partials out + grid-reduce read-back + final results + PDFs
        global_write_bytes=partial_bytes + 2 * config.pdf_bins * 4 + 64,
        shared_bytes=nz * SMEM_PER_BLOCK * 2,  # staged write + read per block
        shuffle_ops=shuffles,
        flops=int((OPS_SWEEP1 + OPS_SWEEP2) * n * P1_STALL_FACTOR),
        atomic_ops=2 * n,  # one histogram update per PDF per element
        grid_blocks=nz,
        threads_per_block=BLOCK_X * BLOCK_Y,
        regs_per_thread=REGS_PER_THREAD,
        smem_per_block=SMEM_PER_BLOCK,
        iters_per_thread=iters,
        meta={
            "pattern": 1,
            "n_metrics": N_ACCUMULATORS,
            "chain_length": iters,
        },
    )
    return stats


# ---------------------------------------------------------------------------
# functional execution
# ---------------------------------------------------------------------------


def _pad_to_block(slice2d: np.ndarray, fill: float) -> np.ndarray:
    """Pad a (ny, nx) slice to block-dim multiples with ``fill``."""
    ny, nx = slice2d.shape
    py = math.ceil(ny / BLOCK_Y) * BLOCK_Y
    px = math.ceil(nx / BLOCK_X) * BLOCK_X
    if (py, px) == (ny, nx):
        return slice2d
    out = np.full((py, px), fill, dtype=slice2d.dtype)
    out[:ny, :nx] = slice2d
    return out


def _thread_partials(slice2d: np.ndarray, op: np.ufunc, identity: float) -> np.ndarray:
    """Per-thread register partials for one slice (Algorithm 1, ln. 4-6).

    Returns a (BLOCK_Y, BLOCK_X) array: thread (ty, tx)'s accumulator
    after grid-striding the slice.
    """
    padded = _pad_to_block(slice2d, identity)
    py, px = padded.shape
    tiled = padded.reshape(py // BLOCK_Y, BLOCK_Y, px // BLOCK_X, BLOCK_X)
    return op.reduce(op.reduce(tiled, axis=2), axis=0)


def _block_reduce(partials: np.ndarray, op) -> float:
    """Warp shuffles then the cross-warp shared-memory stage (ln. 7-15)."""
    per_warp = warp_reduce(partials, op)  # (BLOCK_Y,) — lane 0 of each warp
    # cross-warp: the first warp reloads the staged values and tree-reduces
    return float(warp_reduce(per_warp[None, :], op)[0])


def result_from_sums(
    n: int,
    min_e: float,
    max_e: float,
    sum_e: float,
    sum_abs_e: float,
    sum_sq_e: float,
    min_o: float,
    max_o: float,
    sum_o: float,
    sum_sq_o: float,
    min_r: float,
    max_r: float,
    sum_r: float,
    cnt_r: float,
    err_pdf: Pdf | None,
    pwr_err_pdf: Pdf | None,
) -> Pattern1Result:
    """Grid-level accumulator sums -> the full Category-I result.

    Shared by the blocked kernel execution, the workspace-fused fast
    path, the tiled/streaming accumulators, and the parallel slab
    combiners so the degenerate-case conventions stay identical
    everywhere.
    """
    has_r = cnt_r > 0
    if not has_r:
        min_r = max_r = 0.0
    avg_r = sum_r / cnt_r if has_r else 0.0

    mse = sum_sq_e / n
    rmse = math.sqrt(mse)
    value_range = max_o - min_o
    mean_o = sum_o / n
    var_o = max(sum_sq_o / n - mean_o * mean_o, 0.0)

    if value_range == 0.0:
        nrmse = math.nan if mse > 0 else 0.0
        psnr = math.nan
    elif mse == 0.0:
        nrmse, psnr = 0.0, math.inf
    else:
        nrmse = rmse / value_range
        psnr = 20.0 * math.log10(value_range) - 10.0 * math.log10(mse)
    if mse == 0.0:
        snr = math.inf
    elif var_o == 0.0:
        snr = -math.inf
    else:
        snr = 10.0 * math.log10(var_o / mse)

    return Pattern1Result(
        n=n,
        min_err=min_e,
        max_err=max_e,
        avg_err=sum_e / n,
        avg_abs_err=sum_abs_e / n,
        max_abs_err=max(abs(min_e), abs(max_e)),
        mse=mse,
        rmse=rmse,
        value_range=value_range,
        nrmse=nrmse,
        snr=snr,
        psnr=psnr,
        min_pwr_err=min_r,
        max_pwr_err=max_r,
        avg_pwr_err=avg_r,
        min_orig=min_o,
        max_orig=max_o,
        mean_orig=mean_o,
        var_orig=var_o,
        err_pdf=err_pdf,
        pwr_err_pdf=pwr_err_pdf,
        extras={"pwr_count": cnt_r, "sum_pwr": avg_r * cnt_r},
    )


def _execute_fused(workspace, config: Pattern1Config) -> Pattern1Result:
    """Workspace-fused fast path: one pass builds every accumulator.

    The workspace's per-slice partial sums stand in for the block
    partials; the memoised ``err``/``pwr`` arrays feed the sweep-2
    histograms without re-deriving them.
    """
    m = workspace.moments
    from repro.core.workspace import histogram_pdf

    err_pdf = histogram_pdf(
        workspace.err.ravel(), m["min_e"], m["max_e"], config.pdf_bins
    )
    pwr_pdf = histogram_pdf(
        workspace.pwr_vals, m["min_r"], m["max_r"], config.pdf_bins
    )
    return result_from_sums(
        workspace.n,
        m["min_e"],
        m["max_e"],
        m["sum_e"],
        m["sum_abs_e"],
        m["sum_sq_e"],
        m["min_o"],
        m["max_o"],
        m["sum_o"],
        m["sum_sq_o"],
        m["min_r"],
        m["max_r"],
        m["sum_r"],
        m["cnt_r"],
        err_pdf,
        pwr_pdf,
    )


def execute_pattern1(
    orig: np.ndarray,
    dec: np.ndarray,
    config: Pattern1Config | None = None,
    workspace=None,
) -> tuple[Pattern1Result, KernelStats]:
    """Functional fused pattern-1 kernel (slice-per-block decomposition).

    Passing a :class:`~repro.core.workspace.MetricWorkspace` selects the
    host-fused fast path: accumulators come from the workspace's cached
    per-slice partials (equal to the blocked execution to FP tolerance)
    and the modelled :class:`KernelStats` are unchanged.
    """
    config = config or Pattern1Config()
    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if workspace is not None:
        _shape3d(workspace.shape)
        if workspace.pwr_floor != config.pwr_floor:
            raise ConfigError(
                "workspace pwr_floor differs from the pattern-1 config"
            )
        return _execute_fused(workspace, config), plan_pattern1(
            workspace.shape, config
        )
    if orig.shape != dec.shape:
        raise ShapeError(f"shape mismatch: {orig.shape} vs {dec.shape}")
    nz, ny, nx = _shape3d(orig.shape)
    n = orig.size
    o64 = orig.astype(np.float64)
    d64 = dec.astype(np.float64)

    inf = np.inf
    # per-block (slice) partials for the grid-level reduction
    acc = {
        "min_e": np.empty(nz),
        "max_e": np.empty(nz),
        "sum_e": np.empty(nz),
        "sum_abs_e": np.empty(nz),
        "sum_sq_e": np.empty(nz),
        "min_o": np.empty(nz),
        "max_o": np.empty(nz),
        "sum_o": np.empty(nz),
        "sum_sq_o": np.empty(nz),
        "min_r": np.empty(nz),
        "max_r": np.empty(nz),
        "sum_r": np.empty(nz),
        "cnt_r": np.empty(nz),
    }

    for k in range(nz):  # one thread block per slice
        o = o64[k]
        d = d64[k]
        e = d - o
        mask = np.abs(o) > config.pwr_floor
        r = np.where(mask, e / np.where(mask, o, 1.0), 0.0)
        rmin = np.where(mask, r, inf)
        rmax = np.where(mask, r, -inf)

        def red(vals, op, identity):
            return _block_reduce(_thread_partials(vals, op, identity), op)

        acc["min_e"][k] = red(e, np.minimum, inf)
        acc["max_e"][k] = red(e, np.maximum, -inf)
        acc["sum_e"][k] = red(e, np.add, 0.0)
        acc["sum_abs_e"][k] = red(np.abs(e), np.add, 0.0)
        acc["sum_sq_e"][k] = red(e * e, np.add, 0.0)
        acc["min_o"][k] = red(o, np.minimum, inf)
        acc["max_o"][k] = red(o, np.maximum, -inf)
        acc["sum_o"][k] = red(o, np.add, 0.0)
        acc["sum_sq_o"][k] = red(o * o, np.add, 0.0)
        acc["min_r"][k] = red(rmin, np.minimum, inf)
        acc["max_r"][k] = red(rmax, np.maximum, -inf)
        acc["sum_r"][k] = red(r, np.add, 0.0)
        acc["cnt_r"][k] = red(mask.astype(np.float64), np.add, 0.0)

    # ---- grid-level reduction (after cooperative sync; ln. 18-23) -------
    min_e = float(acc["min_e"].min())
    max_e = float(acc["max_e"].max())
    sum_e = float(acc["sum_e"].sum())
    sum_abs_e = float(acc["sum_abs_e"].sum())
    sum_sq_e = float(acc["sum_sq_e"].sum())
    min_o = float(acc["min_o"].min())
    max_o = float(acc["max_o"].max())
    sum_o = float(acc["sum_o"].sum())
    sum_sq_o = float(acc["sum_sq_o"].sum())
    cnt_r = float(acc["cnt_r"].sum())
    has_r = cnt_r > 0
    min_r = float(acc["min_r"].min()) if has_r else 0.0
    max_r = float(acc["max_r"].max()) if has_r else 0.0

    # ---- sweep 2: histograms with global extrema ------------------------
    err_pdf = _sweep2_pdf(o64, d64, min_e, max_e, config.pdf_bins, kind="err")
    pwr_pdf = _sweep2_pdf(
        o64, d64, min_r, max_r, config.pdf_bins,
        kind="pwr", floor=config.pwr_floor,
    )

    result = result_from_sums(
        n,
        min_e,
        max_e,
        sum_e,
        sum_abs_e,
        sum_sq_e,
        min_o,
        max_o,
        sum_o,
        sum_sq_o,
        min_r,
        max_r,
        float(acc["sum_r"].sum()),
        cnt_r,
        err_pdf,
        pwr_pdf,
    )
    return result, plan_pattern1(orig.shape, config)


def _sweep2_pdf(
    o64: np.ndarray,
    d64: np.ndarray,
    lo: float,
    hi: float,
    bins: int,
    kind: str,
    floor: float = 0.0,
) -> Pdf:
    """Histogram sweep: per-block partial histograms merged by atomics."""
    if kind == "err":
        vals = (d64 - o64).ravel()
    else:
        o = o64.ravel()
        mask = np.abs(o) > floor
        if not mask.any():
            edges = np.array([-1e-12, 1e-12])
            return Pdf(bin_edges=edges, density=np.array([1.0 / (edges[1] - edges[0])]))
        vals = (d64.ravel()[mask] - o[mask]) / o[mask]
    if lo == hi:
        eps = max(abs(lo), 1.0) * 1e-9 + 1e-300
        edges = np.array([lo - eps, hi + eps])
        return Pdf(bin_edges=edges, density=np.array([1.0 / (edges[1] - edges[0])]))
    hist, edges = np.histogram(vals, bins=bins, range=(lo, hi), density=True)
    return Pdf(bin_edges=edges, density=hist)
