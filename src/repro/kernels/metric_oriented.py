"""moZC: the metric-oriented GPU baseline (paper Section IV-B).

moZC is the "straightforward CUDA implementation of Z-checker following
the conventional metric-oriented design principle": every metric is an
individual kernel pipeline.  Pattern-1 metrics use CUB-style device
reductions (10 metric pipelines — RMSE/NRMSE share MSE's core and PSNR
shares SNR's, exactly as the paper counts); because CUB reduces a single
input array, each pipeline first runs a *transform* kernel materialising
the per-element quantity (error, squared error, pointwise ratio, ...)
before the reduction consumes it — the redundant traffic the paper's
fused design eliminates.  Pattern-2 uses one kernel per derivative order
(NVIDIA finite-difference style, writing the derived fields to global
memory for separate reduction kernels) plus one per autocorrelation lag;
pattern-3 is the Section III-C3 SSIM kernel **without** the FIFO buffer,
so each z-slice is re-read ``window/step`` times.

Functionally moZC computes the same values as cuZC (all three frameworks
agree in the paper's correctness check); only its execution plan — and
therefore its modelled time — differs.  This module provides those plans.
"""

from __future__ import annotations

import math

from repro.errors import ShapeError
from repro.gpusim.counters import KernelStats
from repro.kernels.pattern1 import Pattern1Config
from repro.kernels.pattern2 import (
    Pattern2Config,
    TILE,
    TILE_Z,
    OPS_STAGING_SWEEP,
    OPS_DERIV_SWEEP,
    OPS_AUTOCORR_SWEEP,
    P2_STALL_FACTOR,
    REGS_PER_THREAD as P2_REGS,
    SMEM_PER_BLOCK as P2_SMEM,
)
from repro.kernels.pattern3 import Pattern3Config, plan_pattern3

__all__ = [
    "plan_mo_pattern1",
    "plan_mo_pattern2",
    "plan_mo_pattern3",
    "MO_PATTERN1_KERNELS",
]

#: the 10 pattern-1 metric pipelines moZC runs (paper: "moZC contains 10
#: CUDA kernels for pattern 1, and cuZC's speedup upper bound is 10")
MO_PATTERN1_KERNELS: tuple[str, ...] = (
    "min_err",
    "max_err",
    "avg_err",
    "err_pdf",
    "min_pwr_err",
    "max_pwr_err",
    "avg_pwr_err",
    "pwr_err_pdf",
    "mse",
    "snr",
)

#: per-element ops of the transform + lean CUB reduction of one pipeline
MO_P1_OPS_PER_ELEM = 9
#: issue-efficiency inflation of moZC's pattern-1 kernels: lower register
#: pressure than the fused kernel gives them better occupancy, hence a
#: smaller factor than pattern 1's fused 2.6
MO_P1_STALL_FACTOR = 2.0
#: CUB-style launch geometry (grid-stride with a fixed modest grid)
_CUB_GRID = 160
_CUB_THREADS = 256
_CUB_REGS = 30
_CUB_SMEM = 1024
FLOAT_BYTES = 4


def _shape3d(shape):
    if len(shape) != 3 or min(shape) < 1:
        raise ShapeError(f"expected a 3-D shape, got {shape}")
    return shape


#: memoised moZC plan lists keyed by (planner, shape, config) — the plan
#: construction is pure, and batch estimates re-request the same shapes
_PLAN_CACHE: dict[tuple, list[KernelStats]] = {}


def _memoised(planner):
    """Cache a plan builder's output per (shape, config); returns copies."""

    def wrapper(shape, config=None):
        key = (planner.__name__, tuple(shape), config)
        if key not in _PLAN_CACHE:
            _PLAN_CACHE[key] = planner(shape, config)
        return list(_PLAN_CACHE[key])

    wrapper.__name__ = planner.__name__
    wrapper.__doc__ = planner.__doc__
    return wrapper


def _cub_kernel(name: str, n: int, *, read_bytes: int, write_bytes: int,
                flops: int, atomics: int = 0, launches: int = 2,
                meta: dict | None = None) -> KernelStats:
    grid = min(_CUB_GRID, max(1, math.ceil(n / (_CUB_THREADS * 4))))
    return KernelStats(
        name=name,
        launches=launches,
        grid_syncs=0,
        global_read_bytes=read_bytes,
        global_write_bytes=write_bytes,
        shared_bytes=grid * _CUB_SMEM // 4,
        shuffle_ops=grid * (_CUB_THREADS // 32) * 5,
        flops=flops,
        atomic_ops=atomics,
        grid_blocks=grid,
        threads_per_block=_CUB_THREADS,
        regs_per_thread=_CUB_REGS,
        smem_per_block=_CUB_SMEM,
        iters_per_thread=max(1, math.ceil(n / (grid * _CUB_THREADS))),
        meta={"framework": "moZC", **(meta or {})},
    )


@_memoised
def plan_mo_pattern1(
    shape: tuple[int, int, int], config: Pattern1Config | None = None
) -> list[KernelStats]:
    """One transform + CUB-reduce pipeline per pattern-1 metric.

    Per pipeline traffic: the transform reads both fields (8 B/elem) and
    writes the derived quantity (4 B/elem); the reduction reads it back
    (4 B/elem).  PDF pipelines additionally re-scan the derived array to
    histogram it once the extrema are known.
    """
    config = config or Pattern1Config()
    nz, ny, nx = _shape3d(shape)
    n = nz * ny * nx
    plans: list[KernelStats] = []
    for name in MO_PATTERN1_KERNELS:
        is_pdf = name.endswith("_pdf")
        read_bytes = 2 * n * FLOAT_BYTES + n * FLOAT_BYTES  # transform + reduce
        write_bytes = n * FLOAT_BYTES + 64
        launches = 3  # transform, device reduce, final collapse
        atomics = 0
        if is_pdf:
            read_bytes += n * FLOAT_BYTES  # histogram re-scan
            write_bytes += config.pdf_bins * FLOAT_BYTES
            launches += 1
            atomics = n
        plans.append(
            _cub_kernel(
                f"moZC.{name}",
                n,
                read_bytes=read_bytes,
                write_bytes=write_bytes,
                flops=int(MO_P1_OPS_PER_ELEM * n * MO_P1_STALL_FACTOR),
                atomics=atomics,
                launches=launches,
                meta={"pattern": 1, "metric": name},
            )
        )
    return plans


@_memoised
def plan_mo_pattern2(
    shape: tuple[int, int, int], config: Pattern2Config | None = None
) -> list[KernelStats]:
    """Separate derivative kernels (one per order, NVIDIA finite-difference
    style, writing the derived fields), separate reductions over those
    fields, a mean/variance pre-pass for the correlation normalisation,
    and one autocorrelation kernel per lag."""
    config = config or Pattern2Config()
    nz, ny, nx = _shape3d(shape)
    config.validate((nz, ny, nx))
    n = nz * ny * nx
    grid = nz
    cubes = math.ceil(ny / TILE) * math.ceil(nx / TILE)
    plans: list[KernelStats] = []

    def stencil_plan(name, halo, metric_ops, extra_read=0, writes=0):
        # A standalone stencil kernel uses classic 3-D-halo cube blocking
        # (it has no fused sweep sequence to amortise a rolling plane
        # window over), so both its global re-reads and its staging work
        # scale with the haloed cube volume.
        hf = (1.0 + halo / TILE) ** 3
        stage_scale = (1.0 + halo / TILE) ** 2
        ops = OPS_STAGING_SWEEP * stage_scale + metric_ops
        return KernelStats(
            name=f"moZC.{name}",
            launches=2,  # stencil pass + reduction collapse
            global_read_bytes=int(2 * n * FLOAT_BYTES * hf) + extra_read,
            global_write_bytes=writes + grid * 8,
            shared_bytes=int(n * FLOAT_BYTES * hf + 7 * n * FLOAT_BYTES),
            shuffle_ops=grid * cubes * (8 * 5 + 3) * 2,
            flops=int(ops * n * P2_STALL_FACTOR),
            grid_blocks=grid,
            threads_per_block=TILE * TILE,
            regs_per_thread=P2_REGS,
            smem_per_block=P2_SMEM,
            iters_per_thread=cubes,
            meta={
                "pattern": 2,
                "metric": name,
                "framework": "moZC",
                "chain_length": cubes,
            },
        )

    for order in config.orders:
        # derivative kernel: reads both fields, writes both derived fields
        plans.append(
            stencil_plan(
                f"derivative_order{order}",
                halo=order,
                metric_ops=OPS_DERIV_SWEEP,
                writes=2 * n * FLOAT_BYTES,
            )
        )
        # the summation metric (divergence / Laplacian) is a separate CUB
        # reduction over the materialised derivative fields
        summation = "divergence" if order == 1 else "laplacian"
        plans.append(
            _cub_kernel(
                f"moZC.{summation}",
                n,
                read_bytes=2 * n * FLOAT_BYTES,
                write_bytes=64,
                flops=int(4 * n * MO_P1_STALL_FACTOR),
                meta={"pattern": 2, "metric": summation},
            )
        )
    if config.max_lag >= 1:
        # mean/variance pre-pass over the error field
        plans.append(
            _cub_kernel(
                "moZC.err_moments",
                n,
                read_bytes=2 * n * FLOAT_BYTES,
                write_bytes=64,
                flops=int(6 * n * MO_P1_STALL_FACTOR),
                meta={"pattern": 2, "metric": "err_moments"},
            )
        )
        for lag in range(1, config.max_lag + 1):
            plans.append(
                stencil_plan(
                    f"autocorr_lag{lag}",
                    halo=lag,
                    metric_ops=OPS_AUTOCORR_SWEEP,
                )
            )
    return plans


@_memoised
def plan_mo_pattern3(
    shape: tuple[int, int, int], config: Pattern3Config | None = None
) -> list[KernelStats]:
    """The no-FIFO SSIM kernel (paper's moZC SSIM ablation)."""
    config = config or Pattern3Config()
    return [plan_pattern3(shape, config, fifo=False)]
