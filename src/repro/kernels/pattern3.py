"""Pattern-3 kernel: sliding-window SSIM with a shared-memory FIFO
(paper Algorithm 3, Fig. 8).

Decomposition: one thread block owns a band of window rows — 32 lanes
along x (warp shuffles share the ghost regions between windows along x),
``YROWS`` data rows along y (cross-warp shared-memory reductions build the
y-extent of each window), and the full z extent.  As the block walks the
z-axis it pushes each slice's partial window reductions (window sums of
``o``, ``d``, ``o²``, ``d²``, ``o·d``) into a shared-memory **FIFO ring**
keyed by ``k % wsize``; whenever a window's last slice arrives, the ring
is collapsed into the full 3-D window statistics and the local SSIM is
emitted.  Each z-slice is therefore read from global memory exactly once
— the data-sharing property the paper's Section III-C3 highlights.

The functional execution mirrors this dataflow: a per-slice 2-D window
reduction (the vectorised equivalent of the x-shuffles + y-smem stage)
feeds a real :class:`~repro.gpusim.memory.SmemFifo`, and local SSIMs are
produced only from FIFO reductions.  Results equal the independent
:func:`repro.metrics.ssim.ssim3d` reference (asserted in tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.gpusim.counters import KernelStats
from repro.gpusim.memory import SmemFifo
from repro.metrics.ssim import SsimConfig, SsimResult, box_sums, window_positions

__all__ = [
    "Pattern3Config",
    "Pattern3Result",
    "plan_pattern3",
    "execute_pattern3",
    "LANES",
    "YROWS",
]

#: warp lanes along x (fixed by hardware)
LANES = 32
#: data rows along y held by one thread block
YROWS = 12
#: per-window accumulators staged through the FIFO:
#: sum(o), sum(d), sum(o²), sum(d²), sum(o·d)
N_WINDOW_ACCUMS = 5
#: register demand: window accumulators for both fields, FIFO indices,
#: masks — 29 regs/thread × 384 threads = 11136 ≈ the paper's "11k
#: Regs/TB" (Table II)
REGS_PER_THREAD = 29

#: per staged element: products o², d², o·d plus running adds
OPS_SLICE_STAGE = 10
#: per finished window: FIFO collapse (w slices × 5 accums × 2 reads)
#: plus the SSIM mix ("calw")
OPS_WINDOW_FINAL_BASE = 22
#: calibrated issue-efficiency inflation for the sliding-window kernel —
#: the serial z-chain, per-slice block syncs, and strided shared-memory
#: access dominate; fitted once against Fig. 11(c)'s measured 497-758
#: MB/s and reused everywhere.
P3_STALL_FACTOR = 125.0
#: extra *compute* fraction per redundant z re-read when the FIFO buffer
#: is disabled (moZC).  The re-reads themselves pipeline into the same
#: stall slots, so only a small fraction of the redundant slice-stage work
#: surfaces as extra time — calibrated against the paper's ~50% FIFO gain
#: (Fig. 12c: 1.42-1.63×).
P3_NOFIFO_RECOMPUTE = 0.18


@dataclass(frozen=True)
class Pattern3Config:
    """SSIM window geometry for the GPU kernel (paper defaults: 8 / 1).

    ``yrows`` is the kernel-geometry knob the autotuner explores: the
    number of data rows one thread block holds along y.  More rows mean
    more windows per block (less inter-block ghost re-reading) but a
    bigger FIFO and register footprint (less concurrency).
    """

    window: int = 8
    step: int = 1
    k1: float = 0.01
    k2: float = 0.03
    dynamic_range: float | None = None
    yrows: int = YROWS

    def validate(self, shape: tuple[int, int, int]) -> None:
        SsimConfig(self.window, self.step, self.k1, self.k2).validate(shape)
        if self.window > LANES:
            raise ShapeError(
                f"SSIM window {self.window} exceeds the warp width {LANES}"
            )
        if not 2 <= self.yrows <= 32:
            raise ShapeError(
                f"yrows must be within [2, 32] (block = 32 x yrows threads), "
                f"got {self.yrows}"
            )
        if self.window > self.yrows:
            raise ShapeError(
                f"SSIM window {self.window} exceeds the block row count "
                f"{self.yrows}"
            )

    @property
    def xnum(self) -> int:
        """Windows processed per warp span (paper: warpSize - wsize + step)."""
        return LANES - self.window + self.step

    @property
    def ynum(self) -> int:
        """Window rows processed per thread block."""
        return self.yrows - self.window + self.step

    @property
    def ssim_config(self) -> SsimConfig:
        return SsimConfig(
            window=self.window,
            step=self.step,
            k1=self.k1,
            k2=self.k2,
            dynamic_range=self.dynamic_range,
        )

    @property
    def smem_per_block(self) -> int:
        """FIFO footprint: xnum × ynum × wsize × 5 accums × 4 B."""
        return self.xnum * self.ynum * self.window * N_WINDOW_ACCUMS * 4


@dataclass
class Pattern3Result:
    """SSIM output of one kernel launch."""

    ssim: float
    min_window_ssim: float
    max_window_ssim: float
    n_windows: int
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        return {"ssim": self.ssim}

    @property
    def as_ssim_result(self) -> SsimResult:
        return SsimResult(
            ssim=self.ssim,
            min_window_ssim=self.min_window_ssim,
            max_window_ssim=self.max_window_ssim,
            n_windows=self.n_windows,
        )


def _shape3d(shape: tuple[int, ...]) -> tuple[int, int, int]:
    if len(shape) != 3 or min(shape) < 1:
        raise ShapeError(f"pattern kernels expect 3-D shapes, got {shape}")
    return shape  # type: ignore[return-value]


def plan_pattern3(
    shape: tuple[int, int, int],
    config: Pattern3Config | None = None,
    fifo: bool = True,
) -> KernelStats:
    """Closed-form event counts for the pattern-3 kernel.

    ``fifo=False`` models the moZC ablation: without the ring buffer every
    z-slice is re-read (and its slice-stage partials recomputed) once per
    overlapping window along z — ``window / step`` times.
    """
    config = config or Pattern3Config()
    nz, ny, nx = _shape3d(shape)
    config.validate((nz, ny, nx))
    n = nz * ny * nx
    py = window_positions(ny, config.window, config.step)
    px = window_positions(nx, config.window, config.step)
    pz = window_positions(nz, config.window, config.step)
    n_windows = pz * py * px
    grid = max(1, math.ceil(py / config.ynum))
    spans_x = max(1, math.ceil(px / config.xnum))
    iters = spans_x * nz

    # re-read factor without the FIFO: each slice participates in
    # window/step overlapping windows along z
    z_reuse = 1 if fifo else max(1, config.window // config.step)

    # every slice pass reads LANES × yrows points per span per block
    elements_staged = grid * nz * spans_x * LANES * config.yrows
    read_bytes = 2 * elements_staged * z_reuse * 4  # both fields

    # redundant re-reads pipeline into existing stall slots; only a small
    # fraction of the recomputed slice-stage work surfaces as time
    recompute = 1.0 + P3_NOFIFO_RECOMPUTE * (z_reuse - 1)
    slice_ops = 2 * elements_staged * OPS_SLICE_STAGE * recompute
    # x-sharing shuffles: (window-1) strided shuffles × 5 accums per
    # thread per slice pass
    shuffles = int(
        elements_staged * (config.window - 1) * N_WINDOW_ACCUMS * recompute
    )
    final_ops = n_windows * (
        config.window * N_WINDOW_ACCUMS * 2 + OPS_WINDOW_FINAL_BASE
    )
    fifo_traffic = (
        grid * nz * spans_x * config.xnum * config.ynum * N_WINDOW_ACCUMS * 4
    )

    return KernelStats(
        name="cuZC.pattern3" if fifo else "moZC.pattern3",
        launches=1 if fifo else 2,
        grid_syncs=1 if fifo else 0,
        global_read_bytes=read_bytes,
        global_write_bytes=n_windows * 4 + 64,
        shared_bytes=fifo_traffic * (2 if fifo else 1),
        shuffle_ops=shuffles,
        flops=int((slice_ops + final_ops) * P3_STALL_FACTOR),
        atomic_ops=0,
        grid_blocks=grid,
        threads_per_block=LANES * config.yrows,
        regs_per_thread=REGS_PER_THREAD,
        smem_per_block=config.smem_per_block if fifo else config.smem_per_block // 2,
        iters_per_thread=iters,
        meta={
            "pattern": 3,
            "chain_length": iters,
            "fifo": fifo,
            "n_windows": n_windows,
        },
    )


# ---------------------------------------------------------------------------
# functional execution
# ---------------------------------------------------------------------------


def _box_sums2d(a: np.ndarray, window: int, step: int) -> np.ndarray:
    """2-D windowed sums over (y, x) — the x-shuffle + y-smem stage."""
    ny, nx = a.shape
    sat = np.zeros((ny + 1, nx + 1), dtype=np.float64)
    sat[1:, 1:] = a.cumsum(axis=0).cumsum(axis=1)
    py = window_positions(ny, window, step)
    px = window_positions(nx, window, step)
    iy = np.arange(py) * step
    ix = np.arange(px) * step
    y0, y1 = iy[:, None], iy[:, None] + window
    x0, x1 = ix[None, :], ix[None, :] + window
    return sat[y1, x1] - sat[y0, x1] - sat[y1, x0] + sat[y0, x0]


def _execute_fused(workspace, config: Pattern3Config) -> Pattern3Result:
    """Sliding-sum SSIM over the workspace's cached element products.

    The summed-volume tables make every window statistic O(1) regardless
    of window size, and the ``o²``/``d²``/``o·d`` products are read from
    the shared workspace instead of being rebuilt per slice.
    """
    w, step = config.window, config.step
    if config.dynamic_range is not None:
        L = float(config.dynamic_range)
    else:
        m = workspace.moments
        L = m["max_o"] - m["min_o"]
    if L <= 0.0:
        L = 1.0
    c1 = (config.k1 * L) ** 2
    c2 = (config.k2 * L) ** 2
    volume = float(w**3)

    s1 = box_sums(workspace.o64, w, step)
    s2 = box_sums(workspace.d64, w, step)
    sq1 = box_sums(workspace.o_sq, w, step)
    sq2 = box_sums(workspace.d_sq, w, step)
    s12 = box_sums(workspace.od, w, step)
    if s1.size == 0:
        raise ShapeError("no complete SSIM window fits the data")

    mu1 = s1 / volume
    mu2 = s2 / volume
    var1 = np.maximum(sq1 / volume - mu1 * mu1, 0.0)
    var2 = np.maximum(sq2 / volume - mu2 * mu2, 0.0)
    cov = s12 / volume - mu1 * mu2
    local = ((2 * mu1 * mu2 + c1) * (2 * cov + c2)) / (
        (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
    )
    return Pattern3Result(
        ssim=float(local.mean()),
        min_window_ssim=float(local.min()),
        max_window_ssim=float(local.max()),
        n_windows=int(local.size),
    )


def execute_pattern3(
    orig: np.ndarray,
    dec: np.ndarray,
    config: Pattern3Config | None = None,
    workspace=None,
) -> tuple[Pattern3Result, KernelStats]:
    """Functional FIFO-buffered SSIM kernel.

    With a :class:`~repro.core.workspace.MetricWorkspace`, the sliding-sum
    fast path replaces the per-slice FIFO walk (same result, asserted in
    tests); the modelled :func:`plan_pattern3` cost is unchanged.
    """
    config = config or Pattern3Config()
    if workspace is not None:
        nz, ny, nx = _shape3d(workspace.shape)
        config.validate((nz, ny, nx))
        return _execute_fused(workspace, config), plan_pattern3(
            workspace.shape, config
        )
    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if orig.shape != dec.shape:
        raise ShapeError(f"shape mismatch: {orig.shape} vs {dec.shape}")
    nz, ny, nx = _shape3d(orig.shape)
    config.validate((nz, ny, nx))
    o64 = orig.astype(np.float64)
    d64 = dec.astype(np.float64)

    w, step = config.window, config.step
    if config.dynamic_range is not None:
        L = float(config.dynamic_range)
    else:
        L = float(o64.max() - o64.min())
    if L <= 0.0:
        L = 1.0
    c1 = (config.k1 * L) ** 2
    c2 = (config.k2 * L) ** 2
    volume = float(w**3)

    py = window_positions(ny, w, step)
    px = window_positions(nx, w, step)
    fifo = SmemFifo(depth=w, slot_shape=(N_WINDOW_ACCUMS, py, px))

    total = 0.0
    count = 0
    vmin, vmax = math.inf, -math.inf
    for k in range(nz):  # the kernel's z walk (Algorithm 3, ln. 6)
        o = o64[k]
        d = d64[k]
        slot = np.stack(
            [
                _box_sums2d(o, w, step),
                _box_sums2d(d, w, step),
                _box_sums2d(o * o, w, step),
                _box_sums2d(d * d, w, step),
                _box_sums2d(o * d, w, step),
            ]
        )
        fifo.push(k, slot)
        # a window ends at slice k iff k >= w-1 and its origin is on-step
        if k >= w - 1 and (k - w + 1) % step == 0:
            s1, s2, sq1, sq2, s12 = fifo.reduce()
            mu1 = s1 / volume
            mu2 = s2 / volume
            var1 = np.maximum(sq1 / volume - mu1 * mu1, 0.0)
            var2 = np.maximum(sq2 / volume - mu2 * mu2, 0.0)
            cov = s12 / volume - mu1 * mu2
            local = ((2 * mu1 * mu2 + c1) * (2 * cov + c2)) / (
                (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
            )
            total += float(local.sum())
            count += local.size
            vmin = min(vmin, float(local.min()))
            vmax = max(vmax, float(local.max()))

    if count == 0:
        raise ShapeError("no complete SSIM window fits the data")
    result = Pattern3Result(
        ssim=total / count,
        min_window_ssim=vmin,
        max_window_ssim=vmax,
        n_windows=count,
    )
    return result, plan_pattern3(orig.shape, config)
