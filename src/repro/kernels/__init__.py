"""Simulated CUDA kernels implementing the paper's Algorithms 1-3.

Each pattern module exposes two layers:

* ``plan_*`` — a closed-form :class:`~repro.gpusim.counters.KernelStats`
  for the paper's true dataset shapes (feeds the cost model; no data
  needed);
* ``execute_*`` — a functional run that follows the same decomposition
  (slice-per-block reductions, cube-blocked stencils, FIFO-buffered
  sliding windows) and returns numerically correct metric values, verified
  against :mod:`repro.metrics` in the test suite.

:mod:`repro.kernels.metric_oriented` provides the moZC baseline: one
kernel per metric, CUB-style reductions, no fusion and no FIFO buffer.
"""

from repro.kernels.pattern1 import (
    Pattern1Config,
    Pattern1Result,
    plan_pattern1,
    execute_pattern1,
)
from repro.kernels.pattern2 import (
    Pattern2Config,
    Pattern2Result,
    plan_pattern2,
    execute_pattern2,
)
from repro.kernels.pattern3 import (
    Pattern3Config,
    Pattern3Result,
    plan_pattern3,
    execute_pattern3,
)
from repro.kernels import metric_oriented

__all__ = [
    "Pattern1Config",
    "Pattern1Result",
    "plan_pattern1",
    "execute_pattern1",
    "Pattern2Config",
    "Pattern2Result",
    "plan_pattern2",
    "execute_pattern2",
    "Pattern3Config",
    "Pattern3Result",
    "plan_pattern3",
    "execute_pattern3",
    "metric_oriented",
]
