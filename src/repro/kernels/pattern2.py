"""Pattern-2 kernel: blocked stencil computations (paper Algorithm 2).

A single fused cooperative kernel computes every Category-II metric:
first/second derivatives (with divergence/Laplacian reductions) of both
the original and decompressed fields, plus the spatial autocorrelation of
the compression error at every requested lag.

Decomposition (Fig. 7): the volume is split into z-slabs, one thread
block per slab; within a slab, 16×16×17 cubes (tile + stride halo) are
iteratively staged through shared memory so that one global load of a
data point serves **all** pattern-2 metrics.  The kernel makes one fused
sweep per stride value ``s`` (cooperative grid syncs in between):

* sweep ``s = 1`` — first-order derivatives + divergence + lag-1
  autocorrelation;
* sweep ``s = 2`` — second-order derivatives + Laplacian + lag-2
  autocorrelation;
* sweeps ``s >= 3`` — lag-``s`` autocorrelation only.

The error mean/variance the autocorrelation normalisation needs are
consumed from the pattern-1 kernel's results (the coordinator passes them
in — the cross-pattern data reuse the paper's design enables); standalone
execution computes them on the fly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.gpusim.counters import KernelStats
from repro.metrics.derivatives import (
    DerivativeComparison,
    field_comparison,
)

__all__ = [
    "Pattern2Config",
    "Pattern2Result",
    "plan_pattern2",
    "execute_pattern2",
    "stencil_fields_local",
    "TILE",
    "TILE_Z",
]

#: cube footprint per thread block: 16×16 threads, staging a 16×16×17
#: shared-memory cube (tile + one-slice halo) = 17408 B ≈ the paper's
#: "17KB SMem/TB" (Table II)
TILE = 16
TILE_Z = 16
SMEM_PER_BLOCK = TILE * TILE * (TILE_Z + 1) * 4
#: stencil kernels are lean on registers: loop indices plus a handful of
#: neighbour values — 9 regs/thread × 256 threads = 2304 ≈ "2.3k Regs/TB"
REGS_PER_THREAD = 9

#: device ops per element for *staging* one sweep: cube address
#: arithmetic, the global→shared copy, boundary predicates, and the
#: per-cube synchronisation.  Staging dominates stencil kernels; fusing
#: all pattern-2 metrics into one sweep amortises it (the paper's
#: "one loading ... can serve the calculations of all pattern-2 metrics")
OPS_STAGING_SWEEP = 30
#: device ops per element for the derivative math itself (central diffs
#: along three axes on two fields, magnitude, divergence partials)
OPS_DERIV_SWEEP = 30
#: device ops per element for the autocorrelation math at one lag
OPS_AUTOCORR_SWEEP = 8
#: calibrated issue-efficiency inflation for shared-memory stencil code
#: (bank conflicts, sync between cube loads); fitted against Fig. 11(b)
P2_STALL_FACTOR = 2.2


@dataclass(frozen=True)
class Pattern2Config:
    """User-visible knobs of the fused stencil kernel."""

    #: autocorrelation spatial gaps 1..max_lag (paper evaluation: 10)
    max_lag: int = 10
    #: derivative orders to compute (paper evaluation: both)
    orders: tuple[int, ...] = (1, 2)

    def validate(self, shape: tuple[int, int, int]) -> None:
        if self.max_lag < 0:
            raise ValueError("max_lag must be >= 0")
        if any(o not in (1, 2) for o in self.orders):
            raise ValueError(f"derivative orders must be in {{1,2}}, got {self.orders}")
        need = max((self.max_lag, *(2 * o for o in self.orders), 1))
        if need >= min(shape):
            raise ShapeError(
                f"shape {shape} too small for stencil reach {need}"
            )

    @property
    def n_sweeps(self) -> int:
        """Fused sweeps performed: one per stride in 1..max(max_lag, orders)."""
        return max((self.max_lag, *self.orders, 1))


@dataclass
class Pattern2Result:
    """All Category-II metric values produced by one fused launch."""

    der1: DerivativeComparison | None
    der2: DerivativeComparison | None
    divergence: DerivativeComparison | None
    laplacian: DerivativeComparison | None
    #: AC(0..max_lag) of the compression error (paper Eq. 2)
    autocorrelation: np.ndarray
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        out: dict[str, float] = {}
        if self.der1 is not None:
            out["derivative_order1"] = self.der1.rms_diff
        if self.der2 is not None:
            out["derivative_order2"] = self.der2.rms_diff
        if self.divergence is not None:
            out["divergence"] = self.divergence.rms_diff
        if self.laplacian is not None:
            out["laplacian"] = self.laplacian.rms_diff
        if len(self.autocorrelation) > 1:
            out["autocorrelation_lag1"] = float(self.autocorrelation[1])
        return out


def _shape3d(shape: tuple[int, ...]) -> tuple[int, int, int]:
    if len(shape) != 3 or min(shape) < 1:
        raise ShapeError(f"pattern kernels expect 3-D shapes, got {shape}")
    return shape  # type: ignore[return-value]


def _halo_factor(stride: int) -> float:
    """Extra global traffic at the given stride.

    Each thread block owns one z-plane and stages a rolling window of
    neighbouring planes through its 16×16×17 shared-memory cube, so the
    z-halo is read once per block; the residual overhead is the
    ``stride``-wide boundary re-reads between adjacent xy-tiles and the
    rolling window's warm-up planes.
    """
    return (1.0 + stride / TILE) * (1.0 + stride / (TILE * TILE_Z))


def plan_pattern2(
    shape: tuple[int, int, int], config: Pattern2Config | None = None
) -> KernelStats:
    """Closed-form event counts for the fused pattern-2 kernel.

    Geometry: one thread block per z-plane (the paper's "number of TBs is
    decided by the z-axis size"), 16×16 threads per block iterating over
    the plane's xy-tiles, staging 16×16×17 cubes in shared memory.
    """
    config = config or Pattern2Config()
    nz, ny, nx = _shape3d(shape)
    config.validate((nz, ny, nx))
    n = nz * ny * nx
    grid = nz
    cubes_per_plane = math.ceil(ny / TILE) * math.ceil(nx / TILE)

    read_bytes = 0
    flops = 0.0
    shared = 0
    for s in range(1, config.n_sweeps + 1):
        hf = _halo_factor(s)
        read_bytes += int(2 * n * 4 * hf)  # both fields staged via smem
        # one smem write per staged element; ~7 smem reads per stencil point
        shared += int(n * 4 * hf + 7 * n * 4)
        flops += OPS_STAGING_SWEEP * n  # amortised once per fused sweep
        if s in config.orders:
            flops += OPS_DERIV_SWEEP * n
        if s <= config.max_lag:
            flops += OPS_AUTOCORR_SWEEP * n
    # derivative fields are written back to global (Algorithm 2, ln. "Der[...] <-")
    write_bytes = len(config.orders) * 2 * n * 4 + config.n_sweeps * grid * 8

    # block-level reduction shuffles per cube per sweep (tree over 8 warps)
    shuffles = config.n_sweeps * grid * cubes_per_plane * (8 * 5 + 3) * 2

    return KernelStats(
        name="cuZC.pattern2",
        launches=1,
        grid_syncs=config.n_sweeps,
        global_read_bytes=read_bytes,
        global_write_bytes=write_bytes,
        shared_bytes=shared,
        shuffle_ops=shuffles,
        flops=int(flops * P2_STALL_FACTOR),
        atomic_ops=0,
        grid_blocks=grid,
        threads_per_block=TILE * TILE,
        regs_per_thread=REGS_PER_THREAD,
        smem_per_block=SMEM_PER_BLOCK,
        iters_per_thread=cubes_per_plane,
        meta={
            "pattern": 2,
            "sweeps": config.n_sweeps,
            "chain_length": cubes_per_plane,
        },
    )


# ---------------------------------------------------------------------------
# functional execution
# ---------------------------------------------------------------------------


def _slab_ranges(nz: int) -> list[tuple[int, int]]:
    """Interior z-ranges owned by each thread block (slab decomposition)."""
    return [(z0, min(z0 + TILE_Z, nz)) for z0 in range(0, nz, TILE_Z)]


def stencil_fields_local(
    local: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(grad magnitude, 2nd-deriv magnitude, divergence, laplacian) of the
    interior of one ±1-haloed local block — the maths a thread block runs
    on its staged shared-memory cube.  Shared with the tiled executor,
    which feeds slab-sized copies instead of whole-array views."""
    c = local[1:-1, 1:-1, 1:-1]
    dz = (local[2:, 1:-1, 1:-1] - local[:-2, 1:-1, 1:-1]) / 2.0
    dy = (local[1:-1, 2:, 1:-1] - local[1:-1, :-2, 1:-1]) / 2.0
    dx = (local[1:-1, 1:-1, 2:] - local[1:-1, 1:-1, :-2]) / 2.0
    dzz = local[2:, 1:-1, 1:-1] - 2 * c + local[:-2, 1:-1, 1:-1]
    dyy = local[1:-1, 2:, 1:-1] - 2 * c + local[1:-1, :-2, 1:-1]
    dxx = local[1:-1, 1:-1, 2:] - 2 * c + local[1:-1, 1:-1, :-2]
    grad = np.sqrt(dx * dx + dy * dy + dz * dz)
    der2 = np.sqrt(dxx * dxx + dyy * dyy + dzz * dzz)
    return grad, der2, dz + dy + dx, dzz + dyy + dxx


def _slab_stencil_fields(
    f: np.ndarray, z0: int, z1: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stencil fields for the interior rows slab ``[z0, z1)`` owns,
    computed from a haloed view of the whole array."""
    nz = f.shape[0]
    lo = max(z0, 1)
    hi = min(z1, nz - 1)
    if lo >= hi:
        empty = np.zeros((0, f.shape[1] - 2, f.shape[2] - 2))
        return empty, empty, empty, empty
    return stencil_fields_local(f[lo - 1 : hi + 1])


def _blocked_field_comparison(
    o64: np.ndarray, d64: np.ndarray, which: int
) -> DerivativeComparison:
    """Slab-blocked comparison of one derived field across both inputs.

    ``which`` selects the field from :func:`_slab_stencil_fields`.
    Aggregates per-slab partial sums then performs the grid-level merge —
    mirroring the in-kernel reduce of Algorithm 2.
    """
    nz = o64.shape[0]
    sum_abs_o = sum_abs_d = sum_sq_diff = 0.0
    max_diff = 0.0
    count = 0
    for z0, z1 in _slab_ranges(nz):
        fo = _slab_stencil_fields(o64, z0, z1)[which]
        fd = _slab_stencil_fields(d64, z0, z1)[which]
        if fo.size == 0:
            continue
        diff = fd - fo
        sum_abs_o += float(np.abs(fo).sum())
        sum_abs_d += float(np.abs(fd).sum())
        sum_sq_diff += float((diff * diff).sum())
        max_diff = max(max_diff, float(np.abs(diff).max()))
        count += fo.size
    if count == 0:
        raise ShapeError("field too small for the pattern-2 stencil")
    return DerivativeComparison(
        mean_orig=sum_abs_o / count,
        mean_dec=sum_abs_d / count,
        rms_diff=math.sqrt(sum_sq_diff / count),
        max_diff=max_diff,
    )


def _blocked_field_comparisons_fused(
    o64: np.ndarray, d64: np.ndarray, whichs: tuple[int, ...]
) -> dict[int, DerivativeComparison]:
    """One slab pass feeding every requested derived-field comparison.

    The fused counterpart of :func:`_blocked_field_comparison`: each slab's
    staged cube is evaluated once per input and the resulting stencil
    fields feed all comparisons, instead of re-staging the slab for every
    ``which``.  Per-``which`` accumulation visits slabs in the same order
    as the unfused path, so results are bit-identical.
    """
    nz = o64.shape[0]
    acc = {
        w: {"sum_abs_o": 0.0, "sum_abs_d": 0.0, "sum_sq_diff": 0.0,
            "max_diff": 0.0, "count": 0}
        for w in whichs
    }
    for z0, z1 in _slab_ranges(nz):
        fo_all = _slab_stencil_fields(o64, z0, z1)
        fd_all = _slab_stencil_fields(d64, z0, z1)
        for w in whichs:
            fo, fd = fo_all[w], fd_all[w]
            if fo.size == 0:
                continue
            a = acc[w]
            diff = fd - fo
            if w < 2:
                # gradient/2nd-derivative magnitudes are sqrt outputs —
                # already non-negative, abs would be an extra full pass
                a["sum_abs_o"] += float(fo.sum())
                a["sum_abs_d"] += float(fd.sum())
            else:
                a["sum_abs_o"] += float(np.abs(fo).sum())
                a["sum_abs_d"] += float(np.abs(fd).sum())
            a["sum_sq_diff"] += float((diff * diff).sum())
            a["max_diff"] = max(a["max_diff"], float(np.abs(diff).max()))
            a["count"] += fo.size
    out: dict[int, DerivativeComparison] = {}
    for w in whichs:
        a = acc[w]
        if a["count"] == 0:
            raise ShapeError("field too small for the pattern-2 stencil")
        out[w] = DerivativeComparison(
            mean_orig=a["sum_abs_o"] / a["count"],
            mean_dec=a["sum_abs_d"] / a["count"],
            rms_diff=math.sqrt(a["sum_sq_diff"] / a["count"]),
            max_diff=a["max_diff"],
        )
    return out


def _blocked_autocorr(
    e: np.ndarray, max_lag: int, mu: float, var: float
) -> np.ndarray:
    """Slab-blocked Eq. (2) autocorrelation; equals the reference."""
    nz, ny, nx = e.shape
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    if var == 0.0:
        out[1:] = 0.0
        return out
    c = e - mu
    for tau in range(1, max_lag + 1):
        acc = 0.0
        zmax = nz - tau
        for z0, z1 in _slab_ranges(nz):
            hi = min(z1, zmax)
            if z0 >= hi:
                continue
            core = c[z0:hi, : ny - tau, : nx - tau]
            sz = c[z0 + tau : hi + tau, : ny - tau, : nx - tau]
            sy = c[z0:hi, tau:, : nx - tau][:, : ny - tau, :]
            sx = c[z0:hi, : ny - tau, tau:][:, :, : nx - tau]
            acc += float(np.sum(core * (sz + sy + sx)))
        ne = (nz - tau) * (ny - tau) * (nx - tau)
        out[tau] = acc / 3.0 / ne / var
    return out


def _fused_autocorr(
    e: np.ndarray, max_lag: int, mu: float, var: float
) -> np.ndarray:
    """Whole-volume Eq. (2) autocorrelation with no per-lag temporaries.

    The three directional cross-products are evaluated as einsum dot
    products over strided views, so nothing beyond the centred error is
    materialised — the host analogue of the kernel accumulating all three
    shifted reads from the staged cube in registers.  Summation order
    differs from :func:`_blocked_autocorr` only in the final three-way
    add, well inside the checker-level 1e-9 tolerance.
    """
    nz, ny, nx = e.shape
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    if var == 0.0:
        out[1:] = 0.0
        return out
    c = e - mu
    for tau in range(1, max_lag + 1):
        core = c[: nz - tau, : ny - tau, : nx - tau]
        sz = c[tau:, : ny - tau, : nx - tau]
        sy = c[: nz - tau, tau:, : nx - tau]
        sx = c[: nz - tau, : ny - tau, tau:]
        acc = (
            np.einsum("ijk,ijk->", core, sz)
            + np.einsum("ijk,ijk->", core, sy)
            + np.einsum("ijk,ijk->", core, sx)
        )
        ne = (nz - tau) * (ny - tau) * (nx - tau)
        out[tau] = float(acc) / 3.0 / ne / var
    return out


def execute_pattern2(
    orig: np.ndarray,
    dec: np.ndarray,
    config: Pattern2Config | None = None,
    err_mean: float | None = None,
    err_var: float | None = None,
    workspace=None,
) -> tuple[Pattern2Result, KernelStats]:
    """Functional fused pattern-2 kernel (slab/cube decomposition).

    ``err_mean``/``err_var`` may be supplied from a pattern-1 run (the
    coordinator's cross-pattern reuse); otherwise they are computed here.
    With a :class:`~repro.core.workspace.MetricWorkspace`, the cached
    float64 views and error array are reused and each slab's stencil
    fields are computed once for all comparisons.
    """
    config = config or Pattern2Config()
    if workspace is not None:
        shape = _shape3d(workspace.shape)
        config.validate(shape)
        o64, d64 = workspace.o64, workspace.d64
        e = workspace.err
    else:
        orig = np.asarray(orig)
        dec = np.asarray(dec)
        if orig.shape != dec.shape:
            raise ShapeError(f"shape mismatch: {orig.shape} vs {dec.shape}")
        shape = _shape3d(orig.shape)
        config.validate(shape)
        o64 = orig.astype(np.float64)
        d64 = dec.astype(np.float64)
        e = None

    der1 = der2 = div = lap = None
    if workspace is not None:
        whichs: tuple[int, ...] = ()
        if 1 in config.orders:
            whichs += (0, 2)
        if 2 in config.orders:
            whichs += (1, 3)
        cmp = _blocked_field_comparisons_fused(o64, d64, whichs)
        der1, div = cmp.get(0), cmp.get(2)
        der2, lap = cmp.get(1), cmp.get(3)
    else:
        if 1 in config.orders:
            der1 = _blocked_field_comparison(o64, d64, 0)
            div = _blocked_field_comparison(o64, d64, 2)
        if 2 in config.orders:
            der2 = _blocked_field_comparison(o64, d64, 1)
            lap = _blocked_field_comparison(o64, d64, 3)

    if e is None:
        e = d64 - o64
    mu = float(e.mean()) if err_mean is None else err_mean
    var = float(e.var()) if err_var is None else err_var
    if workspace is not None:
        ac = _fused_autocorr(e, config.max_lag, mu, var)
    else:
        ac = _blocked_autocorr(e, config.max_lag, mu, var)

    result = Pattern2Result(
        der1=der1,
        der2=der2,
        divergence=div,
        laplacian=lap,
        autocorrelation=ac,
    )
    return result, plan_pattern2(shape, config)
