"""Pattern-1 reference metrics: MSE, RMSE, NRMSE, SNR, PSNR.

Definitions match Z-checker:

* ``MSE   = mean((dec - orig)^2)``
* ``RMSE  = sqrt(MSE)``
* ``NRMSE = RMSE / value_range``             (value_range = max - min of orig)
* ``PSNR  = 20 log10(value_range) - 10 log10(MSE)``
* ``SNR   = 10 log10( var(orig) / MSE )``    (signal power over noise power)

Degenerate cases: a lossless reconstruction has ``MSE == 0`` and infinite
PSNR/SNR; a constant original field has zero range, making NRMSE/PSNR
undefined (returned as ``nan``) — both conventions are exercised in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.metrics.error_stats import _as_pair

__all__ = ["RateDistortion", "rate_distortion"]


@dataclass(frozen=True)
class RateDistortion:
    mse: float
    rmse: float
    nrmse: float
    snr: float
    psnr: float
    value_range: float


def rate_distortion(orig: np.ndarray, dec: np.ndarray) -> RateDistortion:
    """Reference implementation of the rate-distortion family (pattern 1)."""
    orig, dec = _as_pair(orig, dec)
    o = orig.astype(np.float64)
    d = dec.astype(np.float64)
    e = d - o
    mse = float(np.mean(e * e))
    rmse = math.sqrt(mse)
    vmin, vmax = float(o.min()), float(o.max())
    value_range = vmax - vmin
    signal_var = float(o.var())

    if value_range == 0.0:
        nrmse = math.nan if mse > 0 else 0.0
        psnr = math.nan
    elif mse == 0.0:
        nrmse = 0.0
        psnr = math.inf
    else:
        nrmse = rmse / value_range
        psnr = 20.0 * math.log10(value_range) - 10.0 * math.log10(mse)

    if mse == 0.0:
        snr = math.inf
    elif signal_var == 0.0:
        snr = -math.inf
    else:
        snr = 10.0 * math.log10(signal_var / mse)

    return RateDistortion(
        mse=mse,
        rmse=rmse,
        nrmse=nrmse,
        snr=snr,
        psnr=psnr,
        value_range=value_range,
    )
