"""Pattern-1 reference metrics: error statistics and error PDF.

Conventions follow Z-checker: the compression error is
``e = decompressed - original`` (signed), so ``min_err`` can be negative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = ["ErrorStats", "error_stats", "error_pdf", "Pdf"]

DEFAULT_PDF_BINS = 1024


def _as_pair(orig: np.ndarray, dec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if orig.shape != dec.shape:
        raise ShapeError(
            f"original {orig.shape} and decompressed {dec.shape} shapes differ"
        )
    if orig.size == 0:
        raise ShapeError("cannot assess empty arrays")
    return orig, dec


@dataclass(frozen=True)
class ErrorStats:
    """min/max/avg of the signed error plus the mean absolute error."""

    min_err: float
    max_err: float
    avg_err: float
    avg_abs_err: float
    max_abs_err: float


@dataclass(frozen=True)
class Pdf:
    """A histogram-based probability density estimate."""

    bin_edges: np.ndarray
    density: np.ndarray

    @property
    def bin_centers(self) -> np.ndarray:
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    def integral(self) -> float:
        """∫ pdf dx — 1.0 up to floating-point error."""
        widths = np.diff(self.bin_edges)
        return float(np.sum(self.density * widths))


def error_stats(orig: np.ndarray, dec: np.ndarray) -> ErrorStats:
    """Reference implementation of min/max/avg error (pattern 1)."""
    orig, dec = _as_pair(orig, dec)
    e = dec.astype(np.float64) - orig.astype(np.float64)
    abs_e = np.abs(e)
    return ErrorStats(
        min_err=float(e.min()),
        max_err=float(e.max()),
        avg_err=float(e.mean()),
        avg_abs_err=float(abs_e.mean()),
        max_abs_err=float(abs_e.max()),
    )


def error_pdf(
    orig: np.ndarray,
    dec: np.ndarray,
    bins: int = DEFAULT_PDF_BINS,
) -> Pdf:
    """Probability density of the signed compression error (pattern 1).

    The bin range spans ``[min_err, max_err]``; a degenerate (constant)
    error field yields a single unit-mass bin centred on that value.
    """
    orig, dec = _as_pair(orig, dec)
    if bins < 1:
        raise ValueError("bins must be >= 1")
    e = (dec.astype(np.float64) - orig.astype(np.float64)).ravel()
    lo, hi = float(e.min()), float(e.max())
    if lo == hi:
        # all-equal errors: a single spike
        eps = max(abs(lo), 1.0) * 1e-9 + 1e-300
        edges = np.array([lo - eps, hi + eps])
        density = np.array([1.0 / (edges[1] - edges[0])])
        return Pdf(bin_edges=edges, density=density)
    hist, edges = np.histogram(e, bins=bins, range=(lo, hi), density=True)
    return Pdf(bin_edges=edges, density=hist)
