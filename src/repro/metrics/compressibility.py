"""Compressibility estimation (pre-compression data analysis).

Z-checker's data-property analysis exists largely to answer "how well
*will* this field compress?" before running any compressor.  For
prediction-based error-bounded compressors the answer is almost entirely
determined by the entropy of the quantised prediction residuals, which
this module computes directly:

* :func:`delta_entropy` — Shannon entropy (bits/value) of the Lorenzo
  residuals at a given error bound;
* :func:`estimate_sz_ratio` — the implied compression-ratio estimate
  ``32 / (delta_entropy + overhead)``;
* :func:`slice_profiles` — per-z-slice min/mean/max curves (the
  structure-at-a-glance view Z-checker plots).

The estimate's accuracy against the real :class:`SZCompressor` is
asserted in tests (within ~25% on smooth fields).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressors.predictor import lorenzo_residuals
from repro.compressors.quantizer import prequantize, resolve_error_bound
from repro.errors import ShapeError

__all__ = [
    "delta_entropy",
    "estimate_sz_ratio",
    "SliceProfiles",
    "slice_profiles",
]

#: fixed per-value overhead of the real codec (payload framing), in bits
_CODEC_OVERHEAD_BITS = 0.15
#: canonical-Huffman header cost per alphabet symbol: 8-byte value +
#: 1-byte code length
_HEADER_BITS_PER_SYMBOL = 72


def _residual_distribution(
    data: np.ndarray,
    abs_bound: float | None,
    rel_bound: float | None,
) -> tuple[float, int, int]:
    """(entropy bits/value, alphabet size, element count) of the
    quantised Lorenzo residual stream."""
    data = np.asarray(data)
    if data.ndim not in (1, 2, 3):
        raise ShapeError(f"expected 1-3-D data, got {data.ndim}-D")
    eb = resolve_error_bound(data, abs_bound, rel_bound)
    q = prequantize(data, eb)
    residuals = lorenzo_residuals(q).ravel()
    _, counts = np.unique(residuals, return_counts=True)
    p = counts / residuals.size
    entropy = float(-(p * np.log2(p)).sum())
    return entropy, len(counts), residuals.size


def delta_entropy(
    data: np.ndarray,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
) -> float:
    """Entropy (bits/value) of the quantised Lorenzo residual stream.

    This is the information content an ideal entropy coder would pay for
    the SZ pipeline's symbols at the given bound.
    """
    return _residual_distribution(data, abs_bound, rel_bound)[0]


def estimate_sz_ratio(
    data: np.ndarray,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
) -> float:
    """Predicted SZ compression ratio at a bound, without compressing.

    ``bits_in / (residual entropy + Huffman header amortisation +
    framing)`` — the header term matters at tight bounds, where large
    residual alphabets make the canonical code table itself the dominant
    cost.  Accurate to a few percent against the real codec (tested).
    """
    entropy, alphabet, n = _residual_distribution(data, abs_bound, rel_bound)
    bits_per_value = (
        max(entropy, 1e-3)
        + _CODEC_OVERHEAD_BITS
        + _HEADER_BITS_PER_SYMBOL * alphabet / n
    )
    itemsize_bits = 8 * np.asarray(data).dtype.itemsize
    return float(itemsize_bits / bits_per_value)


@dataclass(frozen=True)
class SliceProfiles:
    """Per-z-slice statistics of a 3-D field."""

    z: np.ndarray
    min: np.ndarray
    mean: np.ndarray
    max: np.ndarray
    std: np.ndarray

    def as_columns(self) -> dict[str, np.ndarray]:
        """Column dict ready for :func:`repro.viz.gnuplot.write_series`."""
        return {
            "z": self.z.astype(float),
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
            "std": self.std,
        }


def slice_profiles(data: np.ndarray) -> SliceProfiles:
    """min/mean/max/std of every z-slice (axis-0 profile curves)."""
    data = np.asarray(data)
    if data.ndim != 3:
        raise ShapeError(f"slice profiles need a 3-D field, got {data.shape}")
    d = data.astype(np.float64)
    return SliceProfiles(
        z=np.arange(d.shape[0]),
        min=d.min(axis=(1, 2)),
        mean=d.mean(axis=(1, 2)),
        max=d.max(axis=(1, 2)),
        std=d.std(axis=(1, 2)),
    )
