"""Metric registry and the paper's Table I pattern classification.

Every assessment metric carries a :class:`MetricSpec` describing which
computational pattern its core belongs to.  The three heavy patterns are
exactly those of the paper; cheap bookkeeping metrics (compression ratio,
compression/decompression throughput) and single-array data properties
are tagged :attr:`Pattern.AUXILIARY` — they ride along with pattern-1
passes or need no array processing at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import UnknownMetricError

__all__ = [
    "Pattern",
    "MetricSpec",
    "METRIC_REGISTRY",
    "register_metric",
    "metrics_by_pattern",
    "pattern_of",
    "table1",
    "table1_row",
    "canonical_metric_order",
    "resolve_metrics",
    "PATTERN1_METRICS",
    "PATTERN2_METRICS",
    "PATTERN3_METRICS",
]


class Pattern(enum.Enum):
    """Computational pattern categories (paper Section III-B, Table I)."""

    GLOBAL_REDUCTION = "global reduction"  # Category I
    STENCIL = "stencil-like"  # Category II
    SLIDING_WINDOW = "sliding window"  # Category III
    AUXILIARY = "auxiliary"  # cheap / non-array metrics

    @property
    def category(self) -> str:
        return {
            Pattern.GLOBAL_REDUCTION: "Category I",
            Pattern.STENCIL: "Category II",
            Pattern.SLIDING_WINDOW: "Category III",
            Pattern.AUXILIARY: "—",
        }[self]


@dataclass(frozen=True)
class MetricSpec:
    """Static description of one assessment metric."""

    name: str
    pattern: Pattern
    description: str
    #: inputs the metric reads: subset of {"orig", "dec", "error"}
    inputs: tuple[str, ...] = ("orig", "dec")
    #: True if the result is a distribution/array rather than a scalar
    vector_valued: bool = False
    #: names of other metrics whose intermediate results this one reuses
    reuses: tuple[str, ...] = ()


METRIC_REGISTRY: dict[str, MetricSpec] = {}

#: Table I row of each metric, assigned in registration order.  Report
#: ordering sorts by this explicitly rather than trusting dict insertion
#: order, so metric listings stay stable however the registry is mutated.
_TABLE1_ROWS: dict[str, int] = {}


def register_metric(spec: MetricSpec) -> MetricSpec:
    """Add a metric to the global registry (idempotent on equal specs)."""
    existing = METRIC_REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(f"conflicting registration for metric {spec.name!r}")
    METRIC_REGISTRY[spec.name] = spec
    _TABLE1_ROWS.setdefault(spec.name, len(_TABLE1_ROWS))
    return spec


def _reg(name, pattern, description, **kw):
    return register_metric(MetricSpec(name, pattern, description, **kw))


# --- Category I: global reductions (13 user-facing + value_range) --------
_reg("min_err", Pattern.GLOBAL_REDUCTION, "Minimum compression error")
_reg("max_err", Pattern.GLOBAL_REDUCTION, "Maximum compression error")
_reg("avg_err", Pattern.GLOBAL_REDUCTION, "Average compression error")
_reg("err_pdf", Pattern.GLOBAL_REDUCTION, "PDF of compression errors",
     vector_valued=True)
_reg("min_pwr_err", Pattern.GLOBAL_REDUCTION,
     "Minimum pointwise relative error")
_reg("max_pwr_err", Pattern.GLOBAL_REDUCTION,
     "Maximum pointwise relative error")
_reg("avg_pwr_err", Pattern.GLOBAL_REDUCTION,
     "Average pointwise relative error")
_reg("pwr_err_pdf", Pattern.GLOBAL_REDUCTION,
     "PDF of pointwise relative errors", vector_valued=True)
_reg("mse", Pattern.GLOBAL_REDUCTION, "Mean squared error")
_reg("rmse", Pattern.GLOBAL_REDUCTION, "Root mean squared error",
     reuses=("mse",))
_reg("nrmse", Pattern.GLOBAL_REDUCTION,
     "RMSE normalised by the data value range", reuses=("mse", "value_range"))
_reg("snr", Pattern.GLOBAL_REDUCTION, "Signal-to-noise ratio (dB)",
     reuses=("mse",))
_reg("psnr", Pattern.GLOBAL_REDUCTION, "Peak signal-to-noise ratio (dB)",
     reuses=("mse", "value_range"))
_reg("value_range", Pattern.GLOBAL_REDUCTION,
     "max(orig) - min(orig); prerequisite of NRMSE/PSNR",
     inputs=("orig",))

# --- Category II: stencil-like --------------------------------------------
_reg("derivative_order1", Pattern.STENCIL,
     "First-order derivative (gradient magnitude) field comparison")
_reg("derivative_order2", Pattern.STENCIL,
     "Second-order derivative field comparison")
_reg("divergence", Pattern.STENCIL,
     "Sum of first-order partial derivatives")
_reg("laplacian", Pattern.STENCIL,
     "Sum of second-order partial derivatives")
_reg("autocorrelation", Pattern.STENCIL,
     "Spatial autocorrelation of compression errors (lags 1..tau)",
     inputs=("error",), vector_valued=True)

# --- Category III: sliding window -----------------------------------------
_reg("ssim", Pattern.SLIDING_WINDOW,
     "3-D structural similarity index (windowed)")

# --- auxiliary metrics ------------------------------------------------------
_reg("pearson", Pattern.AUXILIARY,
     "Pearson correlation between original and decompressed data")
_reg("spectral", Pattern.AUXILIARY,
     "Relative amplitude-spectrum error vs the original (FFT analysis)",
     vector_valued=True)
_reg("entropy", Pattern.AUXILIARY, "Shannon entropy of the original data",
     inputs=("orig",))
_reg("mean", Pattern.AUXILIARY, "Mean of the original data", inputs=("orig",))
_reg("std", Pattern.AUXILIARY, "Std-dev of the original data",
     inputs=("orig",))
_reg("compression_ratio", Pattern.AUXILIARY,
     "Original size / compressed size", inputs=())
_reg("compression_throughput", Pattern.AUXILIARY,
     "Bytes compressed per second", inputs=())
_reg("decompression_throughput", Pattern.AUXILIARY,
     "Bytes decompressed per second", inputs=())

#: Metric names fused into the paper's pattern-1 kernel (14, counting the
#: in-kernel value-range reduction the text's "14 metrics" refers to).
PATTERN1_METRICS: tuple[str, ...] = tuple(
    n for n, s in METRIC_REGISTRY.items() if s.pattern is Pattern.GLOBAL_REDUCTION
)
PATTERN2_METRICS: tuple[str, ...] = tuple(
    n for n, s in METRIC_REGISTRY.items() if s.pattern is Pattern.STENCIL
)
PATTERN3_METRICS: tuple[str, ...] = tuple(
    n for n, s in METRIC_REGISTRY.items() if s.pattern is Pattern.SLIDING_WINDOW
)


def table1_row(name: str) -> int:
    """Table I row index of a registered metric (0-based)."""
    try:
        return _TABLE1_ROWS[name]
    except KeyError:
        raise UnknownMetricError(name, known=METRIC_REGISTRY) from None


def canonical_metric_order(names) -> tuple[str, ...]:
    """Sort metric names by Table I row (unknown names last, by name).

    The single ordering rule every report and plan uses, so metric
    listings diff stably across runs and registry mutations.
    """
    big = len(_TABLE1_ROWS)
    return tuple(
        sorted(names, key=lambda n: (_TABLE1_ROWS.get(n, big), n))
    )


def resolve_metrics(selection) -> tuple[str, ...]:
    """Expand ``"all"``/a name list into a validated, Table-I-ordered tuple.

    Raises :class:`UnknownMetricError` — complete with the valid-name list
    and a closest-match suggestion — for any unregistered name.
    """
    if isinstance(selection, str):
        if selection != "all":
            raise UnknownMetricError(selection, known=METRIC_REGISTRY)
        return canonical_metric_order(METRIC_REGISTRY)
    for name in selection:
        if name not in METRIC_REGISTRY:
            raise UnknownMetricError(name, known=METRIC_REGISTRY)
    return canonical_metric_order(dict.fromkeys(selection))


def metrics_by_pattern(pattern: Pattern) -> tuple[str, ...]:
    """All registered metric names with the given pattern, in Table I order."""
    return canonical_metric_order(
        n for n, s in METRIC_REGISTRY.items() if s.pattern is pattern
    )


def pattern_of(name: str) -> Pattern:
    """Pattern of a registered metric; raises ``UnknownMetricError``."""
    try:
        return METRIC_REGISTRY[name].pattern
    except KeyError:
        raise UnknownMetricError(name, known=METRIC_REGISTRY) from None


def table1() -> dict[str, tuple[str, ...]]:
    """The paper's Table I as {category: metric names}."""
    return {
        "Category I (global reduction)": metrics_by_pattern(Pattern.GLOBAL_REDUCTION),
        "Category II (stencil-like)": metrics_by_pattern(Pattern.STENCIL),
        "Category III (sliding window)": metrics_by_pattern(Pattern.SLIDING_WINDOW),
    }
