"""Pattern-3 reference metric: 3-D windowed SSIM.

A small cubic window scans both fields with a fixed stride (paper Fig. 5);
at each position the local SSIM

    ssim = ((2 μ₁μ₂ + C₁)(2 σ₁₂ + C₂)) / ((μ₁² + μ₂² + C₁)(σ₁² + σ₂² + C₂))

is computed from the window means/variances/covariance, and the final
score is the mean over all window positions.  ``C₁ = (K₁ L)²`` and
``C₂ = (K₂ L)²`` with the conventional ``K₁ = 0.01``, ``K₂ = 0.03`` and
``L`` the dynamic range of the original field.

The reference implementation uses 3-D summed-area tables (inclusive
prefix sums) so that every window statistic costs O(1) — this also keeps
the single-core CI budget manageable for realistic field sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "SsimConfig",
    "SsimResult",
    "ssim3d",
    "ssim3d_naive",
    "box_sums",
    "window_positions",
]


@dataclass(frozen=True)
class SsimConfig:
    """SSIM window geometry and stabilisation constants.

    The paper's evaluation uses ``window=8`` per side and ``step=1``.
    """

    window: int = 8
    step: int = 1
    k1: float = 0.01
    k2: float = 0.03
    #: dynamic range; ``None`` means max(orig) - min(orig)
    dynamic_range: float | None = None
    #: ``"sliding"`` uses summed-area tables (O(N) per statistic,
    #: independent of window size); ``"naive"`` recomputes every window
    #: explicitly (O(N·w³)) and serves as the cross-check oracle.
    method: str = "sliding"

    def validate(self, shape: tuple[int, ...]) -> None:
        if self.window < 1:
            raise ValueError("SSIM window must be >= 1")
        if self.step < 1:
            raise ValueError("SSIM step must be >= 1")
        if self.method not in ("sliding", "naive"):
            raise ValueError(
                f"SSIM method must be 'sliding' or 'naive', got {self.method!r}"
            )
        if any(n < self.window for n in shape):
            raise ShapeError(
                f"field extents {shape} smaller than SSIM window {self.window}"
            )


@dataclass(frozen=True)
class SsimResult:
    """Mean SSIM plus distribution info over windows."""

    ssim: float
    min_window_ssim: float
    max_window_ssim: float
    n_windows: int


def window_positions(n: int, window: int, step: int) -> int:
    """Number of valid window origins along an axis of extent ``n``."""
    if n < window:
        return 0
    return (n - window) // step + 1


def _axis_window_sums(a: np.ndarray, window: int, step: int, axis: int) -> np.ndarray:
    """Sliding-window sums along one axis via a cumulative-sum difference."""
    c = a.cumsum(axis=axis)
    p = window_positions(a.shape[axis], window, step)

    def sl(s):
        return tuple(s if ax == axis else slice(None) for ax in range(a.ndim))

    if step == 1:
        # pure views: out[i] = c[i+w-1] - c[i-1], first window needs no lo
        out = c[sl(slice(window - 1, window - 1 + p))].copy()
        out[sl(slice(1, p))] -= c[sl(slice(0, p - 1))]
        return out
    idx = np.arange(p) * step
    out = np.take(c, idx + window - 1, axis=axis)
    lo = np.take(c, idx[1:] - 1, axis=axis)
    out[sl(slice(1, p))] -= lo
    return out


def box_sums(a: np.ndarray, window: int, step: int) -> np.ndarray:
    """Sliding-window sums of a 3-D array via cascaded axis prefix sums.

    Returns an array of shape ``(pz, py, px)`` where ``p* =
    window_positions(n*, window, step)``; entry ``[i,j,k]`` is the sum of
    the ``window³`` cube whose origin is ``(i*step, j*step, k*step)``.
    One cumsum + one subtraction per axis, with the array shrinking to
    the window-position grid after each — cheaper than an 8-corner
    summed-area-table gather and still O(N) independent of window size.
    """
    if a.ndim != 3:
        raise ShapeError(f"box_sums expects a 3-D array, got {a.shape}")
    out = a.astype(np.float64)
    for axis in range(3):
        out = _axis_window_sums(out, window, step, axis)
    return out


def _prepare(
    orig: np.ndarray, dec: np.ndarray, config: SsimConfig
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Shared validation + constant derivation for both SSIM paths."""
    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if orig.shape != dec.shape:
        raise ShapeError(
            f"original {orig.shape} and decompressed {dec.shape} shapes differ"
        )
    if orig.ndim != 3:
        raise ShapeError(f"ssim3d expects 3-D fields, got {orig.shape}")
    config.validate(orig.shape)

    o = orig.astype(np.float64)
    d = dec.astype(np.float64)
    if config.dynamic_range is not None:
        L = float(config.dynamic_range)
    else:
        L = float(o.max() - o.min())
    if L <= 0.0:
        # Degenerate constant field: SSIM is only meaningful through the
        # stabilisation constants; use a unit range so identical inputs
        # still score exactly 1.
        L = 1.0
    c1 = (config.k1 * L) ** 2
    c2 = (config.k2 * L) ** 2
    return o, d, c1, c2


def ssim3d_naive(
    orig: np.ndarray, dec: np.ndarray, config: SsimConfig | None = None
) -> SsimResult:
    """Oracle 3-D SSIM: every window's statistics recomputed explicitly.

    O(N·w³) — each window position re-reads its full cube.  Kept as the
    independent cross-check for the sliding-sum fast path; use only on
    small fields.
    """
    config = config or SsimConfig()
    o, d, c1, c2 = _prepare(orig, dec, config)
    w, step = config.window, config.step
    nz, ny, nx = o.shape
    pz = window_positions(nz, w, step)
    py = window_positions(ny, w, step)
    px = window_positions(nx, w, step)

    total = 0.0
    count = 0
    vmin, vmax = float("inf"), float("-inf")
    for i in range(pz):
        z0 = i * step
        for j in range(py):
            y0 = j * step
            for k in range(px):
                x0 = k * step
                wo = o[z0 : z0 + w, y0 : y0 + w, x0 : x0 + w]
                wd = d[z0 : z0 + w, y0 : y0 + w, x0 : x0 + w]
                mu1 = float(wo.mean())
                mu2 = float(wd.mean())
                var1 = float(((wo - mu1) ** 2).mean())
                var2 = float(((wd - mu2) ** 2).mean())
                cov = float(((wo - mu1) * (wd - mu2)).mean())
                local = ((2.0 * mu1 * mu2 + c1) * (2.0 * cov + c2)) / (
                    (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
                )
                total += local
                count += 1
                vmin = min(vmin, local)
                vmax = max(vmax, local)
    if count == 0:
        raise ShapeError("no complete SSIM window fits the data")
    return SsimResult(
        ssim=total / count,
        min_window_ssim=vmin,
        max_window_ssim=vmax,
        n_windows=count,
    )


def ssim3d(
    orig: np.ndarray, dec: np.ndarray, config: SsimConfig | None = None
) -> SsimResult:
    """Reference 3-D SSIM between an original/decompressed pair.

    Dispatches on ``config.method``: the default ``"sliding"`` path uses
    summed-area tables; ``"naive"`` delegates to :func:`ssim3d_naive`.
    """
    config = config or SsimConfig()
    if config.method == "naive":
        return ssim3d_naive(orig, dec, config)
    o, d, c1, c2 = _prepare(orig, dec, config)
    w, step = config.window, config.step
    volume = float(w**3)
    s1 = box_sums(o, w, step)
    s2 = box_sums(d, w, step)
    sq1 = box_sums(o * o, w, step)
    sq2 = box_sums(d * d, w, step)
    s12 = box_sums(o * d, w, step)

    mu1 = s1 / volume
    mu2 = s2 / volume
    var1 = np.maximum(sq1 / volume - mu1 * mu1, 0.0)
    var2 = np.maximum(sq2 / volume - mu2 * mu2, 0.0)
    cov = s12 / volume - mu1 * mu2

    num = (2.0 * mu1 * mu2 + c1) * (2.0 * cov + c2)
    den = (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
    local = num / den
    return SsimResult(
        ssim=float(local.mean()),
        min_window_ssim=float(local.min()),
        max_window_ssim=float(local.max()),
        n_windows=int(local.size),
    )
