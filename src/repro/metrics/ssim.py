"""Pattern-3 reference metric: 3-D windowed SSIM.

A small cubic window scans both fields with a fixed stride (paper Fig. 5);
at each position the local SSIM

    ssim = ((2 μ₁μ₂ + C₁)(2 σ₁₂ + C₂)) / ((μ₁² + μ₂² + C₁)(σ₁² + σ₂² + C₂))

is computed from the window means/variances/covariance, and the final
score is the mean over all window positions.  ``C₁ = (K₁ L)²`` and
``C₂ = (K₂ L)²`` with the conventional ``K₁ = 0.01``, ``K₂ = 0.03`` and
``L`` the dynamic range of the original field.

The reference implementation uses 3-D summed-area tables (inclusive
prefix sums) so that every window statistic costs O(1) — this also keeps
the single-core CI budget manageable for realistic field sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = ["SsimConfig", "SsimResult", "ssim3d", "box_sums", "window_positions"]


@dataclass(frozen=True)
class SsimConfig:
    """SSIM window geometry and stabilisation constants.

    The paper's evaluation uses ``window=8`` per side and ``step=1``.
    """

    window: int = 8
    step: int = 1
    k1: float = 0.01
    k2: float = 0.03
    #: dynamic range; ``None`` means max(orig) - min(orig)
    dynamic_range: float | None = None

    def validate(self, shape: tuple[int, ...]) -> None:
        if self.window < 1:
            raise ValueError("SSIM window must be >= 1")
        if self.step < 1:
            raise ValueError("SSIM step must be >= 1")
        if any(n < self.window for n in shape):
            raise ShapeError(
                f"field extents {shape} smaller than SSIM window {self.window}"
            )


@dataclass(frozen=True)
class SsimResult:
    """Mean SSIM plus distribution info over windows."""

    ssim: float
    min_window_ssim: float
    max_window_ssim: float
    n_windows: int


def window_positions(n: int, window: int, step: int) -> int:
    """Number of valid window origins along an axis of extent ``n``."""
    if n < window:
        return 0
    return (n - window) // step + 1


def box_sums(a: np.ndarray, window: int, step: int) -> np.ndarray:
    """Sliding-window sums of a 3-D array via a summed-area table.

    Returns an array of shape ``(pz, py, px)`` where ``p* =
    window_positions(n*, window, step)``; entry ``[i,j,k]`` is the sum of
    the ``window³`` cube whose origin is ``(i*step, j*step, k*step)``.
    """
    if a.ndim != 3:
        raise ShapeError(f"box_sums expects a 3-D array, got {a.shape}")
    nz, ny, nx = a.shape
    sat = np.zeros((nz + 1, ny + 1, nx + 1), dtype=np.float64)
    sat[1:, 1:, 1:] = (
        a.astype(np.float64).cumsum(axis=0).cumsum(axis=1).cumsum(axis=2)
    )
    w = window
    pz = window_positions(nz, w, step)
    py = window_positions(ny, w, step)
    px = window_positions(nx, w, step)
    iz = np.arange(pz) * step
    iy = np.arange(py) * step
    ix = np.arange(px) * step
    z0, z1 = iz[:, None, None], iz[:, None, None] + w
    y0, y1 = iy[None, :, None], iy[None, :, None] + w
    x0, x1 = ix[None, None, :], ix[None, None, :] + w
    return (
        sat[z1, y1, x1]
        - sat[z0, y1, x1]
        - sat[z1, y0, x1]
        - sat[z1, y1, x0]
        + sat[z0, y0, x1]
        + sat[z0, y1, x0]
        + sat[z1, y0, x0]
        - sat[z0, y0, x0]
    )


def ssim3d(
    orig: np.ndarray, dec: np.ndarray, config: SsimConfig | None = None
) -> SsimResult:
    """Reference 3-D SSIM between an original/decompressed pair."""
    config = config or SsimConfig()
    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if orig.shape != dec.shape:
        raise ShapeError(
            f"original {orig.shape} and decompressed {dec.shape} shapes differ"
        )
    if orig.ndim != 3:
        raise ShapeError(f"ssim3d expects 3-D fields, got {orig.shape}")
    config.validate(orig.shape)

    o = orig.astype(np.float64)
    d = dec.astype(np.float64)
    if config.dynamic_range is not None:
        L = float(config.dynamic_range)
    else:
        L = float(o.max() - o.min())
    if L <= 0.0:
        # Degenerate constant field: SSIM is only meaningful through the
        # stabilisation constants; use a unit range so identical inputs
        # still score exactly 1.
        L = 1.0
    c1 = (config.k1 * L) ** 2
    c2 = (config.k2 * L) ** 2

    w, step = config.window, config.step
    volume = float(w**3)
    s1 = box_sums(o, w, step)
    s2 = box_sums(d, w, step)
    sq1 = box_sums(o * o, w, step)
    sq2 = box_sums(d * d, w, step)
    s12 = box_sums(o * d, w, step)

    mu1 = s1 / volume
    mu2 = s2 / volume
    var1 = np.maximum(sq1 / volume - mu1 * mu1, 0.0)
    var2 = np.maximum(sq2 / volume - mu2 * mu2, 0.0)
    cov = s12 / volume - mu1 * mu2

    num = (2.0 * mu1 * mu2 + c1) * (2.0 * cov + c2)
    den = (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
    local = num / den
    return SsimResult(
        ssim=float(local.mean()),
        min_window_ssim=float(local.min()),
        max_window_ssim=float(local.max()),
        n_windows=int(local.size),
    )
