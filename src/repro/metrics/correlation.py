"""Pearson correlation between original and decompressed data.

One of Z-checker's headline distortion indicators: a good lossy
reconstruction keeps the coefficient extremely close to 1 (Z-checker's
documentation suggests > 0.99999).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error_stats import _as_pair

__all__ = ["pearson"]


def pearson(orig: np.ndarray, dec: np.ndarray) -> float:
    """Pearson product-moment correlation coefficient.

    Degenerate conventions: if both fields are constant the reconstruction
    is either exact (returns 1.0) or a constant shift (also perfectly
    correlated in the limit — returns 1.0 if equal, else ``nan`` because
    correlation with a zero-variance signal is undefined).
    """
    orig, dec = _as_pair(orig, dec)
    o = orig.astype(np.float64).ravel()
    d = dec.astype(np.float64).ravel()
    so = float(o.std())
    sd = float(d.std())
    if so == 0.0 or sd == 0.0:
        if np.array_equal(o, d):
            return 1.0
        return float("nan")
    cov = float(np.mean((o - o.mean()) * (d - d.mean())))
    return cov / (so * sd)
