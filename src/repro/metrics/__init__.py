"""Assessment metrics: definitions, pattern classification, NumPy references.

This package is the "CPU analysis kernel" of the reproduced system: every
metric Z-checker supports has an independent, vectorised NumPy reference
here.  The simulated GPU kernels in :mod:`repro.kernels` are verified
against these references (the paper's Section IV-B correctness check), and
the ompZC baseline uses them as its functional implementation.
"""

from repro.metrics.base import (
    Pattern,
    MetricSpec,
    METRIC_REGISTRY,
    metrics_by_pattern,
    pattern_of,
    table1,
)
from repro.metrics.error_stats import error_stats, error_pdf
from repro.metrics.pwr_error import pwr_error_stats, pwr_error_pdf
from repro.metrics.rate_distortion import rate_distortion
from repro.metrics.properties import data_properties, entropy
from repro.metrics.correlation import pearson
from repro.metrics.derivatives import (
    gradient_magnitude,
    derivative_l1,
    divergence,
    laplacian,
    derivative_metrics,
)
from repro.metrics.autocorrelation import (
    spatial_autocorrelation,
    series_autocorrelation,
)
from repro.metrics.ssim import ssim3d, SsimConfig
from repro.metrics.spectral import (
    amplitude_spectrum,
    spectral_comparison,
    SpectralComparison,
)
from repro.metrics.compressibility import (
    delta_entropy,
    estimate_sz_ratio,
    slice_profiles,
    SliceProfiles,
)
from repro.metrics.twod import (
    ssim2d,
    gradient_magnitude_2d,
    derivative_metrics_2d,
    spatial_autocorrelation_2d,
)

__all__ = [
    "Pattern",
    "MetricSpec",
    "METRIC_REGISTRY",
    "metrics_by_pattern",
    "pattern_of",
    "table1",
    "error_stats",
    "error_pdf",
    "pwr_error_stats",
    "pwr_error_pdf",
    "rate_distortion",
    "data_properties",
    "entropy",
    "pearson",
    "gradient_magnitude",
    "derivative_l1",
    "divergence",
    "laplacian",
    "derivative_metrics",
    "spatial_autocorrelation",
    "series_autocorrelation",
    "ssim3d",
    "SsimConfig",
    "amplitude_spectrum",
    "spectral_comparison",
    "SpectralComparison",
    "ssim2d",
    "gradient_magnitude_2d",
    "derivative_metrics_2d",
    "spatial_autocorrelation_2d",
    "delta_entropy",
    "estimate_sz_ratio",
    "slice_profiles",
    "SliceProfiles",
]
