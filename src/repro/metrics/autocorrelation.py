"""Pattern-2 reference metric: autocorrelation of compression errors.

Two flavours, both offered by Z-checker:

* :func:`spatial_autocorrelation` — the paper's Eq. (2): at spatial gap
  τ, correlate each error value with its τ-distant neighbours along the
  three axes (averaged), over the common valid region, normalised by the
  error field's variance.  White-noise-like errors give values ≈ 0 for
  all τ ≥ 1.
* :func:`series_autocorrelation` — the classical 1-D autocorrelation of
  the flattened error sequence (what Z-checker plots per-lag).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["spatial_autocorrelation", "series_autocorrelation"]


def spatial_autocorrelation(error: np.ndarray, max_lag: int = 10) -> np.ndarray:
    """Spatial autocorrelation AC(τ) for τ = 0..max_lag (paper Eq. 2).

    ``AC(0)`` is 1 by definition.  For τ ≥ 1::

        AC(τ) = Σ_{valid} (1/3)(e-μ)·[(e_z+τ - μ) + (e_y+τ - μ) + (e_x+τ - μ)]
                / n_e / σ²

    where the valid region excludes the last τ planes along *every* axis
    (``n_e = (h-τ)(w-τ)(l-τ)``) and σ² is the variance of the whole error
    field.  A constant error field has undefined correlation; we return
    zeros for τ ≥ 1 in that case (no structure to correlate).
    """
    e = np.asarray(error, dtype=np.float64)
    if e.ndim != 3:
        raise ShapeError(f"expected a 3-D error field, got shape {e.shape}")
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    if max_lag >= min(e.shape):
        raise ShapeError(
            f"max_lag {max_lag} must be smaller than the smallest extent "
            f"of {e.shape}"
        )
    mu = e.mean()
    var = e.var()
    c = e - mu
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    if var == 0.0:
        out[1:] = 0.0
        return out
    nz, ny, nx = e.shape
    for tau in range(1, max_lag + 1):
        core = c[: nz - tau, : ny - tau, : nx - tau]
        shift_z = c[tau:, : ny - tau, : nx - tau]
        shift_y = c[: nz - tau, tau:, : nx - tau]
        shift_x = c[: nz - tau, : ny - tau, tau:]
        ne = (nz - tau) * (ny - tau) * (nx - tau)
        acc = np.sum(core * (shift_z + shift_y + shift_x)) / 3.0
        out[tau] = acc / ne / var
    return out


def series_autocorrelation(error: np.ndarray, max_lag: int = 10) -> np.ndarray:
    """Classical autocorrelation of the flattened error sequence.

    Uses the biased estimator ``ρ(k) = Σ_t (e_t-μ)(e_{t+k}-μ) / (n σ²)``
    (the convention of most statistics texts and of Z-checker's plots).
    """
    e = np.asarray(error, dtype=np.float64).ravel()
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    if max_lag >= e.size:
        raise ShapeError(f"max_lag {max_lag} must be < series length {e.size}")
    mu = e.mean()
    var = e.var()
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    if var == 0.0:
        out[1:] = 0.0
        return out
    c = e - mu
    n = e.size
    for k in range(1, max_lag + 1):
        out[k] = float(np.dot(c[:-k], c[k:])) / (n * var)
    return out
