"""Pattern-2 reference metric: autocorrelation of compression errors.

Two flavours, both offered by Z-checker:

* :func:`spatial_autocorrelation` — the paper's Eq. (2): at spatial gap
  τ, correlate each error value with its τ-distant neighbours along the
  three axes (averaged), over the common valid region, normalised by the
  error field's variance.  White-noise-like errors give values ≈ 0 for
  all τ ≥ 1.
* :func:`series_autocorrelation` — the classical 1-D autocorrelation of
  the flattened error sequence (what Z-checker plots per-lag).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["spatial_autocorrelation", "series_autocorrelation"]


def spatial_autocorrelation(error: np.ndarray, max_lag: int = 10) -> np.ndarray:
    """Spatial autocorrelation AC(τ) for τ = 0..max_lag (paper Eq. 2).

    ``AC(0)`` is 1 by definition.  For τ ≥ 1::

        AC(τ) = Σ_{valid} (1/3)(e-μ)·[(e_z+τ - μ) + (e_y+τ - μ) + (e_x+τ - μ)]
                / n_e / σ²

    where the valid region excludes the last τ planes along *every* axis
    (``n_e = (h-τ)(w-τ)(l-τ)``) and σ² is the variance of the whole error
    field.  A constant error field has undefined correlation; we return
    zeros for τ ≥ 1 in that case (no structure to correlate).
    """
    e = np.asarray(error, dtype=np.float64)
    if e.ndim != 3:
        raise ShapeError(f"expected a 3-D error field, got shape {e.shape}")
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    if max_lag >= min(e.shape):
        raise ShapeError(
            f"max_lag {max_lag} must be smaller than the smallest extent "
            f"of {e.shape}"
        )
    mu = e.mean()
    var = e.var()
    c = e - mu
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    if var == 0.0:
        out[1:] = 0.0
        return out
    nz, ny, nx = e.shape
    # valid-region sizes for every lag at once (hoisted out of the loop)
    taus = np.arange(1, max_lag + 1)
    ne = (nz - taus) * (ny - taus) * (nx - taus)
    for i, tau in enumerate(taus):
        core = c[: nz - tau, : ny - tau, : nx - tau]
        shift_z = c[tau:, : ny - tau, : nx - tau]
        shift_y = c[: nz - tau, tau:, : nx - tau]
        shift_x = c[: nz - tau, : ny - tau, tau:]
        # dot products over strided views: no shifted-copy temporaries;
        # only the final three-way add differs from the naive grouping
        # (verified within 1e-12 relative in tests)
        acc = (
            np.einsum("ijk,ijk->", core, shift_z)
            + np.einsum("ijk,ijk->", core, shift_y)
            + np.einsum("ijk,ijk->", core, shift_x)
        ) / 3.0
        out[i + 1] = acc / ne[i] / var
    return out


#: below this size the per-lag dot products beat the FFT's setup cost
_FFT_MIN_SIZE = 4096
#: with only a few lags, O(n·lags) direct work is already cheap
_FFT_MIN_LAGS = 4

_SERIES_METHODS = ("auto", "fft", "direct")


def _series_direct(c: np.ndarray, n: int, var: float, max_lag: int) -> np.ndarray:
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    for k in range(1, max_lag + 1):
        out[k] = float(np.dot(c[:-k], c[k:])) / (n * var)
    return out


def _series_fft(c: np.ndarray, n: int, var: float, max_lag: int) -> np.ndarray:
    """All lags in one rfft/irfft round trip (Wiener–Khinchin).

    Zero-padding to at least ``n + max_lag`` turns the circular
    correlation into the linear one the direct estimator computes, so
    the two agree to FP tolerance; the padded length is rounded up to a
    power of two for the fastest transform.
    """
    nfft = 1 << (n + max_lag - 1).bit_length()
    f = np.fft.rfft(c, nfft)
    acov = np.fft.irfft(f * np.conj(f), nfft)[: max_lag + 1]
    out = acov / (n * var)
    out[0] = 1.0  # exact by definition, not up to FFT round-off
    return out


def series_autocorrelation(
    error: np.ndarray, max_lag: int = 10, method: str = "auto"
) -> np.ndarray:
    """Classical autocorrelation of the flattened error sequence.

    Uses the biased estimator ``ρ(k) = Σ_t (e_t-μ)(e_{t+k}-μ) / (n σ²)``
    (the convention of most statistics texts and of Z-checker's plots).

    ``method`` selects the implementation, mirroring ``SsimConfig.method``:
    ``"direct"`` is the per-lag dot-product oracle (O(n·lags)),
    ``"fft"`` computes every lag from one rfft/irfft round trip
    (O(n log n)), and ``"auto"`` picks the FFT once the series is long
    enough for its setup cost to pay off.  Both agree to FP tolerance
    (property-tested).
    """
    if method not in _SERIES_METHODS:
        raise ValueError(
            f"method must be one of {_SERIES_METHODS}, got {method!r}"
        )
    e = np.asarray(error, dtype=np.float64).ravel()
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    if max_lag >= e.size:
        raise ShapeError(f"max_lag {max_lag} must be < series length {e.size}")
    mu = e.mean()
    var = e.var()
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    if var == 0.0:
        out[1:] = 0.0
        return out
    c = e - mu
    n = e.size
    if method == "auto":
        method = (
            "fft"
            if n >= _FFT_MIN_SIZE and max_lag >= _FFT_MIN_LAGS
            else "direct"
        )
    if method == "fft":
        return _series_fft(c, n, var, max_lag)
    return _series_direct(c, n, var, max_lag)
