"""Pattern-2 reference metrics: derivatives, divergence, Laplacian.

Array convention: 3-D fields are indexed ``(z, y, x)`` — z is the slowest
axis, matching the paper's slice/plane decomposition along z.

Two first-derivative flavours exist in the paper:

* Eq. (1): ``Der = |f(x+1)-f(x-1)| + |f(y+1)-f(y-1)| + |f(z+1)-f(z-1)|``
  (:func:`derivative_l1`);
* Algorithm 2: central differences halved and combined as a gradient
  magnitude ``sqrt(dx² + dy² + dz²)`` (:func:`gradient_magnitude`), which
  is what the CUDA kernel actually computes and is our canonical form.

The reported *metric* compares the derivative fields of the original and
decompressed data (lossy compression can amplify spatial variation — the
"zfp and Derivatives" concern cited by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "field_comparison",
    "gradient_magnitude",
    "derivative_l1",
    "second_derivative_magnitude",
    "divergence",
    "laplacian",
    "derivative_metrics",
    "DerivativeComparison",
]


def _check3d(f: np.ndarray, min_extent: int) -> np.ndarray:
    f = np.asarray(f)
    if f.ndim != 3:
        raise ShapeError(f"expected a 3-D field, got shape {f.shape}")
    if min(f.shape) < min_extent:
        raise ShapeError(
            f"field extents {f.shape} too small for the stencil "
            f"(need >= {min_extent} along every axis)"
        )
    return f.astype(np.float64)


def _central_diffs(f: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(df/dz, df/dy, df/dx) on the interior via central differences."""
    core = (slice(1, -1),) * 3
    dz = (f[2:, 1:-1, 1:-1] - f[:-2, 1:-1, 1:-1]) / 2.0
    dy = (f[1:-1, 2:, 1:-1] - f[1:-1, :-2, 1:-1]) / 2.0
    dx = (f[1:-1, 1:-1, 2:] - f[1:-1, 1:-1, :-2]) / 2.0
    assert dz.shape == f[core].shape
    return dz, dy, dx


def _second_diffs(f: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(d²f/dz², d²f/dy², d²f/dx²) on the interior (3-point stencil)."""
    dzz = f[2:, 1:-1, 1:-1] - 2.0 * f[1:-1, 1:-1, 1:-1] + f[:-2, 1:-1, 1:-1]
    dyy = f[1:-1, 2:, 1:-1] - 2.0 * f[1:-1, 1:-1, 1:-1] + f[1:-1, :-2, 1:-1]
    dxx = f[1:-1, 1:-1, 2:] - 2.0 * f[1:-1, 1:-1, 1:-1] + f[1:-1, 1:-1, :-2]
    return dzz, dyy, dxx


def gradient_magnitude(f: np.ndarray) -> np.ndarray:
    """First-order derivative field per Algorithm 2: ``sqrt(dx²+dy²+dz²)``.

    Returns the interior field (each extent shrinks by 2).
    """
    f = _check3d(f, 3)
    dz, dy, dx = _central_diffs(f)
    return np.sqrt(dx * dx + dy * dy + dz * dz)


def derivative_l1(f: np.ndarray) -> np.ndarray:
    """First-order derivative field per Eq. (1): sum of |central diffs|."""
    f = _check3d(f, 3)
    dz, dy, dx = _central_diffs(f)
    return np.abs(2.0 * dz) + np.abs(2.0 * dy) + np.abs(2.0 * dx)


def second_derivative_magnitude(f: np.ndarray) -> np.ndarray:
    """Second-order derivative field: ``sqrt(dxx² + dyy² + dzz²)``."""
    f = _check3d(f, 3)
    dzz, dyy, dxx = _second_diffs(f)
    return np.sqrt(dxx * dxx + dyy * dyy + dzz * dzz)


def divergence(f: np.ndarray) -> np.ndarray:
    """Sum of first-order partial derivatives (paper Section III-B2)."""
    f = _check3d(f, 3)
    dz, dy, dx = _central_diffs(f)
    return dz + dy + dx


def laplacian(f: np.ndarray) -> np.ndarray:
    """Sum of second-order partial derivatives (7-point Laplacian)."""
    f = _check3d(f, 3)
    dzz, dyy, dxx = _second_diffs(f)
    return dzz + dyy + dxx


@dataclass(frozen=True)
class DerivativeComparison:
    """Aggregate comparison of a derivative field before/after compression."""

    #: mean derivative magnitude of the original field
    mean_orig: float
    #: mean derivative magnitude of the decompressed field
    mean_dec: float
    #: RMS of the pointwise difference of the two derivative fields
    rms_diff: float
    #: max absolute pointwise difference
    max_diff: float


def field_comparison(orig_field: np.ndarray, dec_field: np.ndarray) -> DerivativeComparison:
    """Aggregate a pair of derived fields into a :class:`DerivativeComparison`."""
    diff = dec_field - orig_field
    return DerivativeComparison(
        mean_orig=float(np.mean(np.abs(orig_field))),
        mean_dec=float(np.mean(np.abs(dec_field))),
        rms_diff=float(np.sqrt(np.mean(diff * diff))),
        max_diff=float(np.max(np.abs(diff))),
    )


def derivative_metrics(
    orig: np.ndarray, dec: np.ndarray, order: int = 1
) -> DerivativeComparison:
    """Compare derivative fields of original vs decompressed data.

    ``order`` selects first- (gradient magnitude) or second-order
    derivatives, mirroring cuZ-Checker's support for both.
    """
    if order == 1:
        return field_comparison(gradient_magnitude(orig), gradient_magnitude(dec))
    if order == 2:
        return field_comparison(
            second_derivative_magnitude(orig), second_derivative_magnitude(dec)
        )
    raise ValueError(f"derivative order must be 1 or 2, got {order}")
