"""Data-property metrics (Z-checker's property-analysis module).

Single-array statistics of the *original* data: extrema, moments, and the
Shannon entropy of a histogram quantisation.  These ride along with
pattern-1 passes in the fused kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = ["DataProperties", "data_properties", "entropy"]

DEFAULT_ENTROPY_BINS = 256


@dataclass(frozen=True)
class DataProperties:
    min_value: float
    max_value: float
    value_range: float
    mean: float
    std: float
    variance: float
    entropy: float
    zeros: int
    n_elements: int


def entropy(data: np.ndarray, bins: int = DEFAULT_ENTROPY_BINS) -> float:
    """Shannon entropy (bits) of a ``bins``-level uniform quantisation.

    Matches Z-checker's property analysis: values are bucketed over
    ``[min, max]`` and the histogram's empirical distribution is used.
    A constant field has zero entropy.
    """
    data = np.asarray(data)
    if data.size == 0:
        raise ShapeError("cannot compute entropy of an empty array")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    flat = data.astype(np.float64).ravel()
    lo, hi = float(flat.min()), float(flat.max())
    if lo == hi:
        return 0.0
    hist, _ = np.histogram(flat, bins=bins, range=(lo, hi))
    p = hist[hist > 0] / flat.size
    return float(-np.sum(p * np.log2(p)))


def data_properties(
    data: np.ndarray, entropy_bins: int = DEFAULT_ENTROPY_BINS
) -> DataProperties:
    """Full property analysis of one array."""
    data = np.asarray(data)
    if data.size == 0:
        raise ShapeError("cannot analyse an empty array")
    d = data.astype(np.float64)
    vmin, vmax = float(d.min()), float(d.max())
    var = float(d.var())
    return DataProperties(
        min_value=vmin,
        max_value=vmax,
        value_range=vmax - vmin,
        mean=float(d.mean()),
        std=math.sqrt(var),
        variance=var,
        entropy=entropy(d, entropy_bins),
        zeros=int(np.count_nonzero(d == 0.0)),
        n_elements=int(d.size),
    )
