"""Pattern-1 reference metrics: pointwise relative ("pwr") error stats.

Z-checker defines the pointwise relative error at element *i* as
``e_i / orig_i`` wherever the original value is meaningfully nonzero.
Elements with ``|orig_i| <= floor`` are excluded (the ratio is
numerically meaningless there); the default floor follows Z-checker's
practice of ignoring exact zeros.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.error_stats import Pdf, _as_pair, DEFAULT_PDF_BINS

__all__ = ["PwrErrorStats", "pwr_error_stats", "pwr_error_pdf", "pwr_errors"]


@dataclass(frozen=True)
class PwrErrorStats:
    """min/max/avg of the signed pointwise relative error."""

    min_pwr_err: float
    max_pwr_err: float
    avg_pwr_err: float
    max_abs_pwr_err: float
    #: number of elements excluded because |orig| <= floor
    excluded: int


def pwr_errors(
    orig: np.ndarray, dec: np.ndarray, floor: float = 0.0
) -> tuple[np.ndarray, int]:
    """Signed pointwise relative errors and the count of excluded points."""
    orig, dec = _as_pair(orig, dec)
    o = orig.astype(np.float64).ravel()
    d = dec.astype(np.float64).ravel()
    mask = np.abs(o) > floor
    excluded = int(o.size - mask.sum())
    if excluded == o.size:
        # Degenerate case: a zero field has no defined relative errors.
        return np.zeros(0), excluded
    rel = (d[mask] - o[mask]) / o[mask]
    return rel, excluded


def pwr_error_stats(
    orig: np.ndarray, dec: np.ndarray, floor: float = 0.0
) -> PwrErrorStats:
    """Reference implementation of min/max/avg pwr error (pattern 1)."""
    rel, excluded = pwr_errors(orig, dec, floor)
    if rel.size == 0:
        return PwrErrorStats(0.0, 0.0, 0.0, 0.0, excluded)
    return PwrErrorStats(
        min_pwr_err=float(rel.min()),
        max_pwr_err=float(rel.max()),
        avg_pwr_err=float(rel.mean()),
        max_abs_pwr_err=float(np.abs(rel).max()),
        excluded=excluded,
    )


def pwr_error_pdf(
    orig: np.ndarray,
    dec: np.ndarray,
    bins: int = DEFAULT_PDF_BINS,
    floor: float = 0.0,
) -> Pdf:
    """Probability density of the pointwise relative error (pattern 1)."""
    rel, _ = pwr_errors(orig, dec, floor)
    if rel.size == 0:
        edges = np.array([-1e-12, 1e-12])
        return Pdf(bin_edges=edges, density=np.array([1.0 / (edges[1] - edges[0])]))
    lo, hi = float(rel.min()), float(rel.max())
    if lo == hi:
        eps = max(abs(lo), 1.0) * 1e-9 + 1e-300
        edges = np.array([lo - eps, hi + eps])
        return Pdf(bin_edges=edges, density=np.array([1.0 / (edges[1] - edges[0])]))
    hist, edges = np.histogram(rel, bins=bins, range=(lo, hi), density=True)
    return Pdf(bin_edges=edges, density=hist)
