"""2-D variants of the pattern metrics.

The paper notes its 3-D designs "can be easily extended to other
dimensions (including 1D, 2D, and 4D)"; this module provides the 2-D
extension for the metrics whose definitions are dimension-specific
(slice-of-simulation and image-like data): SSIM, derivatives, and
spatial autocorrelation.  The N-D-agnostic metrics (error statistics,
rate-distortion, PDFs, Pearson) already accept any shape.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.metrics.derivatives import DerivativeComparison, field_comparison
from repro.metrics.ssim import SsimConfig, SsimResult, window_positions

__all__ = [
    "box_sums_2d",
    "ssim2d",
    "gradient_magnitude_2d",
    "derivative_metrics_2d",
    "spatial_autocorrelation_2d",
]


def box_sums_2d(a: np.ndarray, window: int, step: int = 1) -> np.ndarray:
    """Sliding-window sums of a 2-D array via a summed-area table."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"box_sums_2d expects a 2-D array, got {a.shape}")
    ny, nx = a.shape
    sat = np.zeros((ny + 1, nx + 1), dtype=np.float64)
    sat[1:, 1:] = a.astype(np.float64).cumsum(axis=0).cumsum(axis=1)
    py = window_positions(ny, window, step)
    px = window_positions(nx, window, step)
    iy = np.arange(py) * step
    ix = np.arange(px) * step
    y0, y1 = iy[:, None], iy[:, None] + window
    x0, x1 = ix[None, :], ix[None, :] + window
    return sat[y1, x1] - sat[y0, x1] - sat[y1, x0] + sat[y0, x0]


def ssim2d(
    orig: np.ndarray, dec: np.ndarray, config: SsimConfig | None = None
) -> SsimResult:
    """2-D windowed SSIM (image-plane variant of :func:`ssim3d`)."""
    config = config or SsimConfig()
    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if orig.shape != dec.shape:
        raise ShapeError(f"shape mismatch: {orig.shape} vs {dec.shape}")
    if orig.ndim != 2:
        raise ShapeError(f"ssim2d expects 2-D fields, got {orig.shape}")
    config.validate(orig.shape)

    o = orig.astype(np.float64)
    d = dec.astype(np.float64)
    L = (
        float(config.dynamic_range)
        if config.dynamic_range is not None
        else float(o.max() - o.min())
    )
    if L <= 0.0:
        L = 1.0
    c1 = (config.k1 * L) ** 2
    c2 = (config.k2 * L) ** 2
    w, step = config.window, config.step
    volume = float(w**2)

    s1 = box_sums_2d(o, w, step)
    s2 = box_sums_2d(d, w, step)
    sq1 = box_sums_2d(o * o, w, step)
    sq2 = box_sums_2d(d * d, w, step)
    s12 = box_sums_2d(o * d, w, step)

    mu1 = s1 / volume
    mu2 = s2 / volume
    var1 = np.maximum(sq1 / volume - mu1 * mu1, 0.0)
    var2 = np.maximum(sq2 / volume - mu2 * mu2, 0.0)
    cov = s12 / volume - mu1 * mu2
    local = ((2 * mu1 * mu2 + c1) * (2 * cov + c2)) / (
        (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
    )
    return SsimResult(
        ssim=float(local.mean()),
        min_window_ssim=float(local.min()),
        max_window_ssim=float(local.max()),
        n_windows=int(local.size),
    )


def gradient_magnitude_2d(f: np.ndarray) -> np.ndarray:
    """2-D central-difference gradient magnitude (interior)."""
    f = np.asarray(f, dtype=np.float64)
    if f.ndim != 2:
        raise ShapeError(f"expected a 2-D field, got {f.shape}")
    if min(f.shape) < 3:
        raise ShapeError(f"extents {f.shape} too small for the stencil")
    dy = (f[2:, 1:-1] - f[:-2, 1:-1]) / 2.0
    dx = (f[1:-1, 2:] - f[1:-1, :-2]) / 2.0
    return np.sqrt(dx * dx + dy * dy)


def derivative_metrics_2d(
    orig: np.ndarray, dec: np.ndarray
) -> DerivativeComparison:
    """2-D derivative-field comparison (first order)."""
    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if orig.shape != dec.shape:
        raise ShapeError(f"shape mismatch: {orig.shape} vs {dec.shape}")
    return field_comparison(
        gradient_magnitude_2d(orig), gradient_magnitude_2d(dec)
    )


def spatial_autocorrelation_2d(error: np.ndarray, max_lag: int = 10) -> np.ndarray:
    """2-D analogue of the paper's Eq. (2): AC(τ) averaged over the two
    axis directions, over the common valid region."""
    e = np.asarray(error, dtype=np.float64)
    if e.ndim != 2:
        raise ShapeError(f"expected a 2-D error field, got {e.shape}")
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    if max_lag >= min(e.shape):
        raise ShapeError(f"max_lag {max_lag} must be < min extent of {e.shape}")
    mu = e.mean()
    var = e.var()
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    if var == 0.0:
        out[1:] = 0.0
        return out
    c = e - mu
    ny, nx = e.shape
    for tau in range(1, max_lag + 1):
        core = c[: ny - tau, : nx - tau]
        sy = c[tau:, : nx - tau]
        sx = c[: ny - tau, tau:]
        ne = (ny - tau) * (nx - tau)
        out[tau] = float(np.sum(core * (sy + sx))) / 2.0 / ne / var
    return out
