"""Spectral distortion metrics (Z-checker's FFT analysis module).

Z-checker reports the amplitude spectrum of the original vs decompressed
data: lossy compressors with banded quantisation errors typically flatten
the high-frequency tail, which these metrics quantify:

* :func:`amplitude_spectrum` — radially-averaged FFT amplitude per
  frequency bin;
* :func:`spectral_comparison` — maximum/mean relative amplitude error
  between the two spectra and the frequency above which the
  reconstruction's spectrum is dominated by compression noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = ["amplitude_spectrum", "SpectralComparison", "spectral_comparison"]


#: memoised radial shell assignment per (shape, bins): the frequency grid
#: is a pure function of the field shape, and spectral comparisons always
#: evaluate two same-shaped fields back to back
_SHELL_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
_SHELL_CACHE_MAX = 64


def _shell_assignment(shape: tuple[int, ...], bins: int):
    key = (shape, bins)
    if key not in _SHELL_CACHE:
        if len(_SHELL_CACHE) >= _SHELL_CACHE_MAX:
            _SHELL_CACHE.clear()
        freqs = [np.fft.fftfreq(n) for n in shape[:-1]]
        freqs.append(np.fft.rfftfreq(shape[-1]))
        grids = np.meshgrid(*freqs, indexing="ij")
        k = np.sqrt(sum(g * g for g in grids))
        flat_k = k.ravel()
        mask = flat_k > 0
        edges = np.linspace(0.0, 0.5, bins + 1)
        idx = np.clip(np.digitize(flat_k[mask], edges) - 1, 0, bins - 1)
        counts = np.bincount(idx, minlength=bins)
        _SHELL_CACHE[key] = (mask, idx, counts)
    return _SHELL_CACHE[key]


def amplitude_spectrum(data: np.ndarray, bins: int = 32) -> np.ndarray:
    """Radially-averaged FFT amplitude of a 1-3-D field.

    Returns ``bins`` mean amplitudes over equal-width shells of
    normalised frequency ``|k| ∈ (0, 0.5]`` (the DC mode is excluded).
    Empty shells (possible for tiny inputs) inherit the previous shell's
    value so the output is always finite.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim not in (1, 2, 3):
        raise ShapeError(f"spectral analysis supports 1-3 dims, got {data.ndim}")
    if min(data.shape) < 2:
        raise ShapeError(f"extents must be >= 2, got {data.shape}")
    if bins < 1:
        raise ValueError("bins must be >= 1")

    spectrum = np.abs(np.fft.rfftn(data))
    mask, idx, counts = _shell_assignment(data.shape, bins)
    flat_a = spectrum.ravel()
    sums = np.bincount(idx, weights=flat_a[mask], minlength=bins)
    out = np.zeros(bins)
    prev = None
    for i in range(bins):
        if counts[i] > 0:
            prev = sums[i] / counts[i]
        if prev is not None:
            out[i] = prev
    # leading shells below the grid's lowest representable frequency
    # inherit the first populated shell's amplitude
    populated = np.flatnonzero(counts > 0)
    if populated.size and populated[0] > 0:
        out[: populated[0]] = out[populated[0]]
    return out


@dataclass(frozen=True)
class SpectralComparison:
    """Aggregate comparison of two amplitude spectra."""

    #: per-shell relative amplitude error |A_dec - A_orig| / A_orig
    shell_errors: np.ndarray
    #: mean relative amplitude error across shells
    mean_rel_err: float
    #: worst shell's relative amplitude error
    max_rel_err: float
    #: lowest normalised frequency whose relative error exceeds 10%
    #: (0.5 if the whole spectrum is preserved)
    noise_frequency: float


def spectral_comparison(
    orig: np.ndarray, dec: np.ndarray, bins: int = 32
) -> SpectralComparison:
    """Compare the decompressed field's spectrum against the original's."""
    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if orig.shape != dec.shape:
        raise ShapeError(f"shape mismatch: {orig.shape} vs {dec.shape}")
    a_orig = amplitude_spectrum(orig, bins)
    a_dec = amplitude_spectrum(dec, bins)
    floor = max(a_orig.max(), 1e-300) * 1e-12
    rel = np.abs(a_dec - a_orig) / np.maximum(a_orig, floor)
    noisy = np.flatnonzero(rel > 0.10)
    edges = np.linspace(0.0, 0.5, bins + 1)
    noise_freq = float(edges[noisy[0]]) if noisy.size else 0.5
    return SpectralComparison(
        shell_errors=rel,
        mean_rel_err=float(rel.mean()),
        max_rel_err=float(rel.max()),
        noise_frequency=noise_freq,
    )
