"""Cost-model-driven adaptive dispatch with a persistent calibration loop.

The planner (:func:`~repro.engine.plan.build_plan`) knows *what* must run;
this module decides *how* to run it cheapest on the current host.  Given
an :class:`~repro.engine.plan.ExecutionPlan` and a dataset shape, it

1. enumerates execution **candidates** — (backend, tiling slab) pairs the
   registry and :func:`~repro.engine.tiling.slab_candidates` allow for
   that shape,
2. prices every plan step of every candidate with the roofline family:
   :func:`~repro.gpusim.roofline.host_kernel_seconds` for host backends
   and :func:`~repro.gpusim.costmodel.kernel_times` for the modelled
   (gpusim) backend,
3. corrects each prediction with the host's persistent **calibration
   table** — per-(backend, step, layout) measured-vs-predicted ratios
   folded in by ``tools/calibrate.py fit`` after traced runs — and
4. returns a :class:`Decision` whose cheapest candidate the plan adopts.

The loop is the ROADMAP's "predict → measure → correct": out of the box
the host roofs only need to get the *ordering* roughly right; every
``fit`` run nudges the per-kernel ratios toward the measured truth with a
geometric EMA, so predictions converge across runs without ever letting a
stale table change *results* — candidates differ only in layout and
backend, all of which produce identical metric values.

Safety invariants (tested):

* Shapes below :data:`~repro.engine.tiling.AUTO_MIN_BYTES` get exactly
  one slab candidate (whole-array), so small-field behaviour never
  depends on what a calibration table says.
* ``compiled-host`` is enumerated only when Numba imported successfully.
* A pinned backend (``config.backend`` or an explicit ``execute``
  argument) restricts the candidate set to that backend — dispatch then
  only tunes the slab.
* Dispatch never re-validates the configuration (plans validate exactly
  once) and never raises: a shape the kernels cannot handle keeps the
  undecided plan so execution surfaces the canonical error.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import platform
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.engine import compiled
from repro.engine.backends import get_backend, known_backends
from repro.engine.tiling import resolve_slab, slab_candidates
from repro.errors import CheckerError, ShapeError
from repro.gpusim.roofline import DEFAULT_HOST_ROOF, HostRoof, host_kernel_seconds

__all__ = [
    "CalibrationTable",
    "StepCost",
    "Candidate",
    "Decision",
    "default_calibration_path",
    "resolve_calibration",
    "host_fingerprint",
    "choose",
    "decision_cache_size",
    "dispatch_plan",
    "predict_pool_seconds",
    "estimate_assess_seconds",
    "clear_decision_cache",
]

#: EMA weight of one new observation when folding measured/predicted
#: ratios; 0.5 halves the distance to the measurement per ``fit`` run,
#: giving monotone convergence without letting one noisy run dominate
CALIBRATION_ALPHA = 0.5

#: predicted speedup of the compiled (Numba) kernels over the NumPy
#: fused path, per step kind — seeds only; calibration corrects them
COMPILED_STEP_GAIN = {"pattern2": 0.55, "pattern3": 0.6}

#: fixed per-slab cost of the tiled path (loop + scratch checkout +
#: accumulator fold), per sweep over the volume
SLAB_OVERHEAD_S = 2.5e-4

#: float64 intermediates the whole-array workspace keeps live per input
#: element (o64, d64, err — the rest are transient)
_WHOLE_SET_BYTES_PER_ELEM = 24
#: float64 conversion buffers the tiled path keeps live per slab element
_SLAB_SET_BYTES_PER_ELEM = 24

#: sustained full-assessment throughput of the seed host, in *pair*
#: bytes per second (committed BENCH_host_fusion.json: a (32,128,128)
#: float32 pair, 4.2 MB, assesses in ~0.15 s)
HOST_ASSESS_BYTES_PER_S = 25e6

#: per-task IPC cost of the persistent process pool (submit + pickle +
#: result transfer for small payloads)
PROCESS_TASK_OVERHEAD_S = 1.5e-3
#: amortised per-worker share of pool spin-up / teardown
PROCESS_WORKER_OVERHEAD_S = 2e-3
#: per-task submission overhead of the thread pool
THREAD_TASK_OVERHEAD_S = 2e-4
#: fraction of host assessment time that releases the GIL (BLAS / FFT
#: inner loops); the rest serialises across threads
THREAD_PARALLEL_FRACTION = 0.35


# ---------------------------------------------------------------------------
# calibration table
# ---------------------------------------------------------------------------


#: same-process serialisation of calibration saves (``flock`` below only
#: excludes other processes), keyed per target path
_SAVE_LOCKS: dict[str, threading.Lock] = {}
_SAVE_LOCKS_GUARD = threading.Lock()


@contextmanager
def _calibration_lock(target: Path):
    """Best-effort cross-process + in-process exclusive lock for a table.

    Uses ``fcntl.flock`` on a sidecar ``.lock`` file where available;
    platforms without ``fcntl`` still get in-process serialisation plus
    the atomic-replace guarantee (a reader can never observe a torn
    file, only a slightly stale one).
    """
    with _SAVE_LOCKS_GUARD:
        local = _SAVE_LOCKS.setdefault(str(target), threading.Lock())
    with local:
        lock_path = target.with_name(target.name + ".lock")
        fh = None
        try:
            try:
                import fcntl

                fh = open(lock_path, "a+")
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            except (ImportError, OSError):
                fh = None
            yield
        finally:
            if fh is not None:
                try:
                    import fcntl

                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
                except (ImportError, OSError):
                    pass
                fh.close()


def default_calibration_path() -> Path:
    """``$XDG_CACHE_HOME/cuzchecker/calibration.json`` (or ``~/.cache``)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "cuzchecker" / "calibration.json"


def host_fingerprint() -> dict:
    """Attributable host identity stored with calibration tables and
    committed bench runs (satellite: every bench section records this)."""
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux hosts
        usable = os.cpu_count() or 1
    ram_bytes = None
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemTotal:"):
                    ram_bytes = int(line.split()[1]) * 1024
                    break
    except OSError:  # pragma: no cover — non-Linux hosts
        pass
    return {
        "cpu_count": os.cpu_count() or 1,
        "usable_cores": usable,
        "ram_bytes": ram_bytes,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


@dataclass
class CalibrationTable:
    """Persistent per-kernel measured-vs-predicted correction ratios.

    Keys are ``{backend}.{step_kind}.{layout}`` (layout ``whole`` or
    ``slab``); each entry stores the geometric-EMA ratio and how many
    observations have been folded in.  ``ratio()`` of an unseen key is
    1.0, so an empty table reproduces the raw roofline prediction.
    """

    path: Path | None = None
    entries: dict[str, dict] = field(default_factory=dict)
    host: dict = field(default_factory=dict)

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: Path | str) -> "CalibrationTable":
        """Load a table, tolerating a missing or unreadable file (fresh
        table) so first runs and foreign hosts never fail."""
        path = Path(path)
        entries: dict[str, dict] = {}
        host: dict = {}
        try:
            raw = json.loads(path.read_text())
            if not isinstance(raw, dict):
                raw = {}
            for key, ent in raw.get("entries", {}).items():
                ratio = float(ent.get("ratio", 1.0))
                if math.isfinite(ratio) and ratio > 0:
                    entries[key] = {
                        "ratio": ratio,
                        "samples": int(ent.get("samples", 0)),
                    }
            host = dict(raw.get("host", {}))
        except (OSError, ValueError, TypeError):
            pass
        return cls(path=path, entries=entries, host=host)

    def save(self, path: Path | str | None = None, merge: bool = True) -> Path:
        """Persist the table atomically; concurrent writers cannot corrupt it.

        A server worker folding calibration observations and a
        ``calibrate fit`` run may save to the same per-user path at the
        same time, so persistence is write-temp + :func:`os.replace`
        (readers always see a complete JSON document) under a
        best-effort ``.lock`` file.  With ``merge=True`` the on-disk
        entries are re-read inside the lock and keys this table never
        observed are kept — per-key last-writer-wins instead of
        whole-file clobbering.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise CheckerError("calibration table has no path to save to")
        target.parent.mkdir(parents=True, exist_ok=True)
        with _calibration_lock(target):
            entries = dict(self.entries)
            if merge:
                for key, ent in CalibrationTable.load(target).entries.items():
                    entries.setdefault(key, ent)
            payload = {
                "version": 1,
                "host": self.host or host_fingerprint(),
                "entries": entries,
            }
            tmp = target.with_name(
                f".{target.name}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            os.replace(tmp, target)
        return target

    # -- the predict → measure → correct loop ------------------------------

    def ratio(self, key: str) -> float:
        ent = self.entries.get(key)
        return float(ent["ratio"]) if ent else 1.0

    def fold(
        self,
        key: str,
        measured_s: float,
        predicted_s: float,
        alpha: float = CALIBRATION_ALPHA,
    ) -> float:
        """Fold one (measured, predicted) observation into ``key``.

        The first observation of a key is adopted outright — the
        identity prior is the *absence* of data, not data, and EMA-ing
        away from it would leave predictions biased toward the raw
        model for many fit runs.  Later observations fold in as a
        geometric EMA in log space: ``ln r' = (1-a) ln r + a ln(m/p)``
        — multiplicative errors average symmetrically (2×
        over-prediction and 2× under-prediction cancel) and the ratio
        converges monotonically under a constant observation.
        """
        if measured_s <= 0 or predicted_s <= 0:
            return self.ratio(key)
        obs = measured_s / predicted_s
        samples = (self.entries.get(key) or {}).get("samples", 0)
        if samples == 0:
            new = obs
        else:
            old = self.ratio(key)
            new = math.exp((1.0 - alpha) * math.log(old) + alpha * math.log(obs))
        self.entries[key] = {"ratio": new, "samples": samples + 1}
        return new


def resolve_calibration(setting: str = "auto") -> CalibrationTable | None:
    """Map the ``calibration`` config knob to a table (or ``None``).

    ``"off"`` disables the loop; ``"auto"`` (or empty) uses the per-user
    default cache path; anything else is an explicit table path.
    """
    if setting == "off":
        return None
    if setting in ("", "auto"):
        return CalibrationTable.load(default_calibration_path())
    return CalibrationTable.load(setting)


# ---------------------------------------------------------------------------
# candidates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StepCost:
    """Calibrated cost of one plan step under one candidate."""

    kind: str
    key: str
    #: raw roofline prediction, before calibration
    base_ms: float
    #: calibrated prediction: ``base_ms * table.ratio(key)``
    ms: float


@dataclass(frozen=True)
class Candidate:
    """One way to execute the plan: a backend and a tiling layout."""

    backend: str
    #: resolved slab depth (``None`` = whole-array)
    slab: int | None
    steps: tuple[StepCost, ...]
    #: where the base prediction came from ("host-roofline" |
    #: "gpusim-model")
    source: str = "host-roofline"

    @property
    def total_ms(self) -> float:
        return sum(s.ms for s in self.steps)

    @property
    def label(self) -> str:
        layout = "whole" if self.slab is None else f"slab{self.slab}"
        return f"{self.backend}/{layout}"


@dataclass(frozen=True)
class Decision:
    """The dispatcher's verdict for one (plan, shape) pair."""

    shape: tuple[int, int, int]
    itemsize: int
    candidates: tuple[Candidate, ...]
    chosen: Candidate
    executor: str = "auto"
    #: worker count the batch drivers should use; ``None`` defers to the
    #: per-batch :func:`repro.parallel.executor.cost_aware_workers`
    workers: int | None = None
    #: calibration table provenance ("off" or the table path)
    calibration: str = "off"

    def to_dict(self) -> dict:
        return {
            "shape": list(self.shape),
            "itemsize": self.itemsize,
            "chosen": self.chosen.label,
            "executor": self.executor,
            "workers": self.workers,
            "calibration": self.calibration,
            "candidates": [
                {
                    "label": c.label,
                    "backend": c.backend,
                    "slab": c.slab,
                    "source": c.source,
                    "predicted_ms": c.total_ms,
                    "steps": [
                        {
                            "kind": s.kind,
                            "key": s.key,
                            "base_ms": s.base_ms,
                            "predicted_ms": s.ms,
                        }
                        for s in c.steps
                    ],
                }
                for c in self.candidates
            ],
        }


def calibration_key(backend: str, kind: str, slab: int | None) -> str:
    """Stable table key for one (backend, step, layout) combination."""
    return f"{backend}.{kind}.{'slab' if slab is not None else 'whole'}"


def _aux_seconds(step, shape, roof: HostRoof) -> float:
    """Host cost of the auxiliary step: stream both float64 views, plus
    an n·log2(n) term when the spectral FFT is requested."""
    n = int(np.prod(shape))
    t = 2.0 * n * 8 / roof.stream_bandwidth
    if "spectral" in step.metrics:
        t += 5.0 * n * max(math.log2(max(n, 2)), 1.0) / roof.op_rate
    return t


def _host_candidate(
    plan, shape, itemsize, backend: str, slab: int | None,
    table: CalibrationTable | None, roof: HostRoof,
) -> Candidate:
    """Price every plan step for one (host backend, slab) candidate."""
    # the compiled backend shares the fused dataflow (and therefore the
    # fused kernel plans); its gain enters as a per-step multiplier
    plan_backend = "fused-host" if backend == "compiled-host" else backend
    be = get_backend(plan_backend)
    n = int(np.prod(shape))
    if slab is None:
        cached = n * _WHOLE_SET_BYTES_PER_ELEM <= roof.llc_bytes
        n_slabs = 0
    else:
        plane = int(shape[1]) * int(shape[2])
        cached = slab * plane * _SLAB_SET_BYTES_PER_ELEM <= roof.llc_bytes
        n_slabs = math.ceil(shape[0] / slab)
    costs = []
    for step in plan.steps:
        if step.kind == "auxiliary":
            base = _aux_seconds(step, shape, roof)
        else:
            stats_list = be.kernel_plans(step, tuple(shape), plan.config)
            base = sum(host_kernel_seconds(s, roof, cached) for s in stats_list)
            if slab is not None:
                base += SLAB_OVERHEAD_S * n_slabs
        if backend == "compiled-host":
            base *= COMPILED_STEP_GAIN.get(step.kind, 1.0)
        key = calibration_key(backend, step.kind, slab)
        ms = base * 1e3
        costs.append(
            StepCost(
                kind=step.kind,
                key=key,
                base_ms=ms,
                ms=ms * (table.ratio(key) if table else 1.0),
            )
        )
    return Candidate(backend=backend, slab=slab, steps=tuple(costs))


def _gpusim_candidate(
    plan, shape, itemsize, table: CalibrationTable | None
) -> Candidate:
    """Price the modelled backend with the device cost model."""
    from repro.core.frameworks import device_by_name
    from repro.gpusim.costmodel import kernel_times

    device = device_by_name(plan.config.device)
    be = get_backend("gpusim")
    slab = resolve_slab(tuple(shape), getattr(plan.config, "tiling", "off"), itemsize)
    costs = []
    for step in plan.steps:
        stats_list = be.kernel_plans(step, tuple(shape), plan.config)
        base = sum(c.total for c in kernel_times(stats_list, device))
        key = calibration_key("gpusim", step.kind, slab)
        ms = base * 1e3
        costs.append(
            StepCost(
                kind=step.kind,
                key=key,
                base_ms=ms,
                ms=ms * (table.ratio(key) if table else 1.0),
            )
        )
    return Candidate(
        backend="gpusim", slab=slab, steps=tuple(costs), source="gpusim-model"
    )


def _candidate_backends(plan, pinned: str | None) -> list[str]:
    if pinned:
        return [pinned]
    if not plan.config.fused:
        # fused=False is an explicit request for the moZC discipline
        return ["metric-oriented"]
    names = ["fused-host", "metric-oriented"]
    if compiled.available() and "compiled-host" in known_backends():
        names.append("compiled-host")
    return names


def choose(
    plan,
    shape: tuple[int, int, int],
    itemsize: int = 4,
    pinned: str | None = None,
    table: CalibrationTable | None = None,
    roof: HostRoof = DEFAULT_HOST_ROOF,
) -> Decision:
    """Enumerate and price candidates; return the full costed table.

    Raises :class:`~repro.errors.ShapeError` for shapes the kernel plans
    reject — callers that must not fail (``dispatch_plan``) catch it.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3:
        raise ShapeError(f"dispatch prices 3-D fields, got {shape}")
    candidates: list[Candidate] = []
    tiling = getattr(plan.config, "tiling", "off")
    for backend in _candidate_backends(plan, pinned):
        if backend == "gpusim":
            candidates.append(_gpusim_candidate(plan, shape, itemsize, table))
            continue
        if backend == "compiled-host":
            # the compiled kernels are whole-array single passes; the
            # tiled layout would fall back to interpreted execution
            slabs: tuple[int | None, ...] = (None,)
        else:
            slabs = slab_candidates(shape, tiling, itemsize)
        for slab in slabs:
            candidates.append(
                _host_candidate(plan, shape, itemsize, backend, slab, table, roof)
            )
    chosen = min(candidates, key=lambda c: c.total_ms)
    return Decision(
        shape=shape,
        itemsize=itemsize,
        candidates=tuple(candidates),
        chosen=chosen,
        executor=getattr(plan, "executor", "auto"),
        calibration=(
            "off" if table is None else str(table.path or "(in-memory)")
        ),
    )


# ---------------------------------------------------------------------------
# plan integration
# ---------------------------------------------------------------------------

_DECISION_CACHE: dict = {}
_CACHE_LOCK = threading.Lock()
_CACHE_MAX = 256


def clear_decision_cache() -> None:
    with _CACHE_LOCK:
        _DECISION_CACHE.clear()


def decision_cache_size() -> int:
    """Memoised dispatch decisions alive in this process (warm-state
    introspection for ``cuzchecker explain --session`` and ``/metrics``)."""
    with _CACHE_LOCK:
        return len(_DECISION_CACHE)


def _table_token(table: CalibrationTable | None):
    if table is None:
        return "off"
    if table.path is None:
        return id(table)
    try:
        mtime = table.path.stat().st_mtime_ns
    except OSError:
        mtime = 0
    return (str(table.path), mtime)


def dispatch_plan(plan, shape, itemsize: int = 4, pinned: str | None = None):
    """Return ``plan`` re-targeted at the cheapest candidate for ``shape``.

    Pure function of (plan, shape, itemsize, pinned, table state); the
    decision is memoised.  Never validates the config again and never
    raises — shapes the cost model cannot price keep the undecided plan
    so execution reports the canonical kernel error.  The config is only
    replaced when the chosen layout differs from what the static rules
    would have resolved, so small fields keep bit-for-bit identical
    plans (and reports keep the user's literal configuration).
    """
    try:
        shape = tuple(int(s) for s in shape)
    except (TypeError, ValueError):
        return plan
    if len(shape) != 3 or not plan.steps:
        return plan
    cfg = plan.config
    pinned = pinned or cfg.backend or None
    table = resolve_calibration(getattr(cfg, "calibration", "auto"))
    key = (cfg, shape, int(itemsize), pinned, _table_token(table))
    with _CACHE_LOCK:
        hit = _DECISION_CACHE.get(key)
    if hit is not None:
        return dataclasses.replace(plan, **hit)
    try:
        decision = choose(plan, shape, itemsize, pinned=pinned, table=table)
    except (ShapeError, CheckerError):
        return plan
    chosen = decision.chosen
    changes: dict = {"decision": decision}
    if chosen.backend != plan.backend:
        changes["backend"] = chosen.backend
    default_slab = resolve_slab(shape, getattr(cfg, "tiling", "off"), itemsize)
    if chosen.slab != default_slab:
        new_tiling = "off" if chosen.slab is None else int(chosen.slab)
        changes["config"] = dataclasses.replace(cfg, tiling=new_tiling)
    with _CACHE_LOCK:
        if len(_DECISION_CACHE) >= _CACHE_MAX:
            _DECISION_CACHE.clear()
        _DECISION_CACHE[key] = changes
    return dataclasses.replace(plan, **changes)


# ---------------------------------------------------------------------------
# executor / worker-count candidates
# ---------------------------------------------------------------------------


def estimate_assess_seconds(task_nbytes: int) -> float:
    """Seed estimate of one full assessment from the pair's byte size,
    anchored to the committed seed-host throughput."""
    return max(task_nbytes, 1) / HOST_ASSESS_BYTES_PER_S


def predict_pool_seconds(
    n_tasks: int, task_s: float, workers: int, executor: str
) -> float:
    """Predicted wall time of ``n_tasks`` equal tasks on one pool kind.

    Process pools parallelise fully but pay per-task IPC and per-worker
    spin-up; thread pools only overlap the GIL-releasing fraction of an
    assessment; serial is the baseline.
    """
    if n_tasks <= 0:
        return 0.0
    workers = max(1, int(workers))
    if executor == "process":
        rounds = math.ceil(n_tasks / workers)
        return (
            rounds * (task_s + PROCESS_TASK_OVERHEAD_S)
            + workers * PROCESS_WORKER_OVERHEAD_S
        )
    if executor == "thread":
        f = THREAD_PARALLEL_FRACTION
        return n_tasks * task_s * ((1.0 - f) + f / workers) + (
            n_tasks * THREAD_TASK_OVERHEAD_S
        )
    return n_tasks * task_s
