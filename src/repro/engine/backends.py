"""Execution backends: how one :class:`~repro.engine.plan.ExecutionPlan`
step turns into metric values and modelled kernel launches.

The plan layer decides *what* runs (metric subset → pattern groups →
dependency DAG); a :class:`Backend` decides *how*:

``fused-host``
    The shared-:class:`~repro.core.workspace.MetricWorkspace` path: every
    derived array is materialised once and feeds all pattern kernels plus
    the auxiliary metrics — the host analogue of the paper's fused
    cooperative kernels.
``metric-oriented``
    The moZC-style path: each pattern executes standalone (no shared
    workspace, no cross-pattern moment reuse), mirroring one kernel
    pipeline per metric.  Values are identical to ``fused-host`` — only
    the modelled cost differs (its :meth:`Backend.kernel_plans` returns
    the per-metric moZC kernel lists).
``gpusim``
    The fused dataflow plus modelled-cost execution: every pattern step
    additionally builds its :class:`~repro.gpusim.counters.KernelStats`
    plan, validates the launch geometry against the configured device via
    :class:`repro.gpusim.launch.LaunchConfig`, prices it with the cost
    model, and records it in :attr:`GpuSimBackend.launch_log` — the
    counter tests assert pattern skipping against.

Backends register by name; new execution strategies (async, sharded,
real-GPU) plug in through :func:`register_backend` without touching the
entry points, which all dispatch through plans.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.workspace import MetricWorkspace, default_scratch_pool
from repro.engine.tiling import TiledAssessment, resolve_slab
from repro.errors import CheckerError
from repro.gpusim.counters import KernelStats
from repro.gpusim.launch import LaunchConfig
from repro.kernels.metric_oriented import (
    plan_mo_pattern1,
    plan_mo_pattern2,
    plan_mo_pattern3,
)
from repro.kernels.pattern1 import Pattern1Result, execute_pattern1, plan_pattern1
from repro.kernels.pattern2 import Pattern2Result, execute_pattern2, plan_pattern2
from repro.kernels.pattern3 import Pattern3Result, execute_pattern3, plan_pattern3
from repro.metrics.correlation import pearson
from repro.metrics.properties import data_properties
from repro.metrics.spectral import spectral_comparison
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "RunContext",
    "Backend",
    "FusedHostBackend",
    "MetricOrientedBackend",
    "GpuSimBackend",
    "CompiledHostBackend",
    "register_backend",
    "get_backend",
    "known_backends",
]


@dataclass
class RunContext:
    """Mutable per-execution state shared by a plan's steps.

    Carries the cross-step intermediates of the dependency DAG: the
    workspace (fused backends) and the pattern-1 error moments the
    pattern-2 autocorrelation normalisation consumes — plus the run's
    tracer (:data:`~repro.telemetry.tracer.NULL_TRACER` by default).
    """

    plan: "object"
    orig: np.ndarray
    dec: np.ndarray
    workspace: MetricWorkspace | None = None
    err_mean: float | None = None
    err_var: float | None = None
    tracer: Tracer = NULL_TRACER
    extras: dict = field(default_factory=dict)


class Backend(abc.ABC):
    """One execution strategy for plan steps.

    Subclasses implement the three pattern hooks plus the auxiliary
    computation; the shared :meth:`run_step` orchestration handles step
    dispatch, cross-pattern moment publication, and launch recording.
    """

    #: registry name; subclasses must override
    name: str = ""

    # -- lifecycle ---------------------------------------------------------

    def begin(self, plan, orig: np.ndarray, dec: np.ndarray) -> RunContext:
        """Create the per-execution context (workspace allocation, ...)."""
        return RunContext(plan=plan, orig=orig, dec=dec)

    # -- step execution ----------------------------------------------------

    def run_step(self, step, ctx: RunContext, report) -> None:
        """Execute one plan step, filling ``report`` and updating ``ctx``."""
        if step.kind == "pattern1":
            with ctx.tracer.span("pattern1", category="kernel", pattern=1) as sp:
                report.pattern1, stats = self._pattern1(ctx)
                # publish the error moments for the pattern-2 normalisation
                ctx.err_mean = report.pattern1.avg_err
                ctx.err_var = max(
                    report.pattern1.mse - report.pattern1.avg_err**2, 0.0
                )
                self._on_launch([stats])
                self._annotate(sp, stats)
                self._annotate_host(sp, ctx)
        elif step.kind == "pattern2":
            with ctx.tracer.span("pattern2", category="kernel", pattern=2) as sp:
                report.pattern2, stats = self._pattern2(ctx)
                self._on_launch([stats])
                self._annotate(sp, stats)
                self._annotate_host(sp, ctx)
        elif step.kind == "pattern3":
            with ctx.tracer.span("pattern3", category="kernel", pattern=3) as sp:
                report.pattern3, stats = self._pattern3(ctx)
                self._on_launch([stats])
                self._annotate(sp, stats)
        elif step.kind == "auxiliary":
            with ctx.tracer.span(
                "host.auxiliary", category="kernel", pattern="aux",
                bytes=ctx.orig.nbytes + ctx.dec.nbytes,
            ) as sp:
                report.auxiliary.update(self._auxiliary(ctx, step.metrics))
                self._annotate_host(sp, ctx)
        else:  # pragma: no cover — plans only emit the four kinds
            raise CheckerError(f"unknown plan step kind {step.kind!r}")

    def _on_launch(self, stats_list: list[KernelStats]) -> None:
        """Hook invoked with the kernel stats of each pattern step."""

    def _annotate(self, sp, stats: KernelStats) -> None:
        """Fill a kernel span from the executed kernel's stats record.

        Runs after :meth:`_on_launch` so backends that price launches
        (gpusim) can layer their modelled numbers on top.
        """
        sp.name = stats.name
        sp.bytes = stats.global_bytes
        sp.attrs.update(
            launches=stats.launches,
            grid_blocks=stats.grid_blocks,
            threads_per_block=stats.threads_per_block,
        )

    def _annotate_host(self, sp, ctx: RunContext) -> None:
        """Host-execution attributes: how this backend actually moved data
        (slab depth and cumulative host bytes for the tiled path, cached
        intermediate footprint for the whole-array workspace path, and
        the shared-memory payload when a process worker attached to
        published fields)."""
        tiled = ctx.extras.get("tiled")
        if tiled is not None:
            sp.attrs["tiling_slab"] = tiled.slab
            sp.attrs["host_bytes"] = tiled.bytes_touched
        elif ctx.workspace is not None:
            sp.attrs["host_bytes"] = ctx.workspace.cached_nbytes()
        shm_bytes = ctx.extras.get("shm_bytes")
        if shm_bytes:
            sp.attrs["shm_bytes"] = shm_bytes

    # -- pattern hooks -----------------------------------------------------

    @abc.abstractmethod
    def _pattern1(self, ctx: RunContext) -> tuple[Pattern1Result, KernelStats]:
        ...

    @abc.abstractmethod
    def _pattern2(self, ctx: RunContext) -> tuple[Pattern2Result, KernelStats]:
        ...

    @abc.abstractmethod
    def _pattern3(self, ctx: RunContext) -> tuple[Pattern3Result, KernelStats]:
        ...

    @abc.abstractmethod
    def _auxiliary(self, ctx: RunContext, names: tuple[str, ...]) -> dict:
        ...

    # -- introspection -----------------------------------------------------

    def kernel_plans(self, step, shape, config) -> list[KernelStats]:
        """Modelled kernel launches this backend performs for one step."""
        if step.kind == "pattern1":
            return [plan_pattern1(shape, config.pattern1)]
        if step.kind == "pattern2":
            return [plan_pattern2(shape, config.pattern2)]
        if step.kind == "pattern3":
            return [plan_pattern3(shape, config.pattern3)]
        return []  # auxiliary metrics run host-side


class FusedHostBackend(Backend):
    """PR 1's fused path: one shared workspace feeds every consumer."""

    name = "fused-host"

    def begin(self, plan, orig, dec) -> RunContext:
        ctx = super().begin(plan, orig, dec)
        kinds = {s.kind for s in plan.steps}
        has_p1 = "pattern1" in kinds
        has_p2 = "pattern2" in kinds
        slab = None
        if has_p1 or has_p2:
            slab = resolve_slab(
                orig.shape,
                getattr(plan.config, "tiling", "off"),
                itemsize=np.asarray(orig).dtype.itemsize,
            )
        if slab is not None:
            aux_names: tuple[str, ...] = ()
            for s in plan.steps:
                if s.kind == "auxiliary":
                    aux_names = tuple(s.metrics)
            # tiled single-pass mode: no whole-array workspace at all —
            # pattern 3 and the spectral FFT (inherently whole-array)
            # fall back to standalone execution on the raw inputs
            ctx.extras["tiled"] = TiledAssessment(
                orig,
                dec,
                plan.config,
                slab,
                want_pdfs=has_p1,
                want_pattern2=has_p2,
                aux_names=aux_names,
                scratch=default_scratch_pool(),
            )
        else:
            ctx.workspace = MetricWorkspace(
                orig,
                dec,
                pwr_floor=plan.config.pattern1.pwr_floor,
                scratch=default_scratch_pool(),
            )
        return ctx

    def _pattern1(self, ctx):
        tiled = ctx.extras.get("tiled")
        if tiled is not None:
            return tiled.pattern1_result(), plan_pattern1(
                tiled.shape, ctx.plan.config.pattern1
            )
        return execute_pattern1(
            ctx.orig, ctx.dec, ctx.plan.config.pattern1, workspace=ctx.workspace
        )

    def _pattern2(self, ctx):
        tiled = ctx.extras.get("tiled")
        if tiled is not None:
            return tiled.pattern2_result(ctx.err_mean, ctx.err_var), plan_pattern2(
                tiled.shape, ctx.plan.config.pattern2
            )
        err_mean, err_var = ctx.err_mean, ctx.err_var
        if err_mean is None:
            # no pattern-1 step in this plan: take the moments from the
            # shared workspace, which reduces them exactly as the
            # pattern-1 kernel would — a subset plan therefore returns
            # bit-identical values to the full assessment
            es = ctx.workspace.error_stats()
            mse = ctx.workspace.rate_distortion().mse
            err_mean = es.avg_err
            err_var = max(mse - err_mean**2, 0.0)
        return execute_pattern2(
            ctx.orig,
            ctx.dec,
            ctx.plan.config.pattern2,
            err_mean=err_mean,
            err_var=err_var,
            workspace=ctx.workspace,
        )

    def _pattern3(self, ctx):
        return execute_pattern3(
            ctx.orig, ctx.dec, ctx.plan.config.pattern3, workspace=ctx.workspace
        )

    def _auxiliary(self, ctx, names):
        tiled = ctx.extras.get("tiled")
        if tiled is not None:
            out = tiled.aux_values(names)
            if "spectral" in names:
                spectral = spectral_comparison(ctx.orig, ctx.dec)
                out["spectral_mean_rel_err"] = spectral.mean_rel_err
                out["spectral_noise_frequency"] = spectral.noise_frequency
            return out
        # float32→float64 is exact, so handing the workspace's cached
        # views to the FFT is bit-identical and skips the conversion
        # spectral_comparison would otherwise redo
        ws = ctx.workspace
        out: dict[str, float] = {}
        if "pearson" in names:
            out["pearson"] = ws.pearson()
        if {"entropy", "mean", "std"} & set(names):
            props = ws.data_properties()
            if "entropy" in names:
                out["entropy"] = props.entropy
            if "mean" in names:
                out["mean"] = props.mean
            if "std" in names:
                out["std"] = props.std
        if "spectral" in names:
            spectral = spectral_comparison(ws.o64, ws.d64)
            out["spectral_mean_rel_err"] = spectral.mean_rel_err
            out["spectral_noise_frequency"] = spectral.noise_frequency
        return out


class CompiledHostBackend(FusedHostBackend):
    """The fused dataflow with the two measured hot spots — the pattern-2
    ±1 stencil and the sliding SSIM window — replaced by single-pass
    compiled kernels (:mod:`repro.engine.compiled`).

    Values are identical to ``fused-host`` (the compiled kernels reduce
    in the same order and always compute the full stencil set, so metric
    subsets stay bit-identical); only the constant factor differs, which
    is why the dispatcher selects this backend purely on calibrated cost.
    Without Numba the kernels run interpreted — registration never
    depends on the import, but the dispatcher only *enumerates* this
    backend when :func:`repro.engine.compiled.available` is true, and
    plans that name it explicitly fall back to ``fused-host`` with a
    one-line warning.
    """

    name = "compiled-host"

    def _pattern2(self, ctx):
        from repro.engine.compiled import execute_pattern2_compiled

        if ctx.extras.get("tiled") is not None or ctx.workspace is None:
            # the compiled stencil is a whole-array single pass; tiled
            # layouts keep the interpreted slab path
            return super()._pattern2(ctx)
        err_mean, err_var = ctx.err_mean, ctx.err_var
        if err_mean is None:
            # same moment-resolution rule as the fused path: a subset
            # plan takes the moments from the shared workspace so it
            # returns bit-identical values to the full assessment
            es = ctx.workspace.error_stats()
            mse = ctx.workspace.rate_distortion().mse
            err_mean = es.avg_err
            err_var = max(mse - err_mean**2, 0.0)
        return execute_pattern2_compiled(
            ctx.workspace, ctx.plan.config.pattern2,
            err_mean=err_mean, err_var=err_var,
        )

    def _pattern3(self, ctx):
        from repro.engine.compiled import execute_pattern3_compiled

        if ctx.workspace is None:
            return super()._pattern3(ctx)
        return execute_pattern3_compiled(ctx.workspace, ctx.plan.config.pattern3)


class MetricOrientedBackend(Backend):
    """moZC-style standalone execution: no workspace, no moment reuse."""

    name = "metric-oriented"

    def _pattern1(self, ctx):
        return execute_pattern1(ctx.orig, ctx.dec, ctx.plan.config.pattern1)

    def _pattern2(self, ctx):
        # standalone: the error moments are recomputed on the fly, the
        # per-metric discipline moZC models
        return execute_pattern2(ctx.orig, ctx.dec, ctx.plan.config.pattern2)

    def _pattern3(self, ctx):
        return execute_pattern3(ctx.orig, ctx.dec, ctx.plan.config.pattern3)

    def _auxiliary(self, ctx, names):
        out: dict[str, float] = {}
        if "pearson" in names:
            out["pearson"] = pearson(ctx.orig, ctx.dec)
        if {"entropy", "mean", "std"} & set(names):
            props = data_properties(ctx.orig)
            if "entropy" in names:
                out["entropy"] = props.entropy
            if "mean" in names:
                out["mean"] = props.mean
            if "std" in names:
                out["std"] = props.std
        if "spectral" in names:
            spectral = spectral_comparison(ctx.orig, ctx.dec)
            out["spectral_mean_rel_err"] = spectral.mean_rel_err
            out["spectral_noise_frequency"] = spectral.noise_frequency
        return out

    def kernel_plans(self, step, shape, config):
        if step.kind == "pattern1":
            return plan_mo_pattern1(shape, config.pattern1)
        if step.kind == "pattern2":
            return plan_mo_pattern2(shape, config.pattern2)
        if step.kind == "pattern3":
            return plan_mo_pattern3(shape, config.pattern3)
        return []


class GpuSimBackend(FusedHostBackend):
    """Fused values plus modelled-cost execution on the simulated device.

    Each pattern step's kernel plan is validated as a real launch against
    the configured :class:`~repro.gpusim.device.DeviceSpec` and priced by
    the cost model; :attr:`launch_log` records every launch so tests can
    assert that a subset plan skips the unneeded kernels.
    """

    name = "gpusim"

    def __init__(self):
        self.launch_log: list[KernelStats] = []
        self.modelled_seconds: dict[str, float] = {}
        self.cost_log: dict[str, object] = {}

    def _on_launch(self, stats_list):
        from repro.core.frameworks import device_by_name
        from repro.gpusim.costmodel import kernel_time

        device = device_by_name(self._config.device)
        for stats in stats_list:
            LaunchConfig(
                grid_x=stats.grid_blocks,
                block_x=stats.threads_per_block,
                smem_per_block=stats.smem_per_block,
                regs_per_thread=stats.regs_per_thread,
            ).validate(device)
            cost = kernel_time(stats, device)
            self.modelled_seconds[stats.name] = cost.total
            self.cost_log[stats.name] = cost
            self._device = device
            self.launch_log.append(stats)

    def _annotate(self, sp, stats):
        super()._annotate(sp, stats)
        cost = self.cost_log.get(stats.name)
        if cost is None:  # pragma: no cover — _on_launch always precedes
            return
        sp.attrs.update(
            modelled_ms=cost.total * 1e3,
            modelled_cycles=cost.total * self._device.core_clock_hz,
            occupancy=cost.occupancy.occupancy,
            bound=cost.bound,
        )

    def begin(self, plan, orig, dec):
        self._config = plan.config
        return super().begin(plan, orig, dec)

    @property
    def launched_patterns(self) -> tuple[int, ...]:
        """Distinct pattern ids launched so far, sorted."""
        return tuple(
            sorted({s.meta.get("pattern") for s in self.launch_log} - {None})
        )


_BACKENDS: dict[str, type[Backend]] = {}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Register a backend class under its ``name`` (idempotent)."""
    if not cls.name:
        raise ValueError(f"backend class {cls.__name__} has no name")
    existing = _BACKENDS.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"conflicting registration for backend {cls.name!r}")
    _BACKENDS[cls.name] = cls
    return cls


def known_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(backend: str | Backend) -> Backend:
    """Resolve a backend name (or pass an instance through).

    Names return a *fresh* instance so per-run state (e.g. the gpusim
    launch log) never leaks between executions.
    """
    if isinstance(backend, Backend):
        return backend
    try:
        return _BACKENDS[backend]()
    except KeyError:
        raise CheckerError(
            f"unknown backend {backend!r}; known: {sorted(_BACKENDS)}"
        ) from None


register_backend(FusedHostBackend)
register_backend(CompiledHostBackend)
register_backend(MetricOrientedBackend)
register_backend(GpuSimBackend)
