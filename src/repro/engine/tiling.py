"""Tiled single-pass execution: cache-blocked fusion of patterns 1 and 2.

The paper's fused kernels read each element of the original/decompressed
pair once from global memory and feed every reduction from registers and
shared memory (Fig. 3, Algorithms 1-2).  The whole-array host path (PR 1)
fuses *logically* — one :class:`~repro.core.workspace.MetricWorkspace`
feeds every consumer — but still materialises full-size intermediates
(``err``, ``sq_err``, the element products), so each assessment makes
many DRAM-sized passes and peak memory is several× the input.

This module is the cache-blocked analogue of the kernel design:

* a **z-slab scheduler** streams the pair through cache-sized slabs
  (``slab_nz`` interior planes plus a ±1 halo for the stencils — the
  host mirror of the 16×16×17 shared-memory cube);
* while a slab is hot, *all* selected pattern-1 reductions, pattern-2
  stencil comparisons, and per-lag autocorrelation partials consume it,
  accumulating into a :class:`TileAccumulator` instead of whole-array
  temporaries;
* a second sweep (mirroring the kernel's sweep 2) builds the PDF
  histograms — which need the global extrema — plus the centred Pearson
  co-moments and the entropy histogram for the auxiliary metrics;
* slab conversion buffers come from a reused
  :class:`~repro.core.workspace.ScratchPool`, so steady-state tiled
  assessment performs no full-size allocations at all.

:class:`TileAccumulator` is deliberately independent of how blocks are
produced: the tiled executor feeds it slab views, and
:class:`~repro.core.streaming.StreamingChecker` feeds it caller-sized
chunks — one accumulator implementation, two schedulers.

Results equal the whole-array fused path to FP tolerance (summation is
grouped per slab instead of per z-slice); PDF histograms are
bit-identical because bin assignment is element-wise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.workspace import ScratchPool, histogram_pdf
from repro.errors import CheckerError, ConfigError, ShapeError
from repro.kernels.pattern1 import Pattern1Result, result_from_sums
from repro.kernels.pattern2 import Pattern2Result, stencil_fields_local
from repro.metrics.derivatives import DerivativeComparison
from repro.metrics.error_stats import Pdf
from repro.metrics.properties import DEFAULT_ENTROPY_BINS

__all__ = [
    "AUTO_MIN_BYTES",
    "AUTO_SLAB_BYTES",
    "resolve_slab",
    "slab_candidates",
    "TileAccumulator",
    "TiledAssessment",
]

#: fields smaller than this are cache-resident anyway — ``tiling="auto"``
#: keeps the whole-array fused path (and its bit-exact behaviour) there
AUTO_MIN_BYTES = 8 << 20
#: target bytes per float64 slab buffer under ``tiling="auto"``; the
#: working set is ~3 such buffers (orig, dec, err) — sized to stay in the
#: last-level cache rather than round-tripping DRAM per intermediate
AUTO_SLAB_BYTES = 8 << 20


def resolve_slab(
    shape: tuple[int, ...],
    tiling: str | int,
    itemsize: int = 4,
) -> int | None:
    """Turn a ``tiling`` setting into a slab depth (or ``None`` = whole).

    ``"off"`` and non-3-D shapes always resolve to ``None``.  An explicit
    integer always tiles (clamped to ``nz``) — that is the testing knob.
    ``"auto"`` tiles only fields of at least :data:`AUTO_MIN_BYTES`, so
    small inputs keep the exact whole-array behaviour, and picks a slab
    depth whose float64 conversion buffers are ~:data:`AUTO_SLAB_BYTES`.
    """
    if tiling == "off":
        return None
    if len(shape) != 3:
        return None
    nz, ny, nx = shape
    if isinstance(tiling, bool):
        raise ConfigError(f"tiling must be 'auto', 'off' or an int, got {tiling!r}")
    if isinstance(tiling, int):
        if tiling < 1:
            raise ConfigError(f"tiling slab depth must be >= 1, got {tiling}")
        return min(tiling, nz)
    if tiling == "auto":
        if nz * ny * nx * itemsize < AUTO_MIN_BYTES:
            return None
        plane_bytes = ny * nx * 8
        slab = int(max(4, min(64, AUTO_SLAB_BYTES // max(plane_bytes, 1))))
        if slab >= nz:
            return None
        return slab
    raise ConfigError(
        f"tiling must be 'auto', 'off' or a positive slab depth, got {tiling!r}"
    )


def slab_candidates(
    shape: tuple[int, ...],
    tiling: str | int,
    itemsize: int = 4,
) -> tuple[int | None, ...]:
    """Slab depths worth costing for a shape (``None`` = whole-array).

    The dispatch predictor's candidate grid.  Pinned settings stay
    pinned: ``"off"`` and explicit integers yield exactly what
    :func:`resolve_slab` would.  ``"auto"`` on fields below
    :data:`AUTO_MIN_BYTES` keeps the single whole-array candidate — the
    bit-exact small-field behaviour must not depend on a calibration
    table — while larger fields get whole-array, the auto depth, and two
    fixed depths bracketing the usual cache sweet spot.
    """
    if len(shape) != 3 or tiling == "off":
        return (None,)
    if isinstance(tiling, bool):
        raise ConfigError(f"tiling must be 'auto', 'off' or an int, got {tiling!r}")
    nz = shape[0]
    if isinstance(tiling, int):
        return (resolve_slab(shape, tiling, itemsize),)
    out: set[int | None] = {None, resolve_slab(shape, tiling, itemsize)}
    if out == {None}:
        return (None,)
    for depth in (16, 32):
        if 1 <= depth < nz:
            out.add(depth)
    return tuple(sorted(out, key=lambda s: -1 if s is None else s))


class TileAccumulator:
    """Fused reduction partials accumulated from consecutive z-blocks.

    Feed blocks in z order via :meth:`add_block` (any per-block depth —
    slabs, chunks, or single slices).  The accumulator tracks:

    * all pattern-1 sums/extrema (the kernel's 14 registers);
    * per-lag autocorrelation raw sums — a (z, z+τ) pair is emitted when
      its *later* slice arrives, so only the trailing ``max_lag`` error
      slices are carried (ping-pong buffers; no full error field);
    * per-``which`` derivative partial sums via :meth:`add_deriv_local`.

    The mean-centring correction for the autocorrelation is applied once
    in :meth:`finalize_autocorr`:
    ``Σ(a-μ)(Σ_i b_i - 3μ) = Σab - μΣb - 3μΣa + 3 n μ²``.
    """

    def __init__(
        self,
        plane_shape: tuple[int, int],
        max_lag: int = 0,
        pwr_floor: float = 0.0,
        deriv_whichs: tuple[int, ...] = (),
    ):
        if len(plane_shape) != 2 or min(plane_shape) < 1:
            raise ShapeError(f"plane_shape must be (ny, nx), got {plane_shape}")
        if max_lag < 0:
            raise ValueError("max_lag must be >= 0")
        if max_lag and max_lag >= min(plane_shape):
            raise ShapeError(
                f"max_lag {max_lag} must be < min plane extent {min(plane_shape)}"
            )
        self.ny, self.nx = plane_shape
        self.max_lag = max_lag
        self.pwr_floor = pwr_floor
        self.deriv_whichs = tuple(deriv_whichs)

        #: slices consumed so far (the global z of the next block's first plane)
        self.z = 0
        self.n = 0
        inf = math.inf
        self.min_e, self.max_e = inf, -inf
        self.sum_e = self.sum_abs_e = self.sum_sq_e = 0.0
        self.min_o, self.max_o = inf, -inf
        self.sum_o = self.sum_sq_o = self.sum_d = 0.0
        self.min_r, self.max_r = inf, -inf
        self.sum_r = 0.0
        self.cnt_r = 0.0

        L = max_lag
        self.ac_ab = np.zeros(L + 1)
        self.ac_a = np.zeros(L + 1)
        self.ac_b = np.zeros(L + 1)
        self.ac_n = np.zeros(L + 1, dtype=np.int64)
        # ping-pong carry of the trailing L error slices: rolling within
        # one buffer would overlap source and destination, so each roll
        # writes into the spare buffer and the two are swapped
        if L:
            self._carry = np.zeros((L, self.ny, self.nx))
            self._spare = np.empty_like(self._carry)
        else:
            self._carry = self._spare = None

        self._deriv = {
            w: {"sum_abs_o": 0.0, "sum_abs_d": 0.0, "sum_sq_diff": 0.0,
                "max_diff": 0.0, "count": 0}
            for w in self.deriv_whichs
        }

    # -- sweep-1 ingestion -------------------------------------------------

    def add_block(self, o64: np.ndarray, d64: np.ndarray, err: np.ndarray) -> None:
        """Consume the next z-block; all three views are ``(cz, ny, nx)``."""
        if err.ndim != 3 or err.shape[1:] != (self.ny, self.nx):
            raise ShapeError(
                f"blocks must be (cz, {self.ny}, {self.nx}), got {err.shape}"
            )
        if o64.shape != err.shape or d64.shape != err.shape:
            raise ShapeError("orig/dec/err block shapes differ")
        of = o64.reshape(-1)
        df = d64.reshape(-1)
        ef = err.reshape(-1)
        self.n += ef.size
        self.min_e = min(self.min_e, float(err.min()))
        self.max_e = max(self.max_e, float(err.max()))
        self.sum_e += float(ef.sum())
        self.sum_abs_e += float(np.abs(ef).sum())
        self.sum_sq_e += float(np.dot(ef, ef))
        self.min_o = min(self.min_o, float(o64.min()))
        self.max_o = max(self.max_o, float(o64.max()))
        self.sum_o += float(of.sum())
        self.sum_sq_o += float(np.dot(of, of))
        self.sum_d += float(df.sum())
        mask = np.abs(of) > self.pwr_floor
        if mask.any():
            r = ef[mask] / of[mask]
            self.min_r = min(self.min_r, float(r.min()))
            self.max_r = max(self.max_r, float(r.max()))
            self.sum_r += float(r.sum())
            self.cnt_r += float(r.size)
        if self.max_lag:
            self._add_autocorr(err)
        self.z += err.shape[0]

    def _add_autocorr(self, e: np.ndarray) -> None:
        cz = e.shape[0]
        z0 = self.z
        L = self.max_lag
        carry = self._carry  # carry[j] holds the error slice at z0 - L + j
        for tau in range(1, L + 1):
            # pairs fully inside this block: (z0+i, z0+i+tau)
            if cz > tau:
                self._emit(e[: cz - tau], e[tau:], tau)
            # pairs whose core slice was carried from earlier blocks:
            # core a in [max(0, z0-tau), min(z0, z0+cz-tau))
            lo = max(0, z0 - tau)
            hi = min(z0, z0 + cz - tau)
            if lo < hi:
                core = carry[L - (z0 - lo) : L - (z0 - hi) if z0 > hi else L]
                later = e[lo + tau - z0 : hi + tau - z0]
                self._emit(core, later, tau)
        # roll the carry so it ends at slice z0 + cz - 1
        if cz >= L:
            np.copyto(carry, e[cz - L :])
        else:
            spare = self._spare
            np.copyto(spare[: L - cz], carry[cz:])
            np.copyto(spare[L - cz :], e)
            self._carry, self._spare = spare, carry

    def _emit(self, core: np.ndarray, later: np.ndarray, tau: int) -> None:
        """Raw-sum contributions of core slices paired with their τ-later
        partners: the z-shifted later slices plus the cores' own in-plane
        y/x shifts (the three directions of paper Eq. 2)."""
        ny, nx = self.ny, self.nx
        c = core[:, : ny - tau, : nx - tau]
        sz = later[:, : ny - tau, : nx - tau]
        sy = core[:, tau:, : nx - tau]
        sx = core[:, : ny - tau, tau:]
        self.ac_ab[tau] += (
            np.einsum("ijk,ijk->", c, sz)
            + np.einsum("ijk,ijk->", c, sy)
            + np.einsum("ijk,ijk->", c, sx)
        )
        self.ac_a[tau] += float(c.sum())
        self.ac_b[tau] += float(sz.sum()) + float(sy.sum()) + float(sx.sum())
        self.ac_n[tau] += c.size

    def add_deriv_local(self, local_o64: np.ndarray, local_d64: np.ndarray) -> None:
        """Accumulate stencil comparisons from one ±1-haloed local block."""
        fo_all = stencil_fields_local(local_o64)
        fd_all = stencil_fields_local(local_d64)
        for w in self.deriv_whichs:
            fo, fd = fo_all[w], fd_all[w]
            if fo.size == 0:
                continue
            a = self._deriv[w]
            diff = fd - fo
            if w < 2:
                # sqrt-magnitude outputs are already non-negative
                a["sum_abs_o"] += float(fo.sum())
                a["sum_abs_d"] += float(fd.sum())
            else:
                a["sum_abs_o"] += float(np.abs(fo).sum())
                a["sum_abs_d"] += float(np.abs(fd).sum())
            a["sum_sq_diff"] += float((diff * diff).sum())
            a["max_diff"] = max(a["max_diff"], float(np.abs(diff).max()))
            a["count"] += fo.size

    # -- finalisation ------------------------------------------------------

    @property
    def mean_e(self) -> float:
        return self.sum_e / self.n

    @property
    def var_e(self) -> float:
        mu = self.mean_e
        return max(self.sum_sq_e / self.n - mu * mu, 0.0)

    def finalize_autocorr(
        self, mu: float | None = None, var: float | None = None
    ) -> np.ndarray:
        """AC(0..max_lag) with the mean-centring correction applied once."""
        if mu is None:
            mu = self.mean_e
            var = self.var_e
        L = self.max_lag
        out = np.empty(L + 1)
        out[0] = 1.0
        if L == 0:
            return out
        if var == 0.0:
            out[1:] = 0.0
            return out
        for tau in range(1, L + 1):
            ne = int(self.ac_n[tau])
            if ne == 0:
                out[tau] = 0.0
                continue
            centered = (
                self.ac_ab[tau]
                - mu * self.ac_b[tau]
                - 3.0 * mu * self.ac_a[tau]
                + 3.0 * ne * mu * mu
            )
            out[tau] = centered / 3.0 / ne / var
        return out

    def finalize_derivatives(self) -> dict[int, DerivativeComparison]:
        out: dict[int, DerivativeComparison] = {}
        for w in self.deriv_whichs:
            a = self._deriv[w]
            if a["count"] == 0:
                raise ShapeError("field too small for the pattern-2 stencil")
            out[w] = DerivativeComparison(
                mean_orig=a["sum_abs_o"] / a["count"],
                mean_dec=a["sum_abs_d"] / a["count"],
                rms_diff=math.sqrt(a["sum_sq_diff"] / a["count"]),
                max_diff=a["max_diff"],
            )
        return out

    # -- checkpoint/resume -------------------------------------------------

    _STATE_SCALARS = (
        "z", "n",
        "min_e", "max_e", "sum_e", "sum_abs_e", "sum_sq_e",
        "min_o", "max_o", "sum_o", "sum_sq_o", "sum_d",
        "min_r", "max_r", "sum_r", "cnt_r",
    )

    def state_dict(self) -> dict:
        """The exact accumulation state after some number of blocks.

        Everything the resumable audit needs to survive a kill: the 14+
        pattern-1 registers, the per-lag autocorrelation raw sums, the
        trailing error-slice carry, and the derivative partials.  All
        values are exact (floats and raw arrays, no rounding), so
        ``load_state`` followed by the remaining blocks is bit-identical
        to an uninterrupted run.
        """
        state: dict = {k: getattr(self, k) for k in self._STATE_SCALARS}
        state["arrays"] = {
            "ac_ab": self.ac_ab.copy(),
            "ac_a": self.ac_a.copy(),
            "ac_b": self.ac_b.copy(),
            "ac_n": self.ac_n.copy(),
        }
        if self._carry is not None:
            state["arrays"]["carry"] = self._carry.copy()
        state["deriv"] = {
            str(w): dict(acc) for w, acc in self._deriv.items()
        }
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto a same-geometry
        accumulator (same plane shape, max_lag, and deriv selection)."""
        for k in self._STATE_SCALARS:
            value = state[k]
            setattr(self, k, int(value) if k in ("z", "n") else float(value))
        arrays = state["arrays"]
        for name, target in (
            ("ac_ab", self.ac_ab), ("ac_a", self.ac_a), ("ac_b", self.ac_b),
        ):
            src = np.asarray(arrays[name], dtype=np.float64)
            if src.shape != target.shape:
                raise ShapeError(
                    f"accumulator state {name} has shape {src.shape}, "
                    f"expected {target.shape}"
                )
            np.copyto(target, src)
        ac_n = np.asarray(arrays["ac_n"], dtype=np.int64)
        if ac_n.shape != self.ac_n.shape:
            raise ShapeError("accumulator state ac_n shape mismatch")
        np.copyto(self.ac_n, ac_n)
        if self._carry is not None:
            carry = np.asarray(arrays["carry"], dtype=np.float64)
            if carry.shape != self._carry.shape:
                raise ShapeError(
                    f"accumulator carry has shape {carry.shape}, "
                    f"expected {self._carry.shape}"
                )
            np.copyto(self._carry, carry)
        deriv = state.get("deriv", {})
        if set(deriv) != {str(w) for w in self.deriv_whichs}:
            raise ShapeError(
                f"accumulator state tracks derivatives {sorted(deriv)}, "
                f"expected {sorted(str(w) for w in self.deriv_whichs)}"
            )
        for w in self.deriv_whichs:
            src = deriv[str(w)]
            dst = self._deriv[w]
            for key in dst:
                dst[key] = int(src[key]) if key == "count" else float(src[key])


def _pdf_from_counts(counts: np.ndarray, edges: np.ndarray) -> Pdf:
    # same expression np.histogram(density=True) evaluates, so the tiled
    # PDF is bit-identical to the whole-array one (counts merge exactly)
    density = counts / np.diff(edges) / counts.sum()
    return Pdf(bin_edges=edges, density=density)


class TiledAssessment:
    """One (orig, dec) pair streamed through z-slabs, all metrics fused.

    Sweeps are lazy and run at most once:

    * ``sweep1`` — per slab: convert to float64 in pooled scratch
      buffers, form the error in place, and feed every pattern-1
      reduction, pattern-2 stencil partial, and autocorrelation raw sum
      while the slab is cache-hot;
    * ``sweep2`` — per slab: rebuild the error and histogram it against
      the now-known global extrema (PDFs), plus the centred Pearson
      co-moments and the entropy histogram when auxiliary metrics ask.

    ``bytes_touched`` totals the host traffic of both sweeps (source
    reads + scratch-buffer writes) for the telemetry spans.
    """

    def __init__(
        self,
        orig: np.ndarray,
        dec: np.ndarray,
        config,
        slab_nz: int,
        want_pdfs: bool = True,
        want_pattern2: bool = True,
        aux_names: tuple[str, ...] = (),
        scratch: ScratchPool | None = None,
    ):
        orig = np.asarray(orig)
        dec = np.asarray(dec)
        if orig.shape != dec.shape:
            raise ShapeError(f"shape mismatch: {orig.shape} vs {dec.shape}")
        if orig.ndim != 3 or min(orig.shape) < 1:
            raise ShapeError(f"tiled execution expects 3-D fields, got {orig.shape}")
        slab_nz = int(slab_nz)
        if slab_nz < 1:
            raise ConfigError(f"slab depth must be >= 1, got {slab_nz}")
        self.orig = orig
        self.dec = dec
        self.config = config
        self.shape = orig.shape
        self.slab = min(slab_nz, orig.shape[0])
        self.want_pdfs = want_pdfs
        self.want_pattern2 = want_pattern2
        self.aux_names = tuple(aux_names)
        self.scratch = scratch if scratch is not None else ScratchPool()
        self.bytes_touched = 0

        max_lag = 0
        whichs: tuple[int, ...] = ()
        if want_pattern2:
            p2 = config.pattern2
            p2.validate(orig.shape)
            max_lag = p2.max_lag
            if 1 in p2.orders:
                whichs += (0, 2)
            if 2 in p2.orders:
                whichs += (1, 3)
        self.acc = TileAccumulator(
            orig.shape[1:],
            max_lag=max_lag,
            pwr_floor=config.pattern1.pwr_floor,
            deriv_whichs=whichs,
        )
        self._swept = False
        self._sweep2_done = False
        self._err_pdf: Pdf | None = None
        self._pwr_pdf: Pdf | None = None
        self._ent_counts: np.ndarray | None = None
        self._co_oo = self._co_dd = self._co_od = 0.0
        self._pearson: float | None = None

    # -- slab plumbing -----------------------------------------------------

    def _buffers(self, rows: int):
        ny, nx = self.shape[1:]
        # +2 leaves room for the stencil halo; sweep 2 simply uses fewer rows
        ob = self.scratch.get("tile.o64", (self.slab + 2, ny, nx))
        db = self.scratch.get("tile.d64", (self.slab + 2, ny, nx))
        eb = self.scratch.get("tile.err", (self.slab, ny, nx))
        return ob[:rows], db[:rows], eb

    def _count_slab(self, rows: int, err_rows: int) -> None:
        plane = self.shape[1] * self.shape[2]
        src = self.orig.dtype.itemsize + self.dec.dtype.itemsize
        self.bytes_touched += rows * plane * (src + 16) + err_rows * plane * 8

    # -- sweep 1: fused reductions + stencils + autocorrelation ------------

    def sweep1(self) -> None:
        if self._swept:
            return
        nz = self.shape[0]
        sl = self.slab
        halo = bool(self.acc.deriv_whichs)
        for z0 in range(0, nz, sl):
            z1 = min(z0 + sl, nz)
            a0 = max(z0 - 1, 0) if halo else z0
            a1 = min(z1 + 1, nz) if halo else z1
            ob, db, eb_full = self._buffers(a1 - a0)
            np.copyto(ob, self.orig[a0:a1])
            np.copyto(db, self.dec[a0:a1])
            i0, i1 = z0 - a0, z1 - a0
            eb = eb_full[: z1 - z0]
            np.subtract(db[i0:i1], ob[i0:i1], out=eb)
            self.acc.add_block(ob[i0:i1], db[i0:i1], eb)
            if halo:
                lo, hi = max(z0, 1), min(z1, nz - 1)
                if lo < hi:
                    self.acc.add_deriv_local(
                        ob[lo - 1 - a0 : hi + 1 - a0],
                        db[lo - 1 - a0 : hi + 1 - a0],
                    )
            self._count_slab(a1 - a0, z1 - z0)
        self._swept = True

    # -- sweep 2: histograms against global extrema + centred co-moments ---

    def sweep2(self) -> None:
        if self._sweep2_done:
            return
        self.sweep1()
        a = self.acc
        need_pearson = "pearson" in self.aux_names
        need_entropy = "entropy" in self.aux_names
        if not (self.want_pdfs or need_pearson or need_entropy):
            self._sweep2_done = True
            return

        bins = self.config.pattern1.pdf_bins
        err_counts = pwr_counts = ent_counts = None
        err_edges = pwr_edges = ent_edges = None
        if self.want_pdfs:
            if a.min_e != a.max_e:
                err_edges = np.histogram_bin_edges(
                    np.empty(0), bins=bins, range=(a.min_e, a.max_e)
                )
                err_counts = np.zeros(bins, dtype=np.int64)
            if a.cnt_r > 0 and a.min_r != a.max_r:
                pwr_edges = np.histogram_bin_edges(
                    np.empty(0), bins=bins, range=(a.min_r, a.max_r)
                )
                pwr_counts = np.zeros(bins, dtype=np.int64)
        if need_entropy and a.min_o != a.max_o:
            ent_edges = np.histogram_bin_edges(
                np.empty(0), bins=DEFAULT_ENTROPY_BINS, range=(a.min_o, a.max_o)
            )
            ent_counts = np.zeros(DEFAULT_ENTROPY_BINS, dtype=np.int64)
        mean_o = a.sum_o / a.n
        mean_d = a.sum_d / a.n

        nz = self.shape[0]
        sl = self.slab
        for z0 in range(0, nz, sl):
            z1 = min(z0 + sl, nz)
            rows = z1 - z0
            ob, db, eb_full = self._buffers(rows)
            eb = eb_full[:rows]
            np.copyto(ob, self.orig[z0:z1])
            np.copyto(db, self.dec[z0:z1])
            np.subtract(db, ob, out=eb)
            ef = eb.reshape(-1)
            of = ob.reshape(-1)
            if err_counts is not None:
                err_counts += np.histogram(
                    ef, bins=bins, range=(a.min_e, a.max_e)
                )[0]
            if pwr_counts is not None:
                mask = np.abs(of) > a.pwr_floor
                if mask.any():
                    pwr_counts += np.histogram(
                        ef[mask] / of[mask], bins=bins, range=(a.min_r, a.max_r)
                    )[0]
            if ent_counts is not None:
                ent_counts += np.histogram(
                    of, bins=DEFAULT_ENTROPY_BINS, range=(a.min_o, a.max_o)
                )[0]
            if need_pearson:
                # the error is no longer needed this slab: reuse its
                # buffer for the centred original, centre dec in place
                np.subtract(ob, mean_o, out=eb)
                db -= mean_d
                co = eb.reshape(-1)
                cd = db.reshape(-1)
                self._co_oo += float(np.dot(co, co))
                self._co_dd += float(np.dot(cd, cd))
                self._co_od += float(np.dot(co, cd))
            self._count_slab(rows, rows)

        if self.want_pdfs:
            if err_counts is not None:
                self._err_pdf = _pdf_from_counts(err_counts, err_edges)
            else:
                self._err_pdf = histogram_pdf(np.zeros(1), a.min_e, a.max_e, bins)
            if pwr_counts is not None:
                self._pwr_pdf = _pdf_from_counts(pwr_counts, pwr_edges)
            elif a.cnt_r > 0:
                self._pwr_pdf = histogram_pdf(np.zeros(1), a.min_r, a.max_r, bins)
            else:
                self._pwr_pdf = histogram_pdf(np.zeros(0), 0.0, 0.0, bins)
        self._ent_counts = ent_counts
        self._ent_degenerate = need_entropy and ent_counts is None
        self._sweep2_done = True

    # -- results -----------------------------------------------------------

    def pattern1_result(self) -> Pattern1Result:
        if not self.want_pdfs:
            raise CheckerError("tiled run was not configured for pattern 1")
        self.sweep2()
        a = self.acc
        return result_from_sums(
            a.n,
            a.min_e,
            a.max_e,
            a.sum_e,
            a.sum_abs_e,
            a.sum_sq_e,
            a.min_o,
            a.max_o,
            a.sum_o,
            a.sum_sq_o,
            a.min_r,
            a.max_r,
            a.sum_r,
            a.cnt_r,
            self._err_pdf,
            self._pwr_pdf,
        )

    def pattern2_result(
        self, err_mean: float | None = None, err_var: float | None = None
    ) -> Pattern2Result:
        if not self.want_pattern2:
            raise CheckerError("tiled run was not configured for pattern 2")
        self.sweep1()
        a = self.acc
        mu = a.mean_e if err_mean is None else err_mean
        var = a.var_e if err_var is None else err_var
        cmp = a.finalize_derivatives()
        return Pattern2Result(
            der1=cmp.get(0),
            der2=cmp.get(1),
            divergence=cmp.get(2),
            laplacian=cmp.get(3),
            autocorrelation=a.finalize_autocorr(mu, var),
        )

    def pearson(self) -> float:
        if "pearson" not in self.aux_names:
            raise CheckerError("tiled run was not configured for pearson")
        if self._pearson is None:
            self.sweep2()
            if self._co_oo == 0.0 or self._co_dd == 0.0:
                # constant field(s): correlation is defined only for the
                # lossless case — same convention as the workspace path
                self._pearson = (
                    1.0 if np.array_equal(self.orig, self.dec) else float("nan")
                )
            else:
                self._pearson = self._co_od / math.sqrt(self._co_oo * self._co_dd)
        return self._pearson

    def entropy(self) -> float:
        if "entropy" not in self.aux_names:
            raise CheckerError("tiled run was not configured for entropy")
        self.sweep2()
        if self._ent_counts is None:
            return 0.0  # constant field
        p = self._ent_counts[self._ent_counts > 0] / self.acc.n
        return float(-np.sum(p * np.log2(p)))

    def aux_values(self, names: tuple[str, ...]) -> dict[str, float]:
        """Auxiliary scalars derivable from the tiled sweeps (no spectral:
        the FFT is inherently whole-array and falls back in the backend)."""
        self.sweep1()
        a = self.acc
        out: dict[str, float] = {}
        if "pearson" in names:
            out["pearson"] = self.pearson()
        if "entropy" in names:
            out["entropy"] = self.entropy()
        if "mean" in names:
            out["mean"] = a.sum_o / a.n
        if "std" in names:
            mean_o = a.sum_o / a.n
            out["std"] = math.sqrt(max(a.sum_sq_o / a.n - mean_o * mean_o, 0.0))
        return out
