"""Optional Numba-compiled hot-path kernels for the two measured host
hot spots: the pattern-2 ±1 stencil sweep and the pattern-3 sliding SSIM
window.

The fused host path is already algorithmically tight (one fused slab
pass, O(n) sliding sums), but both hot spots still pay NumPy's
temporary-array tax: every stencil field and every windowed statistic is
materialised before it is reduced.  The kernels here are single-pass
loop translations of the *same* algorithms — per-element stencil math
accumulated in registers, cascaded z/y/x sliding window sums — which a
JIT turns into allocation-free machine code.

Numba is strictly optional.  When it is importable, :func:`njit`-
decorated kernels compile on first use and the ``compiled-host`` backend
becomes a dispatch candidate.  When it is not, the decorator below is a
no-op and the kernels run as pure Python: slow, but exactly the same
arithmetic — which is what lets the registry×backend equality suite
exercise the compiled logic on hosts without Numba (the planner simply
never *selects* the backend there; see
:func:`repro.engine.plan.build_plan`).

Per-element arithmetic mirrors
:func:`repro.kernels.pattern2.stencil_fields_local` and
:func:`repro.metrics.ssim.ssim3d` expression by expression (same
operand order, division by the same power-of-two constants), so the
only difference from the NumPy path is reduction grouping — well inside
the checker-level 1e-9 cross-backend tolerance.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ShapeError
from repro.gpusim.counters import KernelStats
from repro.kernels.pattern2 import (
    Pattern2Config,
    Pattern2Result,
    _fused_autocorr,
    plan_pattern2,
)
from repro.kernels.pattern3 import Pattern3Config, Pattern3Result, plan_pattern3
from repro.metrics.derivatives import DerivativeComparison

__all__ = [
    "NUMBA_AVAILABLE",
    "available",
    "compiled_stencil_partials",
    "compiled_ssim_accumulate",
    "execute_pattern2_compiled",
    "execute_pattern3_compiled",
]

try:  # pragma: no cover — exercised on hosts with numba installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """No-op stand-in: kernels run as pure Python without Numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


def available() -> bool:
    """Is the compiled backend actually compiled on this host?"""
    return NUMBA_AVAILABLE


# ---------------------------------------------------------------------------
# pattern 2: fused ±1 stencil partial sums
# ---------------------------------------------------------------------------


@njit(cache=True)
def compiled_stencil_partials(o: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Single-pass partial sums for all four stencil comparisons.

    Returns a ``(4, 4)`` array indexed ``[which, stat]`` with ``which``
    as in :func:`repro.kernels.pattern2._slab_stencil_fields` (0=grad,
    1=2nd-deriv, 2=divergence, 3=laplacian) and ``stat`` =
    (sum_o, sum_d, sum_sq_diff, max_abs_diff).  Gradient and second-
    derivative magnitudes are sqrt outputs, summed raw; divergence and
    laplacian are summed as absolute values — matching the fused NumPy
    path.  All four fields are always accumulated so a subset plan and a
    full plan produce bit-identical partials.

    Per-plane sub-accumulators keep the sequential summation error on
    par with NumPy's pairwise reduction.
    """
    nz, ny, nx = o.shape
    out = np.zeros((4, 4))
    for z in range(1, nz - 1):
        p0o = p0d = p0q = 0.0
        p1o = p1d = p1q = 0.0
        p2o = p2d = p2q = 0.0
        p3o = p3d = p3q = 0.0
        for y in range(1, ny - 1):
            for x in range(1, nx - 1):
                co = o[z, y, x]
                dzo = (o[z + 1, y, x] - o[z - 1, y, x]) / 2.0
                dyo = (o[z, y + 1, x] - o[z, y - 1, x]) / 2.0
                dxo = (o[z, y, x + 1] - o[z, y, x - 1]) / 2.0
                dzzo = o[z + 1, y, x] - 2.0 * co + o[z - 1, y, x]
                dyyo = o[z, y + 1, x] - 2.0 * co + o[z, y - 1, x]
                dxxo = o[z, y, x + 1] - 2.0 * co + o[z, y, x - 1]
                grad_o = math.sqrt(dxo * dxo + dyo * dyo + dzo * dzo)
                der2_o = math.sqrt(dxxo * dxxo + dyyo * dyyo + dzzo * dzzo)
                div_o = dzo + dyo + dxo
                lap_o = dzzo + dyyo + dxxo

                cd = d[z, y, x]
                dzd = (d[z + 1, y, x] - d[z - 1, y, x]) / 2.0
                dyd = (d[z, y + 1, x] - d[z, y - 1, x]) / 2.0
                dxd = (d[z, y, x + 1] - d[z, y, x - 1]) / 2.0
                dzzd = d[z + 1, y, x] - 2.0 * cd + d[z - 1, y, x]
                dyyd = d[z, y + 1, x] - 2.0 * cd + d[z, y - 1, x]
                dxxd = d[z, y, x + 1] - 2.0 * cd + d[z, y, x - 1]
                grad_d = math.sqrt(dxd * dxd + dyd * dyd + dzd * dzd)
                der2_d = math.sqrt(dxxd * dxxd + dyyd * dyyd + dzzd * dzzd)
                div_d = dzd + dyd + dxd
                lap_d = dzzd + dyyd + dxxd

                diff = grad_d - grad_o
                p0o += grad_o
                p0d += grad_d
                p0q += diff * diff
                a = abs(diff)
                if a > out[0, 3]:
                    out[0, 3] = a

                diff = der2_d - der2_o
                p1o += der2_o
                p1d += der2_d
                p1q += diff * diff
                a = abs(diff)
                if a > out[1, 3]:
                    out[1, 3] = a

                diff = div_d - div_o
                p2o += abs(div_o)
                p2d += abs(div_d)
                p2q += diff * diff
                a = abs(diff)
                if a > out[2, 3]:
                    out[2, 3] = a

                diff = lap_d - lap_o
                p3o += abs(lap_o)
                p3d += abs(lap_d)
                p3q += diff * diff
                a = abs(diff)
                if a > out[3, 3]:
                    out[3, 3] = a
        out[0, 0] += p0o
        out[0, 1] += p0d
        out[0, 2] += p0q
        out[1, 0] += p1o
        out[1, 1] += p1d
        out[1, 2] += p1q
        out[2, 0] += p2o
        out[2, 1] += p2d
        out[2, 2] += p2q
        out[3, 0] += p3o
        out[3, 1] += p3d
        out[3, 2] += p3q
    return out


def execute_pattern2_compiled(
    workspace,
    config: Pattern2Config,
    err_mean: float,
    err_var: float,
) -> tuple[Pattern2Result, KernelStats]:
    """Compiled-stencil counterpart of the fused whole-array pattern 2.

    The stencil comparisons come from the single-pass compiled kernel;
    the autocorrelation keeps the einsum-over-views path (already
    temporary-free and BLAS-fast — a loop would only lose there).
    """
    shape = workspace.shape
    config.validate(shape)
    nz, ny, nx = shape
    count = (nz - 2) * (ny - 2) * (nx - 2)
    if count <= 0:
        raise ShapeError("field too small for the pattern-2 stencil")
    parts = compiled_stencil_partials(workspace.o64, workspace.d64)

    def _cmp(w: int) -> DerivativeComparison:
        return DerivativeComparison(
            mean_orig=parts[w, 0] / count,
            mean_dec=parts[w, 1] / count,
            rms_diff=math.sqrt(parts[w, 2] / count),
            max_diff=parts[w, 3],
        )

    der1 = div = der2 = lap = None
    if 1 in config.orders:
        der1, div = _cmp(0), _cmp(2)
    if 2 in config.orders:
        der2, lap = _cmp(1), _cmp(3)

    ac = _fused_autocorr(workspace.err, config.max_lag, err_mean, err_var)
    result = Pattern2Result(
        der1=der1, der2=der2, divergence=div, laplacian=lap, autocorrelation=ac
    )
    return result, plan_pattern2(shape, config)


# ---------------------------------------------------------------------------
# pattern 3: sliding-window SSIM
# ---------------------------------------------------------------------------


@njit(cache=True)
def compiled_ssim_accumulate(
    o: np.ndarray, d: np.ndarray, w: int, step: int, c1: float, c2: float
):
    """Cascaded sliding-sum SSIM with no windowed temporaries.

    The same O(n)-per-statistic algorithm as
    :func:`repro.metrics.ssim.box_sums`, restructured as three nested
    sliding accumulations (z-window plane sums → y-window row sums →
    x-window scalars) that reuse two small buffers instead of five
    full-size product arrays plus fifteen cumsums.  Returns
    ``(total, count, min_local, max_local)``.
    """
    nz, ny, nx = o.shape
    pz = (nz - w) // step + 1
    py = (ny - w) // step + 1
    px = (nx - w) // step + 1
    vol = float(w * w * w)
    zs = np.zeros((5, ny, nx))
    ys = np.zeros((5, nx))
    total = 0.0
    count = 0
    vmin = 1.0e300
    vmax = -1.0e300
    for i in range(pz):
        z0 = i * step
        if i == 0 or step >= w:
            for s in range(5):
                for y in range(ny):
                    for x in range(nx):
                        zs[s, y, x] = 0.0
            zsub_lo = zsub_hi = 0
            zadd_lo, zadd_hi = z0, z0 + w
        else:
            zsub_lo, zsub_hi = z0 - step, z0
            zadd_lo, zadd_hi = z0 + w - step, z0 + w
        for z in range(zsub_lo, zsub_hi):
            for y in range(ny):
                for x in range(nx):
                    ov = o[z, y, x]
                    dv = d[z, y, x]
                    zs[0, y, x] -= ov
                    zs[1, y, x] -= dv
                    zs[2, y, x] -= ov * ov
                    zs[3, y, x] -= dv * dv
                    zs[4, y, x] -= ov * dv
        for z in range(zadd_lo, zadd_hi):
            for y in range(ny):
                for x in range(nx):
                    ov = o[z, y, x]
                    dv = d[z, y, x]
                    zs[0, y, x] += ov
                    zs[1, y, x] += dv
                    zs[2, y, x] += ov * ov
                    zs[3, y, x] += dv * dv
                    zs[4, y, x] += ov * dv
        for j in range(py):
            y0 = j * step
            if j == 0 or step >= w:
                for s in range(5):
                    for x in range(nx):
                        ys[s, x] = 0.0
                ysub_lo = ysub_hi = 0
                yadd_lo, yadd_hi = y0, y0 + w
            else:
                ysub_lo, ysub_hi = y0 - step, y0
                yadd_lo, yadd_hi = y0 + w - step, y0 + w
            for y in range(ysub_lo, ysub_hi):
                for s in range(5):
                    for x in range(nx):
                        ys[s, x] -= zs[s, y, x]
            for y in range(yadd_lo, yadd_hi):
                for s in range(5):
                    for x in range(nx):
                        ys[s, x] += zs[s, y, x]
            s0 = s1 = s2 = s3 = s4 = 0.0
            for k in range(px):
                x0 = k * step
                if k == 0 or step >= w:
                    s0 = s1 = s2 = s3 = s4 = 0.0
                    for x in range(x0, x0 + w):
                        s0 += ys[0, x]
                        s1 += ys[1, x]
                        s2 += ys[2, x]
                        s3 += ys[3, x]
                        s4 += ys[4, x]
                else:
                    for x in range(x0 - step, x0):
                        s0 -= ys[0, x]
                        s1 -= ys[1, x]
                        s2 -= ys[2, x]
                        s3 -= ys[3, x]
                        s4 -= ys[4, x]
                    for x in range(x0 + w - step, x0 + w):
                        s0 += ys[0, x]
                        s1 += ys[1, x]
                        s2 += ys[2, x]
                        s3 += ys[3, x]
                        s4 += ys[4, x]
                mu1 = s0 / vol
                mu2 = s1 / vol
                var1 = s2 / vol - mu1 * mu1
                if var1 < 0.0:
                    var1 = 0.0
                var2 = s3 / vol - mu2 * mu2
                if var2 < 0.0:
                    var2 = 0.0
                cov = s4 / vol - mu1 * mu2
                local = ((2.0 * mu1 * mu2 + c1) * (2.0 * cov + c2)) / (
                    (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
                )
                total += local
                count += 1
                if local < vmin:
                    vmin = local
                if local > vmax:
                    vmax = local
    return total, count, vmin, vmax


def execute_pattern3_compiled(
    workspace, config: Pattern3Config
) -> tuple[Pattern3Result, KernelStats]:
    """Compiled sliding-window SSIM over the workspace's float64 views."""
    shape = workspace.shape
    config.validate(shape)
    if config.dynamic_range is not None:
        L = float(config.dynamic_range)
    else:
        m = workspace.moments
        L = m["max_o"] - m["min_o"]
    if L <= 0.0:
        L = 1.0
    c1 = (config.k1 * L) ** 2
    c2 = (config.k2 * L) ** 2
    total, count, vmin, vmax = compiled_ssim_accumulate(
        workspace.o64, workspace.d64, config.window, config.step, c1, c2
    )
    if count == 0:
        raise ShapeError("no complete SSIM window fits the data")
    result = Pattern3Result(
        ssim=total / count,
        min_window_ssim=vmin,
        max_window_ssim=vmax,
        n_windows=count,
    )
    return result, plan_pattern3(shape, config)
