"""Execution planning: metric subset → pattern groups → dependency DAG.

:func:`build_plan` is the single place where a requested metric selection
is turned into work.  It validates the configuration once, expands the
selection against the metric registry, groups metrics by their Table I
pattern, orders the resulting steps so cross-pattern intermediates flow
forward (the pattern-2 autocorrelation normalisation consumes the error
moments the pattern-1 reductions already produced), and binds the plan to
a named :class:`~repro.engine.backends.Backend`.

Every assessment entry point — :class:`~repro.core.checker.CuZChecker`,
the streaming checker, batch/parallel/multi-GPU drivers and
:func:`~repro.core.compare.compare_data` — builds one of these plans
instead of hand-dispatching pattern kernels.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.config.schema import CheckerConfig
from repro.core.report import AssessmentReport
from repro.engine.backends import Backend, get_backend
from repro.errors import ShapeError
from repro.gpusim.counters import KernelStats
from repro.metrics.base import (
    METRIC_REGISTRY,
    Pattern,
    canonical_metric_order,
    resolve_metrics,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "PlanStep",
    "ExecutionPlan",
    "build_plan",
    "resolve_backend_name",
    "resolve_executor_name",
]

#: auxiliary metrics the assessment itself computes; the remaining
#: auxiliary registry entries (compression_ratio, *_throughput) are
#: provided by the compressor driver, not by array analysis
_CHECKER_AUX = frozenset({"pearson", "spectral", "entropy", "mean", "std"})

_PATTERN_IDS = {
    Pattern.GLOBAL_REDUCTION: 1,
    Pattern.STENCIL: 2,
    Pattern.SLIDING_WINDOW: 3,
}

_STEP_LABELS = {
    "pattern1": "pattern 1 (global reduction)",
    "pattern2": "pattern 2 (stencil-like)",
    "pattern3": "pattern 3 (sliding window)",
    "auxiliary": "auxiliary (host-side)",
}


@dataclass(frozen=True)
class PlanStep:
    """One schedulable unit of an :class:`ExecutionPlan`.

    ``consumes``/``produces`` name the cross-step intermediates of the
    dependency DAG (workspace arrays and the pattern-1 error moments);
    they drive :meth:`ExecutionPlan.explain` and document why the steps
    are ordered the way they are.
    """

    kind: str  # "pattern1" | "pattern2" | "pattern3" | "auxiliary"
    metrics: tuple[str, ...]
    consumes: tuple[str, ...] = ()
    produces: tuple[str, ...] = ()

    @property
    def pattern_id(self) -> int | None:
        """Numeric pattern id for kernel steps, ``None`` for auxiliary."""
        if self.kind.startswith("pattern"):
            return int(self.kind[-1])
        return None


@dataclass(frozen=True)
class ExecutionPlan:
    """A validated, ordered schedule for one metric selection.

    Plans are immutable and reusable: one plan can execute any number of
    data pairs (each :meth:`execute` gets a fresh backend run context),
    which is how the batch and parallel drivers amortise configuration
    validation across a whole dataset.
    """

    config: CheckerConfig
    #: the resolved selection, Table-I ordered
    metrics: tuple[str, ...]
    steps: tuple[PlanStep, ...]
    #: default backend name; ``execute`` may override per call
    backend: str
    #: requested metrics no step computes (compression bookkeeping that
    #: the compressor driver fills in, or auxiliary metrics disabled by
    #: ``auxiliary=False``)
    unplanned: tuple[str, ...] = ()
    #: parallel executor the batch/slab drivers should use for plans
    #: built from this configuration ("auto" | "serial" | "thread" |
    #: "process"); single-pair execution ignores it
    executor: str = "auto"
    #: adaptive-dispatch verdict (:class:`repro.engine.dispatch.Decision`)
    #: when the plan was built or re-targeted for a concrete shape;
    #: ``None`` for shape-free plans (static rules apply)
    decision: object | None = None

    # -- execution ---------------------------------------------------------

    @property
    def patterns(self) -> tuple[int, ...]:
        """Numeric pattern ids this plan launches, sorted."""
        return tuple(
            sorted(s.pattern_id for s in self.steps if s.pattern_id is not None)
        )

    def execute(
        self,
        orig: np.ndarray,
        dec: np.ndarray,
        backend: str | Backend | None = None,
        tracer: Tracer | None = None,
        extras: dict | None = None,
    ) -> AssessmentReport:
        """Run the plan on one data pair and return the filled report.

        With a ``tracer``, the run records the plan → step → kernel span
        hierarchy (see :mod:`repro.telemetry`); without one, the hooks
        cost a single attribute check per region.  ``extras`` seeds the
        run context's extras dict — process workers pass
        ``{"shm_bytes": ...}`` so the host spans record how much of the
        input arrived over shared memory.
        """
        orig = np.asarray(orig)
        dec = np.asarray(dec)
        if orig.shape != dec.shape:
            raise ShapeError(
                f"original {orig.shape} and decompressed {dec.shape} differ"
            )
        if orig.ndim != 3:
            raise ShapeError(f"cuZ-Checker assesses 3-D fields, got {orig.shape}")

        tracer = tracer if tracer is not None else NULL_TRACER
        be = get_backend(backend if backend is not None else self.backend)
        report = AssessmentReport(shape=orig.shape, config=self.config)
        # per-step cost predictions feed the calibration loop: spans carry
        # the dispatcher's base prediction so ``tools/calibrate.py fit``
        # can fold measured/predicted ratios back into the table.  An
        # explicit backend override bypasses the decision (it priced a
        # different backend).
        predicted = None
        decision = self.decision
        if (
            decision is not None
            and backend is None
            and tuple(orig.shape) == decision.shape
        ):
            predicted = decision.chosen.steps
        with tracer.span(
            "plan",
            category="plan",
            bytes=orig.nbytes + dec.nbytes,
            backend=be.name,
            shape=str(tuple(orig.shape)),
            metrics=",".join(self.metrics),
        ):
            ctx = be.begin(self, orig, dec)
            ctx.tracer = tracer
            if extras:
                ctx.extras.update(extras)
            for i, step in enumerate(self.steps):
                attrs = dict(
                    category="step",
                    pattern=step.pattern_id if step.pattern_id is not None else "aux",
                    metrics=",".join(step.metrics),
                )
                if predicted is not None and i < len(predicted):
                    attrs["predicted_ms"] = predicted[i].ms
                    attrs["predicted_base_ms"] = predicted[i].base_ms
                    attrs["calibration_key"] = predicted[i].key
                with tracer.span(step.kind, **attrs):
                    be.run_step(step, ctx, report)
        return report

    # -- introspection -----------------------------------------------------

    def kernel_plans(
        self,
        shape: tuple[int, int, int],
        backend: str | Backend | None = None,
    ) -> list[KernelStats]:
        """Modelled kernel launches for a dataset shape, in step order."""
        be = get_backend(backend if backend is not None else self.backend)
        out: list[KernelStats] = []
        for step in self.steps:
            out.extend(be.kernel_plans(step, shape, self.config))
        return out

    def explain(self, shape: tuple[int, int, int] | None = None) -> str:
        """Human-readable schedule; with ``shape``, adds modelled cost."""
        lines = [
            f"execution plan: {len(self.metrics)} metric(s) -> "
            f"{len(self.steps)} step(s), backend={self.backend}",
            f"  device: {self.config.device}; patterns enabled: "
            + (", ".join(str(p) for p in self.config.patterns) or "none"),
        ]
        tiling = getattr(self.config, "tiling", "off")
        tiling_line = f"  tiling: {tiling}"
        if shape is not None:
            from repro.engine.tiling import resolve_slab

            slab = resolve_slab(tuple(shape), tiling)
            resolved = "whole-array" if slab is None else f"slab_nz={slab}"
            tiling_line += f" ({resolved} for shape {tuple(shape)})"
        lines.append(tiling_line)
        executor_line = f"  executor: {self.executor}"
        if self.executor in ("auto", "process"):
            from repro.parallel.executor import resolve_executor

            with warnings.catch_warnings():
                # a forced "process" on a host without shared memory
                # warns at run time; explain just reports the outcome
                warnings.simplefilter("ignore")
                resolved_executor = resolve_executor(self.executor)
            executor_line += f" ({resolved_executor} on this host)"
        lines.append(executor_line)
        for i, step in enumerate(self.steps, 1):
            lines.append(f"  step {i}: {_STEP_LABELS[step.kind]}")
            lines.append("    metrics:  " + ", ".join(step.metrics))
            if step.consumes:
                lines.append("    consumes: " + ", ".join(step.consumes))
            if step.produces:
                lines.append("    produces: " + ", ".join(step.produces))
        if self.unplanned:
            lines.append(
                "  not planned (external or disabled): "
                + ", ".join(self.unplanned)
            )
        if shape is not None:
            from repro.core.frameworks import device_by_name
            from repro.gpusim.costmodel import kernel_time

            device = device_by_name(self.config.device)
            plans = self.kernel_plans(shape)
            lines.append(
                f"  modelled kernels for shape {tuple(shape)} on {device.name}:"
            )
            total = 0.0
            for stats in plans:
                seconds = kernel_time(stats, device).total
                total += seconds
                lines.append(
                    f"    {stats.name:<28s} grid={stats.grid_blocks:<6d} "
                    f"t={seconds * 1e3:.3f} ms"
                )
            if not plans:
                lines.append("    (no kernel launches)")
            lines.append(f"    total modelled kernel time: {total * 1e3:.3f} ms")
        decision = self._decision_for(shape)
        if decision is not None:
            lines.append(
                f"  dispatch candidates for shape {tuple(decision.shape)} "
                f"(calibration: {decision.calibration}):"
            )
            for cand in decision.candidates:
                marker = "  <- chosen" if cand is decision.chosen else ""
                lines.append(
                    f"    {cand.label:<28s} predicted={cand.total_ms:8.3f} ms "
                    f"[{cand.source}]{marker}"
                )
        return "\n".join(lines)

    def _decision_for(self, shape):
        """The attached decision when it matches ``shape``, else a fresh
        one computed on the fly (``None`` when dispatch cannot price)."""
        if shape is None:
            return self.decision
        shape = tuple(shape)
        if self.decision is not None and self.decision.shape == shape:
            return self.decision
        from repro.engine.dispatch import dispatch_plan

        return dispatch_plan(self, shape).decision

    def to_dict(self, shape: tuple[int, int, int] | None = None) -> dict:
        """Machine-readable plan description (``cuzchecker explain --json``)."""
        out = {
            "backend": self.backend,
            "executor": self.executor,
            "metrics": list(self.metrics),
            "patterns": list(self.patterns),
            "tiling": getattr(self.config, "tiling", "off"),
            "device": self.config.device,
            "unplanned": list(self.unplanned),
            "steps": [
                {
                    "kind": s.kind,
                    "metrics": list(s.metrics),
                    "consumes": list(s.consumes),
                    "produces": list(s.produces),
                }
                for s in self.steps
            ],
        }
        if self.executor in ("auto", "process"):
            from repro.parallel.executor import resolve_executor

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                out["resolved_executor"] = resolve_executor(self.executor)
        if shape is not None:
            out["shape"] = list(shape)
            from repro.core.frameworks import device_by_name
            from repro.gpusim.costmodel import kernel_time

            device = device_by_name(self.config.device)
            out["modelled_kernels"] = [
                {
                    "name": stats.name,
                    "grid_blocks": stats.grid_blocks,
                    "modelled_ms": kernel_time(stats, device).total * 1e3,
                }
                for stats in self.kernel_plans(shape)
            ]
        decision = self._decision_for(shape)
        if decision is not None:
            out["dispatch"] = decision.to_dict()
        return out


def resolve_backend_name(
    config: CheckerConfig, backend: str | Backend | None = None
) -> str:
    """Apply the backend precedence rule: argument > config > ``fused``."""
    if isinstance(backend, Backend):
        return backend.name
    if backend:
        return backend
    if config.backend:
        return config.backend
    return "fused-host" if config.fused else "metric-oriented"


def resolve_executor_name(config: CheckerConfig, executor: str | None = None) -> str:
    """Apply the executor precedence rule: argument > config > ``auto``.

    Resolution stops at the *named* choice — mapping ``"auto"`` onto a
    concrete pool kind is the drivers' job at run time (it depends on the
    executing host, not on the plan).
    """
    if executor:
        return executor
    return getattr(config, "executor", "") or "auto"


def build_plan(
    config: CheckerConfig | None = None,
    backend: str | Backend | None = None,
    shape: tuple[int, int, int] | None = None,
    itemsize: int = 4,
) -> ExecutionPlan:
    """Turn a configuration into an :class:`ExecutionPlan`.

    Validates the configuration exactly once; callers that reuse the
    returned plan (batch, parallel, streaming) never re-validate.

    With a 3-D ``shape``, the plan is additionally run through the
    adaptive dispatcher (:func:`repro.engine.dispatch.dispatch_plan`):
    backend and tiling slab are chosen by calibrated predicted cost and
    the costed candidate table is attached as :attr:`ExecutionPlan.decision`.
    Shape-free plans keep the static rules.
    """
    if config is None:
        from repro.config.defaults import default_config

        config = default_config()
    config.validate()

    metrics = resolve_metrics(config.metrics)
    enabled = set(config.patterns)

    by_pattern: dict[int, list[str]] = {1: [], 2: [], 3: []}
    aux: list[str] = []
    unplanned: list[str] = []
    for name in metrics:
        pid = _PATTERN_IDS.get(METRIC_REGISTRY[name].pattern)
        if pid is None:
            if name in _CHECKER_AUX and config.auxiliary:
                aux.append(name)
            else:
                unplanned.append(name)
        elif pid in enabled:
            by_pattern[pid].append(name)
        else:
            unplanned.append(name)

    steps: list[PlanStep] = []
    if by_pattern[1]:
        steps.append(
            PlanStep(
                kind="pattern1",
                metrics=tuple(by_pattern[1]),
                consumes=("err", "sq_err", "pwr_vals"),
                produces=("err_moments", "value_range"),
            )
        )
    if by_pattern[2]:
        # the autocorrelation normalisation reuses the pattern-1 error
        # moments when that step runs; standalone it recomputes them
        consumes = ("err",)
        if by_pattern[1]:
            consumes += ("err_moments",)
        steps.append(
            PlanStep(kind="pattern2", metrics=tuple(by_pattern[2]),
                     consumes=consumes)
        )
    if by_pattern[3]:
        steps.append(
            PlanStep(kind="pattern3", metrics=tuple(by_pattern[3]),
                     consumes=("o64", "d64"))
        )
    if aux:
        steps.append(
            PlanStep(kind="auxiliary", metrics=tuple(aux),
                     consumes=("o64", "d64", "moments"))
        )

    backend_name = resolve_backend_name(config, backend)
    if backend_name == "compiled-host":
        from repro.engine import compiled

        if not compiled.available():
            warnings.warn(
                "compiled-host requested but Numba is not importable; "
                "falling back to fused-host",
                RuntimeWarning,
                stacklevel=2,
            )
            backend_name = "fused-host"

    plan = ExecutionPlan(
        config=config,
        metrics=metrics,
        steps=tuple(steps),
        backend=backend_name,
        unplanned=canonical_metric_order(unplanned),
        executor=resolve_executor_name(config),
    )
    if shape is not None and len(tuple(shape)) == 3:
        from repro.engine.dispatch import dispatch_plan

        pinned = backend_name if (backend or config.backend) else None
        plan = dispatch_plan(plan, tuple(shape), itemsize, pinned=pinned)
    return plan
