"""Unified execution engine: metric -> pattern -> backend pipeline.

Every assessment entry point builds an :class:`~repro.engine.plan.ExecutionPlan`
(via :func:`~repro.engine.plan.build_plan`) and executes it on a registered
:class:`~repro.engine.backends.Backend` instead of dispatching pattern
kernels by hand.
"""

from repro.engine.backends import (
    Backend,
    CompiledHostBackend,
    FusedHostBackend,
    GpuSimBackend,
    MetricOrientedBackend,
    get_backend,
    known_backends,
    register_backend,
)
from repro.engine.dispatch import (
    CalibrationTable,
    Decision,
    choose,
    dispatch_plan,
    resolve_calibration,
)
from repro.engine.plan import (
    ExecutionPlan,
    PlanStep,
    build_plan,
    resolve_backend_name,
)
from repro.engine.tiling import (
    TileAccumulator,
    TiledAssessment,
    resolve_slab,
    slab_candidates,
)

__all__ = [
    "Backend",
    "FusedHostBackend",
    "CompiledHostBackend",
    "MetricOrientedBackend",
    "GpuSimBackend",
    "get_backend",
    "known_backends",
    "register_backend",
    "CalibrationTable",
    "Decision",
    "choose",
    "dispatch_plan",
    "resolve_calibration",
    "ExecutionPlan",
    "PlanStep",
    "build_plan",
    "resolve_backend_name",
    "TileAccumulator",
    "TiledAssessment",
    "resolve_slab",
    "slab_candidates",
]
