"""Z-checker-style ``.cfg`` parser.

Accepts INI files of the shape Z-checker users know::

    [GLOBAL]
    metrics = all            ; or a comma list: mse, psnr, ssim
    patterns = 1, 2, 3
    device = V100

    [PATTERN1]
    pdf_bins = 1024
    pwr_floor = 0.0

    [PATTERN2]
    max_lag = 10             ; alias: autocorr_lags / maxAutoCorrLags
    orders = 1, 2            ; alias: derivativeOrders

    [PATTERN3]
    window = 8               ; alias: ssimWindowSize
    step = 1                 ; alias: ssimStep

Unknown sections/keys raise :class:`~repro.errors.ConfigError` so typos
never silently disable an assessment.
"""

from __future__ import annotations

import configparser
from pathlib import Path

from repro.errors import ConfigError
from repro.config.schema import CheckerConfig
from repro.kernels.pattern1 import Pattern1Config
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config

__all__ = ["load_config", "parse_config_text", "format_config", "save_config"]

_ALIASES = {
    "maxautocorrlags": "max_lag",
    "autocorr_lags": "max_lag",
    "derivativeorders": "orders",
    "ssimwindowsize": "window",
    "ssimstep": "step",
    "pdfbinintervals": "pdf_bins",
    "checkingstatus": "metrics",
}

_KNOWN = {
    "GLOBAL": {
        "metrics", "patterns", "device", "auxiliary", "fused", "backend",
        "tiling", "executor", "calibration", "audit_workers",
    },
    "PATTERN1": {"pdf_bins", "pwr_floor"},
    "PATTERN2": {"max_lag", "orders"},
    "PATTERN3": {"window", "step", "k1", "k2", "dynamic_range", "yrows"},
}


def _canon(key: str) -> str:
    key = key.strip()
    return _ALIASES.get(key.lower().replace("-", "_"), key.lower())


def _int_tuple(raw: str) -> tuple[int, ...]:
    return tuple(int(tok) for tok in raw.replace(",", " ").split())


def parse_config_text(text: str) -> CheckerConfig:
    """Parse configuration file content into a :class:`CheckerConfig`."""
    parser = configparser.ConfigParser(inline_comment_prefixes=(";", "#"))
    try:
        parser.read_string(text)
    except configparser.Error as exc:
        raise ConfigError(f"malformed configuration: {exc}") from exc

    sections: dict[str, dict[str, str]] = {}
    for section in parser.sections():
        name = section.upper()
        if name not in _KNOWN:
            raise ConfigError(
                f"unknown section [{section}]; expected one of {sorted(_KNOWN)}"
            )
        entries = {}
        for key, value in parser.items(section):
            canon = _canon(key)
            if canon not in _KNOWN[name]:
                raise ConfigError(
                    f"unknown key {key!r} in [{section}]; "
                    f"expected one of {sorted(_KNOWN[name])}"
                )
            entries[canon] = value.strip()
        sections[name] = entries

    g = sections.get("GLOBAL", {})
    p1 = sections.get("PATTERN1", {})
    p2 = sections.get("PATTERN2", {})
    p3 = sections.get("PATTERN3", {})

    tiling_raw = g.get("tiling", "auto").strip()
    tiling: str | int
    if tiling_raw.lower() in ("auto", "off"):
        tiling = tiling_raw.lower()
    else:
        try:
            tiling = int(tiling_raw)
        except ValueError as exc:
            raise ConfigError(
                f"tiling must be 'auto', 'off' or a slab depth, got {tiling_raw!r}"
            ) from exc

    audit_raw = g.get("audit_workers", "auto").strip()
    audit_workers: str | int
    if audit_raw.lower() in ("auto", "serial"):
        audit_workers = audit_raw.lower()
    else:
        try:
            audit_workers = int(audit_raw)
        except ValueError as exc:
            raise ConfigError(
                f"audit_workers must be 'auto', 'serial' or a count, "
                f"got {audit_raw!r}"
            ) from exc

    try:
        metrics_raw = g.get("metrics", "all")
        metrics: tuple[str, ...] | str
        if metrics_raw.strip().lower() == "all":
            metrics = "all"
        else:
            metrics = tuple(
                tok.strip() for tok in metrics_raw.split(",") if tok.strip()
            )
        config = CheckerConfig(
            metrics=metrics,
            patterns=_int_tuple(g.get("patterns", "1 2 3")),
            device=g.get("device", "V100"),
            auxiliary=g.get("auxiliary", "true").lower() in ("1", "true", "yes"),
            fused=g.get("fused", "true").lower() in ("1", "true", "yes"),
            backend=g.get("backend", ""),
            tiling=tiling,
            executor=g.get("executor", "").lower(),
            calibration=g.get("calibration", "auto"),
            audit_workers=audit_workers,
            pattern1=Pattern1Config(
                pdf_bins=int(p1.get("pdf_bins", 1024)),
                pwr_floor=float(p1.get("pwr_floor", 0.0)),
            ),
            pattern2=Pattern2Config(
                max_lag=int(p2.get("max_lag", 10)),
                orders=_int_tuple(p2.get("orders", "1 2")),
            ),
            pattern3=Pattern3Config(
                window=int(p3.get("window", 8)),
                step=int(p3.get("step", 1)),
                k1=float(p3.get("k1", 0.01)),
                k2=float(p3.get("k2", 0.03)),
                dynamic_range=(
                    float(p3["dynamic_range"]) if "dynamic_range" in p3 else None
                ),
                yrows=int(p3.get("yrows", Pattern3Config.yrows)),
            ),
        )
    except (ValueError, TypeError) as exc:
        raise ConfigError(f"invalid configuration value: {exc}") from exc
    config.validate()
    return config


def load_config(path: str | Path) -> CheckerConfig:
    """Load and validate a configuration file."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"configuration file not found: {path}")
    return parse_config_text(path.read_text())


def format_config(config: CheckerConfig) -> str:
    """Serialise a configuration back to the ``.cfg`` format.

    ``parse_config_text(format_config(c)) == c`` for every valid
    configuration (property-tested).
    """
    config.validate()
    metrics = (
        "all"
        if config.metrics == "all"
        else ", ".join(config.metrics)  # type: ignore[arg-type]
    )
    lines = [
        "[GLOBAL]",
        f"metrics = {metrics}",
        "patterns = " + ", ".join(str(p) for p in config.patterns),
        f"device = {config.device}",
        f"auxiliary = {'true' if config.auxiliary else 'false'}",
        f"fused = {'true' if config.fused else 'false'}",
        *([f"backend = {config.backend}"] if config.backend else []),
        f"tiling = {config.tiling}",
        *([f"executor = {config.executor}"] if config.executor else []),
        *(
            [f"calibration = {config.calibration}"]
            if config.calibration != "auto"
            else []
        ),
        *(
            [f"audit_workers = {config.audit_workers}"]
            if config.audit_workers != "auto"
            else []
        ),
        "",
        "[PATTERN1]",
        f"pdf_bins = {config.pattern1.pdf_bins}",
        f"pwr_floor = {config.pattern1.pwr_floor!r}",
        "",
        "[PATTERN2]",
        f"max_lag = {config.pattern2.max_lag}",
        "orders = " + ", ".join(str(o) for o in config.pattern2.orders),
        "",
        "[PATTERN3]",
        f"window = {config.pattern3.window}",
        f"step = {config.pattern3.step}",
        f"k1 = {config.pattern3.k1!r}",
        f"k2 = {config.pattern3.k2!r}",
        f"yrows = {config.pattern3.yrows}",
    ]
    if config.pattern3.dynamic_range is not None:
        lines.append(f"dynamic_range = {config.pattern3.dynamic_range!r}")
    return "\n".join(lines) + "\n"


def save_config(config: CheckerConfig, path: str | Path) -> Path:
    """Write a configuration file."""
    path = Path(path)
    path.write_text(format_config(config))
    return path
