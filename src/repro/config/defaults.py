"""Canonical configurations.

:data:`PAPER_EVALUATION_CONFIG` reproduces the paper's Section IV setup:
all metrics enabled, first- and second-order derivatives, autocorrelation
spatial gaps up to 10, SSIM window 8 per side with step length 1, V100.
"""

from __future__ import annotations

from repro.config.schema import CheckerConfig
from repro.kernels.pattern1 import Pattern1Config
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config

__all__ = ["default_config", "PAPER_EVALUATION_CONFIG"]

PAPER_EVALUATION_CONFIG = CheckerConfig(
    metrics="all",
    patterns=(1, 2, 3),
    pattern1=Pattern1Config(pdf_bins=1024),
    pattern2=Pattern2Config(max_lag=10, orders=(1, 2)),
    pattern3=Pattern3Config(window=8, step=1),
    device="V100",
)


def default_config() -> CheckerConfig:
    """A fresh copy of the paper's evaluation configuration."""
    return PAPER_EVALUATION_CONFIG
