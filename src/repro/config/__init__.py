"""Configuration engine (the Z-checker configuration-parser module).

Supports both programmatic :class:`CheckerConfig` construction and
Z-checker-style ``.cfg`` (INI) files via :func:`load_config`.
"""

from repro.config.schema import CheckerConfig
from repro.config.parser import load_config, parse_config_text
from repro.config.defaults import default_config, PAPER_EVALUATION_CONFIG

__all__ = [
    "CheckerConfig",
    "load_config",
    "parse_config_text",
    "default_config",
    "PAPER_EVALUATION_CONFIG",
]
