"""Typed configuration schema for the assessment frameworks."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError, UnknownMetricError
from repro.kernels.pattern1 import Pattern1Config
from repro.kernels.pattern2 import Pattern2Config
from repro.kernels.pattern3 import Pattern3Config
from repro.metrics.base import METRIC_REGISTRY

__all__ = ["CheckerConfig"]

#: pattern selectors accepted by ``patterns=``
_VALID_PATTERNS = frozenset({1, 2, 3})


@dataclass(frozen=True)
class CheckerConfig:
    """Everything a checker run needs besides the data itself."""

    #: metric names to evaluate, or "all"
    metrics: tuple[str, ...] | str = "all"
    #: which computational patterns to run (paper benchmarks toggle these)
    patterns: tuple[int, ...] = (1, 2, 3)
    pattern1: Pattern1Config = field(default_factory=Pattern1Config)
    pattern2: Pattern2Config = field(default_factory=Pattern2Config)
    pattern3: Pattern3Config = field(default_factory=Pattern3Config)
    #: simulated GPU, by name in repro.gpusim.device (``V100`` or ``A100``)
    device: str = "V100"
    #: also compute auxiliary metrics (pearson, entropy, properties)
    auxiliary: bool = True
    #: route execution through the shared :class:`MetricWorkspace` so
    #: every derived array (error, squared error, element products, ...)
    #: is computed once per assessment; ``False`` falls back to the
    #: historical per-consumer scans (kept as the cross-check path)
    fused: bool = True
    #: execution backend name registered in :mod:`repro.engine.backends`
    #: ("fused-host", "metric-oriented", "gpusim"); the empty string
    #: derives the backend from ``fused`` when the plan is built
    backend: str = ""
    #: z-slab tiling of the fused host path: ``"auto"`` tiles large 3-D
    #: fields with a cache-sized slab, ``"off"`` keeps whole-array
    #: execution, an integer forces that slab depth
    tiling: str | int = "auto"
    #: parallel executor for the batch/slab drivers: ``"auto"`` picks
    #: processes when the host can actually scale them, ``"thread"`` /
    #: ``"process"`` force that pool kind, ``"serial"`` disables pooling;
    #: the empty string keeps each driver's historical default
    executor: str = ""
    #: adaptive-dispatch calibration table: ``"auto"`` (or empty) uses
    #: the per-user cache (``~/.cache/cuzchecker/calibration.json``),
    #: ``"off"`` disables measured-ratio correction (raw roofline
    #: predictions), anything else is an explicit table path
    calibration: str = "auto"
    #: archive-audit worker processes: ``"auto"`` prices a process pool
    #: with the dispatch cost model and stays serial when it would not
    #: amortise, ``"serial"`` forces the single-process loop, an integer
    #: forces that worker count (honoured even on one core)
    audit_workers: str | int = "auto"

    def validate(self) -> None:
        if self.executor not in ("", "auto", "serial", "thread", "process"):
            raise ConfigError(
                f"executor must be auto, serial, thread or process, "
                f"got {self.executor!r}"
            )
        if not isinstance(self.calibration, str):
            raise ConfigError(
                f"calibration must be 'auto', 'off' or a table path, "
                f"got {self.calibration!r}"
            )
        if isinstance(self.audit_workers, bool) or (
            isinstance(self.audit_workers, int) and self.audit_workers < 1
        ):
            raise ConfigError(
                f"audit_workers must be 'auto', 'serial' or a count >= 1, "
                f"got {self.audit_workers!r}"
            )
        if isinstance(self.audit_workers, str) and self.audit_workers not in (
            "auto",
            "serial",
        ):
            raise ConfigError(
                f"audit_workers must be 'auto', 'serial' or a count >= 1, "
                f"got {self.audit_workers!r}"
            )
        if isinstance(self.tiling, bool) or (
            isinstance(self.tiling, int) and self.tiling < 1
        ):
            raise ConfigError(
                f"tiling must be 'auto', 'off' or a slab depth >= 1, "
                f"got {self.tiling!r}"
            )
        if isinstance(self.tiling, str) and self.tiling not in ("auto", "off"):
            raise ConfigError(
                f"tiling must be 'auto', 'off' or a slab depth >= 1, "
                f"got {self.tiling!r}"
            )
        if isinstance(self.metrics, str):
            if self.metrics != "all":
                raise ConfigError(
                    f'metrics must be a tuple of names or "all", got {self.metrics!r}'
                )
        else:
            for m in self.metrics:
                if m not in METRIC_REGISTRY:
                    raise UnknownMetricError(m, known=METRIC_REGISTRY)
        if self.backend:
            from repro.engine.backends import known_backends

            if self.backend not in known_backends():
                raise ConfigError(
                    f"unknown backend {self.backend!r}; "
                    f"known: {sorted(known_backends())}"
                )
        bad = [p for p in self.patterns if p not in _VALID_PATTERNS]
        if bad:
            raise ConfigError(f"patterns must be within {{1,2,3}}, got {bad}")
        if self.device not in ("V100", "A100"):
            raise ConfigError(f"unknown device {self.device!r}")

    def with_patterns(self, *patterns: int) -> "CheckerConfig":
        """Copy restricted to the given patterns (benchmark convenience)."""
        return replace(self, patterns=tuple(patterns))

    @property
    def metric_names(self) -> tuple[str, ...]:
        """Concrete metric list after expanding "all"."""
        if self.metrics == "all":
            return tuple(METRIC_REGISTRY)
        return tuple(self.metrics)  # type: ignore[arg-type]
