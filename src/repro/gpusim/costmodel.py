"""Roofline-style timing model for simulated kernels.

``time = launch + sync + max(memory, compute, shared-memory)`` — the
standard bound for throughput-oriented kernels — with four efficiency
corrections that reproduce the dataset-shape effects the paper observes:

1. **Latency hiding** (`_saturating`): achievable memory bandwidth and
   issue rate grow with resident warps per SM and saturate; a kernel whose
   register pressure caps concurrency (pattern 1: 14k regs/TB ⇒ 4
   blocks/SM) pays here.
2. **Grid utilisation**: a grid smaller than ``saturation_sms`` cannot
   saturate HBM no matter its occupancy (pattern 2 on short-z datasets:
   Hurricane/Scale-LETKF launch few blocks ⇒ most SMs idle).
3. **Wave quantisation**: with multiple scheduling waves, a ragged final
   wave leaves SMs idle for up to one wave.
4. **Sequential-chain efficiency**: kernels with a long per-thread
   serial dependency chain (pattern 3's z-axis FIFO loop) hide less
   latency; plans advertise the chain length via
   ``stats.meta['chain_length']`` (the paper's "Iters/thread determines
   the pattern-3 speedup" observation).

Calibration constants are module-level and documented; a single set
reproduces every range in Figs. 10-12 (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.gpusim.counters import KernelStats
from repro.gpusim.occupancy import Occupancy, occupancy_for

__all__ = ["CostBreakdown", "kernel_time", "kernel_times", "kernels_time"]

#: resident warps per SM at which memory bandwidth reaches half its peak
MEM_HALF_SAT_WARPS = 6.0
#: resident warps per SM at which the issue rate reaches half its peak
OPS_HALF_SAT_WARPS = 2.0
#: effective cost of one atomic op, expressed in equivalent regular ops
ATOMIC_OP_WEIGHT = 12.0
#: effective cost of one shuffle, in equivalent regular ops
SHUFFLE_OP_WEIGHT = 1.0
#: fraction of peak HBM bandwidth achievable by a perfectly coalesced,
#: fully occupied kernel (DRAM efficiency)
DRAM_EFFICIENCY = 0.82
#: per-thread serial iteration count at which latency-hiding efficiency
#: halves (see correction 4 above)
CHAIN_HALF_SAT = 40000.0


def _saturating(x: float, half: float) -> float:
    """Saturating curve: 0 at 0, 0.5 at ``half``, → 1 as x → ∞."""
    if x <= 0:
        return 0.0
    return x / (x + half)


@dataclass(frozen=True)
class CostBreakdown:
    """Per-component time estimate for one kernel (seconds)."""

    launch_time: float
    sync_time: float
    mem_time: float
    compute_time: float
    smem_time: float
    wave_penalty: float
    occupancy: Occupancy

    @property
    def pipeline_time(self) -> float:
        """The roofline bound: slowest of the three overlapping pipes,
        inflated by the ragged-final-wave penalty."""
        return max(self.mem_time, self.compute_time, self.smem_time) * self.wave_penalty

    @property
    def total(self) -> float:
        return self.launch_time + self.sync_time + self.pipeline_time

    @property
    def bound(self) -> str:
        """Which pipe limits this kernel: 'memory', 'compute' or 'smem'."""
        best = max(self.mem_time, self.compute_time, self.smem_time)
        if best == self.mem_time:
            return "memory"
        if best == self.compute_time:
            return "compute"
        return "smem"


def _wave_penalty(occ: Occupancy) -> float:
    """Idle-SM inflation from a ragged final scheduling wave.

    With a single wave there is no quantisation loss (all blocks run
    concurrently); with W waves the final partially-filled wave can idle
    SMs for up to 1/W of the runtime.
    """
    if occ.waves <= 1:
        return 1.0
    # wave_balance is the average slot utilisation across all waves; the
    # shortfall concentrated in the final wave costs at most 1/waves.
    loss = (1.0 - occ.wave_balance) / occ.waves
    return 1.0 + loss


def kernel_time(stats: KernelStats, device: DeviceSpec) -> CostBreakdown:
    """Estimate execution time of the kernel described by ``stats``."""
    stats.validate()
    occ = occupancy_for(device, stats)

    # -- fixed overheads --------------------------------------------------
    launch_time = stats.launches * device.kernel_launch_latency
    sync_time = stats.grid_syncs * device.grid_sync_latency

    # -- shared efficiency terms ------------------------------------------
    chain = float(stats.meta.get("chain_length", 0.0))
    chain_eff = 1.0 if chain <= 0 else 1.0 / (1.0 + chain / CHAIN_HALF_SAT)
    wave_penalty = _wave_penalty(occ)

    # -- memory pipe -------------------------------------------------------
    sm_util = min(1.0, occ.active_sms / device.saturation_sms)
    mem_eff = (
        DRAM_EFFICIENCY
        * _saturating(occ.active_warps_per_sm, MEM_HALF_SAT_WARPS)
        * sm_util
    )
    bandwidth = device.peak_bandwidth * max(mem_eff, 1e-6)
    mem_time = stats.global_bytes / bandwidth

    # -- compute pipe -------------------------------------------------------
    total_ops = (
        stats.flops
        + SHUFFLE_OP_WEIGHT * stats.shuffle_ops
        + ATOMIC_OP_WEIGHT * stats.atomic_ops
    )
    sm_frac = occ.active_sms / device.sm_count
    ops_eff = (
        _saturating(occ.active_warps_per_sm, OPS_HALF_SAT_WARPS) * sm_frac * chain_eff
    )
    op_rate = device.sustained_op_rate * max(ops_eff, 1e-6)
    compute_time = total_ops / op_rate

    # -- shared-memory pipe -------------------------------------------------
    smem_bw = device.smem_bandwidth_per_sm * max(occ.active_sms, 1)
    smem_time = stats.shared_bytes / smem_bw if stats.shared_bytes else 0.0

    return CostBreakdown(
        launch_time=launch_time,
        sync_time=sync_time,
        mem_time=mem_time,
        compute_time=compute_time,
        smem_time=smem_time,
        wave_penalty=wave_penalty,
        occupancy=occ,
    )


def kernel_times(
    stats_list: list[KernelStats], device: DeviceSpec
) -> list[CostBreakdown]:
    """Per-kernel cost breakdowns for a plan's launch sequence.

    The candidate-costing entry point the adaptive dispatcher uses for
    modelled (gpusim) backends: one breakdown per launch, in order, so
    per-step subtotals can be keyed into the calibration table.
    """
    return [kernel_time(s, device) for s in stats_list]


def kernels_time(stats_list: list[KernelStats], device: DeviceSpec) -> float:
    """Total time of a sequence of dependent kernels (no overlap)."""
    return sum(kernel_time(s, device).total for s in stats_list)
