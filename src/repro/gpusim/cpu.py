"""Execution-time model of the OpenMP CPU baseline (ompZC).

The original Z-checker implements each metric as an independent pass of
largely scalar, branchy C code over the 3-D arrays; ompZC parallelises
each pass with OpenMP across the Xeon's 20 cores.  Its cost is therefore

    time = Σ_passes  fork + max(compute, memory)

where compute is ``n * cycles_per_element(metric) / aggregate_rate`` and
memory is the streamed bytes over the socket bandwidth.  Per-metric cycle
costs live in :data:`CPU_CYCLES_PER_ELEM`, calibrated once so that ompZC
reproduces the absolute throughput ranges of Fig. 11 (0.44-0.51 GB/s for
pattern 1, 24.8-26.6 MB/s for SSIM) — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import CpuSpec, XEON_6148

__all__ = ["CpuWorkload", "cpu_pass_time", "cpu_workload_time", "CPU_CYCLES_PER_ELEM"]

#: Calibrated per-element cycle costs of Z-checker's scalar metric loops.
#: Keys match metric names in :mod:`repro.metrics.base`.  Values include
#: loop/branch overhead of the original implementation, not just raw FLOPs:
#: e.g. the error-PDF pass recomputes bin indices and updates a shared
#: histogram under contention; SSIM recomputes every overlapping window
#: from scratch (window³ elements × ~5 accumulations each).
CPU_CYCLES_PER_ELEM: dict[str, float] = {
    # ---- pattern 1: one full pass each -------------------------------
    "min_err": 36.0,
    "max_err": 36.0,
    "avg_err": 34.0,
    "err_pdf": 90.0,
    "min_pwr_err": 50.0,
    "max_pwr_err": 50.0,
    "avg_pwr_err": 48.0,
    "pwr_err_pdf": 110.0,
    "mse": 40.0,
    "rmse": 40.0,
    "nrmse": 52.0,
    "snr": 45.0,
    "psnr": 45.0,
    "value_range": 30.0,
    # ---- pattern 2 ----------------------------------------------------
    "derivative_order1": 90.0,
    "derivative_order2": 95.0,
    "divergence": 60.0,
    "laplacian": 62.0,
    # per spatial lag; the harness multiplies by the lag count
    "autocorrelation": 48.0,
    # ---- pattern 3 ----------------------------------------------------
    # per element of each window (the scalar code recomputes every window
    # from scratch); the harness multiplies by window_volume / step³
    "ssim": 24.6,
    # ---- cheap / auxiliary metrics ------------------------------------
    "pearson": 38.0,
    "entropy": 95.0,
    "mean": 16.0,
    "std": 22.0,
}


@dataclass
class CpuWorkload:
    """One OpenMP pass over the data: ``n`` elements at ``cycles`` each."""

    name: str
    n_elements: int
    cycles_per_element: float
    bytes_streamed: int = 0
    passes: int = 1
    meta: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        return self.passes * self.n_elements * self.cycles_per_element

    @property
    def total_bytes(self) -> int:
        return self.passes * self.bytes_streamed


def cpu_pass_time(workload: CpuWorkload, spec: CpuSpec = XEON_6148) -> float:
    """Time of one metric's OpenMP pass (seconds)."""
    compute = workload.total_cycles / (
        spec.cores * spec.frequency_hz * spec.ops_per_cycle * spec.parallel_efficiency
    )
    memory = workload.total_bytes / spec.mem_bandwidth
    return workload.passes * spec.omp_fork_latency + max(compute, memory)


def cpu_workload_time(
    workloads: list[CpuWorkload], spec: CpuSpec = XEON_6148
) -> float:
    """Total time of sequential metric passes (Z-checker runs metrics
    one after another)."""
    return sum(cpu_pass_time(w, spec) for w in workloads)
