"""CUDA occupancy calculator for the simulated device.

Computes how many thread blocks can be resident on one SM given a kernel's
register and shared-memory demand — the quantity behind the paper's
Table II discussion ("the register usage of a TB is big, which limits the
concurrent TBs in a SM to at most four (64k/14k)").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ResourceExhausted
from repro.gpusim.device import DeviceSpec
from repro.gpusim.counters import KernelStats

__all__ = ["Occupancy", "occupancy_for", "blocks_per_sm_limit"]


def blocks_per_sm_limit(
    device: DeviceSpec,
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int,
) -> int:
    """Concurrent thread blocks one SM can host for the given demand.

    The limit is the minimum over the four hardware constraints: thread
    slots, block slots, register file, and shared memory.  Raises
    :class:`ResourceExhausted` if even a single block does not fit.
    """
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    limits = [
        device.max_threads_per_sm // threads_per_block,
        device.max_blocks_per_sm,
    ]
    regs_per_block = regs_per_thread * threads_per_block
    if regs_per_block > 0:
        limits.append(device.registers_per_sm // regs_per_block)
    if smem_per_block > 0:
        limits.append(device.shared_mem_per_sm // smem_per_block)
    concurrent = min(limits)
    if concurrent < 1:
        raise ResourceExhausted(
            f"kernel demand (threads={threads_per_block}, "
            f"regs/TB={regs_per_block}, smem/TB={smem_per_block}) exceeds "
            f"one SM of {device.name}"
        )
    return concurrent


@dataclass(frozen=True)
class Occupancy:
    """Occupancy analysis of one kernel launch on one device."""

    #: concurrent thread blocks per SM (Table II "TB(cncr.)/SM")
    concurrent_blocks_per_sm: int
    #: thread blocks assigned to each SM over the whole grid
    blocks_per_sm: int
    #: average resident warps per SM while the kernel runs (fractional:
    #: a 100-block grid on 80 SMs averages 1.25 resident blocks/SM)
    active_warps_per_sm: float
    #: fraction of the SM's warp slots occupied (classic CUDA occupancy)
    occupancy: float
    #: number of SMs that receive at least one block
    active_sms: int
    #: full rounds of block scheduling needed to drain the grid
    waves: int
    #: average fraction of available block slots busy across all waves
    wave_balance: float

    @property
    def table2_row(self) -> tuple[int, int]:
        """(assigned blocks/SM, concurrent blocks/SM) as printed in the
        paper's Table II column "TB(cncr.)/SM"."""
        return (self.blocks_per_sm, self.concurrent_blocks_per_sm)


def occupancy_for(device: DeviceSpec, stats: KernelStats) -> Occupancy:
    """Full occupancy analysis for a kernel described by ``stats``."""
    concurrent = blocks_per_sm_limit(
        device,
        stats.threads_per_block,
        stats.regs_per_thread,
        stats.smem_per_block,
    )
    grid = max(1, stats.grid_blocks)
    blocks_per_sm = math.ceil(grid / device.sm_count)
    warps_per_block = math.ceil(stats.threads_per_block / device.warp_size)
    # Steady-state residency: an undersubscribed grid averages
    # grid/sm_count blocks per active SM (never below one block — an SM
    # with work holds at least its own block).
    resident_blocks = min(float(concurrent), max(1.0, grid / device.sm_count))
    active_warps = resident_blocks * warps_per_block
    slots = device.sm_count * concurrent
    waves = math.ceil(grid / slots)
    wave_balance = grid / (waves * slots)
    return Occupancy(
        concurrent_blocks_per_sm=concurrent,
        blocks_per_sm=blocks_per_sm,
        active_warps_per_sm=active_warps,
        occupancy=min(1.0, float(active_warps) / device.max_warps_per_sm),
        active_sms=min(device.sm_count, grid),
        waves=waves,
        wave_balance=wave_balance,
    )
