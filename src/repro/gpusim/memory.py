"""Memory-traffic accounting and a functional shared-memory FIFO.

:class:`TrafficRecorder` accumulates the byte counts the cost model needs;
kernel implementations call it at every conceptual global/shared access so
that functional runs and analytic plans agree exactly (asserted in tests).

:class:`SmemFifo` is the functional model of the paper's pattern-3 shared
memory FIFO buffer (Section III-C3): a ring of per-slice partial window
reductions indexed by ``k % depth``, letting each z-slice be read from
global memory exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrafficRecorder", "SmemFifo"]

FLOAT_BYTES = 4


@dataclass
class TrafficRecorder:
    """Byte/op counters shared by functional kernels and analytic plans."""

    global_read_bytes: int = 0
    global_write_bytes: int = 0
    shared_bytes: int = 0
    shuffle_ops: int = 0
    flops: int = 0
    atomic_ops: int = 0
    events: list = field(default_factory=list)
    trace: bool = False

    def read_global(self, count: int, itemsize: int = FLOAT_BYTES, what: str = "") -> None:
        self.global_read_bytes += count * itemsize
        if self.trace:
            self.events.append(("gread", what, count * itemsize))

    def write_global(self, count: int, itemsize: int = FLOAT_BYTES, what: str = "") -> None:
        self.global_write_bytes += count * itemsize
        if self.trace:
            self.events.append(("gwrite", what, count * itemsize))

    def touch_shared(self, count: int, itemsize: int = FLOAT_BYTES, what: str = "") -> None:
        self.shared_bytes += count * itemsize
        if self.trace:
            self.events.append(("smem", what, count * itemsize))

    def shuffle(self, count: int) -> None:
        self.shuffle_ops += count

    def compute(self, count: int) -> None:
        self.flops += count

    def atomic(self, count: int) -> None:
        self.atomic_ops += count

    @property
    def global_bytes(self) -> int:
        return self.global_read_bytes + self.global_write_bytes


class SmemFifo:
    """Ring buffer of per-slice window partials, keyed by ``k % depth``.

    Parameters
    ----------
    depth:
        Window side length along z (``wsize``); the number of slices whose
        partials must be live simultaneously.
    slot_shape:
        Shape of one slice's partial-reduction record, e.g.
        ``(n_accumulators, yNum, xNum)``.
    """

    def __init__(self, depth: int, slot_shape: tuple[int, ...]):
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.depth = depth
        self.slot_shape = tuple(slot_shape)
        self._buf = np.zeros((depth, *self.slot_shape), dtype=np.float64)
        self._filled = 0

    def push(self, k: int, slot: np.ndarray) -> None:
        """Store slice ``k``'s partials, overwriting slice ``k - depth``."""
        if slot.shape != self.slot_shape:
            raise ValueError(
                f"slot shape {slot.shape} does not match FIFO {self.slot_shape}"
            )
        self._buf[k % self.depth] = slot
        self._filled = min(self._filled + 1, self.depth)

    @property
    def full(self) -> bool:
        """True once ``depth`` slices have been pushed."""
        return self._filled >= self.depth

    def reduce(self) -> np.ndarray:
        """Sum the live slices — the Algorithm 3 lines 17-19 reduction."""
        if not self.full:
            raise RuntimeError("FIFO reduced before it was filled")
        return self._buf.sum(axis=0)

    def window_view(self) -> np.ndarray:
        """The raw ring contents (testing/diagnostics)."""
        return self._buf.copy()

    def state_dict(self) -> dict:
        """Exact ring state for checkpoint/resume (bit-identical restore)."""
        return {"buf": self._buf.copy(), "filled": self._filled}

    def load_state(self, state: dict) -> None:
        buf = np.asarray(state["buf"], dtype=np.float64)
        if buf.shape != self._buf.shape:
            raise ValueError(
                f"FIFO state shape {buf.shape} does not match {self._buf.shape}"
            )
        np.copyto(self._buf, buf)
        self._filled = int(state["filled"])
