"""GPU execution-model simulator (the CUDA substrate substitution).

The paper runs hand-written CUDA kernels on an NVIDIA V100.  This package
replaces that hardware with two cooperating layers:

* a **functional layer** (:mod:`repro.gpusim.warp`,
  :mod:`repro.gpusim.memory`) that executes the paper's kernel
  decompositions — slice-per-block reductions, cube-blocked stencils,
  FIFO-buffered sliding windows — producing numerically correct metric
  values, vectorised per warp/block with NumPy;

* an **analytical layer** (:mod:`repro.gpusim.occupancy`,
  :mod:`repro.gpusim.costmodel`, :mod:`repro.gpusim.cpu`) that converts
  exact event counts (global/shared transactions, shuffles, launches,
  waves) into execution-time estimates using a roofline model calibrated
  against the V100 numbers reported in the paper.

The split lets tests verify correctness on laptop-sized arrays while the
benchmark harness evaluates the paper's true dataset shapes analytically.
"""

from repro.gpusim.device import DeviceSpec, CpuSpec, V100, XEON_6148
from repro.gpusim.counters import KernelStats
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.occupancy import Occupancy, occupancy_for
from repro.gpusim.costmodel import CostBreakdown, kernel_time, kernels_time
from repro.gpusim.cpu import cpu_pass_time, CpuWorkload
from repro.gpusim.trace import trace_events, write_chrome_trace
from repro.gpusim.roofline import RooflinePoint, roofline_point, roofline_report

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "V100",
    "XEON_6148",
    "KernelStats",
    "LaunchConfig",
    "Occupancy",
    "occupancy_for",
    "CostBreakdown",
    "kernel_time",
    "kernels_time",
    "cpu_pass_time",
    "CpuWorkload",
    "trace_events",
    "write_chrome_trace",
    "RooflinePoint",
    "roofline_point",
    "roofline_report",
]
