"""Event counters produced by kernel plans and consumed by the cost model.

A :class:`KernelStats` instance records exactly the quantities the paper's
profiling discussion depends on: global/shared memory traffic, shuffle and
arithmetic operation counts, launch/sync counts, and the launch geometry
(registers per thread, shared memory per block, iterations per thread —
the columns of the paper's Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Exact event counts for one (possibly fused) kernel invocation."""

    name: str = "kernel"
    #: number of kernel launches this plan performs
    launches: int = 1
    #: cooperative-grid synchronisations inside the kernel
    grid_syncs: int = 0
    #: bytes read from global memory
    global_read_bytes: int = 0
    #: bytes written to global memory
    global_write_bytes: int = 0
    #: bytes moved through shared memory (reads + writes)
    shared_bytes: int = 0
    #: warp shuffle operations executed (device-wide)
    shuffle_ops: int = 0
    #: useful arithmetic/comparison operations (device-wide)
    flops: int = 0
    #: atomic operations (histograms); modelled with a serialisation penalty
    atomic_ops: int = 0
    # --- launch geometry (Table II inputs) -------------------------------
    grid_blocks: int = 1
    threads_per_block: int = 1
    regs_per_thread: int = 32
    smem_per_block: int = 0
    iters_per_thread: int = 1
    #: free-form notes merged in by kernel plans (e.g. window geometry)
    meta: dict = field(default_factory=dict)

    @property
    def regs_per_block(self) -> int:
        """Registers reserved by one thread block (Table II "Regs/TB")."""
        return self.regs_per_thread * self.threads_per_block

    @property
    def global_bytes(self) -> int:
        """Total global-memory traffic in bytes."""
        return self.global_read_bytes + self.global_write_bytes

    def scaled(self, factor: float) -> "KernelStats":
        """Return a copy with all volumetric counters scaled by ``factor``.

        Geometry fields (block size, registers) are left untouched; used by
        sweeps that extrapolate traffic to larger inputs.
        """
        return replace(
            self,
            global_read_bytes=int(self.global_read_bytes * factor),
            global_write_bytes=int(self.global_write_bytes * factor),
            shared_bytes=int(self.shared_bytes * factor),
            shuffle_ops=int(self.shuffle_ops * factor),
            flops=int(self.flops * factor),
            atomic_ops=int(self.atomic_ops * factor),
        )

    def merged(self, other: "KernelStats", name: str | None = None) -> "KernelStats":
        """Combine two *sequential* kernels into an aggregate record.

        Traffic and launch counts add; geometry keeps the maximum resource
        demand, which is what occupancy analysis of the combined execution
        needs to be conservative about.
        """
        return KernelStats(
            name=name or f"{self.name}+{other.name}",
            launches=self.launches + other.launches,
            grid_syncs=self.grid_syncs + other.grid_syncs,
            global_read_bytes=self.global_read_bytes + other.global_read_bytes,
            global_write_bytes=self.global_write_bytes + other.global_write_bytes,
            shared_bytes=self.shared_bytes + other.shared_bytes,
            shuffle_ops=self.shuffle_ops + other.shuffle_ops,
            flops=self.flops + other.flops,
            atomic_ops=self.atomic_ops + other.atomic_ops,
            grid_blocks=max(self.grid_blocks, other.grid_blocks),
            threads_per_block=max(self.threads_per_block, other.threads_per_block),
            regs_per_thread=max(self.regs_per_thread, other.regs_per_thread),
            smem_per_block=max(self.smem_per_block, other.smem_per_block),
            iters_per_thread=self.iters_per_thread + other.iters_per_thread,
            meta={**self.meta, **other.meta},
        )

    def validate(self) -> None:
        """Sanity-check counter invariants; raises ``ValueError`` on bugs."""
        for attr in (
            "launches",
            "grid_syncs",
            "global_read_bytes",
            "global_write_bytes",
            "shared_bytes",
            "shuffle_ops",
            "flops",
            "atomic_ops",
            "grid_blocks",
            "threads_per_block",
            "regs_per_thread",
            "iters_per_thread",
        ):
            value = getattr(self, attr)
            if value < 0:
                raise ValueError(f"KernelStats.{attr} must be >= 0, got {value}")
        if self.launches == 0 and self.global_bytes > 0:
            raise ValueError("traffic recorded without any kernel launch")
