"""Roofline analysis of simulated kernel plans.

Classic Williams-style roofline: arithmetic intensity (useful ops per
byte of DRAM traffic) against the device's memory and compute roofs,
plus where the modelled execution actually lands.  Explains at a glance
why pattern 1 rides the memory roof while pattern 3 sits deep in the
compute-bound region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.costmodel import (
    ATOMIC_OP_WEIGHT,
    SHUFFLE_OP_WEIGHT,
    kernel_time,
)
from repro.gpusim.counters import KernelStats
from repro.gpusim.device import DeviceSpec, V100

__all__ = ["RooflinePoint", "roofline_point", "roofline_report"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position in the roofline plane."""

    name: str
    #: useful device ops per byte of global traffic
    arithmetic_intensity: float
    #: ops/s the roofline allows at this intensity
    attainable_ops: float
    #: ops/s the calibrated model says the kernel achieves
    achieved_ops: float
    #: which roof caps it: "memory" below the ridge, "compute" above
    limiting_roof: str

    @property
    def roof_fraction(self) -> float:
        """Achieved performance as a fraction of the attainable roof."""
        if self.attainable_ops <= 0:
            return 0.0
        return self.achieved_ops / self.attainable_ops


def _total_ops(stats: KernelStats) -> float:
    return (
        stats.flops
        + SHUFFLE_OP_WEIGHT * stats.shuffle_ops
        + ATOMIC_OP_WEIGHT * stats.atomic_ops
    )


def roofline_point(
    stats: KernelStats, device: DeviceSpec = V100
) -> RooflinePoint:
    """Place one kernel plan on the device's roofline."""
    stats.validate()
    ops = _total_ops(stats)
    traffic = max(stats.global_bytes, 1)
    intensity = ops / traffic
    ridge = device.sustained_op_rate / device.peak_bandwidth
    attainable = min(device.sustained_op_rate, intensity * device.peak_bandwidth)
    total = kernel_time(stats, device).total
    achieved = ops / total if total > 0 else 0.0
    return RooflinePoint(
        name=stats.name,
        arithmetic_intensity=intensity,
        attainable_ops=attainable,
        achieved_ops=achieved,
        limiting_roof="memory" if intensity < ridge else "compute",
    )


def roofline_report(
    plans: list[KernelStats], device: DeviceSpec = V100
) -> list[RooflinePoint]:
    """Roofline points for a list of kernel plans."""
    return [roofline_point(p, device) for p in plans]
