"""Roofline analysis of simulated kernel plans.

Classic Williams-style roofline: arithmetic intensity (useful ops per
byte of DRAM traffic) against the device's memory and compute roofs,
plus where the modelled execution actually lands.  Explains at a glance
why pattern 1 rides the memory roof while pattern 3 sits deep in the
compute-bound region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.costmodel import (
    ATOMIC_OP_WEIGHT,
    SHUFFLE_OP_WEIGHT,
    kernel_time,
)
from repro.gpusim.counters import KernelStats
from repro.gpusim.device import DeviceSpec, V100

__all__ = [
    "RooflinePoint",
    "roofline_point",
    "roofline_report",
    "HostRoof",
    "DEFAULT_HOST_ROOF",
    "host_kernel_seconds",
]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position in the roofline plane."""

    name: str
    #: useful device ops per byte of global traffic
    arithmetic_intensity: float
    #: ops/s the roofline allows at this intensity
    attainable_ops: float
    #: ops/s the calibrated model says the kernel achieves
    achieved_ops: float
    #: which roof caps it: "memory" below the ridge, "compute" above
    limiting_roof: str

    @property
    def roof_fraction(self) -> float:
        """Achieved performance as a fraction of the attainable roof."""
        if self.attainable_ops <= 0:
            return 0.0
        return self.achieved_ops / self.attainable_ops


def _total_ops(stats: KernelStats) -> float:
    return (
        stats.flops
        + SHUFFLE_OP_WEIGHT * stats.shuffle_ops
        + ATOMIC_OP_WEIGHT * stats.atomic_ops
    )


def roofline_point(
    stats: KernelStats, device: DeviceSpec = V100
) -> RooflinePoint:
    """Place one kernel plan on the device's roofline."""
    stats.validate()
    ops = _total_ops(stats)
    traffic = max(stats.global_bytes, 1)
    intensity = ops / traffic
    ridge = device.sustained_op_rate / device.peak_bandwidth
    attainable = min(device.sustained_op_rate, intensity * device.peak_bandwidth)
    total = kernel_time(stats, device).total
    achieved = ops / total if total > 0 else 0.0
    return RooflinePoint(
        name=stats.name,
        arithmetic_intensity=intensity,
        attainable_ops=attainable,
        achieved_ops=achieved,
        limiting_roof="memory" if intensity < ridge else "compute",
    )


def roofline_report(
    plans: list[KernelStats], device: DeviceSpec = V100
) -> list[RooflinePoint]:
    """Roofline points for a list of kernel plans."""
    return [roofline_point(p, device) for p in plans]


# ---------------------------------------------------------------------------
# host roofs: the candidate-costing half of adaptive dispatch
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HostRoof:
    """Empirical roofs of the *host* NumPy execution engine.

    The dispatch predictor (:mod:`repro.engine.dispatch`) prices every
    host-backend candidate with the same roofline shape as the device
    model — ``max(memory, compute)`` — but against host ceilings.  These
    are deliberately coarse seeds: per-step measured-vs-predicted ratios
    from the telemetry layer are folded into a persistent calibration
    table, so only the *relative* ordering these produce out of the box
    matters, and even that is corrected after the first ``fit``.
    """

    #: sustained bytes/s for DRAM-resident single-thread NumPy streaming
    stream_bandwidth: float = 8e9
    #: sustained bytes/s when the working set stays in the last-level
    #: cache (the tiled path's reason to exist)
    cache_bandwidth: float = 24e9
    #: modelled device-ops/s equivalent the host interpreter+BLAS reach
    op_rate: float = 1.2e9
    #: assumed last-level cache size for the cache-resident test
    llc_bytes: int = 32 << 20


DEFAULT_HOST_ROOF = HostRoof()

#: host traffic inflation over the modelled f32 device traffic: the host
#: path works on float64 conversions and materialises reduction inputs
HOST_TRAFFIC_FACTOR = 3.0

#: the modelled device flops include GPU stall-factor inflations
#: (``P2_STALL_FACTOR``, ``P3_STALL_FACTOR``) the host never pays; these
#: per-pattern discounts map modelled ops back to host-relevant work
HOST_OP_DISCOUNT = {1: 1.0, 2: 1.6, 3: 30.0}


def host_kernel_seconds(
    stats: KernelStats,
    roof: HostRoof = DEFAULT_HOST_ROOF,
    cached: bool = False,
) -> float:
    """Host-roofline time estimate for one modelled kernel plan.

    ``cached`` selects the cache bandwidth — the whole-array path earns
    it only when the workspace fits the LLC, the tiled path by
    construction.
    """
    stats.validate()
    bw = roof.cache_bandwidth if cached else roof.stream_bandwidth
    mem_time = HOST_TRAFFIC_FACTOR * stats.global_bytes / bw
    pattern = stats.meta.get("pattern")
    discount = HOST_OP_DISCOUNT.get(pattern, 1.0)
    compute_time = _total_ops(stats) / discount / roof.op_rate
    return max(mem_time, compute_time)
