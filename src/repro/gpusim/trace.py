"""Chrome-trace export of simulated kernel timelines.

Serialises a framework's kernel plan (with modelled durations) as a
``chrome://tracing`` / Perfetto-compatible JSON file, giving the same
at-a-glance view of launch overheads and kernel durations an Nsight
timeline would — useful for explaining *why* moZC's 20-launch pattern-1
plan loses to the single fused kernel.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.gpusim.costmodel import kernel_time
from repro.gpusim.counters import KernelStats
from repro.gpusim.device import DeviceSpec, V100

__all__ = ["trace_events", "write_chrome_trace"]


def trace_events(
    plans: list[KernelStats],
    device: DeviceSpec = V100,
    process_name: str = "simulated GPU",
) -> list[dict]:
    """Complete-event list ("ph": "X") for a sequential kernel plan.

    Each kernel contributes a launch-overhead slice and an execution
    slice; timestamps are microseconds, as the trace format requires.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    cursor_us = 0.0
    for plan in plans:
        cost = kernel_time(plan, device)
        launch_us = cost.launch_time * 1e6
        exec_us = (cost.sync_time + cost.pipeline_time) * 1e6
        if launch_us > 0:
            events.append(
                {
                    "name": f"launch:{plan.name}",
                    "ph": "X",
                    "ts": cursor_us,
                    "dur": launch_us,
                    "pid": 0,
                    "tid": 0,
                    "args": {"launches": plan.launches},
                }
            )
            cursor_us += launch_us
        events.append(
            {
                "name": plan.name,
                "ph": "X",
                "ts": cursor_us,
                "dur": exec_us,
                "pid": 0,
                "tid": 0,
                "args": {
                    "bound": cost.bound,
                    "grid_blocks": plan.grid_blocks,
                    "global_MB": round(plan.global_bytes / 1e6, 3),
                    "occupancy": round(cost.occupancy.occupancy, 3),
                },
            }
        )
        cursor_us += exec_us
    return events


def write_chrome_trace(
    plans: list[KernelStats],
    path: str | Path,
    device: DeviceSpec = V100,
    process_name: str = "simulated GPU",
) -> Path:
    """Write the timeline as a chrome://tracing JSON file."""
    path = Path(path)
    payload = {"traceEvents": trace_events(plans, device, process_name)}
    path.write_text(json.dumps(payload, indent=1))
    return path
