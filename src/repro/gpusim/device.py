"""Hardware specifications for the simulated devices.

:data:`V100` mirrors the evaluation platform of the paper (NVIDIA Tesla
V100, Volta, 80 SMs, 32 GB HBM2); :data:`XEON_6148` mirrors the host CPU
(Intel Xeon Gold 6148, 20 cores @ 2.40 GHz) used for the ompZC baseline.

Two calibrated fields deserve a note:

``sustained_op_rate``
    Device-wide useful-operation throughput (op/s) achieved by real
    reduction/stencil kernels at full occupancy.  Peak FP32 on a V100 is
    14 TFLOP/s, but assessment kernels are dominated by comparisons,
    shuffles, and address arithmetic; the 2.0 Top/s default reproduces the
    absolute throughputs the paper measured (Fig. 11).

``saturation_sms``
    Number of SMs whose combined demand saturates HBM2.  Grids smaller
    than this leave memory bandwidth on the table — the effect behind the
    paper's pattern-2 observation that short-z datasets (Hurricane,
    Scale-LETKF) underutilise the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "CpuSpec", "V100", "XEON_6148", "A100"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated CUDA device."""

    name: str
    sm_count: int
    cuda_cores_per_sm: int
    warp_size: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    registers_per_sm: int
    max_registers_per_thread: int
    shared_mem_per_sm: int
    shared_mem_per_block: int
    global_mem_bytes: int
    peak_bandwidth: float
    peak_flops_sp: float
    sustained_op_rate: float
    kernel_launch_latency: float
    grid_sync_latency: float
    smem_bytes_per_cycle_per_sm: float
    core_clock_hz: float
    saturation_sms: int

    @property
    def cuda_cores(self) -> int:
        """Total CUDA cores on the device."""
        return self.sm_count * self.cuda_cores_per_sm

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps per SM."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def smem_bandwidth_per_sm(self) -> float:
        """Shared-memory bandwidth of one SM in bytes/s."""
        return self.smem_bytes_per_cycle_per_sm * self.core_clock_hz


@dataclass(frozen=True)
class CpuSpec:
    """Static description of the host CPU used by the ompZC baseline."""

    name: str
    cores: int
    frequency_hz: float
    ops_per_cycle: float
    mem_bandwidth: float
    parallel_efficiency: float
    omp_fork_latency: float

    @property
    def op_rate(self) -> float:
        """Aggregate useful-operation rate (op/s) across all cores,
        including the multithreading efficiency loss."""
        return (
            self.cores
            * self.frequency_hz
            * self.ops_per_cycle
            * self.parallel_efficiency
        )


#: The paper's evaluation GPU: NVIDIA Tesla V100-SXM2-32GB (Volta, CC 7.0).
V100 = DeviceSpec(
    name="Tesla V100",
    sm_count=80,
    cuda_cores_per_sm=64,
    warp_size=32,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_block=48 * 1024,
    global_mem_bytes=32 * 1024**3,
    peak_bandwidth=900e9,
    peak_flops_sp=14e12,
    sustained_op_rate=2.0e12,
    kernel_launch_latency=4.5e-6,
    grid_sync_latency=1.8e-6,
    smem_bytes_per_cycle_per_sm=128.0,
    core_clock_hz=1.53e9,
    saturation_sms=24,
)

#: A100 spec, provided for "what-if" sweeps beyond the paper.
A100 = DeviceSpec(
    name="A100-SXM4-40GB",
    sm_count=108,
    cuda_cores_per_sm=64,
    warp_size=32,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    shared_mem_per_sm=164 * 1024,
    shared_mem_per_block=48 * 1024,
    global_mem_bytes=40 * 1024**3,
    peak_bandwidth=1555e9,
    peak_flops_sp=19.5e12,
    sustained_op_rate=3.1e12,
    kernel_launch_latency=4.0e-6,
    grid_sync_latency=1.6e-6,
    smem_bytes_per_cycle_per_sm=128.0,
    core_clock_hz=1.41e9,
    saturation_sms=30,
)

#: The paper's host CPU: Intel Xeon Gold 6148 (20 cores @ 2.40 GHz).
#: ``ops_per_cycle`` reflects the largely scalar, branchy Z-checker code
#: (histogram updates, per-element min/max comparisons) rather than peak
#: AVX-512 throughput; it is calibrated so that ompZC lands in the
#: throughput ranges of Fig. 11 (e.g. 0.44-0.51 GB/s for pattern 1).
XEON_6148 = CpuSpec(
    name="Xeon Gold 6148",
    cores=20,
    frequency_hz=2.40e9,
    ops_per_cycle=1.0,
    mem_bandwidth=128e9,
    parallel_efficiency=0.82,
    omp_fork_latency=12e-6,
)
