"""Kernel launch geometry and validation.

:class:`LaunchConfig` mirrors a CUDA ``<<<grid, block>>>`` configuration
(1-D grid of 2-D blocks, which is all the paper's kernels use) and checks
it against the target :class:`~repro.gpusim.device.DeviceSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LaunchConfigError, ResourceExhausted
from repro.gpusim.device import DeviceSpec

__all__ = ["LaunchConfig"]


@dataclass(frozen=True)
class LaunchConfig:
    """A CUDA-style launch configuration for the simulated device."""

    grid_x: int
    block_x: int
    block_y: int = 1
    smem_per_block: int = 0
    regs_per_thread: int = 32

    @property
    def threads_per_block(self) -> int:
        return self.block_x * self.block_y

    @property
    def total_threads(self) -> int:
        return self.grid_x * self.threads_per_block

    @property
    def warps_per_block(self) -> int:
        # Blocks are laid out x-fastest; CUDA rounds partial warps up.
        return -(-self.threads_per_block // 32)

    def validate(self, device: DeviceSpec) -> None:
        """Raise if this launch could not execute on ``device``."""
        if self.grid_x <= 0:
            raise LaunchConfigError(f"grid_x must be positive, got {self.grid_x}")
        if self.block_x <= 0 or self.block_y <= 0:
            raise LaunchConfigError(
                f"block dims must be positive, got ({self.block_x}, {self.block_y})"
            )
        if self.threads_per_block > device.max_threads_per_block:
            raise LaunchConfigError(
                f"{self.threads_per_block} threads/block exceeds device limit "
                f"{device.max_threads_per_block}"
            )
        if self.smem_per_block > device.shared_mem_per_block:
            raise ResourceExhausted(
                f"kernel requests {self.smem_per_block} B shared memory/block; "
                f"device allows {device.shared_mem_per_block} B"
            )
        if self.regs_per_thread > device.max_registers_per_thread:
            raise ResourceExhausted(
                f"kernel requests {self.regs_per_thread} registers/thread; "
                f"device allows {device.max_registers_per_thread}"
            )
        if self.regs_per_thread * self.threads_per_block > device.registers_per_sm:
            raise ResourceExhausted(
                "a single block requires more registers than one SM provides"
            )

    def cooperative_max_blocks(self, device: DeviceSpec, blocks_per_sm: int) -> int:
        """Maximum grid size for a cooperative (grid-sync) launch.

        Cooperative kernels require every block to be resident
        simultaneously, so the grid may not exceed
        ``sm_count * blocks_per_sm``.
        """
        return device.sm_count * max(1, blocks_per_sm)
