"""Functional warp-level primitives.

These mirror the CUDA warp intrinsics the paper's kernels rely on
(``__shfl_down_sync``, ``__ballot_sync`` and shuffle-based tree
reductions), vectorised over NumPy arrays whose **last axis is the lane
axis** (length ≤ 32).  The functional kernels in :mod:`repro.kernels`
compose these to execute the paper's Algorithms 1-3 faithfully while
remaining fast enough for CI-scale data.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

__all__ = [
    "WARP_SIZE",
    "shfl_down",
    "shfl_up",
    "shfl_xor",
    "ballot",
    "warp_reduce",
    "warp_segmented_sum",
    "warp_inclusive_scan",
]

WARP_SIZE = 32


def _check_lane_axis(arr: np.ndarray) -> None:
    if arr.shape[-1] > WARP_SIZE:
        raise ValueError(
            f"lane axis has {arr.shape[-1]} lanes; a warp holds at most {WARP_SIZE}"
        )


def shfl_down(arr: np.ndarray, offset: int, fill: float = 0.0) -> np.ndarray:
    """``__shfl_down_sync``: lane *i* receives the value of lane *i+offset*.

    Lanes whose source falls off the warp keep ``fill`` (CUDA leaves them
    undefined; kernels here always mask them out, so any fill works).
    """
    _check_lane_axis(arr)
    if offset < 0:
        raise ValueError("offset must be non-negative")
    out = np.full_like(arr, fill)
    if offset == 0:
        out[...] = arr
    elif offset < arr.shape[-1]:
        out[..., : arr.shape[-1] - offset] = arr[..., offset:]
    return out


def shfl_up(arr: np.ndarray, offset: int, fill: float = 0.0) -> np.ndarray:
    """``__shfl_up_sync``: lane *i* receives the value of lane *i-offset*."""
    _check_lane_axis(arr)
    if offset < 0:
        raise ValueError("offset must be non-negative")
    out = np.full_like(arr, fill)
    if offset == 0:
        out[...] = arr
    elif offset < arr.shape[-1]:
        out[..., offset:] = arr[..., : arr.shape[-1] - offset]
    return out


def shfl_xor(arr: np.ndarray, mask: int) -> np.ndarray:
    """``__shfl_xor_sync``: lane *i* exchanges with lane *i XOR mask*."""
    _check_lane_axis(arr)
    lanes = arr.shape[-1]
    idx = np.arange(lanes) ^ mask
    # Partners outside the warp read back their own value (CUDA behaviour
    # for inactive lanes under a full mask is undefined; self-read is the
    # conventional safe model).
    idx = np.where(idx < lanes, idx, np.arange(lanes))
    return arr[..., idx]


def ballot(predicate: np.ndarray) -> int:
    """``__ballot_sync``: bitmask of lanes whose predicate is true.

    ``predicate`` is a 1-D boolean array over lanes.
    """
    if predicate.ndim != 1:
        raise ValueError("ballot expects a 1-D per-lane predicate")
    _check_lane_axis(predicate)
    mask = 0
    for lane, flag in enumerate(predicate):
        if flag:
            mask |= 1 << lane
    return mask


def warp_reduce(
    arr: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
) -> np.ndarray:
    """Shuffle-tree reduction across the lane axis.

    Mirrors the canonical ``for offset = 16..1: val = op(val,
    shfl_down(val, offset))`` loop (Algorithm 1, lines 7-8) and returns the
    lane-0 value.  ``op`` must be associative-commutative (``np.add``,
    ``np.minimum``, ``np.maximum``).
    """
    _check_lane_axis(arr)
    lanes = arr.shape[-1]
    if lanes == 0:
        raise ValueError("cannot reduce an empty warp")
    val = arr
    # Pad to the next power of two with identity-free masking: emulate the
    # hardware loop where out-of-range lanes contribute their own value
    # (they are masked out by lane 0 never reading them).
    width = 1 << max(0, math.ceil(math.log2(lanes)))
    if width != lanes:
        pad_shape = arr.shape[:-1] + (width - lanes,)
        # Out-of-warp lanes replicate lane 0 only in shape; their values
        # must not affect the result, so pad with the op's identity by
        # replicating the first lane then discarding via masking below.
        val = np.concatenate([arr, np.broadcast_to(arr[..., :1], pad_shape)], axis=-1)
        # For idempotent ops (min/max) replication is harmless; for add we
        # must zero the pad.
        if op is np.add:
            val = val.copy()
            val[..., lanes:] = 0
    offset = width // 2
    while offset:
        shifted = np.full_like(val, 0)
        shifted[..., : width - offset] = val[..., offset:]
        if op in (np.minimum, np.maximum):
            # keep self value for lanes with no partner
            shifted[..., width - offset :] = val[..., width - offset :]
        val = op(val, shifted)
        offset //= 2
    return val[..., 0]


def warp_segmented_sum(arr: np.ndarray, segment: int) -> np.ndarray:
    """Sum over contiguous lane segments of length ``segment``.

    Models the strided-shuffle window reductions of Algorithm 3: lane *i*
    accumulates lanes *i .. i+segment-1* (windows along x shared via
    shuffles).  Returns an array with the same shape; only lanes with a
    full segment in range hold valid sums.
    """
    _check_lane_axis(arr)
    if segment < 1:
        raise ValueError("segment must be >= 1")
    acc = arr.astype(np.float64, copy=True)
    for offset in range(1, segment):
        acc += shfl_down(arr, offset, fill=0.0)
    return acc


def warp_inclusive_scan(arr: np.ndarray) -> np.ndarray:
    """Kogge-Stone inclusive prefix sum across lanes (shfl_up based)."""
    _check_lane_axis(arr)
    val = arr.astype(np.float64, copy=True)
    offset = 1
    while offset < arr.shape[-1]:
        shifted = shfl_up(val, offset, fill=0.0)
        val = val + shifted
        offset <<= 1
    return val
