"""Z-slab parallelism for one huge field.

A single field too large (or too urgent) for one serial pass is split
into contiguous z-slabs; each worker produces the *same* mergeable
accumulators :class:`repro.core.streaming.StreamingChecker` carries —
pattern-1 partial sums, raw lagged autocorrelation cross-products (each
slab reads a ``max_lag``-deep trailing halo so every (z, z+τ) pair is
counted exactly once), and sliding-sum SSIM window statistics for the
window origins the slab owns.  The merge is the associative grid-level
reduce, so the result equals the serial streaming/batch answers to FP
tolerance (asserted in tests).

Each slab converts only its own window (slab + halo) to float64, so a
job touches O(slab) memory whatever the field size — which is what lets
the process executor ship a slab as a :class:`SharedField` handle plus
two integers and have the worker read its share of the published pages
directly.  Because serial, thread and process execution all run this
identical per-slab code in the identical order at the same slab count,
their merged results are *bit-identical* (property-tested).
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import CheckerError, ShapeError
from repro.core.streaming import StreamingResult
from repro.kernels.pattern1 import result_from_sums
from repro.kernels.pattern3 import Pattern3Config
from repro.metrics.ssim import box_sums, window_positions

__all__ = ["z_chunks", "parallel_stream_field"]


def z_chunks(nz: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``nz`` slices into up to ``n_chunks`` balanced ``[z0, z1)`` slabs."""
    if nz < 1:
        raise ShapeError(f"nz must be >= 1, got {nz}")
    n_chunks = max(1, min(n_chunks, nz))
    base, rem = divmod(nz, n_chunks)
    out = []
    z0 = 0
    for i in range(n_chunks):
        z1 = z0 + base + (1 if i < rem else 0)
        out.append((z0, z1))
        z0 = z1
    return out


def _slab_partials(
    orig: np.ndarray,
    dec: np.ndarray,
    z0: int,
    z1: int,
    max_lag: int,
    ssim: Pattern3Config | None,
    pwr_floor: float,
) -> dict:
    """All mergeable accumulators for one slab (plus its trailing halo).

    ``orig``/``dec`` are the whole fields in their native dtype; only the
    ``[z0, hi)`` window this slab actually reads — its own slices, the
    autocorrelation halo, and the tail of any SSIM window it owns — is
    converted to float64 here, inside the worker.
    """
    nz, ny, nx = orig.shape

    hi_ext = min(z1 + max_lag, nz) if max_lag >= 1 else z1
    origins: list[int] = []
    if ssim is not None:
        w, step = ssim.window, ssim.step
        origins = [k for k in range(0, nz - w + 1, step) if z0 <= k < z1]
        if origins:
            hi_ext = max(hi_ext, origins[-1] + w)

    o64 = orig[z0:hi_ext].astype(np.float64)
    d64 = dec[z0:hi_ext].astype(np.float64)
    m = z1 - z0
    o = o64[:m]
    d = d64[:m]
    e = d - o

    p: dict = {
        "n": e.size,
        "min_e": float(e.min()),
        "max_e": float(e.max()),
        "sum_e": float(e.sum()),
        "sum_abs_e": float(np.abs(e).sum()),
        "sum_sq_e": float((e * e).sum()),
        "min_o": float(o.min()),
        "max_o": float(o.max()),
        "sum_o": float(o.sum()),
        "sum_sq_o": float((o * o).sum()),
        "min_r": math.inf,
        "max_r": -math.inf,
        "sum_r": 0.0,
        "cnt_r": 0.0,
    }
    mask = np.abs(o) > pwr_floor
    if mask.any():
        r = e[mask] / o[mask]
        p["min_r"] = float(r.min())
        p["max_r"] = float(r.max())
        p["sum_r"] = float(r.sum())
        p["cnt_r"] = float(r.size)

    # -- autocorrelation raw sums (slab + max_lag trailing halo) ----------
    p["ac_ab"] = np.zeros(max_lag + 1)
    p["ac_a"] = np.zeros(max_lag + 1)
    p["ac_b"] = np.zeros(max_lag + 1)
    p["ac_n"] = np.zeros(max_lag + 1, dtype=np.int64)
    if max_lag >= 1:
        halo = min(z1 + max_lag, nz) - z0
        eh = d64[:halo] - o64[:halo]
        for tau in range(1, max_lag + 1):
            hi = min(z1, nz - tau)  # core slices this slab owns at lag tau
            if z0 >= hi:
                continue
            depth = hi - z0
            core = eh[:depth, : ny - tau, : nx - tau]
            shift_z = eh[tau : depth + tau, : ny - tau, : nx - tau]
            shift_y = eh[:depth, tau:, : nx - tau]
            shift_x = eh[:depth, : ny - tau, tau:]
            b = shift_z + shift_y + shift_x
            p["ac_ab"][tau] = float((core * b).sum())
            p["ac_a"][tau] = float(core.sum())
            p["ac_b"][tau] = float(b.sum())
            p["ac_n"][tau] = core.size

    # -- SSIM windows whose z-origin lies in this slab --------------------
    p["ssim_total"] = 0.0
    p["ssim_count"] = 0
    if origins:
        w, step = ssim.window, ssim.step
        lo, hi = origins[0], origins[-1] + w
        ol, dl = o64[lo - z0 : hi - z0], d64[lo - z0 : hi - z0]
        s1 = box_sums(ol, w, step)
        s2 = box_sums(dl, w, step)
        sq1 = box_sums(ol * ol, w, step)
        sq2 = box_sums(dl * dl, w, step)
        s12 = box_sums(ol * dl, w, step)
        L = float(ssim.dynamic_range)
        c1 = (ssim.k1 * L) ** 2
        c2 = (ssim.k2 * L) ** 2
        volume = float(w**3)
        mu1 = s1 / volume
        mu2 = s2 / volume
        var1 = np.maximum(sq1 / volume - mu1 * mu1, 0.0)
        var2 = np.maximum(sq2 / volume - mu2 * mu2, 0.0)
        cov = s12 / volume - mu1 * mu2
        local = ((2 * mu1 * mu2 + c1) * (2 * cov + c2)) / (
            (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
        )
        p["ssim_total"] = float(local.sum())
        p["ssim_count"] = int(local.size)
    return p


def _slab_job(orig_handle, dec_handle, z0, z1, max_lag, ssim, pwr_floor):
    """Process-worker job: attach to the published field, do one slab."""
    orig = orig_handle.attach()
    dec = dec_handle.attach()
    partials = _slab_partials(orig, dec, z0, z1, max_lag, ssim, pwr_floor)
    orig = dec = None  # noqa: F841 — release the views before unmapping
    orig_handle.close()
    dec_handle.close()
    return partials


def _process_slab_partials(orig, dec, slabs, max_lag, ssim, pwr_floor, workers):
    """Fan slabs over the spawn pool; both fields published exactly once."""
    from repro.parallel.executor import _get_pool
    from repro.parallel.shm import shared_fields

    pool = _get_pool(workers)
    with shared_fields([orig, dec]) as (orig_handle, dec_handle):
        futures = [
            pool.submit(
                _slab_job, orig_handle, dec_handle, z0, z1, max_lag, ssim,
                pwr_floor,
            )
            for z0, z1 in slabs
        ]
        return [fut.result() for fut in futures]


def parallel_stream_field(
    orig: np.ndarray,
    dec: np.ndarray,
    max_lag: int = 10,
    ssim: Pattern3Config | None = None,
    pwr_floor: float = 0.0,
    workers: int | None = None,
    executor: str | None = None,
) -> StreamingResult:
    """Assess one huge field by fanning z-slabs across a worker pool.

    The parallel counterpart of driving one
    :class:`~repro.core.streaming.StreamingChecker` over the whole field:
    same accumulators, merged associatively.  Like streaming, SSIM needs
    an explicit ``dynamic_range`` (a slab cannot know the global range).

    ``executor`` selects the pool kind (``"thread"`` default,
    ``"process"`` for shared-memory worker processes, ``"serial"`` for an
    in-process slab loop — the bit-identical reference for the parallel
    modes at the same ``workers`` count).
    """
    from repro.parallel.executor import auto_workers, resolve_executor

    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if orig.shape != dec.shape:
        raise ShapeError(f"shape mismatch: {orig.shape} vs {dec.shape}")
    if orig.ndim != 3:
        raise ShapeError(f"parallel_stream_field expects 3-D fields, got {orig.shape}")
    nz, ny, nx = orig.shape
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    if max_lag >= min(ny, nx):
        raise ShapeError(
            f"max_lag {max_lag} must be < min plane extent {min(ny, nx)}"
        )
    if ssim is not None:
        if ssim.dynamic_range is None:
            raise CheckerError(
                "slab-parallel SSIM needs an explicit dynamic_range (a "
                "slab cannot see the global value range)"
            )
        if (
            window_positions(ny, ssim.window, ssim.step) == 0
            or window_positions(nx, ssim.window, ssim.step) == 0
        ):
            raise ShapeError("plane too small for the SSIM window")

    executor = resolve_executor(executor)
    workers = workers or auto_workers(
        nz, executor=executor, task_nbytes=orig.nbytes + dec.nbytes
    )
    slabs = z_chunks(nz, workers)

    def run(slab):
        z0, z1 = slab
        return _slab_partials(orig, dec, z0, z1, max_lag, ssim, pwr_floor)

    if len(slabs) == 1 or executor == "serial":
        parts = [run(s) for s in slabs]
    elif executor == "process":
        parts = _process_slab_partials(
            orig, dec, slabs, max_lag, ssim, pwr_floor, workers
        )
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(run, slabs))

    # -- grid-level merge (associative, same as the multi-GPU merge) ------
    n = sum(p["n"] for p in parts)
    pattern1 = result_from_sums(
        n,
        min(p["min_e"] for p in parts),
        max(p["max_e"] for p in parts),
        sum(p["sum_e"] for p in parts),
        sum(p["sum_abs_e"] for p in parts),
        sum(p["sum_sq_e"] for p in parts),
        min(p["min_o"] for p in parts),
        max(p["max_o"] for p in parts),
        sum(p["sum_o"] for p in parts),
        sum(p["sum_sq_o"] for p in parts),
        min(p["min_r"] for p in parts),
        max(p["max_r"] for p in parts),
        sum(p["sum_r"] for p in parts),
        sum(p["cnt_r"] for p in parts),
        None,
        None,
    )
    pattern1.extras["parallel_slabs"] = len(slabs)

    ac = None
    if max_lag >= 1:
        sum_e = sum(p["sum_e"] for p in parts)
        sum_sq_e = sum(p["sum_sq_e"] for p in parts)
        mu = sum_e / n
        var = max(sum_sq_e / n - mu * mu, 0.0)
        ac = np.empty(max_lag + 1)
        ac[0] = 1.0
        if var == 0.0:
            ac[1:] = 0.0
        else:
            for tau in range(1, max_lag + 1):
                ne = int(sum(int(p["ac_n"][tau]) for p in parts))
                if ne == 0:
                    ac[tau] = 0.0
                    continue
                ab = sum(p["ac_ab"][tau] for p in parts)
                a = sum(p["ac_a"][tau] for p in parts)
                b = sum(p["ac_b"][tau] for p in parts)
                centered = ab - mu * b - 3.0 * mu * a + 3.0 * ne * mu * mu
                ac[tau] = centered / 3.0 / ne / var

    ssim_value = None
    if ssim is not None:
        count = sum(p["ssim_count"] for p in parts)
        if count == 0:
            raise CheckerError("field too shallow for one full SSIM window")
        ssim_value = sum(p["ssim_total"] for p in parts) / count

    return StreamingResult(
        pattern1=pattern1, ssim=ssim_value, autocorrelation=ac
    )
