"""Parallel batch pipeline: fan assessments out over fields and z-slabs.

The paper saturates one GPU with fused kernels; a production assessment
service additionally has to saturate the *host* — many fields per
application, many applications per batch.  Two pool kinds back every
driver (``executor=`` selects one; ``"auto"`` picks for the host):

* **threads** share the input arrays zero-copy but serialise on the GIL
  for the NumPy reductions that hold it — kept as the portable fallback;
* **processes** attach to fields published via
  :mod:`repro.parallel.shm` — the job queue carries
  :class:`~repro.parallel.shm.SharedField` handles (name/shape/dtype,
  never bytes), so workers read the driver's pages zero-copy and each
  assessment owns a core.

* :func:`parallel_assess_dataset` / :func:`parallel_compare_pairs` — one
  task per field, per-field error isolation, results identical to the
  serial :func:`repro.core.batch.assess_dataset` regardless of worker
  count or executor (asserted in tests; the process path is
  bit-identical to serial);
* :func:`parallel_stream_field` — one huge field split into z-slabs,
  each worker producing the same mergeable accumulators
  :mod:`repro.core.streaming` carries, merged exactly like the
  multi-GPU merge.
"""

from repro.parallel.chunking import parallel_stream_field, z_chunks
from repro.parallel.executor import (
    auto_workers,
    parallel_assess_dataset,
    parallel_compare_pairs,
    process_available,
    resolve_executor,
    warm_process_pool,
)
from repro.parallel.shm import SharedField, shared_fields, shm_available

__all__ = [
    "SharedField",
    "auto_workers",
    "parallel_assess_dataset",
    "parallel_compare_pairs",
    "parallel_stream_field",
    "process_available",
    "resolve_executor",
    "shared_fields",
    "shm_available",
    "warm_process_pool",
    "z_chunks",
]
