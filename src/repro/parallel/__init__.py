"""Parallel batch pipeline: fan assessments out over fields and z-slabs.

The paper saturates one GPU with fused kernels; a production assessment
service additionally has to saturate the *host* — many fields per
application, many applications per batch.  NumPy releases the GIL inside
its C loops, so a thread pool gives real concurrency on multi-core hosts
without pickling the arrays:

* :func:`parallel_assess_dataset` / :func:`parallel_compare_pairs` — one
  task per field, per-field error isolation, results identical to the
  serial :func:`repro.core.batch.assess_dataset` regardless of worker
  count (asserted in tests);
* :func:`parallel_stream_field` — one huge field split into z-slabs,
  each worker producing the same mergeable accumulators
  :mod:`repro.core.streaming` carries, merged exactly like the
  multi-GPU merge.
"""

from repro.parallel.chunking import parallel_stream_field, z_chunks
from repro.parallel.executor import (
    auto_workers,
    parallel_assess_dataset,
    parallel_compare_pairs,
)

__all__ = [
    "auto_workers",
    "parallel_assess_dataset",
    "parallel_compare_pairs",
    "parallel_stream_field",
    "z_chunks",
]
