"""Zero-copy field publication over POSIX shared memory.

The process executor never pickles array data.  The driver *publishes*
each field into a :mod:`multiprocessing.shared_memory` segment and hands
workers a :class:`SharedField` — a handle that pickles as just
``(name, shape, dtype)``.  Workers :meth:`~SharedField.attach` to the
segment and get a read-only NumPy view onto the same physical pages, so
a 4 GB field costs a few hundred bytes on the job queue.

Ownership rules (the leak-proofing contract):

* the **creator** owns the segment and is the only party allowed to
  :meth:`~SharedField.unlink` it — drivers publish through
  :func:`shared_fields`, whose ``finally`` block unlinks even when a
  worker crashed mid-assessment;
* **attachers** only ever map and unmap — spawn-pool workers share the
  driver's resource-tracker process, so their attach-side registrations
  collapse into the owner's and the single unlink-by-owner settles the
  tracker's books (and if the driver is SIGKILLed before it can unlink,
  that same tracker reaps the registered segments);
* unlinking is idempotent — a segment already gone is not an error, so
  crash-cleanup paths can run unconditionally.
"""

from __future__ import annotations

import secrets
import threading
from contextlib import contextmanager
from multiprocessing import shared_memory

import numpy as np

from repro.errors import CheckerError

__all__ = [
    "SharedField",
    "active_segment_count",
    "shared_fields",
    "shm_available",
]

#: names of segments this process created and has not yet unlinked; the
#: leak probe for long-lived owners (server smoke tests assert this is
#: empty after shutdown) and for BrokenProcessPool recovery paths
_LIVE_SEGMENTS: set[str] = set()
_LIVE_LOCK = threading.Lock()


def active_segment_count() -> int:
    """Segments created by this process that are still linked."""
    with _LIVE_LOCK:
        return len(_LIVE_SEGMENTS)


class _AttachedArray(np.ndarray):
    """View subclass that pins the shared-memory mapping backing it.

    Without the pin, a garbage-collected handle would unmap the segment
    under a live view — a segfault, not an exception — so every view
    :meth:`SharedField.attach` hands out carries a reference to its
    :class:`~multiprocessing.shared_memory.SharedMemory`.
    """

    _keepalive = None


class SharedField:
    """Handle to one array published in a shared-memory segment.

    Pickles as ``(name, shape, dtype)`` only — the receiver re-attaches
    by name, the array bytes never travel through the pickle stream
    (property-tested: a handle to a field of any size pickles to a few
    hundred bytes).
    """

    __slots__ = ("name", "shape", "dtype", "_shm", "_owner")

    def __init__(self, name: str, shape, dtype):
        self.name = name
        self.shape = tuple(int(n) for n in shape)
        self.dtype = np.dtype(dtype)
        self._shm: shared_memory.SharedMemory | None = None
        self._owner = False

    # -- pickling: handle only, never data --------------------------------

    def __reduce__(self):
        return (SharedField, (self.name, self.shape, self.dtype.str))

    @property
    def nbytes(self) -> int:
        n = 1
        for extent in self.shape:
            n *= extent
        return n * self.dtype.itemsize

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, array: np.ndarray, name: str | None = None) -> "SharedField":
        """Publish ``array`` into a fresh segment; the caller is the owner."""
        array = np.ascontiguousarray(array)
        name = name or f"repro-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes), name=name
        )
        np.ndarray(array.shape, array.dtype, buffer=shm.buf)[...] = array
        handle = cls(shm.name, array.shape, array.dtype)
        handle._shm = shm
        handle._owner = True
        with _LIVE_LOCK:
            _LIVE_SEGMENTS.add(shm.name)
        return handle

    def attach(self) -> np.ndarray:
        """Map the segment and return a read-only view of the field."""
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(name=self.name)
        view = np.ndarray(self.shape, self.dtype, buffer=self._shm.buf)
        view = view.view(_AttachedArray)
        view._keepalive = self._shm
        view.flags.writeable = False
        return view

    def close(self) -> None:
        """Unmap this process's view; the segment itself survives."""
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # a live NumPy view still references the mapping — closing
                # now would pull pages out from under it; the mapping is
                # reclaimed when the process exits
                return
            self._shm = None

    def unlink(self) -> None:
        """Remove the segment (owner only); idempotent once gone."""
        if not self._owner:
            raise CheckerError(
                f"only the creator of shared field {self.name!r} may unlink it"
            )
        try:
            shm = self._shm or shared_memory.SharedMemory(name=self.name)
            shm.unlink()
        except FileNotFoundError:
            pass
        finally:
            with _LIVE_LOCK:
                _LIVE_SEGMENTS.discard(self.name)

    def destroy(self) -> None:
        """Owner teardown: unlink the name, then drop the local mapping."""
        if self._owner:
            self.unlink()
        self.close()

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "SharedField":
        return self

    def __exit__(self, *exc) -> bool:
        self.destroy()
        return False


@contextmanager
def shared_fields(arrays):
    """Publish many arrays at once, unlinking all of them on exit.

    The ``finally`` teardown runs whatever happened downstream — worker
    crash, pool breakage, KeyboardInterrupt — so a batch can never strand
    segments in ``/dev/shm``.
    """
    handles: list[SharedField] = []
    try:
        for array in arrays:
            handles.append(SharedField.create(array))
        yield handles
    finally:
        for handle in handles:
            try:
                handle.destroy()
            except Exception:  # noqa: BLE001 — best-effort cleanup
                pass


_SHM_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Can this platform create (and re-open) shared-memory segments?"""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=1)
            try:
                shared_memory.SharedMemory(name=probe.name).close()
            finally:
                probe.close()
                probe.unlink()
            _SHM_AVAILABLE = True
        except Exception:  # noqa: BLE001 — any failure means "not here"
            _SHM_AVAILABLE = False
    return _SHM_AVAILABLE
