"""Thread-pool execution of whole-dataset assessments.

One task per field; NumPy's C kernels release the GIL, so threads scale
with cores while sharing the input arrays zero-copy.  Reports are
inserted in the dataset's field order whatever order tasks finish in, so
parallel batches compare equal to serial ones.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.config.schema import CheckerConfig
from repro.core.batch import BatchAssessment
from repro.core.checker import CuZChecker
from repro.core.compare import assess_compressor, compare_data
from repro.datasets.fields import Dataset
from repro.errors import CheckerError
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "auto_workers",
    "parallel_assess_dataset",
    "parallel_compare_pairs",
]


def _available_cores() -> int:
    """Cores this process may actually run on, not the machine's total.

    ``os.cpu_count()`` reports the physical machine; under a cgroup /
    affinity-restricted container the scheduler may only hand us a
    subset, and oversubscribing a single core with pool threads is a
    measured slowdown (0.76x at 2 workers on a 1-core host — the pool
    adds dispatch overhead with no parallelism to buy it back; see
    EXPERIMENTS.md).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # non-Linux: no affinity API
        return os.cpu_count() or 1


def auto_workers(n_tasks: int | None = None) -> int:
    """Worker count: every *available* core, never more workers than tasks.

    Returns 1 on single-core (or affinity-restricted-to-one-core) hosts,
    which makes :func:`parallel_assess_dataset` degenerate to the plain
    serial loop in ``_run_isolated`` — no thread pool is built at all.
    """
    cores = _available_cores()
    if n_tasks is not None:
        return max(1, min(cores, n_tasks))
    return max(1, cores)


def _run_isolated(
    tasks,
    workers: int,
    on_error: str,
    batch: BatchAssessment,
    tracer: Tracer = NULL_TRACER,
):
    """Run ``(name, thunk)`` tasks, filling ``batch`` in task order.

    ``workers == 1`` degenerates to a plain loop (no pool overhead); the
    pool path submits everything and collects in submission order, so the
    report dict's iteration order is the dataset's field order either way.
    Every task runs inside a ``field`` span explicitly parented under the
    driver's root span — worker threads have empty span stacks, so the
    cross-thread nesting must be handed over, not inherited.
    """
    if on_error not in ("raise", "record"):
        raise CheckerError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    tasks = list(tasks)
    with tracer.span(
        f"parallel:{batch.dataset_name}", category="batch",
        tasks=len(tasks), workers=workers,
    ) as root:
        parent = root if tracer.enabled else None

        def _traced(name, thunk):
            with tracer.span(name, category="field", parent=parent):
                return thunk()

        if workers == 1:
            outcomes = []
            for name, thunk in tasks:
                try:
                    outcomes.append((name, _traced(name, thunk), None))
                except Exception as exc:  # noqa: BLE001 — isolation is the point
                    if on_error == "raise":
                        raise
                    outcomes.append((name, None, exc))
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    (name, pool.submit(_traced, name, thunk)) for name, thunk in tasks
                ]
                outcomes = []
                for name, fut in futures:
                    try:
                        outcomes.append((name, fut.result(), None))
                    except Exception as exc:  # noqa: BLE001
                        if on_error == "raise":
                            raise
                        outcomes.append((name, None, exc))
    for name, report, exc in outcomes:
        if exc is None:
            batch.reports[name] = report
        else:
            batch.errors[name] = f"{type(exc).__name__}: {exc}"
    return batch


def parallel_assess_dataset(
    dataset: Dataset,
    compressor,
    config: CheckerConfig | None = None,
    with_baselines: bool = False,
    workers: int | None = None,
    on_error: str = "raise",
    tracer: Tracer | None = None,
) -> BatchAssessment:
    """Parallel counterpart of :func:`repro.core.batch.assess_dataset`.

    Fans one compress+assess task per field across ``workers`` threads
    (auto-detected from the host's core count by default).  With
    ``on_error="record"``, a failing field becomes an entry in
    :attr:`~repro.core.batch.BatchAssessment.errors` instead of crashing
    the batch.
    """
    if len(dataset) == 0:
        raise CheckerError(f"dataset {dataset.name!r} has no fields")
    workers = workers or auto_workers(len(dataset))
    tracer = tracer if tracer is not None else NULL_TRACER
    batch = BatchAssessment(dataset_name=dataset.name)
    # one shared checker: the execution plan is built (and the config
    # validated) once, then every worker thread executes it — plans are
    # immutable and each execution gets its own backend context
    checker = CuZChecker(config=config, with_baselines=with_baselines, tracer=tracer)
    tasks = [
        (
            f.name,
            lambda data=f.data: assess_compressor(
                data, compressor, checker=checker
            ),
        )
        for f in dataset
    ]
    return _run_isolated(tasks, workers, on_error, batch, tracer=tracer)


def parallel_compare_pairs(
    pairs,
    config: CheckerConfig | None = None,
    with_baselines: bool = False,
    workers: int | None = None,
    on_error: str = "raise",
    dataset_name: str = "pairs",
    tracer: Tracer | None = None,
) -> BatchAssessment:
    """Assess pre-decompressed ``(name, orig, dec)`` pairs in parallel.

    The building block for services that receive already-decompressed
    payloads; same ordering and isolation guarantees as
    :func:`parallel_assess_dataset`.
    """
    pairs = [(name, np.asarray(o), np.asarray(d)) for name, o, d in pairs]
    if not pairs:
        raise CheckerError("no pairs to assess")
    workers = workers or auto_workers(len(pairs))
    tracer = tracer if tracer is not None else NULL_TRACER
    batch = BatchAssessment(dataset_name=dataset_name)
    checker = CuZChecker(config=config, with_baselines=with_baselines, tracer=tracer)
    tasks = [
        (name, lambda o=o, d=d: compare_data(o, d, checker=checker))
        for name, o, d in pairs
    ]
    return _run_isolated(tasks, workers, on_error, batch, tracer=tracer)
