"""Serial / thread / process execution of whole-dataset assessments.

One task per field.  The historical thread pool shares input arrays
zero-copy but serialises on the GIL for the NumPy reductions that hold
it, so on most hosts it *loses* to serial (the 0.76x oversubscription
finding in EXPERIMENTS.md).  The process executor fixes that: a
spawn-safe :class:`~concurrent.futures.ProcessPoolExecutor` whose
workers attach to fields published via
:mod:`repro.parallel.shm` — the job queue carries
:class:`~repro.parallel.shm.SharedField` handles (name/shape/dtype),
never array bytes, so each worker reads the same physical pages the
driver published and runs its assessment on a core of its own.

Reports are inserted in the dataset's field order whatever order tasks
finish in, so parallel batches compare equal to serial ones — and the
process path runs the *same* per-field code on the *same* bytes, so its
results are bit-identical to serial (property-tested).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import sys
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.config.schema import CheckerConfig
from repro.core.batch import BatchAssessment
from repro.core.checker import CuZChecker
from repro.core.compare import assess_compressor, compare_data
from repro.datasets.fields import Dataset
from repro.errors import CheckerError
from repro.parallel.shm import shared_fields, shm_available
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "active_pool_counts",
    "auto_workers",
    "cost_aware_workers",
    "parallel_assess_dataset",
    "parallel_compare_pairs",
    "process_available",
    "reset_fallback_warnings",
    "resolve_executor",
    "shutdown_pools",
    "warm_process_pool",
]

_EXECUTORS = ("serial", "thread", "process")


def _available_cores() -> int:
    """Cores this process may actually run on, not the machine's total.

    ``os.cpu_count()`` reports the physical machine; under a cgroup /
    affinity-restricted container the scheduler may only hand us a
    subset, and oversubscribing a single core with pool workers is a
    measured slowdown (0.76x at 2 workers on a 1-core host — the pool
    adds dispatch overhead with no parallelism to buy it back; see
    EXPERIMENTS.md).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # non-Linux: no affinity API
        return os.cpu_count() or 1


def _available_ram_bytes() -> int | None:
    """``MemAvailable`` from /proc/meminfo, or ``None`` off-Linux."""
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


#: per-worker working set as a multiple of one task's input bytes
#: (``task_nbytes`` = the orig+dec pair for batch jobs, one field for
#: audit workers).  Earlier values (8x, then 6x) modelled only the
#: o64/d64/err trio, but a tracemalloc high-water sweep on the reference
#: container (EXPERIMENTS.md "worker footprint") measured ~20x the pair
#: for a full-metric assessment — the fused workspace materialises the
#: whole derived-array family in float64 (pattern 1 alone peaks at 10x
#: the pair) — and ~16x the *field* for a streamed audit (the spectral
#: and SSIM accumulators are field-sized even when chunks stream).  20x
#: covers both shapes; on typical CI RAM (~7 GB free) it still admits
#: ~19 concurrent 9-MiB-pair workers, so the clamp only bites where it
#: should — genuinely RAM-tight multicore hosts.
_WORKER_FOOTPRINT_FACTOR = 20


def auto_workers(
    n_tasks: int | None = None,
    executor: str = "thread",
    task_nbytes: int = 0,
) -> int:
    """Worker count: every *available* core, never more workers than tasks.

    Returns 1 on single-core (or affinity-restricted-to-one-core) hosts,
    which makes the drivers degenerate to the plain serial loop — no
    pool is built at all.  For the process executor the count is
    additionally clamped by available RAM: shared segments and each
    worker's float64 intermediates are real memory, and a pool the host
    cannot back just trades the GIL for swap.
    """
    cores = _available_cores()
    workers = cores if n_tasks is None else max(1, min(cores, n_tasks))
    if executor == "process" and workers > 1 and task_nbytes > 0:
        budget = _available_ram_bytes()
        if budget is not None:
            # spend at most half of what's free on concurrent working sets
            per_worker = _WORKER_FOOTPRINT_FACTOR * task_nbytes
            affordable = max(1, int((budget // 2) // per_worker))
            workers = min(workers, affordable)
    return max(1, workers)


def cost_aware_workers(
    n_tasks: int, executor: str, task_nbytes: int = 0
) -> int:
    """Worker count chosen by predicted pool wall time.

    :func:`auto_workers` caps by cores and RAM; within that cap, the
    dispatch cost model (:func:`repro.engine.dispatch.predict_pool_seconds`)
    prices every candidate count — per-task IPC and per-worker spin-up
    for processes, the GIL-serial fraction for threads — and the argmin
    wins.  On a single-core host the cap is 1 and the drivers degenerate
    to the serial loop exactly as before.
    """
    cap = auto_workers(n_tasks, executor=executor, task_nbytes=task_nbytes)
    if cap <= 1 or executor == "serial":
        return cap
    try:
        from repro.engine.dispatch import (
            estimate_assess_seconds,
            predict_pool_seconds,
        )

        task_s = estimate_assess_seconds(task_nbytes)
        return min(
            range(1, cap + 1),
            key=lambda w: predict_pool_seconds(n_tasks, task_s, w, executor),
        )
    except Exception:  # noqa: BLE001 — the cap is always a safe answer
        return cap


def process_available() -> bool:
    """Can this platform run the process executor at all?

    Needs the ``spawn`` start method (``fork`` would duplicate whatever
    thread/lock state the driver holds) and working shared memory.
    """
    return "spawn" in multiprocessing.get_all_start_methods() and shm_available()


#: fallback reasons already reported; a long-lived owner (server, batch
#: loop) submitting many jobs on a host without shared memory should see
#: one RuntimeWarning, not one per job
_WARNED_FALLBACKS: set[str] = set()


def reset_fallback_warnings() -> None:
    """Forget which fallback reasons were already warned about (tests)."""
    _WARNED_FALLBACKS.clear()


def _fallback_to_threads(reason: str) -> str:
    if reason not in _WARNED_FALLBACKS:
        _WARNED_FALLBACKS.add(reason)
        warnings.warn(
            f"process executor unavailable ({reason}); falling back to threads",
            RuntimeWarning,
            stacklevel=3,
        )
    return "thread"


def resolve_executor(
    executor: str | None = None, config: CheckerConfig | None = None
) -> str:
    """Apply the executor precedence rule: argument > config > ``thread``.

    ``"auto"`` picks processes when the host can actually scale them
    (shared memory + spawn available and more than one usable core) and
    threads otherwise.  A forced ``"process"`` on a platform without
    shared memory degrades to threads with a one-line warning instead of
    failing — the CLI must never hard-fail over an executor choice.
    """
    name = executor or getattr(config, "executor", "") or "thread"
    if name == "auto":
        name = (
            "process"
            if process_available() and _available_cores() > 1
            else "thread"
        )
    if name not in _EXECUTORS:
        raise CheckerError(
            f"executor must be one of {', '.join(('auto',) + _EXECUTORS)}; "
            f"got {name!r}"
        )
    if name == "process" and not process_available():
        name = _fallback_to_threads("no shared memory or spawn start method")
    return name


# -- process pool ----------------------------------------------------------

_POOLS: dict[int, ProcessPoolExecutor] = {}


def _init_worker(parent_sys_path: list[str]) -> None:
    """Mirror the parent's ``sys.path`` so spawn children resolve
    ``repro`` from a source checkout (``PYTHONPATH=src``) exactly as the
    parent did."""
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """A persistent spawn pool per worker count.

    Spawning an interpreter plus importing NumPy costs ~1 s per worker;
    keeping pools alive across batches amortises that to zero for every
    call after the first.  ``atexit`` tears them down.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_init_worker,
            initargs=(list(sys.path),),
        )
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int, wait: bool = False) -> None:
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=True)


def shutdown_pools(wait: bool = False) -> None:
    """Release every persistent process pool.

    The explicit owner hook: a :class:`~repro.service.session.CheckerSession`
    calls this on close (``wait=True`` so worker interpreters are really
    gone before the caller asserts leak-freedom), and ``atexit`` calls it
    as the backstop for one-shot CLI runs.  Idempotent — pools rebuild
    lazily on the next batch.
    """
    for workers in list(_POOLS):
        _discard_pool(workers, wait=wait)


def active_pool_counts() -> tuple[int, ...]:
    """Worker counts of the pools currently alive (leak probes)."""
    return tuple(sorted(_POOLS))


atexit.register(shutdown_pools)


def _noop(_: int) -> None:
    return None


def warm_process_pool(workers: int) -> None:
    """Spawn and import every worker up front.

    Benchmarks (and latency-sensitive services) call this so the first
    timed batch measures steady-state execution, not interpreter
    start-up.
    """
    list(_get_pool(workers).map(_noop, range(workers * 3)))


# -- worker-side state -----------------------------------------------------

#: one checker per (config, with_baselines) pickle — a worker builds the
#: execution plan (and validates the config) once per distinct setup,
#: then serves every task of every batch with it
_WORKER_CHECKERS: dict[bytes, CuZChecker] = {}


def _worker_checker(blob: bytes) -> CuZChecker:
    checker = _WORKER_CHECKERS.get(blob)
    if checker is None:
        config, with_baselines = pickle.loads(blob)
        checker = CuZChecker(config=config, with_baselines=with_baselines)
        _WORKER_CHECKERS[blob] = checker
    return checker


def _export_trace(tracer: Tracer):
    """The picklable half of a worker's trace: ``(spans, epoch, pid)``."""
    if not tracer.enabled:
        return None
    return (tracer.spans, tracer._epoch, os.getpid())


def _portable_exc(exc: BaseException) -> BaseException:
    """An exception guaranteed to survive the trip back to the driver."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 — unpicklable custom exception
        return CheckerError(f"{type(exc).__name__}: {exc}")


def _job_compare(name, orig_handle, dec_handle, checker_blob, trace):
    """Worker job: assess one published (orig, dec) pair."""
    tracer = Tracer() if trace else NULL_TRACER
    orig = dec = None
    try:
        checker = _worker_checker(checker_blob)
        orig = orig_handle.attach()
        dec = dec_handle.attach()
        shm_bytes = orig_handle.nbytes + dec_handle.nbytes
        with tracer.span(
            name, category="field", bytes=shm_bytes,
            shm_bytes=shm_bytes, pid=os.getpid(),
        ):
            report = compare_data(
                orig, dec, checker=checker, tracer=tracer,
                extras={"shm_bytes": shm_bytes},
            )
        out = (report, None, _export_trace(tracer))
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        out = (None, _portable_exc(exc), _export_trace(tracer))
    # drop our view references *before* unmapping — close() keeps the
    # mapping alive if anything (e.g. a traceback frame) still exports it
    orig = dec = None  # noqa: F841
    orig_handle.close()
    dec_handle.close()
    return out


def _job_batch(job_fn, items):
    """Worker job: run several per-field jobs in one submit.

    Small fields drown in per-task IPC (pickle + queue round-trip per
    submit); grouping several of them per job amortises that while
    running the *same* per-field code on the same bytes, so batched
    results stay bit-identical to one-job-per-field.  Items execute in
    submission order; each keeps its own trace payload.
    """
    return [(name, job_fn(name, *args)) for name, args in items]


#: minimum input bytes one process-pool job should carry; fields smaller
#: than this are grouped until a job reaches it (or tasks run out)
_MIN_JOB_BYTES = 4 << 20


def _group_jobs(jobs, workers: int, task_nbytes: int):
    """Chunk ordered jobs so each group carries ≥ ``_MIN_JOB_BYTES``.

    Never groups beyond ``ceil(n / workers)`` — batching must not starve
    a worker that could otherwise run concurrently.
    """
    n = len(jobs)
    if n <= 1 or task_nbytes >= _MIN_JOB_BYTES:
        size = 1
    else:
        size = min(
            -(-_MIN_JOB_BYTES // max(task_nbytes, 1)),  # ceil division
            -(-n // workers),
        )
    return [jobs[i : i + size] for i in range(0, n, size)]


def _job_assess(name, handle, compressor_blob, checker_blob, trace):
    """Worker job: compress + assess one published field."""
    tracer = Tracer() if trace else NULL_TRACER
    data = None
    try:
        checker = _worker_checker(checker_blob)
        compressor = pickle.loads(compressor_blob)
        data = handle.attach()
        with tracer.span(
            name, category="field", bytes=handle.nbytes,
            shm_bytes=handle.nbytes, pid=os.getpid(),
        ):
            report = assess_compressor(
                data, compressor, checker=checker, tracer=tracer,
                extras={"shm_bytes": handle.nbytes},
            )
        out = (report, None, _export_trace(tracer))
    except Exception as exc:  # noqa: BLE001
        out = (None, _portable_exc(exc), _export_trace(tracer))
    data = None  # noqa: F841
    handle.close()
    return out


# -- drivers ---------------------------------------------------------------


def _check_on_error(on_error: str) -> None:
    if on_error not in ("raise", "record"):
        raise CheckerError(f"on_error must be 'raise' or 'record', got {on_error!r}")


def _run_isolated(
    tasks,
    workers: int,
    on_error: str,
    batch: BatchAssessment,
    tracer: Tracer = NULL_TRACER,
    executor: str = "thread",
):
    """Run ``(name, thunk)`` tasks in-process, filling ``batch`` in task order.

    ``workers == 1`` degenerates to a plain loop (no pool overhead); the
    pool path submits everything and collects in submission order, so the
    report dict's iteration order is the dataset's field order either way.
    Every task runs inside a ``field`` span explicitly parented under the
    driver's root span — worker threads have empty span stacks, so the
    cross-thread nesting must be handed over, not inherited.
    """
    _check_on_error(on_error)
    tasks = list(tasks)
    with tracer.span(
        f"parallel:{batch.dataset_name}", category="batch",
        tasks=len(tasks), workers=workers, executor=executor,
    ) as root:
        parent = root if tracer.enabled else None

        def _traced(name, thunk):
            with tracer.span(name, category="field", parent=parent):
                return thunk()

        if workers == 1:
            outcomes = []
            for name, thunk in tasks:
                try:
                    outcomes.append((name, _traced(name, thunk), None))
                except Exception as exc:  # noqa: BLE001 — isolation is the point
                    if on_error == "raise":
                        raise
                    outcomes.append((name, None, exc))
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    (name, pool.submit(_traced, name, thunk)) for name, thunk in tasks
                ]
                outcomes = []
                for name, fut in futures:
                    try:
                        outcomes.append((name, fut.result(), None))
                    except Exception as exc:  # noqa: BLE001
                        if on_error == "raise":
                            raise
                        outcomes.append((name, None, exc))
    for name, report, exc in outcomes:
        if exc is None:
            batch.reports[name] = report
        else:
            batch.errors[name] = f"{type(exc).__name__}: {exc}"
    return batch


def _run_process_jobs(
    jobs,
    job_fn,
    workers: int,
    on_error: str,
    batch: BatchAssessment,
    tracer: Tracer,
    shm_bytes: int,
    task_nbytes: int = 0,
):
    """Submit ``(name, args)`` jobs to the spawn pool, filling ``batch``.

    Small fields are grouped several-per-submit (see :func:`_group_jobs`)
    to amortise IPC; group results come back in submission order, so the
    report dict keeps the dataset's field order bit-identically.  Worker
    traces come home as picklable ``(spans, epoch, pid)`` payloads and
    merge under the driver's root span with one export lane per worker
    process — the same stable-id merge the multi-GPU ranks use.
    """
    _check_on_error(on_error)
    jobs = list(jobs)
    groups = _group_jobs(jobs, workers, task_nbytes)
    pool = _get_pool(workers)
    lanes: dict[int, int] = {}
    with tracer.span(
        f"parallel:{batch.dataset_name}", category="batch",
        tasks=len(jobs), jobs=len(groups), workers=workers,
        executor="process", shm_bytes=shm_bytes,
    ) as root:
        parent = root if tracer.enabled else None
        try:
            futures = [pool.submit(_job_batch, job_fn, group) for group in groups]
        except RuntimeError:
            # a previous batch broke this pool; build a fresh one
            _discard_pool(workers)
            pool = _get_pool(workers)
            futures = [pool.submit(_job_batch, job_fn, group) for group in groups]
        outcomes = []
        for group, fut in zip(groups, futures):
            try:
                results = fut.result()
            except BrokenProcessPool as broken:
                _discard_pool(workers)
                err = CheckerError(f"worker process died: {broken}")
                results = [(name, (None, err, None)) for name, _ in group]
            for name, (report, exc, trace) in results:
                if trace is not None:
                    spans, epoch, pid = trace
                    lane = lanes.setdefault(pid, len(lanes) + 1)
                    tracer.merge_spans(spans, epoch, parent=parent, track=lane)
                if exc is not None and on_error == "raise":
                    raise exc
                outcomes.append((name, report, exc))
    for name, report, exc in outcomes:
        if exc is None:
            batch.reports[name] = report
        else:
            batch.errors[name] = f"{type(exc).__name__}: {exc}"
    return batch


def parallel_assess_dataset(
    dataset: Dataset,
    compressor,
    config: CheckerConfig | None = None,
    with_baselines: bool = False,
    workers: int | None = None,
    on_error: str = "raise",
    tracer: Tracer | None = None,
    executor: str | None = None,
    session=None,
) -> BatchAssessment:
    """Parallel counterpart of :func:`repro.core.batch.assess_dataset`.

    Fans one compress+assess task per field across ``workers`` (threads
    by default; ``executor="process"`` publishes each field over shared
    memory and farms it to a spawn pool, sidestepping the GIL).  With
    ``on_error="record"``, a failing field becomes an entry in
    :attr:`~repro.core.batch.BatchAssessment.errors` instead of crashing
    the batch.
    """
    if len(dataset) == 0:
        raise CheckerError(f"dataset {dataset.name!r} has no fields")
    executor = resolve_executor(executor, config)
    fields = list(dataset)
    task_nbytes = max(f.data.nbytes for f in fields)
    workers = workers or cost_aware_workers(
        len(fields), executor=executor, task_nbytes=task_nbytes
    )
    tracer = tracer if tracer is not None else NULL_TRACER
    batch = BatchAssessment(dataset_name=dataset.name)

    if executor == "process" and workers > 1 and len(fields) > 1:
        try:
            compressor_blob = pickle.dumps(compressor)
        except Exception as exc:  # noqa: BLE001 — closure-bound codecs etc.
            executor = _fallback_to_threads(f"compressor does not pickle: {exc}")
        else:
            checker_blob = pickle.dumps((config, with_baselines))
            with shared_fields([f.data for f in fields]) as handles:
                jobs = [
                    (f.name, (h, compressor_blob, checker_blob, tracer.enabled))
                    for f, h in zip(fields, handles)
                ]
                return _run_process_jobs(
                    jobs, _job_assess, workers, on_error, batch, tracer,
                    shm_bytes=sum(h.nbytes for h in handles),
                    task_nbytes=task_nbytes,
                )

    # serial / thread path: one shared checker — the execution plan is
    # built (and the config validated) once, then every worker thread
    # executes it; plans are immutable and each execution gets its own
    # backend context.  A session hands over its persistent checker so
    # consecutive batches keep the warm plan memo.
    if session is not None:
        checker = session.checker_for(config, with_baselines)
    else:
        checker = CuZChecker(
            config=config, with_baselines=with_baselines, tracer=tracer
        )
    tasks = [
        (
            f.name,
            lambda data=f.data: assess_compressor(
                data, compressor, checker=checker
            ),
        )
        for f in fields
    ]
    effective = 1 if executor == "serial" else workers
    return _run_isolated(
        tasks, effective, on_error, batch, tracer=tracer, executor=executor
    )


def parallel_compare_pairs(
    pairs,
    config: CheckerConfig | None = None,
    with_baselines: bool = False,
    workers: int | None = None,
    on_error: str = "raise",
    dataset_name: str = "pairs",
    tracer: Tracer | None = None,
    executor: str | None = None,
    session=None,
) -> BatchAssessment:
    """Assess pre-decompressed ``(name, orig, dec)`` pairs in parallel.

    The building block for services that receive already-decompressed
    payloads; same ordering and isolation guarantees as
    :func:`parallel_assess_dataset`.  With ``executor="process"`` every
    pair is published to shared memory once and assessed by a worker
    process — zero-copy in, a small report out.
    """
    pairs = [(name, np.asarray(o), np.asarray(d)) for name, o, d in pairs]
    if not pairs:
        raise CheckerError("no pairs to assess")
    executor = resolve_executor(executor, config)
    task_nbytes = max(o.nbytes + d.nbytes for _, o, d in pairs)
    workers = workers or cost_aware_workers(
        len(pairs), executor=executor, task_nbytes=task_nbytes
    )
    tracer = tracer if tracer is not None else NULL_TRACER
    batch = BatchAssessment(dataset_name=dataset_name)

    if executor == "process" and workers > 1 and len(pairs) > 1:
        checker_blob = pickle.dumps((config, with_baselines))
        arrays = [a for _, o, d in pairs for a in (o, d)]
        with shared_fields(arrays) as handles:
            jobs = [
                (
                    name,
                    (handles[2 * i], handles[2 * i + 1], checker_blob,
                     tracer.enabled),
                )
                for i, (name, _, _) in enumerate(pairs)
            ]
            return _run_process_jobs(
                jobs, _job_compare, workers, on_error, batch, tracer,
                shm_bytes=sum(h.nbytes for h in handles),
                task_nbytes=task_nbytes,
            )

    if session is not None:
        checker = session.checker_for(config, with_baselines)
    else:
        checker = CuZChecker(
            config=config, with_baselines=with_baselines, tracer=tracer
        )
    tasks = [
        (name, lambda o=o, d=d: compare_data(o, d, checker=checker))
        for name, o, d in pairs
    ]
    effective = 1 if executor == "serial" else workers
    return _run_isolated(
        tasks, effective, on_error, batch, tracer=tracer, executor=executor
    )
