"""The archive-fleet auditor: walk, stream, checkpoint, resume.

``run_audit`` assesses every field of every bundle under a directory
tree with bounded memory:

* bundles are discovered deterministically (sorted manifest paths) and
  fields run in manifest order, so two runs over the same tree do the
  same work in the same order;
* each field streams through
  :meth:`~repro.io.bundle.DatasetBundle.iter_field_chunks` — one z-slab
  chunk resident at a time, verified against its manifest SHA-256 —
  into a :class:`~repro.core.streaming.StreamingChecker` obtained from
  a warm :class:`~repro.service.session.CheckerSession`;
* the decompressed side is produced chunk-wise by an error-bounded
  codec (compress + decompress per chunk), which keeps the pipeline
  deterministic per chunk and therefore replayable after a kill;
* after every chunk the exact stream state lands in an
  :class:`~repro.audit.checkpoint.AuditCheckpoint` (atomic replace), so
  a SIGKILL at any instant loses at most the chunk in flight — resuming
  replays from the last completed chunk and the final report is
  byte-for-byte identical to an uninterrupted run.

With ``workers`` > 1 (or ``"auto"`` on a multicore host) the audit fans
one field per process-pool worker (:mod:`repro.audit.parallel`): each
worker streams its field through its own warm session, checkpointing to
a worker-owned *part* file after every chunk, and the coordinator folds
the parts into the same single atomic checkpoint — so kill/resume, the
checkpoint contract, and the final report bytes are identical to the
serial path whatever the worker count.  ``"auto"`` prices the pool with
the dispatch cost model and stays serial when spin-up would not
amortise (small archives, single-core hosts).

SSIM streams exactly when the bundle manifest carries the field's value
range (v2/v3 bundles record it at write time — the global dynamic range
a mid-stream checker cannot otherwise know); v1 bundles audit without
SSIM rather than paying a second pass.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
from dataclasses import replace
from pathlib import Path

from repro.audit.checkpoint import (
    AuditCheckpoint,
    parts_dir_for,
    remove_parts,
)
from repro.errors import CheckerError, DataIOError
from repro.io.bundle import load_bundle
from repro.telemetry.tracer import NULL_TRACER

__all__ = [
    "AuditInterrupted",
    "REPORT_FORMAT",
    "discover_bundles",
    "resolve_audit_workers",
    "run_audit",
]

REPORT_FORMAT = "cuzchecker-audit-report-v1"


class AuditInterrupted(CheckerError):
    """Raised by the ``stop_after_chunks`` test hook: the deterministic
    stand-in for a SIGKILL, thrown *after* the chunk's checkpoint is on
    disk so tests can resume exactly like a killed process would.  In a
    parallel audit the cap applies per worker (each stops after that
    many chunks of its own field), which keeps the hook deterministic
    whatever the scheduling."""

    def __init__(self, chunks_processed: int):
        self.chunks_processed = chunks_processed
        super().__init__(
            f"audit interrupted after {chunks_processed} chunk(s) (test hook)"
        )


def discover_bundles(root: str | Path) -> list[Path]:
    """Bundle directories under ``root``, sorted by relative path."""
    root = Path(root)
    if not root.is_dir():
        raise DataIOError(f"audit root {root} is not a directory")
    found = sorted(p.parent for p in root.rglob("manifest.json"))
    if not found:
        raise DataIOError(f"no bundles (manifest.json) found under {root}")
    return found


def _codec_for(codec: str, codec_args: dict | None):
    from repro.compressors.registry import get_compressor

    return get_compressor(codec, **(codec_args or {}))


def _fingerprint(
    root: Path,
    bundles: list[Path],
    codec: str,
    codec_args: dict,
    chunk_nz: int | None,
    max_lag: int,
    use_ssim: bool,
) -> dict:
    """Everything the resumed run must agree on with the killed run.

    Deliberately excludes the worker count: a serial run may resume a
    killed parallel one (and vice versa) because both maintain the same
    checkpoint contract.
    """
    listing = []
    for path in bundles:
        b = load_bundle(path)
        listing.append(
            {
                "rel": path.relative_to(root).as_posix(),
                "name": b.name,
                "shape": list(b.shape),
                "dtype": b.dtype,
                "version": b.version,
                "fields": list(b.field_names),
            }
        )
    return {
        "codec": codec,
        "codec_args": json.loads(json.dumps(codec_args, sort_keys=True)),
        "chunk_nz": chunk_nz,
        "max_lag": max_lag,
        "use_ssim": use_ssim,
        "bundles": listing,
    }


def _fingerprint_sha(fingerprint: dict) -> str:
    """Short digest stamped on part files (the full fingerprint lives in
    the main checkpoint only)."""
    blob = json.dumps(fingerprint, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def _write_report_atomic(report: dict, out_path: Path) -> None:
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_name(
        f".{out_path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    tmp.write_text(text)
    os.replace(tmp, out_path)


def resolve_audit_workers(
    workers: int | str | None,
    n_pending: int,
    field_nbytes: int,
    chunk_nbytes: int,
) -> int:
    """How many audit workers to actually run.

    ``"auto"`` (or ``None``) consults the host — processes must be
    available and the :func:`~repro.parallel.executor.auto_workers`
    core/RAM cap (clamped by *field* bytes: chunks stream, but each
    worker's spectral/SSIM accumulators are field-sized) must exceed
    one — then prices every candidate count
    with the dispatch cost model
    (:func:`~repro.engine.dispatch.predict_pool_seconds` over per-field
    task estimates) and keeps the argmin.  An archive too small to
    amortise pool spin-up prices out at 1 and runs the plain serial
    loop.  An explicit integer is honoured even on a single-core host
    (CI forces 2 there to exercise the coordinator), capped only by the
    number of pending fields; ``"serial"`` is 1.
    """
    if isinstance(workers, str):
        if workers == "serial":
            return 1
        if workers != "auto":
            try:
                workers = int(workers)
            except ValueError:
                raise CheckerError(
                    f"audit workers must be 'auto', 'serial', or a positive "
                    f"integer; got {workers!r}"
                ) from None
    if workers is None or workers == "auto":
        if n_pending <= 1:
            return 1
        from repro.parallel.executor import auto_workers, process_available

        if not process_available():
            return 1
        # RAM-clamp by *field* bytes, not chunk bytes: chunks stream,
        # but a worker's spectral/SSIM accumulators are field-sized
        # (measured ~16x the field; EXPERIMENTS.md "worker footprint")
        cap = auto_workers(
            n_pending, executor="process", task_nbytes=field_nbytes
        )
        if cap <= 1:
            return 1
        try:
            from repro.engine.dispatch import (
                estimate_assess_seconds,
                predict_pool_seconds,
            )

            task_s = estimate_assess_seconds(field_nbytes)
            serial_s = n_pending * task_s
            best = min(
                range(1, cap + 1),
                key=lambda w: predict_pool_seconds(
                    n_pending, task_s, w, "process"
                ),
            )
            best_s = predict_pool_seconds(n_pending, task_s, best, "process")
            return best if best > 1 and best_s < serial_s else 1
        except Exception:  # noqa: BLE001 — serial is always a safe answer
            return 1
    workers = int(workers)
    if workers < 1:
        raise CheckerError(f"audit workers must be >= 1, got {workers}")
    return max(1, min(workers, max(1, n_pending)))


def run_audit(
    root: str | Path,
    out_path: str | Path | None = None,
    checkpoint_path: str | Path | None = None,
    codec: str = "sz",
    codec_args: dict | None = None,
    chunk_nz: int | None = None,
    max_lag: int | None = None,
    use_ssim: bool = True,
    verify: bool = True,
    resume: bool = True,
    workers: int | str | None = None,
    session=None,
    tracer=None,
    progress=None,
    stop_after_chunks: int | None = None,
) -> dict:
    """Assess every field under ``root``; resumable, bounded memory.

    Parameters
    ----------
    root:
        Directory tree containing bundle directories (any nesting).
    out_path:
        Final JSON report (default ``<root>/audit_report.json``),
        written atomically; byte-for-byte deterministic for a given
        tree + configuration — *including* the worker count, which is
        what the parallel kill/resume CI job asserts.
    checkpoint_path:
        Checkpoint file (default ``<root>/.audit_checkpoint.json``),
        replaced atomically after every chunk and deleted once the
        report is on disk.  A parallel run adds a sibling
        ``<checkpoint>.parts/`` directory of worker-owned part files,
        removed with the checkpoint.
    codec / codec_args:
        The chunk-wise compressor under assessment (registry name +
        constructor kwargs).  Compression is applied per chunk, so the
        error structure is chunk-local — documented audit semantics,
        and the property that makes resume exact.
    chunk_nz:
        Slab depth for v1 (unchunked) bundles; v2/v3 bundles always
        stream their manifest chunk table.
    max_lag:
        Autocorrelation lags (default: the session config's
        ``pattern2.max_lag``), clamped per field to fit the plane.
    use_ssim:
        Stream SSIM for fields whose manifest records a value range.
    verify:
        Check per-chunk SHA-256 digests while streaming (v2/v3 bundles).
    resume:
        Continue from an existing checkpoint; ``False`` starts fresh.
    workers:
        ``"auto"`` (default, also read from the session config's
        ``audit_workers``), ``"serial"``, or an explicit count — see
        :func:`resolve_audit_workers`.  Not part of the resume
        fingerprint: a serial run may resume a killed parallel one.
    session:
        A :class:`~repro.service.session.CheckerSession` to run on (one
        is created and closed internally when omitted).
    progress:
        Optional callback ``(event: str, payload: dict)`` for CLI
        progress lines.
    stop_after_chunks:
        Test hook — raise :class:`AuditInterrupted` after this many
        chunks were processed *in this run* (checkpoint already saved).
        Parallel runs apply the cap per worker.
    """
    root = Path(root)
    out_path = Path(out_path) if out_path else root / "audit_report.json"
    checkpoint = AuditCheckpoint(
        checkpoint_path if checkpoint_path else root / ".audit_checkpoint.json"
    )
    parts_dir = parts_dir_for(checkpoint.path)
    if codec_args is None and codec in ("sz", "sz2", "uniform_quant"):
        codec_args = {"rel_bound": 1e-3}
    codec_args = dict(codec_args or {})
    compressor = _codec_for(codec, codec_args)

    own_session = session is None
    if own_session:
        from repro.service.session import CheckerSession

        session = CheckerSession()
        session.open()
    tracer = tracer if tracer is not None else session.tracer
    if tracer is None:
        tracer = NULL_TRACER
    notify = progress or (lambda event, payload: None)

    try:
        bundles = discover_bundles(root)
        cfg = session.config
        lag_default = cfg.pattern2.max_lag if max_lag is None else int(max_lag)
        if workers is None:
            workers = getattr(cfg, "audit_workers", "auto")
        fingerprint = _fingerprint(
            root, bundles, codec, codec_args, chunk_nz, lag_default, use_ssim
        )
        fp_sha = _fingerprint_sha(fingerprint)

        completed: dict[str, dict] = {}
        in_flight: dict[str, dict] = {}
        if resume:
            snapshot = checkpoint.load()
            if snapshot is not None:
                if snapshot["fingerprint"] != fingerprint:
                    raise CheckerError(
                        f"checkpoint {checkpoint.path} was written by a "
                        "different audit configuration or bundle tree; "
                        "rerun with resume disabled (--fresh) to discard it"
                    )
                completed = {r["key"]: r for r in snapshot["completed"]}
                current = snapshot.get("in_progress")
                if current is not None:
                    in_flight[current["key"]] = current
                for key, state in (snapshot.get("in_flight") or {}).items():
                    in_flight[key] = state
            _overlay_parts(parts_dir, fp_sha, completed, in_flight)
            if completed or in_flight:
                notify(
                    "resume",
                    {
                        "completed": len(completed),
                        "mid_field": bool(in_flight),
                    },
                )
        else:
            checkpoint.delete()
            remove_parts(parts_dir)

        # deterministic field inventory: (bundle, rel, field, key, chunks)
        inventory = []
        field_nbytes = 0
        chunk_nbytes = 0
        for bundle_path in bundles:
            bundle = load_bundle(bundle_path)
            rel = bundle_path.relative_to(root).as_posix()
            itemsize = 4 if bundle.dtype == "float32" else 8
            nbytes = math.prod(bundle.shape) * itemsize
            for field_name in bundle.field_names:
                key = f"{rel}::{field_name}"
                table = bundle.field_chunks(field_name, chunk_nz)
                inventory.append((bundle, rel, field_name, key, len(table)))
                if key not in completed:
                    field_nbytes = max(field_nbytes, nbytes)
                    chunk_nbytes = max(
                        chunk_nbytes, max(c.nbytes for c in table)
                    )
        pending = [e for e in inventory if e[3] not in completed]
        n_workers = resolve_audit_workers(
            workers, len(pending), field_nbytes, chunk_nbytes
        )

        if n_workers > 1 and len(pending) > 1:
            from repro.audit.parallel import run_parallel_audit

            run_parallel_audit(
                pending=pending,
                workers=n_workers,
                checkpoint=checkpoint,
                parts_dir=parts_dir,
                fingerprint=fingerprint,
                fp_sha=fp_sha,
                completed=completed,
                in_flight=in_flight,
                codec=codec,
                codec_args=codec_args,
                chunk_nz=chunk_nz,
                lag_default=lag_default,
                use_ssim=use_ssim,
                verify=verify,
                config=cfg,
                tracer=tracer,
                notify=notify,
                stop_after_chunks=stop_after_chunks,
            )
        else:
            _run_serial(
                pending,
                compressor,
                session,
                tracer,
                cfg,
                lag_default,
                use_ssim,
                verify,
                chunk_nz,
                checkpoint,
                fingerprint,
                completed,
                in_flight,
                notify,
                stop_after_chunks,
            )

        results = [completed[key] for _, _, _, key, _ in inventory]
        report = {
            "format": REPORT_FORMAT,
            "codec": codec,
            "codec_args": codec_args,
            "chunk_nz": chunk_nz,
            "max_lag": lag_default,
            "use_ssim": use_ssim,
            "fields": results,
            "totals": {
                "bundles": len(bundles),
                "fields": len(results),
                "chunks": sum(r["chunks"] for r in results),
                "bytes_streamed": sum(r["bytes_streamed"] for r in results),
            },
        }
        _write_report_atomic(report, out_path)
        checkpoint.delete()
        remove_parts(parts_dir)
        notify("done", {"out": str(out_path), "totals": report["totals"]})
        return report
    finally:
        if own_session:
            session.close(wait=True)


def _overlay_parts(parts_dir, fp_sha, completed, in_flight) -> None:
    """Fold leftover worker part files into the resume state.

    Parts may be *newer* than the last coordinator merge (a kill can
    land between a worker's save and the merge), so they win over the
    main checkpoint's entries.  Parts from a different fingerprint are
    ignored.
    """
    if not Path(parts_dir).is_dir():
        return
    for path in sorted(Path(parts_dir).glob("part-*.json")):
        try:
            doc = AuditCheckpoint(path).load()
        except DataIOError:
            continue
        if doc is None or doc.get("fingerprint_sha") != fp_sha:
            continue
        key = doc.get("key")
        if not key or key in completed:
            continue
        if doc.get("done"):
            completed[key] = doc["result"]
            in_flight.pop(key, None)
        else:
            in_flight[key] = {
                "key": key,
                "chunks_done": doc["chunks_done"],
                "bytes_streamed": doc["bytes_streamed"],
                "stream": doc["stream"],
            }


def _run_serial(
    pending,
    compressor,
    session,
    tracer,
    cfg,
    lag_default,
    use_ssim,
    verify,
    chunk_nz,
    checkpoint,
    fingerprint,
    completed,
    in_flight,
    notify,
    stop_after_chunks,
):
    """The single-process audit loop: one field at a time, checkpoint
    after every chunk.  ``in_flight`` states not yet consumed (left by a
    killed parallel run) ride along in every save so a later kill keeps
    their progress too."""

    def save_checkpoint(current: dict | None) -> None:
        payload = {
            "fingerprint": fingerprint,
            "completed": list(completed.values()),
            "in_progress": current,
        }
        if in_flight:
            payload["in_flight"] = in_flight
        checkpoint.save(payload)

    processed = 0
    for bundle, rel, field_name, key, n_chunks in pending:
        resume_state = in_flight.pop(key, None)

        def on_chunk(info, chunks_done, bytes_streamed, checker):
            nonlocal processed
            save_checkpoint(
                {
                    "key": key,
                    "chunks_done": chunks_done,
                    "bytes_streamed": bytes_streamed,
                    "stream": checker.state_dict(),
                }
            )
            processed += 1
            notify(
                "chunk",
                {
                    "key": key,
                    "chunk": chunks_done,
                    "of": n_chunks,
                    "bytes": bytes_streamed,
                },
            )
            if (
                stop_after_chunks is not None
                and processed >= stop_after_chunks
            ):
                raise AuditInterrupted(processed)

        result = _stream_field(
            bundle,
            rel,
            field_name,
            key,
            compressor,
            session,
            tracer,
            cfg,
            lag_default,
            use_ssim,
            verify,
            chunk_nz,
            resume_state,
            on_chunk,
        )
        completed[key] = result
        save_checkpoint(None)
        notify("field_done", {"key": key, "result": result})


def _ssim_config(bundle, field_name, cfg, use_ssim):
    """The streaming SSIM configuration for one field, or ``None``.

    Streaming SSIM needs the global dynamic range up front; only v2/v3
    manifests record it.  Degenerate (constant) fields and fields
    smaller than the window skip SSIM deterministically.
    """
    if not use_ssim:
        return None
    rng = bundle.value_range(field_name)
    if rng is None or rng[1] <= rng[0]:
        return None
    p3 = cfg.pattern3
    if min(bundle.shape) < p3.window:
        return None
    return replace(p3, dynamic_range=rng[1] - rng[0])


def _stream_field(
    bundle,
    rel,
    field_name,
    key,
    compressor,
    session,
    tracer,
    cfg,
    lag_default,
    use_ssim,
    verify,
    chunk_nz,
    resume_state,
    on_chunk,
):
    """Stream one field chunk-by-chunk into a fresh streaming checker.

    The shared core of the serial loop and every parallel worker — the
    same code path on the same bytes is what makes reports byte-identical
    across worker counts.  ``on_chunk(info, chunks_done, bytes_streamed,
    checker)`` runs after every chunk update (checkpointing lives there)
    and may raise :class:`AuditInterrupted`.
    """
    ny, nx = bundle.shape[1], bundle.shape[2]
    lag = max(0, min(lag_default, min(ny, nx) - 1))
    ssim_cfg = _ssim_config(bundle, field_name, cfg, use_ssim)
    checker = session.open_stream(
        (ny, nx),
        max_lag=lag,
        ssim=ssim_cfg,
        pwr_floor=cfg.pattern1.pwr_floor,
        tracer=tracer,
    )
    start = 0
    bytes_streamed = 0
    if resume_state is not None and resume_state.get("key") == key:
        checker.load_state(resume_state["stream"])
        start = int(resume_state["chunks_done"])
        bytes_streamed = int(resume_state["bytes_streamed"])

    chunk_table = bundle.field_chunks(field_name, chunk_nz)
    with tracer.span(
        "audit_field",
        category="job",
        bundle=rel,
        field=field_name,
        chunks=len(chunk_table),
        resumed_at=start,
    ) as field_span:
        for info, block in bundle.iter_field_chunks(
            field_name, chunk_nz=chunk_nz, verify=verify, start=start
        ):
            with tracer.span(
                "chunk_read",
                category="chunk",
                bytes=info.nbytes,
                stored_bytes=info.stored,
                bundle=rel,
                field=field_name,
                chunk=info.index,
                z0=info.z0,
            ):
                dec = compressor.decompress(compressor.compress(block))
            checker.update(block, dec)
            bytes_streamed += info.nbytes
            on_chunk(info, info.index + 1, bytes_streamed, checker)
        field_span.attrs["bytes_streamed"] = bytes_streamed

    res = checker.finalize()
    scalars = {k: float(v) for k, v in res.scalars().items()}
    return {
        "key": key,
        "bundle": rel,
        "field": field_name,
        "shape": list(bundle.shape),
        "dtype": bundle.dtype,
        "chunks": len(chunk_table),
        "bytes_streamed": bytes_streamed,
        "scalars": scalars,
        "autocorrelation": (
            [float(v) for v in res.autocorrelation]
            if res.autocorrelation is not None
            else None
        ),
        "ssim": float(res.ssim) if res.ssim is not None else None,
    }
