"""The archive-fleet auditor: walk, stream, checkpoint, resume.

``run_audit`` assesses every field of every bundle under a directory
tree with bounded memory:

* bundles are discovered deterministically (sorted manifest paths) and
  fields run in manifest order, so two runs over the same tree do the
  same work in the same order;
* each field streams through
  :meth:`~repro.io.bundle.DatasetBundle.iter_field_chunks` — one z-slab
  chunk resident at a time, verified against its manifest SHA-256 —
  into a :class:`~repro.core.streaming.StreamingChecker` obtained from
  a warm :class:`~repro.service.session.CheckerSession`;
* the decompressed side is produced chunk-wise by an error-bounded
  codec (compress + decompress per chunk), which keeps the pipeline
  deterministic per chunk and therefore replayable after a kill;
* after every chunk the exact stream state lands in an
  :class:`~repro.audit.checkpoint.AuditCheckpoint` (atomic replace), so
  a SIGKILL at any instant loses at most the chunk in flight — resuming
  replays from the last completed chunk and the final report is
  byte-for-byte identical to an uninterrupted run.

SSIM streams exactly when the bundle manifest carries the field's value
range (v2 bundles record it at write time — the global dynamic range a
mid-stream checker cannot otherwise know); v1 bundles audit without
SSIM rather than paying a second pass.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import replace
from pathlib import Path

from repro.audit.checkpoint import AuditCheckpoint
from repro.errors import CheckerError, DataIOError
from repro.io.bundle import load_bundle
from repro.telemetry.tracer import NULL_TRACER

__all__ = [
    "AuditInterrupted",
    "REPORT_FORMAT",
    "discover_bundles",
    "run_audit",
]

REPORT_FORMAT = "cuzchecker-audit-report-v1"


class AuditInterrupted(CheckerError):
    """Raised by the ``stop_after_chunks`` test hook: the deterministic
    stand-in for a SIGKILL, thrown *after* the chunk's checkpoint is on
    disk so tests can resume exactly like a killed process would."""

    def __init__(self, chunks_processed: int):
        self.chunks_processed = chunks_processed
        super().__init__(
            f"audit interrupted after {chunks_processed} chunk(s) (test hook)"
        )


def discover_bundles(root: str | Path) -> list[Path]:
    """Bundle directories under ``root``, sorted by relative path."""
    root = Path(root)
    if not root.is_dir():
        raise DataIOError(f"audit root {root} is not a directory")
    found = sorted(p.parent for p in root.rglob("manifest.json"))
    if not found:
        raise DataIOError(f"no bundles (manifest.json) found under {root}")
    return found


def _codec_for(codec: str, codec_args: dict | None):
    from repro.compressors.registry import get_compressor

    return get_compressor(codec, **(codec_args or {}))


def _fingerprint(
    root: Path,
    bundles: list[Path],
    codec: str,
    codec_args: dict,
    chunk_nz: int | None,
    max_lag: int,
    use_ssim: bool,
) -> dict:
    """Everything the resumed run must agree on with the killed run."""
    listing = []
    for path in bundles:
        b = load_bundle(path)
        listing.append(
            {
                "rel": path.relative_to(root).as_posix(),
                "name": b.name,
                "shape": list(b.shape),
                "dtype": b.dtype,
                "version": b.version,
                "fields": list(b.field_names),
            }
        )
    return {
        "codec": codec,
        "codec_args": json.loads(json.dumps(codec_args, sort_keys=True)),
        "chunk_nz": chunk_nz,
        "max_lag": max_lag,
        "use_ssim": use_ssim,
        "bundles": listing,
    }


def _write_report_atomic(report: dict, out_path: Path) -> None:
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_name(
        f".{out_path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    tmp.write_text(text)
    os.replace(tmp, out_path)


def run_audit(
    root: str | Path,
    out_path: str | Path | None = None,
    checkpoint_path: str | Path | None = None,
    codec: str = "sz",
    codec_args: dict | None = None,
    chunk_nz: int | None = None,
    max_lag: int | None = None,
    use_ssim: bool = True,
    verify: bool = True,
    resume: bool = True,
    session=None,
    tracer=None,
    progress=None,
    stop_after_chunks: int | None = None,
) -> dict:
    """Assess every field under ``root``; resumable, bounded memory.

    Parameters
    ----------
    root:
        Directory tree containing bundle directories (any nesting).
    out_path:
        Final JSON report (default ``<root>/audit_report.json``),
        written atomically; byte-for-byte deterministic for a given
        tree + configuration, which is what the kill/resume CI job
        asserts.
    checkpoint_path:
        Checkpoint file (default ``<root>/.audit_checkpoint.json``),
        replaced atomically after every chunk and deleted once the
        report is on disk.
    codec / codec_args:
        The chunk-wise compressor under assessment (registry name +
        constructor kwargs).  Compression is applied per chunk, so the
        error structure is chunk-local — documented audit semantics,
        and the property that makes resume exact.
    chunk_nz:
        Slab depth for v1 (unchunked) bundles; v2 bundles always stream
        their manifest chunk table.
    max_lag:
        Autocorrelation lags (default: the session config's
        ``pattern2.max_lag``), clamped per field to fit the plane.
    use_ssim:
        Stream SSIM for fields whose manifest records a value range.
    verify:
        Check per-chunk SHA-256 digests while streaming (v2 bundles).
    resume:
        Continue from an existing checkpoint; ``False`` starts fresh.
    session:
        A :class:`~repro.service.session.CheckerSession` to run on (one
        is created and closed internally when omitted).
    progress:
        Optional callback ``(event: str, payload: dict)`` for CLI
        progress lines.
    stop_after_chunks:
        Test hook — raise :class:`AuditInterrupted` after this many
        chunks were processed *in this run* (checkpoint already saved).
    """
    root = Path(root)
    out_path = Path(out_path) if out_path else root / "audit_report.json"
    checkpoint = AuditCheckpoint(
        checkpoint_path if checkpoint_path else root / ".audit_checkpoint.json"
    )
    if codec_args is None and codec in ("sz", "sz2", "uniform_quant"):
        codec_args = {"rel_bound": 1e-3}
    codec_args = dict(codec_args or {})
    compressor = _codec_for(codec, codec_args)

    own_session = session is None
    if own_session:
        from repro.service.session import CheckerSession

        session = CheckerSession()
        session.open()
    tracer = tracer if tracer is not None else session.tracer
    if tracer is None:
        tracer = NULL_TRACER
    notify = progress or (lambda event, payload: None)

    try:
        bundles = discover_bundles(root)
        cfg = session.config
        lag_default = cfg.pattern2.max_lag if max_lag is None else int(max_lag)
        fingerprint = _fingerprint(
            root, bundles, codec, codec_args, chunk_nz, lag_default, use_ssim
        )

        completed: dict[str, dict] = {}
        in_progress: dict | None = None
        if resume:
            snapshot = checkpoint.load()
            if snapshot is not None:
                if snapshot["fingerprint"] != fingerprint:
                    raise CheckerError(
                        f"checkpoint {checkpoint.path} was written by a "
                        "different audit configuration or bundle tree; "
                        "rerun with resume disabled (--fresh) to discard it"
                    )
                completed = {r["key"]: r for r in snapshot["completed"]}
                in_progress = snapshot.get("in_progress")
                notify(
                    "resume",
                    {
                        "completed": len(completed),
                        "mid_field": in_progress is not None,
                    },
                )
        else:
            checkpoint.delete()

        def save_checkpoint(current: dict | None) -> None:
            checkpoint.save(
                {
                    "fingerprint": fingerprint,
                    "completed": list(completed.values()),
                    "in_progress": current,
                }
            )

        processed_chunks = 0
        results: list[dict] = []
        for bundle_path in bundles:
            bundle = load_bundle(bundle_path)
            rel = bundle_path.relative_to(root).as_posix()
            for field_name in bundle.field_names:
                key = f"{rel}::{field_name}"
                if key in completed:
                    results.append(completed[key])
                    continue
                result, processed_chunks = _audit_field(
                    bundle,
                    rel,
                    field_name,
                    key,
                    compressor,
                    session,
                    tracer,
                    cfg,
                    lag_default,
                    use_ssim,
                    verify,
                    chunk_nz,
                    in_progress,
                    save_checkpoint,
                    notify,
                    processed_chunks,
                    stop_after_chunks,
                )
                in_progress = None
                completed[key] = result
                results.append(result)
                save_checkpoint(None)
                notify("field_done", {"key": key, "result": result})

        report = {
            "format": REPORT_FORMAT,
            "codec": codec,
            "codec_args": codec_args,
            "chunk_nz": chunk_nz,
            "max_lag": lag_default,
            "use_ssim": use_ssim,
            "fields": results,
            "totals": {
                "bundles": len(bundles),
                "fields": len(results),
                "chunks": sum(r["chunks"] for r in results),
                "bytes_streamed": sum(r["bytes_streamed"] for r in results),
            },
        }
        _write_report_atomic(report, out_path)
        checkpoint.delete()
        notify("done", {"out": str(out_path), "totals": report["totals"]})
        return report
    finally:
        if own_session:
            session.close(wait=True)


def _ssim_config(bundle, field_name, cfg, use_ssim):
    """The streaming SSIM configuration for one field, or ``None``.

    Streaming SSIM needs the global dynamic range up front; only v2
    manifests record it.  Degenerate (constant) fields and fields
    smaller than the window skip SSIM deterministically.
    """
    if not use_ssim:
        return None
    rng = bundle.value_range(field_name)
    if rng is None or rng[1] <= rng[0]:
        return None
    p3 = cfg.pattern3
    if min(bundle.shape) < p3.window:
        return None
    return replace(p3, dynamic_range=rng[1] - rng[0])


def _audit_field(
    bundle,
    rel,
    field_name,
    key,
    compressor,
    session,
    tracer,
    cfg,
    lag_default,
    use_ssim,
    verify,
    chunk_nz,
    in_progress,
    save_checkpoint,
    notify,
    processed_chunks,
    stop_after_chunks,
):
    ny, nx = bundle.shape[1], bundle.shape[2]
    lag = max(0, min(lag_default, min(ny, nx) - 1))
    ssim_cfg = _ssim_config(bundle, field_name, cfg, use_ssim)
    checker = session.open_stream(
        (ny, nx),
        max_lag=lag,
        ssim=ssim_cfg,
        pwr_floor=cfg.pattern1.pwr_floor,
        tracer=tracer,
    )
    start = 0
    bytes_streamed = 0
    if (
        in_progress is not None
        and in_progress.get("key") == key
    ):
        checker.load_state(in_progress["stream"])
        start = int(in_progress["chunks_done"])
        bytes_streamed = int(in_progress["bytes_streamed"])

    chunk_table = bundle.field_chunks(field_name, chunk_nz)
    with tracer.span(
        "audit_field",
        category="job",
        bundle=rel,
        field=field_name,
        chunks=len(chunk_table),
        resumed_at=start,
    ) as field_span:
        for info, block in bundle.iter_field_chunks(
            field_name, chunk_nz=chunk_nz, verify=verify, start=start
        ):
            with tracer.span(
                "chunk_read",
                category="chunk",
                bytes=info.nbytes,
                bundle=rel,
                field=field_name,
                chunk=info.index,
                z0=info.z0,
            ):
                dec = compressor.decompress(compressor.compress(block))
            checker.update(block, dec)
            bytes_streamed += info.nbytes
            save_checkpoint(
                {
                    "key": key,
                    "chunks_done": info.index + 1,
                    "bytes_streamed": bytes_streamed,
                    "stream": checker.state_dict(),
                }
            )
            processed_chunks += 1
            notify(
                "chunk",
                {
                    "key": key,
                    "chunk": info.index + 1,
                    "of": len(chunk_table),
                    "bytes": bytes_streamed,
                },
            )
            if (
                stop_after_chunks is not None
                and processed_chunks >= stop_after_chunks
            ):
                raise AuditInterrupted(processed_chunks)
        field_span.attrs["bytes_streamed"] = bytes_streamed

    res = checker.finalize()
    scalars = {k: float(v) for k, v in res.scalars().items()}
    result = {
        "key": key,
        "bundle": rel,
        "field": field_name,
        "shape": list(bundle.shape),
        "dtype": bundle.dtype,
        "chunks": len(chunk_table),
        "bytes_streamed": bytes_streamed,
        "scalars": scalars,
        "autocorrelation": (
            [float(v) for v in res.autocorrelation]
            if res.autocorrelation is not None
            else None
        ),
        "ssim": float(res.ssim) if res.ssim is not None else None,
    }
    return result, processed_chunks
