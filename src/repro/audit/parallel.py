"""Parallel archive audit: one field per process-pool worker.

The coordinator fans pending fields across the same spawn-safe
persistent pool the batch drivers use
(:func:`repro.parallel.executor._get_pool`).  Each worker:

* keeps a module-global warm :class:`~repro.service.session.CheckerSession`
  per configuration (the audit analogue of the executor's per-worker
  checker cache), so consecutive fields skip plan construction;
* streams its field through the *same*
  :func:`~repro.audit.runner._stream_field` core the serial loop runs —
  identical code on identical bytes is what makes the final report
  byte-identical whatever the worker count;
* checkpoints after every chunk into a worker-owned *part* file
  (atomic replace, same format discipline as the main checkpoint).

The coordinator polls the part files while jobs run and folds them into
the single main checkpoint (``completed`` + an ``in_flight`` map), so a
SIGKILL of the whole process tree at any instant leaves a resumable
state: the main checkpoint holds the last merge, and any parts written
after it are re-folded by the next run's resume scan.  Worker trace
spans come home as picklable payloads and merge under the coordinator's
root span with one lane per worker PID — the same chunk-granular
``chunk_read`` spans the serial audit emits, now in parallel tracks.
"""

from __future__ import annotations

import json
import pickle
from concurrent.futures import FIRST_COMPLETED, wait
from pathlib import Path

from repro.audit.checkpoint import AuditCheckpoint, part_path_for
from repro.errors import CheckerError

__all__ = ["run_parallel_audit"]

#: marker stamped into every part file
PART_KIND = "audit-part"

#: coordinator poll interval while worker jobs run (seconds); merges are
#: cheap (raw-JSON passthrough, no array decode) so polling fast keeps
#: the main checkpoint close behind the parts
_POLL_S = 0.2


# -- worker side -----------------------------------------------------------

#: one warm session per config pickle — a worker builds the validated
#: plan once, then serves every field of every audit with it
_AUDIT_SESSIONS: dict[bytes, object] = {}


def _worker_session(config_blob: bytes):
    session = _AUDIT_SESSIONS.get(config_blob)
    if session is None:
        from repro.service.session import CheckerSession

        session = CheckerSession(config=pickle.loads(config_blob)).open()
        _AUDIT_SESSIONS[config_blob] = session
    return session


def _job_audit_field(spec: dict):
    """Worker job: stream one field, checkpointing to its part file.

    Returns ``(result, error, trace, interrupted_chunks)`` — exactly one
    of the first two is set on normal/failed completion;
    ``interrupted_chunks`` is set (and both others ``None``) when the
    ``stop_after_chunks`` test hook fired.
    """
    from repro.audit.runner import AuditInterrupted, _codec_for, _stream_field
    from repro.io.bundle import load_bundle
    from repro.parallel.executor import _export_trace, _portable_exc
    from repro.telemetry.tracer import NULL_TRACER, Tracer

    tracer = Tracer() if spec["trace"] else NULL_TRACER
    part = AuditCheckpoint(spec["part_path"])
    key = spec["key"]
    try:
        session = _worker_session(spec["config_blob"])
        compressor = _codec_for(spec["codec"], spec["codec_args"])
        bundle = load_bundle(spec["bundle_root"])

        resume_state = None
        try:
            doc = part.load()
        except Exception:  # noqa: BLE001 — a stale/corrupt part resets the field
            doc = None
        if (
            doc is not None
            and doc.get("fingerprint_sha") == spec["fingerprint_sha"]
            and doc.get("key") == key
        ):
            if doc.get("done"):
                # finished by a previous run but never merged — nothing to do
                return (doc["result"], None, None, None)
            resume_state = doc

        processed = 0
        stop_after = spec["stop_after_chunks"]

        def on_chunk(info, chunks_done, bytes_streamed, checker):
            nonlocal processed
            part.save(
                {
                    "kind": PART_KIND,
                    "fingerprint_sha": spec["fingerprint_sha"],
                    "key": key,
                    "chunks_done": chunks_done,
                    "bytes_streamed": bytes_streamed,
                    "stream": checker.state_dict(),
                }
            )
            processed += 1
            if stop_after is not None and processed >= stop_after:
                raise AuditInterrupted(processed)

        try:
            result = _stream_field(
                bundle,
                spec["rel"],
                spec["field"],
                key,
                compressor,
                session,
                tracer,
                session.config,
                spec["lag_default"],
                spec["use_ssim"],
                spec["verify"],
                spec["chunk_nz"],
                resume_state,
                on_chunk,
            )
        except AuditInterrupted:
            return (None, None, _export_trace(tracer), processed)
        part.save(
            {
                "kind": PART_KIND,
                "fingerprint_sha": spec["fingerprint_sha"],
                "key": key,
                "chunks_done": result["chunks"],
                "bytes_streamed": result["bytes_streamed"],
                "done": True,
                "result": result,
            }
        )
        return (result, None, _export_trace(tracer), None)
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        return (None, _portable_exc(exc), _export_trace(tracer), None)


# -- coordinator -----------------------------------------------------------


def _read_part_raw(path: Path) -> dict | None:
    """A part file as raw (still-encoded) JSON, or ``None``.

    The coordinator never needs the arrays themselves — it folds the
    encoded state straight into the main checkpoint, whose own
    ``encode_state`` pass leaves already-encoded structures unchanged —
    so merging costs JSON parse + dump, not base64 array round-trips.
    """
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def run_parallel_audit(
    pending,
    workers: int,
    checkpoint: AuditCheckpoint,
    parts_dir: Path,
    fingerprint: dict,
    fp_sha: str,
    completed: dict,
    in_flight: dict,
    codec: str,
    codec_args: dict,
    chunk_nz: int | None,
    lag_default: int,
    use_ssim: bool,
    verify: bool,
    config,
    tracer,
    notify,
    stop_after_chunks: int | None,
) -> None:
    """Audit ``pending`` fields on ``workers`` pool processes.

    Fills ``completed`` in place and keeps the main checkpoint merged
    throughout.  Raises :class:`~repro.audit.runner.AuditInterrupted`
    when the test hook stopped any worker, or the first worker error.
    """
    from repro.audit.runner import AuditInterrupted
    from repro.parallel.executor import _discard_pool, _get_pool

    parts_dir = Path(parts_dir)
    parts_dir.mkdir(parents=True, exist_ok=True)
    config_blob = pickle.dumps(config)

    # seed part files from checkpoint in_flight state so workers resume
    # from it (an existing part is always at least as fresh — keep it)
    for _, rel, field_name, key, _ in pending:
        state = in_flight.get(key)
        ppath = part_path_for(parts_dir, key)
        if state is not None and not ppath.exists():
            AuditCheckpoint(ppath).save(
                {
                    "kind": PART_KIND,
                    "fingerprint_sha": fp_sha,
                    "key": key,
                    "chunks_done": state["chunks_done"],
                    "bytes_streamed": state["bytes_streamed"],
                    "stream": state["stream"],
                }
            )

    chunk_totals = {key: n for _, _, _, key, n in pending}
    last_progress: dict[str, int] = {}

    def merge_parts() -> None:
        """Fold every part into the single atomic main checkpoint."""
        live: dict[str, dict] = {}
        for _, _, _, key, n_chunks in pending:
            if key in completed:
                continue
            raw = _read_part_raw(part_path_for(parts_dir, key))
            if (
                raw is None
                or raw.get("fingerprint_sha") != fp_sha
                or raw.get("key") != key
            ):
                continue
            if raw.get("done"):
                completed[key] = raw["result"]
            else:
                live[key] = {
                    "key": key,
                    "chunks_done": raw["chunks_done"],
                    "bytes_streamed": raw["bytes_streamed"],
                    "stream": raw["stream"],
                }
            done_chunks = int(raw.get("chunks_done", 0))
            if done_chunks > last_progress.get(key, 0):
                last_progress[key] = done_chunks
                notify(
                    "chunk",
                    {
                        "key": key,
                        "chunk": done_chunks,
                        "of": chunk_totals[key],
                        "bytes": int(raw.get("bytes_streamed", 0)),
                    },
                )
        payload = {
            "fingerprint": fingerprint,
            "completed": list(completed.values()),
            "in_progress": None,
        }
        if live:
            payload["in_flight"] = live
        checkpoint.save(payload)

    specs = [
        {
            "bundle_root": str(bundle.root),
            "rel": rel,
            "field": field_name,
            "key": key,
            "config_blob": config_blob,
            "codec": codec,
            "codec_args": codec_args,
            "chunk_nz": chunk_nz,
            "lag_default": lag_default,
            "use_ssim": use_ssim,
            "verify": verify,
            "part_path": str(part_path_for(parts_dir, key)),
            "fingerprint_sha": fp_sha,
            "stop_after_chunks": stop_after_chunks,
            "trace": tracer.enabled,
        }
        for bundle, rel, field_name, key, _ in pending
    ]
    # the merged checkpoint exists before any worker starts, so even an
    # immediate kill resumes against a consistent fingerprinted snapshot
    merge_parts()

    pool = _get_pool(workers)
    with tracer.span(
        "audit_parallel",
        category="batch",
        tasks=len(pending),
        workers=workers,
        executor="process",
    ) as root:
        parent = root if tracer.enabled else None
        try:
            futures = {pool.submit(_job_audit_field, s): s for s in specs}
        except RuntimeError:
            # a previous batch broke this pool; build a fresh one
            _discard_pool(workers)
            pool = _get_pool(workers)
            futures = {pool.submit(_job_audit_field, s): s for s in specs}

        lanes: dict[int, int] = {}
        outstanding = set(futures)
        interrupted = 0
        hook_fired = False
        first_error: BaseException | None = None
        while outstanding:
            done, outstanding = wait(
                outstanding, timeout=_POLL_S, return_when=FIRST_COMPLETED
            )
            for fut in done:
                spec = futures[fut]
                try:
                    result, exc, trace, stopped = fut.result()
                except Exception as broken:  # noqa: BLE001 — BrokenProcessPool etc.
                    _discard_pool(workers)
                    merge_parts()
                    raise CheckerError(
                        f"audit worker process died: {broken}"
                    ) from broken
                if trace is not None:
                    spans, epoch, pid = trace
                    lane = lanes.setdefault(pid, len(lanes) + 1)
                    tracer.merge_spans(spans, epoch, parent=parent, track=lane)
                if exc is not None:
                    first_error = first_error or exc
                elif stopped is not None:
                    hook_fired = True
                    interrupted += stopped
                else:
                    completed[spec["key"]] = result
                    notify(
                        "field_done",
                        {"key": spec["key"], "result": result},
                    )
            merge_parts()
            if first_error is not None:
                for fut in outstanding:
                    fut.cancel()
                wait(outstanding)
                merge_parts()
                raise first_error

    if hook_fired:
        raise AuditInterrupted(interrupted)
