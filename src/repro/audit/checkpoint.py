"""Audit checkpoint files: exact state, atomically replaced.

A checkpoint is one JSON document holding the audit's progress — which
fields are finished (with their final metric values) and, when a field
is mid-stream, the exact :class:`~repro.core.streaming.StreamingChecker`
state after the last completed chunk.  Two properties make kill/resume
bit-identical to an uninterrupted run:

* **exact serialisation** — NumPy arrays are embedded as base64 of their
  raw little-endian bytes, and Python floats survive JSON because
  ``json`` emits ``repr``-style shortest round-trip representations
  (including ``Infinity`` for the accumulator's initial extrema);
* **atomic persistence** — like the calibration table, every save writes
  a temp file in the target directory and ``os.replace``\\ s it over the
  checkpoint, so a SIGKILL at any instant leaves either the previous or
  the new consistent snapshot, never a torn file.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import shutil
import threading
from pathlib import Path

import numpy as np

from repro.errors import DataIOError

__all__ = [
    "AuditCheckpoint",
    "encode_state",
    "decode_state",
    "CHECKPOINT_FORMAT",
    "part_path_for",
    "parts_dir_for",
    "remove_parts",
]

CHECKPOINT_FORMAT = "cuzchecker-audit-checkpoint-v1"

_NDARRAY_KEY = "__ndarray__"


def encode_state(obj):
    """Recursively convert a state structure into JSON-safe values.

    Arrays become ``{"__ndarray__": <base64>, "dtype": ..., "shape": ...}``
    with explicit little-endian byte order, so the encoding is identical
    across hosts and decodes to bit-identical arrays.
    """
    if isinstance(obj, np.ndarray):
        little = obj.astype(obj.dtype.newbyteorder("<"), copy=False)
        return {
            _NDARRAY_KEY: base64.b64encode(
                np.ascontiguousarray(little).tobytes()
            ).decode("ascii"),
            "dtype": str(obj.dtype.newbyteorder("<")),
            "shape": list(obj.shape),
        }
    if isinstance(obj, dict):
        return {str(k): encode_state(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [encode_state(v) for v in obj]
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    return obj


def decode_state(obj):
    """Inverse of :func:`encode_state` (arrays come back bit-identical)."""
    if isinstance(obj, dict):
        if _NDARRAY_KEY in obj:
            raw = base64.b64decode(obj[_NDARRAY_KEY])
            arr = np.frombuffer(raw, dtype=np.dtype(obj["dtype"]))
            arr = arr.reshape(tuple(int(s) for s in obj["shape"]))
            return arr.astype(arr.dtype.newbyteorder("="), copy=True)
        return {k: decode_state(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [decode_state(v) for v in obj]
    return obj


class AuditCheckpoint:
    """One audit's checkpoint file with atomic save/load/delete."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, payload: dict) -> None:
        """Atomically replace the checkpoint with ``payload``.

        The temp file lives in the checkpoint's directory so the
        ``os.replace`` stays on one filesystem (a cross-device rename
        would not be atomic).
        """
        doc = dict(payload)
        doc["format"] = CHECKPOINT_FORMAT
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(
                f".{self.path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            # json.dump streams to the file, so peak memory stays near the
            # largest single array's base64, not the whole document — the
            # out-of-core audit checkpoints between every chunk
            with tmp.open("w") as fh:
                json.dump(encode_state(doc), fh, sort_keys=True)
            os.replace(tmp, self.path)

    def load(self) -> dict | None:
        """The decoded checkpoint, or ``None`` when absent."""
        if not self.path.exists():
            return None
        try:
            doc = decode_state(json.loads(self.path.read_text()))
        except (json.JSONDecodeError, ValueError, KeyError, TypeError) as exc:
            raise DataIOError(
                f"corrupt audit checkpoint {self.path}: {exc}"
            ) from exc
        if doc.get("format") != CHECKPOINT_FORMAT:
            raise DataIOError(
                f"{self.path} is not a {CHECKPOINT_FORMAT} file "
                f"(format={doc.get('format')!r})"
            )
        return doc

    def delete(self) -> None:
        """Remove the checkpoint (idempotent)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


# -- per-field part files (parallel audit) ---------------------------------
#
# A parallel audit cannot funnel every chunk's state through one file:
# each atomic save rewrites the whole document, so concurrent workers
# would clobber each other.  Instead every worker owns one *part* file —
# an AuditCheckpoint of just its field's progress — in a sibling
# ``<checkpoint>.parts/`` directory, and the coordinator folds the parts
# into the single main checkpoint.  A kill between a worker's save and
# the coordinator's merge therefore loses nothing: resume scans leftover
# parts and they always carry at least the merged snapshot's progress.


def parts_dir_for(checkpoint_path: str | Path) -> Path:
    """The per-field part directory that rides next to a checkpoint."""
    checkpoint_path = Path(checkpoint_path)
    return checkpoint_path.with_name(checkpoint_path.name + ".parts")


def part_path_for(parts_dir: str | Path, key: str) -> Path:
    """One worker-owned part file per audit key (hashed: keys hold '/')."""
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
    return Path(parts_dir) / f"part-{digest}.json"


def remove_parts(parts_dir: str | Path) -> None:
    """Delete a part directory and everything in it (idempotent)."""
    shutil.rmtree(parts_dir, ignore_errors=True)
