"""Resumable archive audits: assess every field in a bundle tree.

The out-of-core layer on top of the chunked bundle format
(:mod:`repro.io.bundle`): ``cuzchecker audit <dir>`` walks a directory
tree of bundles, streams every field chunk-by-chunk through a warm
:class:`~repro.service.session.CheckerSession`, checkpoints the exact
accumulator state after every chunk (atomic write-temp + replace), and
resumes a killed run bit-identically to an uninterrupted one.
"""

from repro.audit.checkpoint import AuditCheckpoint, decode_state, encode_state
from repro.audit.runner import (
    AuditInterrupted,
    discover_bundles,
    resolve_audit_workers,
    run_audit,
)

__all__ = [
    "AuditCheckpoint",
    "AuditInterrupted",
    "decode_state",
    "encode_state",
    "discover_bundles",
    "resolve_audit_workers",
    "run_audit",
]
