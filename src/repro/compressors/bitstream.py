"""Bit-level writer/reader used by the entropy and transform coders.

Bits are packed LSB-first within each byte (the convention of most
floating-point compressors, chosen here once and honoured by both
directions — the round-trip property is hypothesis-tested).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError

__all__ = ["BitWriter", "BitReader", "pack_fixed_width", "unpack_fixed_width"]


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Write the low ``nbits`` of ``value``."""
        if nbits < 0:
            raise ValueError("nbits must be >= 0")
        if nbits == 0:
            return
        value &= (1 << nbits) - 1
        self._acc |= value << self._nbits
        self._nbits += nbits
        while self._nbits >= 8:
            self._bytes.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def write_unary(self, value: int) -> None:
        """Unary code: ``value`` zero bits then a one bit."""
        if value < 0:
            raise ValueError("unary codes are for non-negative integers")
        self.write(0, value)
        self.write(1, 1)

    @property
    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Finalise (zero-padding the last byte) and return the bytes."""
        out = bytearray(self._bytes)
        if self._nbits:
            out.append(self._acc & 0xFF)
        return bytes(out)


class BitReader:
    """Sequential reader over bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    def read(self, nbits: int) -> int:
        if nbits < 0:
            raise ValueError("nbits must be >= 0")
        if self._pos + nbits > len(self._data) * 8:
            raise CompressionError("bitstream exhausted")
        value = 0
        got = 0
        while got < nbits:
            byte = self._data[self._pos >> 3]
            offset = self._pos & 7
            take = min(8 - offset, nbits - got)
            chunk = (byte >> offset) & ((1 << take) - 1)
            value |= chunk << got
            got += take
            self._pos += take
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read(1) == 0:
            count += 1
        return count

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos


def pack_fixed_width(values: np.ndarray, width: int) -> bytes:
    """Vectorised fixed-width packing of non-negative integers.

    Equivalent to writing each value with ``BitWriter.write(v, width)``;
    used for the bulk payload of the fixed-rate codec.
    """
    values = np.asarray(values, dtype=np.uint64)
    if width < 0 or width > 64:
        raise ValueError("width must be within [0, 64]")
    if width == 0 or values.size == 0:
        return b""
    if values.size and int(values.max()) >> width:
        raise CompressionError(f"value exceeds {width} bits")
    # expand each value into `width` bits, LSB first, then pack
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((values[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bits.ravel(), bitorder="little").tobytes()


def unpack_fixed_width(blob: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_fixed_width`."""
    if width < 0 or width > 64:
        raise ValueError("width must be within [0, 64]")
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    need_bits = width * count
    avail = len(blob) * 8
    if avail < need_bits:
        raise CompressionError("fixed-width payload too short")
    bits = np.unpackbits(
        np.frombuffer(blob, dtype=np.uint8), count=need_bits, bitorder="little"
    )
    bits = bits.reshape(count, width).astype(np.uint64)
    shifts = np.arange(width, dtype=np.uint64)
    return (bits << shifts).sum(axis=1, dtype=np.uint64)
