"""Canonical Huffman coder for quantisation-code streams.

SZ/cuSZ entropy-code their quantisation bins with Huffman; the bin
distribution is extremely peaked (most residuals quantise to the zero
bin), so average code lengths of 1-2 bits are typical.  The coder here is
canonical: only the per-symbol code lengths are stored in the header and
both sides rebuild identical codebooks from them.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError

__all__ = ["HuffmanCode", "huffman_encode", "huffman_decode"]

_MAX_CODE_LEN = 48


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical code: symbol values and their code lengths."""

    symbols: np.ndarray  # int64, sorted unique symbol values
    lengths: np.ndarray  # uint8 code length per symbol

    def __post_init__(self):
        if len(self.symbols) != len(self.lengths):
            raise CompressionError("symbols/lengths size mismatch")

    def assign_codes(self) -> np.ndarray:
        """Canonical code values (uint64), ordered like ``symbols``.

        Canonical order: ascending code length, then ascending symbol.
        Vectorised via the Kraft-sum identity: at the deepest level every
        length-``l`` code spans ``2^(max_len - l)`` leaves, so each code
        is the exclusive prefix sum of those spans shifted back to its
        own depth — identical to walking the codes one by one.
        """
        order = np.lexsort((self.symbols, self.lengths))
        lens = self.lengths[order].astype(np.int64)
        max_len = int(lens[-1])
        spans = np.left_shift(np.int64(1), max_len - lens)
        prefix = np.concatenate(([0], np.cumsum(spans)[:-1]))
        codes = np.empty(len(self.symbols), dtype=np.uint64)
        codes[order] = (prefix >> (max_len - lens)).astype(np.uint64)
        return codes


def _code_lengths(freqs: dict[int, int]) -> HuffmanCode:
    """Huffman code lengths from symbol frequencies (heap algorithm)."""
    if not freqs:
        raise CompressionError("cannot build a Huffman code for no symbols")
    if len(freqs) == 1:
        sym = next(iter(freqs))
        return HuffmanCode(
            symbols=np.array([sym], dtype=np.int64),
            lengths=np.array([1], dtype=np.uint8),
        )
    # Parent-pointer tree build: merging two nodes is O(1) instead of the
    # O(n) symbol-list concatenation, and depths fall out of one backward
    # sweep (every parent id is larger than its children's).
    n = len(freqs)
    symbols = np.array(sorted(freqs), dtype=np.int64)
    heap: list[tuple[int, int]] = [
        (freqs[int(s)], i) for i, s in enumerate(symbols)
    ]
    heapq.heapify(heap)
    parent = np.zeros(2 * n - 1, dtype=np.int64)
    nxt = n
    while len(heap) > 1:
        f1, i1 = heapq.heappop(heap)
        f2, i2 = heapq.heappop(heap)
        parent[i1] = parent[i2] = nxt
        heapq.heappush(heap, (f1 + f2, nxt))
        nxt += 1
    depth = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(2 * n - 3, -1, -1):
        depth[node] = depth[parent[node]] + 1
    lengths = depth[:n].astype(np.uint8)
    if lengths.max() > _MAX_CODE_LEN:
        raise CompressionError("Huffman code deeper than supported")
    return HuffmanCode(symbols=symbols, lengths=lengths)


def _serialize_code(code: HuffmanCode) -> bytes:
    n = len(code.symbols)
    return (
        struct.pack("<I", n)
        + code.symbols.astype("<i8").tobytes()
        + code.lengths.astype("<u1").tobytes()
    )


def _deserialize_code(blob: bytes) -> tuple[HuffmanCode, int]:
    (n,) = struct.unpack("<I", blob[:4])
    off = 4
    symbols = np.frombuffer(blob[off : off + 8 * n], dtype="<i8").astype(np.int64)
    off += 8 * n
    lengths = np.frombuffer(blob[off : off + n], dtype="<u1").astype(np.uint8)
    off += n
    return HuffmanCode(symbols=symbols, lengths=lengths), off


def huffman_encode(values: np.ndarray) -> bytes:
    """Encode an integer array; returns a self-contained byte string."""
    values = np.asarray(values).astype(np.int64).ravel()
    if values.size == 0:
        return struct.pack("<I", 0) + struct.pack("<Q", 0)
    uniq, counts = np.unique(values, return_counts=True)
    code = _code_lengths({int(s): int(c) for s, c in zip(uniq, counts)})
    codes = code.assign_codes()
    idx = np.searchsorted(code.symbols, values)

    lengths = code.lengths[idx].astype(np.int64)
    codewords = codes[idx]

    # Vectorised bit packing: one broadcast shift matrix extracts every
    # codeword's bits MSB-first, the ragged rows are compacted with the
    # per-symbol validity mask, and np.packbits emits the byte stream.
    # Chunked so the matrix stays bounded regardless of input size.
    total_bits = int(lengths.sum())
    max_len = int(lengths.max())
    bit_cols = np.arange(max_len, dtype=np.int64)
    bits = np.empty(total_bits, dtype=np.uint8)
    pos = 0
    chunk = max(1, (1 << 22) // max_len)
    for start in range(0, values.size, chunk):
        lens = lengths[start : start + chunk]
        cws = codewords[start : start + chunk]
        shifts = lens[:, None] - 1 - bit_cols[None, :]
        mat = (cws[:, None] >> np.maximum(shifts, 0).astype(np.uint64)) & np.uint64(1)
        nb = int(lens.sum())
        bits[pos : pos + nb] = mat[shifts >= 0].astype(np.uint8)
        pos += nb
    payload = np.packbits(bits, bitorder="big").tobytes()

    header = _serialize_code(code)
    return (
        struct.pack("<I", 1)
        + struct.pack("<Q", values.size)
        + header
        + struct.pack("<Q", total_bits)
        + payload
    )


#: LUT decoding is used when the deepest code fits this many bits
_LUT_MAX_BITS = 16


def _canonical_tables(code: HuffmanCode):
    """(sorted symbols, lengths, codes) in canonical order plus the
    per-length first-code/first-index tables."""
    codes = code.assign_codes()
    order = np.lexsort((code.symbols, code.lengths))
    sorted_lengths = code.lengths[order]
    sorted_symbols = code.symbols[order]
    sorted_codes = codes[order]
    max_len = int(sorted_lengths.max())
    first_code = np.zeros(max_len + 2, dtype=np.int64)
    first_index = np.zeros(max_len + 2, dtype=np.int64)
    count_by_len = np.bincount(sorted_lengths, minlength=max_len + 2)
    c = 0
    i = 0
    for ln in range(1, max_len + 1):
        first_code[ln] = c
        first_index[ln] = i
        c = (c + count_by_len[ln]) << 1
        i += count_by_len[ln]
    return (
        sorted_symbols,
        sorted_lengths,
        sorted_codes,
        first_code,
        first_index,
        count_by_len,
        max_len,
    )


def _decode_lut(payload, total_bits, count, tables) -> np.ndarray:
    """Table-driven decoder: peek ``max_len`` bits, one lookup per symbol.

    A canonical prefix code of depth L maps every L-bit window starting
    with a codeword to that codeword, so a 2^L lookup table decodes one
    whole symbol per step — no per-bit loop.
    """
    symbols, lengths, codes, *_rest, max_len = tables
    lut_sym = np.zeros(1 << max_len, dtype=np.int64)
    lut_len = np.zeros(1 << max_len, dtype=np.uint8)
    for sym, ln, cw in zip(symbols, lengths, codes):
        shift = max_len - int(ln)
        start = int(cw) << shift
        span = 1 << shift
        lut_sym[start : start + span] = sym
        lut_len[start : start + span] = ln
    lut_sym_list = lut_sym.tolist()
    lut_len_list = lut_len.tolist()

    out = np.empty(count, dtype=np.int64)
    mask = (1 << max_len) - 1
    acc = 0
    nbits = 0
    byte_iter = iter(payload)
    consumed = 0
    for produced in range(count):
        while nbits < max_len:
            try:
                acc = (acc << 8) | next(byte_iter)
                nbits += 8
            except StopIteration:
                acc <<= max_len - nbits  # zero-pad the tail window
                nbits = max_len
                break
        window = (acc >> (nbits - max_len)) & mask
        ln = lut_len_list[window]
        if ln == 0 or consumed + ln > total_bits:
            raise CompressionError("invalid or truncated Huffman stream")
        out[produced] = lut_sym_list[window]
        consumed += ln
        nbits -= ln
        acc &= (1 << nbits) - 1
    return out


def _decode_bitwise(payload, total_bits, count, tables) -> np.ndarray:
    """Per-bit canonical decoder (fallback for very deep codes)."""
    symbols, _lengths, _codes, first_code, first_index, count_by_len, max_len = tables
    bits = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8), count=total_bits, bitorder="big"
    )
    out = np.empty(count, dtype=np.int64)
    pos = 0
    value = 0
    length = 0
    produced = 0
    bitlist = bits.tolist()
    nbits = len(bitlist)
    while produced < count:
        if pos >= nbits:
            raise CompressionError("Huffman stream truncated")
        value = (value << 1) | bitlist[pos]
        pos += 1
        length += 1
        if length > max_len:
            raise CompressionError("invalid Huffman stream")
        offset = value - int(first_code[length])
        if 0 <= offset < count_by_len[length]:
            out[produced] = symbols[int(first_index[length]) + offset]
            produced += 1
            value = 0
            length = 0
    return out


def huffman_decode(blob: bytes) -> np.ndarray:
    """Decode the byte string produced by :func:`huffman_encode`."""
    (version,) = struct.unpack("<I", blob[:4])
    (count,) = struct.unpack("<Q", blob[4:12])
    if version == 0 or count == 0:
        return np.zeros(0, dtype=np.int64)
    code, used = _deserialize_code(blob[12:])
    off = 12 + used
    (total_bits,) = struct.unpack("<Q", blob[off : off + 8])
    off += 8
    payload = blob[off:]
    if len(payload) * 8 < total_bits:
        raise CompressionError(
            f"Huffman payload truncated: {len(payload) * 8} bits present, "
            f"{total_bits} recorded"
        )
    tables = _canonical_tables(code)
    max_len = tables[-1]
    if max_len <= _LUT_MAX_BITS:
        return _decode_lut(payload, total_bits, count, tables)
    return _decode_bitwise(payload, total_bits, count, tables)
