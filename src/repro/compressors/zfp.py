"""Fixed-rate block-transform codec in the style of cuZFP.

Like zfp's CUDA backend, the codec:

1. partitions the volume into 4×4×4 blocks (edge-replicated padding);
2. block-floating-point-normalises each block to a common exponent and a
   fixed-precision integer representation;
3. applies a separable, reversible integer lifting transform along each
   axis (a two-level S-transform here — same hierarchical structure as
   zfp's lifting, chosen for provable integer reversibility);
4. orders coefficients by total frequency and stores each with a width
   that decreases with frequency, truncating low-order bits so that every
   block costs exactly ``rate`` bits per value (**fixed rate** — the only
   mode cuZFP supports, which is the compression-quality trade-off the
   paper's introduction calls out).

Fixed-rate coding bounds the *size*, not the error: unlike
:class:`~repro.compressors.sz.SZCompressor` there is no pointwise error
guarantee, and the rate-distortion benchmarks exercise exactly that
contrast.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor
from repro.compressors.bitstream import pack_fixed_width, unpack_fixed_width
from repro.errors import CompressionError

__all__ = ["ZFPCompressor"]

_BLOCK = 4
_PRECISION = 24  # integer precision of the block-floating-point stage
_UMAX = _PRECISION + 5  # transform growth headroom (two's-complement width)


def _s_forward(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reversible S-transform pair: s = (a+b)>>1 (floor), d = a-b."""
    s = (a + b) >> 1
    d = a - b
    return s, d


def _s_inverse(s: np.ndarray, d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact inverse of :func:`_s_forward`."""
    # a + b = 2s + ((a+b) & 1); parity of (a+b) equals parity of d
    a = s + ((d + 1) >> 1)
    b = a - d
    return a, b


def _fwd_axis(v: np.ndarray, axis: int) -> np.ndarray:
    """Two-level S-transform along one length-4 axis.

    Output order: [ss, sd, d0, d1] — lowpass first (frequency 0..3).
    """
    v = np.moveaxis(v, axis, -1)
    a0, a1, a2, a3 = v[..., 0], v[..., 1], v[..., 2], v[..., 3]
    s0, d0 = _s_forward(a0, a1)
    s1, d1 = _s_forward(a2, a3)
    ss, sd = _s_forward(s0, s1)
    out = np.stack([ss, sd, d0, d1], axis=-1)
    return np.moveaxis(out, -1, axis)


def _inv_axis(v: np.ndarray, axis: int) -> np.ndarray:
    v = np.moveaxis(v, axis, -1)
    ss, sd, d0, d1 = v[..., 0], v[..., 1], v[..., 2], v[..., 3]
    s0, s1 = _s_inverse(ss, sd)
    a0, a1 = _s_inverse(s0, d0)
    a2, a3 = _s_inverse(s1, d1)
    out = np.stack([a0, a1, a2, a3], axis=-1)
    return np.moveaxis(out, -1, axis)


def _frequency_groups() -> np.ndarray:
    """Total-frequency group of each of the 64 block coefficients."""
    f = np.array([0, 1, 2, 3])
    return (f[:, None, None] + f[None, :, None] + f[None, None, :]).ravel()


def _coeff_widths(rate: float) -> np.ndarray:
    """Per-coefficient storage widths for a given rate (bits/value).

    The widths decrease with total frequency; ``wbase`` is the largest
    base width whose total fits the block budget (rate × 64 bits minus
    the 16-bit block exponent header).
    """
    groups = _frequency_groups()
    budget = int(rate * _BLOCK**3) - 16
    if budget <= 0:
        raise CompressionError(f"rate {rate} too small for the block header")
    best = None
    for wbase in range(_UMAX + 10, 0, -1):
        widths = np.clip(wbase - groups, 0, _UMAX)
        if int(widths.sum()) <= budget:
            best = widths
            break
    if best is None or int(best.sum()) == 0:
        raise CompressionError(f"rate {rate} leaves no bits for coefficients")
    return best.astype(np.int64)


def _pad_to_blocks(data: np.ndarray) -> tuple[np.ndarray, tuple[int, int, int]]:
    shape = data.shape
    padded_shape = tuple(math.ceil(s / _BLOCK) * _BLOCK for s in shape)
    if padded_shape == shape:
        return data, shape
    pads = [(0, p - s) for s, p in zip(shape, padded_shape)]
    return np.pad(data, pads, mode="edge"), shape


class ZFPCompressor(Compressor):
    """Fixed-rate transform codec (cuZFP stand-in).

    Parameters
    ----------
    rate:
        Stored bits per value (the fixed-rate knob; cuZFP's only mode).
    """

    name = "zfp"

    def __init__(self, rate: float = 8.0):
        if rate <= 0.25:
            raise CompressionError("rate must exceed 0.25 bits/value")
        self.rate = float(rate)
        self._widths = _coeff_widths(self.rate)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _to_blocks(data: np.ndarray) -> np.ndarray:
        nz, ny, nx = data.shape
        v = data.reshape(
            nz // _BLOCK, _BLOCK, ny // _BLOCK, _BLOCK, nx // _BLOCK, _BLOCK
        )
        return v.transpose(0, 2, 4, 1, 3, 5).reshape(-1, _BLOCK, _BLOCK, _BLOCK)

    @staticmethod
    def _from_blocks(blocks: np.ndarray, padded_shape) -> np.ndarray:
        nz, ny, nx = padded_shape
        v = blocks.reshape(
            nz // _BLOCK, ny // _BLOCK, nx // _BLOCK, _BLOCK, _BLOCK, _BLOCK
        )
        return v.transpose(0, 3, 1, 4, 2, 5).reshape(nz, ny, nx)

    # -- API ----------------------------------------------------------------

    def compress(self, data: np.ndarray) -> CompressedBuffer:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 3:
            raise CompressionError(f"ZFP codec expects 3-D fields, got {data.ndim}-D")
        if data.size == 0:
            raise CompressionError("cannot compress an empty array")
        if not np.isfinite(data).all():
            raise CompressionError("data contains non-finite values")

        padded, orig_shape = _pad_to_blocks(data)
        blocks = self._to_blocks(padded)
        nb = blocks.shape[0]

        # block-floating-point: common exponent per block
        maxabs = np.abs(blocks).reshape(nb, -1).max(axis=1)
        emax = np.zeros(nb, dtype=np.int32)
        nonzero = maxabs > 0
        emax[nonzero] = np.frexp(maxabs[nonzero])[1]  # maxabs < 2**emax
        scale = np.ldexp(1.0, _PRECISION - emax)
        ints = np.rint(blocks * scale[:, None, None, None]).astype(np.int64)

        for axis in (1, 2, 3):
            ints = _fwd_axis(ints, axis)

        coeffs = ints.reshape(nb, -1)  # (nb, 64)
        # data-adaptive precision: the actual two's-complement width the
        # transformed coefficients need (bounded by the headroom _UMAX);
        # using it instead of the worst case recovers several bits of
        # low-order precision at the same fixed rate
        peak = int(np.abs(coeffs).max()) if coeffs.size else 0
        umax = min(max(peak.bit_length() + 1, 1), _UMAX)
        widths = self._widths
        columns: list[bytes] = []
        for j in range(coeffs.shape[1]):
            w = int(widths[j])
            if w == 0:
                continue
            drop = max(0, umax - w)
            stored = (coeffs[:, j] >> drop) & ((1 << w) - 1)
            columns.append(pack_fixed_width(stored.astype(np.uint64), w))

        payload = struct.pack("<Q", nb) + emax.astype("<i4").tobytes()
        for col in columns:
            payload += struct.pack("<I", len(col)) + col

        return CompressedBuffer(
            codec=self.name,
            payload=payload,
            meta={
                "shape": list(orig_shape),
                "dtype": "float32",
                "rate": self.rate,
                "umax": umax,
            },
        )

    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        self._check_codec(buf)
        orig_shape = tuple(buf.meta["shape"])
        rate = float(buf.meta["rate"])
        umax = int(buf.meta.get("umax", _UMAX))
        widths = _coeff_widths(rate)
        blob = buf.payload

        (nb,) = struct.unpack("<Q", blob[:8])
        off = 8
        emax = np.frombuffer(blob[off : off + 4 * nb], dtype="<i4").astype(np.int32)
        off += 4 * nb

        coeffs = np.zeros((nb, _BLOCK**3), dtype=np.int64)
        for j in range(_BLOCK**3):
            w = int(widths[j])
            if w == 0:
                continue
            (clen,) = struct.unpack("<I", blob[off : off + 4])
            off += 4
            stored = unpack_fixed_width(blob[off : off + clen], w, nb)
            off += clen
            drop = max(0, umax - w)
            # sign-extend the w-bit two's-complement value
            signed = stored.astype(np.int64)
            sign_bit = 1 << (w - 1)
            signed = (signed ^ sign_bit) - sign_bit
            # restore magnitude scale; add the dead-zone midpoint
            restored = signed << drop
            if drop > 0:
                restored += np.where(signed != 0, 1 << (drop - 1), 0)
            coeffs[:, j] = restored

        ints = coeffs.reshape(nb, _BLOCK, _BLOCK, _BLOCK)
        for axis in (3, 2, 1):
            ints = _inv_axis(ints, axis)

        scale = np.ldexp(1.0, _PRECISION - emax)
        blocks = ints.astype(np.float64) / scale[:, None, None, None]

        padded_shape = tuple(math.ceil(s / _BLOCK) * _BLOCK for s in orig_shape)
        out = self._from_blocks(blocks, padded_shape)
        out = out[: orig_shape[0], : orig_shape[1], : orig_shape[2]]
        return out.astype(buf.meta.get("dtype", "float32"))
