"""Compressor interface and compressed-buffer container."""

from __future__ import annotations

import abc
import json
import struct
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import CompressionError

__all__ = ["Compressor", "CompressedBuffer"]

_MAGIC = b"RPRC"


@dataclass
class CompressedBuffer:
    """A self-describing compressed payload."""

    codec: str
    payload: bytes
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Size charged to the compression ratio: payload plus the
        serialised header."""
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        """Serialise to a single byte string (magic, header, payload)."""
        header = json.dumps({"codec": self.codec, "meta": self.meta}).encode()
        return _MAGIC + struct.pack("<I", len(header)) + header + self.payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompressedBuffer":
        if blob[:4] != _MAGIC:
            raise CompressionError("not a repro compressed buffer (bad magic)")
        (hlen,) = struct.unpack("<I", blob[4:8])
        header = json.loads(blob[8 : 8 + hlen].decode())
        return cls(
            codec=header["codec"],
            payload=blob[8 + hlen :],
            meta=header["meta"],
        )


class Compressor(abc.ABC):
    """Abstract lossy compressor for 3-D float fields."""

    name: str = "abstract"

    @abc.abstractmethod
    def compress(self, data: np.ndarray) -> CompressedBuffer:
        """Compress a float array into a self-describing buffer."""

    @abc.abstractmethod
    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        """Reconstruct the (lossy) array from a buffer."""

    def roundtrip(self, data: np.ndarray) -> tuple[np.ndarray, CompressedBuffer]:
        """Compress then decompress; returns (reconstruction, buffer)."""
        buf = self.compress(data)
        return self.decompress(buf), buf

    def ratio(self, data: np.ndarray) -> float:
        """Compression ratio achieved on ``data``."""
        data = np.asarray(data)
        buf = self.compress(data)
        return data.size * data.dtype.itemsize / buf.nbytes

    def _check_codec(self, buf: CompressedBuffer) -> None:
        if buf.codec != self.name:
            raise CompressionError(
                f"buffer codec {buf.codec!r} does not match compressor "
                f"{self.name!r}"
            )
