"""Lorenzo predictors on pre-quantised integer fields.

cuSZ (and SZ 1.4, whose design it implements) first *pre-quantises* the
data to integers ``q = round(f / (2·eb))`` and then applies the Lorenzo
predictor on the integer lattice.  Working on integers makes prediction
and reconstruction exact — no error-feedback loop — which is what allows
the massively parallel (and here, vectorised) formulation:

* the 3-D Lorenzo residual is the triple first difference
  ``r = Δz Δy Δx q``;
* reconstruction is the inverse — a cumulative sum along each axis.

Both directions are lossless on the integer lattice; the only loss in the
pipeline is the pre-quantisation itself, which is bounded by ``eb``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["lorenzo_residuals", "lorenzo_reconstruct"]


def _diff_along(q: np.ndarray, axis: int) -> np.ndarray:
    """First difference with an implicit zero boundary plane."""
    out = q.copy()
    sl_hi = [slice(None)] * q.ndim
    sl_lo = [slice(None)] * q.ndim
    sl_hi[axis] = slice(1, None)
    sl_lo[axis] = slice(None, -1)
    out[tuple(sl_hi)] = q[tuple(sl_hi)] - q[tuple(sl_lo)]
    return out


def lorenzo_residuals(q: np.ndarray) -> np.ndarray:
    """Residuals of the N-D Lorenzo predictor on an integer field.

    For 3-D input this equals ``q[i,j,k] - (q[i-1]+q[j-1]+q[k-1]
    - q[i-1,j-1] - q[i-1,k-1] - q[j-1,k-1] + q[i-1,j-1,k-1])`` with
    out-of-range neighbours treated as zero — i.e. the triple first
    difference.  Supports 1-D, 2-D and 3-D fields.
    """
    q = np.asarray(q)
    if q.ndim not in (1, 2, 3):
        raise ShapeError(f"Lorenzo predictor supports 1-3 dims, got {q.ndim}")
    if not np.issubdtype(q.dtype, np.integer):
        raise TypeError("Lorenzo residuals operate on pre-quantised integers")
    r = q.astype(np.int64)
    for axis in range(q.ndim):
        r = _diff_along(r, axis)
    return r


def lorenzo_reconstruct(r: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_residuals` (cumulative sum along each axis)."""
    r = np.asarray(r)
    if r.ndim not in (1, 2, 3):
        raise ShapeError(f"Lorenzo predictor supports 1-3 dims, got {r.ndim}")
    q = r.astype(np.int64)
    for axis in range(r.ndim):
        q = np.cumsum(q, axis=axis, dtype=np.int64)
    return q
