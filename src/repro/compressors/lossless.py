"""Lossless comparator codec (the paper's introduction baseline).

Section I motivates error-bounded lossy compression by contrasting it
with lossless compressors that "generally suffer from very low
compression ratios (around 2:1 in most of cases)" on floating-point
data.  This codec makes that claim testable: byte-plane transposition
(shuffling) followed by DEFLATE — the standard recipe of fpzip-era
lossless float compression (and of Blosc's shuffle filter).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor
from repro.errors import CompressionError

__all__ = ["LosslessCompressor"]


def _byte_shuffle(data: np.ndarray) -> bytes:
    """Group the i-th byte of every element together (byte-plane
    transposition) so DEFLATE sees the highly-redundant sign/exponent
    planes as long runs."""
    raw = np.ascontiguousarray(data).view(np.uint8)
    itemsize = data.dtype.itemsize
    planes = raw.reshape(-1, itemsize).T
    return planes.tobytes()


def _byte_unshuffle(blob: bytes, count: int, itemsize: int) -> np.ndarray:
    planes = np.frombuffer(blob, dtype=np.uint8).reshape(itemsize, count)
    return planes.T.reshape(-1)


class LosslessCompressor(Compressor):
    """Shuffle + DEFLATE lossless codec for float arrays.

    Exact reconstruction, modest ratios — the contrast class for every
    lossy rate-distortion experiment.
    """

    name = "lossless"

    def __init__(self, level: int = 6, shuffle: bool = True):
        if not 1 <= level <= 9:
            raise CompressionError("zlib level must be in 1..9")
        self.level = level
        self.shuffle = shuffle

    def compress(self, data: np.ndarray) -> CompressedBuffer:
        data = np.asarray(data)
        if data.size == 0:
            raise CompressionError("cannot compress an empty array")
        if data.dtype not in (np.float32, np.float64):
            raise CompressionError(
                f"lossless codec expects float32/float64, got {data.dtype}"
            )
        if self.shuffle:
            raw = _byte_shuffle(data)
        else:
            raw = np.ascontiguousarray(data).tobytes()
        payload = zlib.compress(raw, self.level)
        return CompressedBuffer(
            codec=self.name,
            payload=payload,
            meta={
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "shuffle": self.shuffle,
            },
        )

    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        self._check_codec(buf)
        shape = tuple(buf.meta["shape"])
        dtype = np.dtype(buf.meta["dtype"])
        count = int(np.prod(shape))
        raw = zlib.decompress(buf.payload)
        if len(raw) != count * dtype.itemsize:
            raise CompressionError("lossless payload size mismatch")
        if buf.meta.get("shuffle", True):
            flat = _byte_unshuffle(raw, count, dtype.itemsize)
        else:
            flat = np.frombuffer(raw, dtype=np.uint8)
        return flat.view(dtype).reshape(shape).copy()
