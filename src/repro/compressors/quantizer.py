"""Linear-scaling quantisation (the error-bound mechanism of SZ/cuSZ)."""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError

__all__ = ["prequantize", "dequantize", "resolve_error_bound"]


def resolve_error_bound(
    data: np.ndarray,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
) -> float:
    """Resolve the absolute error bound from abs/value-range-relative input.

    ``rel_bound`` follows the SZ convention: a fraction of the data's
    value range (``REL 1e-3`` on a field with range 100 means ``ABS 0.1``).
    Exactly one of the two must be given.
    """
    if (abs_bound is None) == (rel_bound is None):
        raise CompressionError("specify exactly one of abs_bound / rel_bound")
    if abs_bound is not None:
        if abs_bound <= 0:
            raise CompressionError("abs_bound must be positive")
        return float(abs_bound)
    if rel_bound <= 0:
        raise CompressionError("rel_bound must be positive")
    data = np.asarray(data)
    value_range = float(data.max()) - float(data.min())
    if value_range == 0.0:
        # constant field: any positive bound works; pick the rel bound
        return float(rel_bound)
    return float(rel_bound) * value_range


def prequantize(data: np.ndarray, abs_bound: float) -> np.ndarray:
    """Pre-quantise to the integer lattice: ``q = round(f / (2·eb))``.

    Guarantees ``|f - 2·eb·q| <= eb`` pointwise (the error-bound
    invariant of the whole pipeline).  Raises if the dynamic range would
    overflow the int64 lattice.
    """
    if abs_bound <= 0:
        raise CompressionError("abs_bound must be positive")
    scaled = np.asarray(data, dtype=np.float64) / (2.0 * abs_bound)
    if not np.isfinite(scaled).all():
        raise CompressionError("data contains non-finite values")
    if np.abs(scaled).max() >= 2**62:
        raise CompressionError(
            "error bound too small for the data's dynamic range (int64 overflow)"
        )
    return np.rint(scaled).astype(np.int64)


def dequantize(q: np.ndarray, abs_bound: float) -> np.ndarray:
    """Map lattice integers back to floats: ``f' = 2·eb·q``."""
    return (np.asarray(q, dtype=np.float64) * (2.0 * abs_bound)).astype(np.float32)
