"""SZ-2.1-style adaptive-prediction compressor.

The paper's introduction contrasts cuSZ (which implements the SZ-1.4
design) with SZ 2.1, whose "more advanced data prediction algorithm"
gives "far better compression quality especially for high compression
cases".  That algorithm (Liang et al., IEEE Big Data 2018) picks, per
small block, between the Lorenzo predictor and a fitted **linear
regression plane** — planes win wherever the field is locally smooth and
the error bound is loose, exactly the high-ratio regime.

This implementation keeps the adaptive core and simplifies the coupling:

* data is pre-quantised to the integer lattice (the same
  error-bound-first design as :class:`~repro.compressors.sz.SZCompressor`);
* 6×6×6 blocks are coded **independently** — per block either a
  block-local Lorenzo (triple difference with a zero boundary) or a
  least-squares plane whose 4 coefficients are stored in float32; the
  cheaper residual stream wins (the real SZ 2.1 predicts across block
  borders, which costs sequential decoding; independence keeps both
  directions fully vectorised and leaves the regression-vs-Lorenzo
  adaptivity — the innovation under test — intact);
* all residual codes are Huffman-coded together, with a one-bit-per-block
  predictor-selection map.

The pointwise error bound is identical to SZ's and property-tested; the
high-compression-regime advantage over the pure-Lorenzo pipeline is
asserted in tests and measured in ``benchmarks/bench_intro_claims.py``.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor
from repro.compressors.huffman import huffman_decode, huffman_encode
from repro.compressors.quantizer import dequantize, prequantize, resolve_error_bound
from repro.errors import CompressionError

__all__ = ["SZ2Compressor"]

_BLOCK = 6
_N = _BLOCK**3

#: fixed least-squares design: value ~ b0 + b1·z + b2·y + b3·x
_COORDS = np.stack(
    np.meshgrid(np.arange(_BLOCK), np.arange(_BLOCK), np.arange(_BLOCK),
                indexing="ij"),
    axis=-1,
).reshape(_N, 3)
_DESIGN = np.hstack([np.ones((_N, 1)), _COORDS]).astype(np.float64)
_PINV = np.linalg.pinv(_DESIGN)  # (4, 216)

#: per-regression-block side cost in estimated bits: four quantised,
#: delta-coded coefficients (SZ 2.1 compresses its regression
#: coefficients the same way)
_REGRESSION_PENALTY = 40.0
#: coefficient quantisation grids (lattice units): intercept to 1/16,
#: slopes to 1/128 — worst-case added prediction error
#: 1/32 + 3·5/256 ≈ 0.09 lattice units, far below the rounding margin
_COEFF_SCALE = np.array([16.0, 128.0, 128.0, 128.0])


def _diff3(blocks: np.ndarray) -> np.ndarray:
    """Block-local Lorenzo residuals (triple difference, zero boundary)."""
    r = blocks.astype(np.int64)
    for axis in (1, 2, 3):
        lead = [slice(None)] * 4
        lag = [slice(None)] * 4
        lead[axis] = slice(1, None)
        lag[axis] = slice(None, -1)
        out = r.copy()
        out[tuple(lead)] = r[tuple(lead)] - r[tuple(lag)]
        r = out
    return r


def _cumsum3(blocks: np.ndarray) -> np.ndarray:
    q = blocks.astype(np.int64)
    for axis in (1, 2, 3):
        q = np.cumsum(q, axis=axis, dtype=np.int64)
    return q


def _fit_planes(
    q_blocks: np.ndarray, scaled_blocks: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(quantised integer coefficients, integer residuals) of the plane
    predictor.

    The plane is fitted on the *unrounded* scaled data so the fit does
    not inherit the pre-quantisation rounding noise; coefficients are
    quantised to the :data:`_COEFF_SCALE` grids (what the decoder
    receives), and residuals are taken against that quantised plane so
    the lattice round-trip stays exact.
    """
    flat = scaled_blocks.reshape(-1, _N).astype(np.float64)
    coeffs = flat @ _PINV.T  # (nb, 4)
    coeff_q = np.rint(coeffs * _COEFF_SCALE).astype(np.int64)
    pred = (coeff_q / _COEFF_SCALE) @ _DESIGN.T
    residuals = q_blocks.reshape(-1, _N) - np.rint(pred).astype(np.int64)
    return coeff_q, residuals


def _code_cost(residuals: np.ndarray) -> np.ndarray:
    """Per-block entropy-like bit estimate: Elias-gamma-ish
    ``sum log2(1 + 2|r|)`` tracks Huffman cost far better than sum |r|."""
    return np.log2(1.0 + 2.0 * np.abs(residuals)).sum(axis=1)


def _predict_planes(coeff_q: np.ndarray) -> np.ndarray:
    pred = (coeff_q.astype(np.float64) / _COEFF_SCALE) @ _DESIGN.T
    return np.rint(pred).astype(np.int64)


class SZ2Compressor(Compressor):
    """Error-bounded compressor with per-block Lorenzo/regression choice.

    Parameters mirror :class:`~repro.compressors.sz.SZCompressor`.
    """

    name = "sz2"

    def __init__(
        self,
        abs_bound: float | None = None,
        rel_bound: float | None = None,
    ):
        if (abs_bound is None) == (rel_bound is None):
            raise CompressionError("specify exactly one of abs_bound / rel_bound")
        self.abs_bound = abs_bound
        self.rel_bound = rel_bound

    def compress(self, data: np.ndarray) -> CompressedBuffer:
        data = np.asarray(data)
        if data.ndim != 3:
            raise CompressionError(f"SZ2 expects 3-D fields, got {data.ndim}-D")
        if data.size == 0:
            raise CompressionError("cannot compress an empty array")
        eb = resolve_error_bound(data, self.abs_bound, self.rel_bound)
        maxabs = float(np.abs(data).max())
        ulp = float(np.spacing(np.float32(maxabs))) if maxabs > 0 else 0.0
        eb_q = max(eb * (1.0 - 1e-9) - ulp, eb * 0.5)
        q = prequantize(data, eb_q)

        padded_shape = tuple(
            math.ceil(s / _BLOCK) * _BLOCK for s in data.shape
        )
        if padded_shape != q.shape:
            pads = [(0, p - s) for s, p in zip(q.shape, padded_shape)]
            q = np.pad(q, pads, mode="edge")
        nz, ny, nx = q.shape
        blocks = (
            q.reshape(nz // _BLOCK, _BLOCK, ny // _BLOCK, _BLOCK,
                      nx // _BLOCK, _BLOCK)
            .transpose(0, 2, 4, 1, 3, 5)
            .reshape(-1, _BLOCK, _BLOCK, _BLOCK)
        )
        nb = blocks.shape[0]

        scaled = np.asarray(data, dtype=np.float64) / (2.0 * eb_q)
        if padded_shape != data.shape:
            pads = [(0, p - s) for s, p in zip(data.shape, padded_shape)]
            scaled = np.pad(scaled, pads, mode="edge")
        scaled_blocks = (
            scaled.reshape(nz // _BLOCK, _BLOCK, ny // _BLOCK, _BLOCK,
                           nx // _BLOCK, _BLOCK)
            .transpose(0, 2, 4, 1, 3, 5)
            .reshape(-1, _BLOCK, _BLOCK, _BLOCK)
        )

        res_lor = _diff3(blocks).reshape(nb, _N)
        coeff_q, res_reg = _fit_planes(blocks, scaled_blocks)

        cost_lor = _code_cost(res_lor)
        cost_reg = _code_cost(res_reg) + _REGRESSION_PENALTY
        use_reg = cost_reg < cost_lor

        codes = np.where(use_reg[:, None], res_reg, res_lor)
        stream = huffman_encode(codes.ravel())
        flags = np.packbits(use_reg.astype(np.uint8), bitorder="little")
        # coefficients vary smoothly across neighbouring blocks: delta-code
        # each column then entropy-code (SZ 2.1's coefficient compression)
        reg_q = coeff_q[use_reg]
        deltas = np.diff(reg_q, axis=0, prepend=np.zeros((1, 4), np.int64))
        coeff_stream = huffman_encode(deltas.ravel())

        payload = (
            struct.pack("<QQ", nb, int(use_reg.sum()))
            + flags.tobytes()
            + struct.pack("<Q", len(coeff_stream))
            + coeff_stream
            + struct.pack("<Q", len(stream))
            + stream
        )
        return CompressedBuffer(
            codec=self.name,
            payload=payload,
            meta={
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "abs_bound": eb,
                "quant_bound": eb_q,
            },
        )

    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        self._check_codec(buf)
        shape = tuple(buf.meta["shape"])
        eb_q = float(buf.meta.get("quant_bound", buf.meta["abs_bound"]))
        blob = buf.payload

        nb, n_reg = struct.unpack("<QQ", blob[:16])
        off = 16
        flag_bytes = (nb + 7) // 8
        use_reg = np.unpackbits(
            np.frombuffer(blob[off : off + flag_bytes], dtype=np.uint8),
            count=nb,
            bitorder="little",
        ).astype(bool)
        off += flag_bytes
        if int(use_reg.sum()) != n_reg:
            raise CompressionError("predictor map disagrees with header")
        (coeff_len,) = struct.unpack("<Q", blob[off : off + 8])
        off += 8
        deltas = huffman_decode(blob[off : off + coeff_len])
        off += coeff_len
        if deltas.size != 4 * n_reg:
            raise CompressionError("coefficient stream size mismatch")
        coeff_q = np.cumsum(deltas.reshape(n_reg, 4), axis=0, dtype=np.int64)
        (stream_len,) = struct.unpack("<Q", blob[off : off + 8])
        off += 8
        codes = huffman_decode(blob[off : off + stream_len])
        if codes.size != nb * _N:
            raise CompressionError(
                f"decoded {codes.size} codes for {nb * _N} block elements"
            )
        codes = codes.reshape(nb, _N)

        q_blocks = np.empty((nb, _BLOCK, _BLOCK, _BLOCK), dtype=np.int64)
        if (~use_reg).any():
            q_blocks[~use_reg] = _cumsum3(
                codes[~use_reg].reshape(-1, _BLOCK, _BLOCK, _BLOCK)
            )
        if n_reg:
            pred = _predict_planes(coeff_q)
            q_blocks[use_reg] = (codes[use_reg] + pred).reshape(
                -1, _BLOCK, _BLOCK, _BLOCK
            )

        padded_shape = tuple(math.ceil(s / _BLOCK) * _BLOCK for s in shape)
        nz, ny, nx = padded_shape
        q = (
            q_blocks.reshape(nz // _BLOCK, ny // _BLOCK, nx // _BLOCK,
                             _BLOCK, _BLOCK, _BLOCK)
            .transpose(0, 3, 1, 4, 2, 5)
            .reshape(nz, ny, nx)
        )
        q = q[: shape[0], : shape[1], : shape[2]]
        out = dequantize(q, eb_q)
        return out.astype(buf.meta.get("dtype", "float32")).reshape(shape)
