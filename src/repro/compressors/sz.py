"""SZ-style error-bounded lossy compressor (the cuSZ algorithm).

Pipeline (SZ 1.4 / cuSZ):

1. **Pre-quantisation** — ``q = round(f / (2·eb))`` bounds the pointwise
   reconstruction error by ``eb`` before anything else happens;
2. **Lorenzo prediction** on the integer lattice — residuals are the
   triple first difference, reconstruction a triple prefix sum (exactly
   the dual-pass formulation that makes cuSZ GPU-parallel);
3. **Quantisation-code clipping** — residuals within ``±radius`` become
   Huffman symbols; rare large residuals ("unpredictable" points) are
   stored exactly in an outlier list, marked by a sentinel symbol;
4. **Canonical Huffman coding** of the symbol stream.

The decompressor inverts each stage; the error bound
``|orig - dec| <= eb`` holds for every element and is property-tested.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor
from repro.compressors.huffman import huffman_decode, huffman_encode
from repro.compressors.predictor import lorenzo_reconstruct, lorenzo_residuals
from repro.compressors.quantizer import (
    dequantize,
    prequantize,
    resolve_error_bound,
)
from repro.errors import CompressionError

__all__ = ["SZCompressor"]

_DEFAULT_RADIUS = 1 << 15


class SZCompressor(Compressor):
    """Error-bounded prediction-based compressor (cuSZ / SZ-1.4 style).

    Parameters
    ----------
    abs_bound / rel_bound:
        The error bound: absolute, or relative to the field's value range
        (exactly one must be provided).
    radius:
        Quantisation-code radius; residuals beyond it are stored exactly
        as outliers.
    """

    name = "sz"

    def __init__(
        self,
        abs_bound: float | None = None,
        rel_bound: float | None = None,
        radius: int = _DEFAULT_RADIUS,
    ):
        if (abs_bound is None) == (rel_bound is None):
            raise CompressionError("specify exactly one of abs_bound / rel_bound")
        if radius < 2:
            raise CompressionError("radius must be >= 2")
        self.abs_bound = abs_bound
        self.rel_bound = rel_bound
        self.radius = int(radius)

    def compress(self, data: np.ndarray) -> CompressedBuffer:
        data = np.asarray(data)
        if data.ndim not in (1, 2, 3):
            raise CompressionError(f"SZ supports 1-3-D arrays, got {data.ndim}-D")
        if data.size == 0:
            raise CompressionError("cannot compress an empty array")
        eb = resolve_error_bound(data, self.abs_bound, self.rel_bound)
        # Quantise against a tighter bound so the user-visible bound still
        # holds after the final float32 cast of the output.  Two regimes:
        # normally we reserve one ulp (at the field's peak magnitude) of
        # headroom; if the bound is below that ulp, we halve it instead —
        # for float32 *inputs* the original value is itself on the float32
        # grid within eb_q of the float64 reconstruction, so
        # round-to-nearest lands within 2·eb_q <= eb of the original.
        maxabs = float(np.abs(data).max())
        ulp = float(np.spacing(np.float32(maxabs))) if maxabs > 0 else 0.0
        eb_q = max(eb * (1.0 - 1e-9) - ulp, eb * 0.5)

        q = prequantize(data, eb_q)
        residuals = lorenzo_residuals(q)

        flat = residuals.ravel()
        sentinel = -(self.radius + 1)
        outlier_mask = np.abs(flat) > self.radius
        symbols = np.where(outlier_mask, sentinel, flat)
        outlier_idx = np.flatnonzero(outlier_mask).astype(np.int64)
        outlier_val = flat[outlier_mask].astype(np.int64)

        stream = huffman_encode(symbols)
        payload = (
            struct.pack("<Q", len(stream))
            + stream
            + struct.pack("<Q", outlier_idx.size)
            + outlier_idx.astype("<i8").tobytes()
            + outlier_val.astype("<i8").tobytes()
        )
        return CompressedBuffer(
            codec=self.name,
            payload=payload,
            meta={
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "abs_bound": eb,
                "quant_bound": eb_q,
                "radius": self.radius,
            },
        )

    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        self._check_codec(buf)
        shape = tuple(buf.meta["shape"])
        eb = float(buf.meta.get("quant_bound", buf.meta["abs_bound"]))
        radius = int(buf.meta["radius"])
        blob = buf.payload

        (stream_len,) = struct.unpack("<Q", blob[:8])
        off = 8
        symbols = huffman_decode(blob[off : off + stream_len])
        off += stream_len
        (n_out,) = struct.unpack("<Q", blob[off : off + 8])
        off += 8
        idx = np.frombuffer(blob[off : off + 8 * n_out], dtype="<i8")
        off += 8 * n_out
        val = np.frombuffer(blob[off : off + 8 * n_out], dtype="<i8")

        n = int(np.prod(shape))
        if symbols.size != n:
            raise CompressionError(
                f"decoded {symbols.size} symbols for {n} elements"
            )
        residuals = symbols.copy()
        sentinel = -(radius + 1)
        if n_out:
            if not (residuals[idx] == sentinel).all():
                raise CompressionError("outlier positions disagree with sentinels")
            residuals[idx] = val
        elif (residuals == sentinel).any():
            raise CompressionError("sentinel symbols without outlier records")

        q = lorenzo_reconstruct(residuals.reshape(shape))
        out = dequantize(q, eb)
        return out.astype(buf.meta.get("dtype", "float32")).reshape(shape)
