"""Lossy compressor substrate (the systems cuZ-Checker assesses).

* :class:`~repro.compressors.sz.SZCompressor` — error-bounded
  prediction-based compressor implementing the cuSZ/SZ-1.4 algorithm
  (pre-quantisation, 3-D Lorenzo prediction, canonical Huffman coding);
* :class:`~repro.compressors.zfp.ZFPCompressor` — fixed-rate orthogonal
  block-transform codec in the style of cuZFP;
* :mod:`repro.compressors.simple` — uniform-quantisation and decimation
  baselines for contrast experiments.
"""

from repro.compressors.base import Compressor, CompressedBuffer
from repro.compressors.sz import SZCompressor
from repro.compressors.sz2 import SZ2Compressor
from repro.compressors.zfp import ZFPCompressor
from repro.compressors.simple import UniformQuantCompressor, DecimateCompressor
from repro.compressors.lossless import LosslessCompressor
from repro.compressors.registry import get_compressor, COMPRESSOR_NAMES

__all__ = [
    "Compressor",
    "CompressedBuffer",
    "SZCompressor",
    "SZ2Compressor",
    "ZFPCompressor",
    "UniformQuantCompressor",
    "DecimateCompressor",
    "LosslessCompressor",
    "get_compressor",
    "COMPRESSOR_NAMES",
]
