"""Compressor factory keyed by codec name."""

from __future__ import annotations

from repro.compressors.base import Compressor
from repro.compressors.lossless import LosslessCompressor
from repro.compressors.simple import DecimateCompressor, UniformQuantCompressor
from repro.compressors.sz import SZCompressor
from repro.compressors.sz2 import SZ2Compressor
from repro.compressors.zfp import ZFPCompressor
from repro.errors import CompressionError

__all__ = ["get_compressor", "COMPRESSOR_NAMES"]

COMPRESSOR_NAMES: tuple[str, ...] = (
    "sz",
    "sz2",
    "zfp",
    "uniform_quant",
    "decimate",
    "lossless",
)


def get_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a compressor by name.

    Keyword arguments are forwarded to the constructor, e.g.
    ``get_compressor("sz", rel_bound=1e-3)`` or
    ``get_compressor("zfp", rate=8)``.
    """
    key = name.lower()
    if key == "sz":
        return SZCompressor(**kwargs)
    if key == "sz2":
        return SZ2Compressor(**kwargs)
    if key == "zfp":
        return ZFPCompressor(**kwargs)
    if key == "uniform_quant":
        return UniformQuantCompressor(**kwargs)
    if key == "decimate":
        return DecimateCompressor(**kwargs)
    if key == "lossless":
        return LosslessCompressor(**kwargs)
    raise CompressionError(
        f"unknown compressor {name!r}; known: {COMPRESSOR_NAMES}"
    )
