"""Baseline compressors for contrast experiments."""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor
from repro.compressors.huffman import huffman_decode, huffman_encode
from repro.compressors.quantizer import (
    dequantize,
    prequantize,
    resolve_error_bound,
)
from repro.errors import CompressionError

__all__ = ["UniformQuantCompressor", "DecimateCompressor"]


class UniformQuantCompressor(Compressor):
    """Error-bounded uniform quantisation without prediction.

    The ablation partner of :class:`~repro.compressors.sz.SZCompressor`:
    same pre-quantisation and entropy stage, no Lorenzo predictor — the
    compression-ratio gap between the two isolates the predictor's value.
    """

    name = "uniform_quant"

    def __init__(self, abs_bound: float | None = None, rel_bound: float | None = None):
        if (abs_bound is None) == (rel_bound is None):
            raise CompressionError("specify exactly one of abs_bound / rel_bound")
        self.abs_bound = abs_bound
        self.rel_bound = rel_bound

    def compress(self, data: np.ndarray) -> CompressedBuffer:
        data = np.asarray(data)
        if data.size == 0:
            raise CompressionError("cannot compress an empty array")
        eb = resolve_error_bound(data, self.abs_bound, self.rel_bound)
        # ulp-aware shrink mirroring SZCompressor: keep the user bound
        # valid after the float32 output cast
        maxabs = float(np.abs(data).max())
        ulp = float(np.spacing(np.float32(maxabs))) if maxabs > 0 else 0.0
        eb_q = max(eb * (1.0 - 1e-9) - ulp, eb * 0.5)
        q = prequantize(data, eb_q)
        # centre the alphabet so the Huffman header stays small
        base = int(q.min())
        stream = huffman_encode(q.ravel() - base)
        return CompressedBuffer(
            codec=self.name,
            payload=struct.pack("<q", base) + stream,
            meta={
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "abs_bound": eb,
                "quant_bound": eb_q,
            },
        )

    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        self._check_codec(buf)
        (base,) = struct.unpack("<q", buf.payload[:8])
        symbols = huffman_decode(buf.payload[8:]) + base
        shape = tuple(buf.meta["shape"])
        eb_q = float(buf.meta.get("quant_bound", buf.meta["abs_bound"]))
        out = dequantize(symbols.reshape(shape), eb_q)
        return out.astype(buf.meta.get("dtype", "float32"))


class DecimateCompressor(Compressor):
    """Subsampling + trilinear reconstruction (a naive, unbounded baseline).

    Keeps every ``factor``-th sample along each axis and reconstructs by
    linear interpolation.  Provides no error bound — assessments of this
    codec are what make the error-bounded compressors' PDFs and
    autocorrelations interesting to compare against.
    """

    name = "decimate"

    def __init__(self, factor: int = 2):
        if factor < 2:
            raise CompressionError("decimation factor must be >= 2")
        self.factor = int(factor)

    def compress(self, data: np.ndarray) -> CompressedBuffer:
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 3:
            raise CompressionError("decimation expects 3-D fields")
        if min(data.shape) < self.factor + 1:
            raise CompressionError(
                f"field {data.shape} too small for factor {self.factor}"
            )
        sub = data[:: self.factor, :: self.factor, :: self.factor]
        return CompressedBuffer(
            codec=self.name,
            payload=sub.astype("<f4").tobytes(),
            meta={
                "shape": list(data.shape),
                "sub_shape": list(sub.shape),
                "factor": self.factor,
                "dtype": "float32",
            },
        )

    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        self._check_codec(buf)
        shape = tuple(buf.meta["shape"])
        sub_shape = tuple(buf.meta["sub_shape"])
        factor = int(buf.meta["factor"])
        sub = np.frombuffer(buf.payload, dtype="<f4").reshape(sub_shape)

        out = sub.astype(np.float64)
        for axis, n in enumerate(shape):
            coords = np.arange(n) / factor
            grid = np.arange(out.shape[axis])
            idx0 = np.clip(np.floor(coords).astype(int), 0, out.shape[axis] - 1)
            idx1 = np.clip(idx0 + 1, 0, out.shape[axis] - 1)
            frac = coords - idx0
            lo = np.take(out, idx0, axis=axis)
            hi = np.take(out, idx1, axis=axis)
            shape_b = [1] * out.ndim
            shape_b[axis] = n
            out = lo + (hi - lo) * frac.reshape(shape_b)
        return out.astype(np.float32)
