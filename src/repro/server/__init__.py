"""``cuzchecker serve``: a resident asyncio assessment server."""

from repro.server.app import AssessmentServer
from repro.server.jobs import Job, JobQueue, QueueFullError, execute_job

__all__ = [
    "AssessmentServer",
    "Job",
    "JobQueue",
    "QueueFullError",
    "execute_job",
]
