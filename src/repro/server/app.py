"""Stdlib-asyncio HTTP/JSON front end for a resident CheckerSession.

``cuzchecker serve`` binds one :class:`AssessmentServer`: a minimal
HTTP/1.1 endpoint written directly on :func:`asyncio.start_server` (no
third-party framework — the container bakes in only the standard
toolchain).  Requests are JSON in, JSON out:

======  ==================  ==============================================
POST    ``/jobs``           submit a job spec (202, or 429 when the
                            admission queue is full)
GET     ``/jobs``           all job summaries
GET     ``/jobs/<id>``      one job's status, progress, and — when done —
                            its full report
GET     ``/jobs/<id>/trace``  the job's chrome-trace span feed (the same
                            exporter ``cuzchecker profile`` uses)
GET     ``/metrics``        server counters + the session's warm-state
                            cache counters
GET     ``/healthz``        liveness (session id, uptime, queue depth)
POST    ``/shutdown``       graceful stop (drains nothing; running jobs
                            finish, queued jobs are dropped)
======  ==================  ==============================================

Assessment is CPU-bound NumPy, so the asyncio loop never runs it
directly: ``job_workers`` worker tasks pull from the fair queue and push
each job into a thread via :meth:`loop.run_in_executor`, keeping the
accept loop responsive while the shared session (thread-safe by design)
does the work.  Every job runs with its own tracer, which doubles as
the progress feed.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.server.jobs import Job, JobQueue, QueueFullError, execute_job
from repro.service.session import CheckerSession

__all__ = ["AssessmentServer"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: JSON bodies larger than this are rejected with 413 before parsing —
#: npy uploads inflate ~4/3 under base64, so this admits ~48 MiB fields
MAX_BODY_BYTES = 64 << 20


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request: (method, path, headers, body)."""
    line = await reader.readline()
    if not line:
        raise _HttpError(400, "empty request")
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        if b":" in raw:
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _HttpError(400, "bad Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


class AssessmentServer:
    """One resident session behind an asyncio HTTP/JSON endpoint."""

    def __init__(
        self,
        session: CheckerSession | None = None,
        host: str = "127.0.0.1",
        port: int = 8765,
        max_queue: int = 64,
        job_workers: int = 1,
    ):
        self.session = session or CheckerSession()
        self.host = host
        self.port = port
        self.queue = JobQueue(max_pending=max_queue)
        self.job_workers = max(1, int(job_workers))
        self.jobs: dict[str, Job] = {}
        self.counters = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "jobs_rejected": 0,
        }
        self._started_at: float | None = None
        self._server: asyncio.AbstractServer | None = None
        self._workers: list[asyncio.Task] = []
        self._wakeup: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Open the session, bind the socket, launch the job workers."""
        self.session.open()
        self._wakeup = asyncio.Event()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker())
            for _ in range(self.job_workers)
        ]

    async def serve_until_shutdown(self) -> None:
        """Block until ``POST /shutdown`` (or :meth:`stop`) fires."""
        assert self._stopping is not None, "start() first"
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, cancel idle workers, close the warm session."""
        if self._stopping is not None:
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._workers = []
        # close() shuts the persistent process pools down with wait=True
        # and clears the scratch pools — the leak-free-shutdown half of
        # the service contract (CI asserts no orphan workers/segments)
        self.session.close(wait=True)

    # -- job execution -----------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = self.queue.next_job()
            if job is None:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            job.status = "running"
            job.started_at = time.time()
            try:
                job.report = await loop.run_in_executor(
                    None, execute_job, self.session, job
                )
                job.status = "done"
                self.counters["jobs_completed"] += 1
            except asyncio.CancelledError:
                job.status = "failed"
                job.error = "server shut down while running"
                raise
            except Exception as exc:  # noqa: BLE001 — job isolation
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                self.counters["jobs_failed"] += 1
            finally:
                job.finished_at = time.time()

    # -- HTTP --------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                method, path, headers, body = await _read_request(reader)
                status, payload = self._route(method, path, body)
            except _HttpError as err:
                status, payload = err.status, {"error": err.message}
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # noqa: BLE001 — never kill the loop
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            data = json.dumps(payload, sort_keys=True).encode()
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + data)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, method: str, path: str, body: bytes):
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "session": self.session.session_id,
                "uptime_s": (
                    round(time.monotonic() - self._started_at, 3)
                    if self._started_at is not None
                    else 0.0
                ),
                "queue_depth": len(self.queue),
            }
        if path == "/metrics" and method == "GET":
            return 200, {
                "server": dict(
                    self.counters,
                    queue_depth=len(self.queue),
                    queue_depth_by_tenant=self.queue.depths(),
                    job_workers=self.job_workers,
                ),
                "session": self.session.stats(),
            }
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": [job.summary() for job in self.jobs.values()]}
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "job resources are read-only"}
            parts = path.strip("/").split("/")
            job = self.jobs.get(parts[1])
            if job is None:
                return 404, {"error": f"no such job {parts[1]!r}"}
            if len(parts) == 2:
                return 200, job.to_dict()
            if len(parts) == 3 and parts[2] == "trace":
                from repro.telemetry.export import chrome_trace_events

                return 200, {
                    "traceEvents": chrome_trace_events(
                        job.tracer.spans,
                        process_name=f"cuzchecker job {job.id}",
                    )
                }
            return 404, {"error": f"unknown job resource {path!r}"}
        if path == "/shutdown" and method == "POST":
            self._stopping.set()
            return 200, {"status": "shutting down"}
        return 404, {"error": f"no route for {method} {path}"}

    def _submit(self, body: bytes):
        try:
            spec = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"body must be JSON: {exc}"}
        if not isinstance(spec, dict):
            return 400, {"error": "job spec must be a JSON object"}
        tenant = str(spec.get("tenant", "default"))
        job = Job(spec=spec, tenant=tenant)
        try:
            self.queue.submit(job)
        except QueueFullError as exc:
            self.counters["jobs_rejected"] += 1
            return 429, {"error": str(exc)}
        self.jobs[job.id] = job
        self.counters["jobs_submitted"] += 1
        self._wakeup.set()
        return 202, {"id": job.id, "status": job.status, "tenant": tenant}
