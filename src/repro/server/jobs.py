"""Job model, admission control, and fair scheduling for the server.

The server accepts assessment *jobs* — JSON specs naming the data to
assess — and runs them on one shared
:class:`~repro.service.session.CheckerSession`.  This module owns the
parts that need no sockets:

* :class:`Job` — one submission's full lifecycle (queued → running →
  done/failed), its own :class:`~repro.telemetry.tracer.Tracer` (the
  span feed *is* the progress stream; the chrome-trace exporter renders
  it for ``GET /jobs/<id>/trace``), and JSON views;
* :class:`JobQueue` — a bounded admission queue with per-tenant fair
  scheduling: tenants hold FIFO sub-queues and dispatch round-robins
  across tenants, so one flooding client cannot starve the others;
* :func:`execute_job` — the spec interpreter: raw-binary path pairs,
  base64 ``.npy`` uploads, or synthetic dataset+codec runs, all routed
  through the session so every job shares the warm plan/scratch state.
"""

from __future__ import annotations

import base64
import io
import secrets
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckerError
from repro.telemetry.tracer import Tracer

__all__ = ["Job", "JobQueue", "QueueFullError", "execute_job"]


class QueueFullError(CheckerError):
    """Admission control rejected a submission (HTTP 429)."""


@dataclass
class Job:
    """One submitted assessment and everything observable about it."""

    spec: dict
    tenant: str = "default"
    id: str = field(default_factory=lambda: f"job-{secrets.token_hex(6)}")
    status: str = "queued"  # queued | running | done | failed
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    report: object | None = None
    #: per-job tracer — the job's progress feed and trace export
    tracer: Tracer = field(default_factory=Tracer)

    def progress(self) -> dict:
        """Live progress read off the telemetry span feed."""
        spans = list(self.tracer.spans)
        out = {"spans": len(spans)}
        if spans:
            last = spans[-1]
            out["last_span"] = last.name
            out["last_category"] = last.category
        return out

    def to_dict(self, include_report: bool = True) -> dict:
        out = {
            "id": self.id,
            "tenant": self.tenant,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": self.progress(),
        }
        if self.error is not None:
            out["error"] = self.error
        if include_report and self.report is not None:
            out["report"] = self.report.to_dict()
        return out

    def summary(self) -> dict:
        return self.to_dict(include_report=False)


class JobQueue:
    """Bounded admission + per-tenant round-robin dispatch.

    ``submit`` is O(1) and raises :class:`QueueFullError` once
    ``max_pending`` jobs are waiting — the server maps that to HTTP 429
    instead of buffering unboundedly.  ``next_job`` pops the head of the
    next tenant's FIFO and rotates the tenant ring, so each tenant with
    pending work gets every k-th slot regardless of how many jobs any
    single tenant queued.
    """

    def __init__(self, max_pending: int = 64):
        if max_pending < 1:
            raise CheckerError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._queues: dict[str, deque[Job]] = {}
        self._ring: deque[str] = deque()
        self._pending = 0

    def __len__(self) -> int:
        with self._lock:
            return self._pending

    def depths(self) -> dict[str, int]:
        """Pending jobs per tenant (the ``/metrics`` queue view)."""
        with self._lock:
            return {t: len(q) for t, q in self._queues.items() if q}

    def submit(self, job: Job) -> None:
        with self._lock:
            if self._pending >= self.max_pending:
                raise QueueFullError(
                    f"admission queue full ({self.max_pending} pending)"
                )
            q = self._queues.setdefault(job.tenant, deque())
            if job.tenant not in self._ring:
                self._ring.append(job.tenant)
            q.append(job)
            self._pending += 1

    def next_job(self) -> Job | None:
        """Pop the next job fairly, or ``None`` when everything is idle."""
        with self._lock:
            for _ in range(len(self._ring)):
                tenant = self._ring[0]
                self._ring.rotate(-1)
                q = self._queues.get(tenant)
                if q:
                    self._pending -= 1
                    return q.popleft()
            return None


# ---------------------------------------------------------------------------
# spec interpretation
# ---------------------------------------------------------------------------

_SPEC_KINDS = (
    "original_path/decompressed_path (+shape)",
    "original_npy_b64/decompressed_npy_b64",
    "dataset (+codec)",
    "audit_root (+codec/audit_workers)",
)


class _AuditReport:
    """Adapter giving a run_audit dict the ``.to_dict()`` face the job
    serialiser expects from assessment reports."""

    def __init__(self, report: dict):
        self.report = report

    def to_dict(self) -> dict:
        return self.report


def _decode_npy(b64_text: str) -> np.ndarray:
    try:
        raw = base64.b64decode(b64_text.encode("ascii"), validate=True)
        return np.load(io.BytesIO(raw), allow_pickle=False)
    except Exception as exc:  # noqa: BLE001 — surface as one job error
        raise CheckerError(f"invalid .npy upload: {exc}") from exc


def _job_config(session, spec: dict):
    """Overlay a job's metric/backend/tiling/executor knobs onto the
    session default config (same overlay the CLI flags use)."""
    from repro.cli import _apply_overrides

    if not any(
        spec.get(k)
        for k in ("metrics", "backend", "tiling", "executor", "calibration")
    ):
        return None  # no overrides: share the session's default checker
    return _apply_overrides(
        session.config,
        spec.get("metrics"),
        spec.get("backend"),
        spec.get("tiling"),
        spec.get("executor"),
        spec.get("calibration"),
    )


def _codec_from_spec(spec: dict):
    from repro.compressors.registry import get_compressor

    codec = spec.get("codec", "sz")
    if codec == "zfp":
        return get_compressor("zfp", rate=float(spec.get("rate", 8.0)))
    if codec == "decimate":
        return get_compressor("decimate")
    return get_compressor(codec, rel_bound=float(spec.get("rel_bound", 1e-3)))


def execute_job(session, job: Job):
    """Run one job's spec on the shared session and return its report.

    Three spec kinds are accepted:

    * **path reference** — ``original_path`` + ``decompressed_path`` +
      ``shape`` (+ optional ``dtype``/``endian``): headerless raw pairs
      already on the server's filesystem;
    * **npy upload** — ``original_npy_b64`` + ``decompressed_npy_b64``:
      base64-encoded ``.npy`` payloads carried in the JSON body;
    * **synthetic** — ``dataset`` (+ ``field``/``scale``/``codec``/
      ``rel_bound``/``rate``): generate a field, compress it with a
      registered codec, and assess the round trip;
    * **archive audit** — ``audit_root`` (+ ``codec``/``rel_bound``/
      ``rate``/``chunk_nz``/``audit_workers``/``use_ssim``/``fresh``/
      ``out_path``/``checkpoint_path``): a resumable
      :meth:`~repro.service.session.CheckerSession.audit_archive` over a
      bundle tree on the server's filesystem; the job report is the
      audit report, and the job's span feed carries the chunk progress.
    """
    spec = job.spec
    config = _job_config(session, spec)

    if "original_path" in spec or "decompressed_path" in spec:
        from repro.io.raw import read_raw

        if not (spec.get("original_path") and spec.get("decompressed_path")):
            raise CheckerError(
                "path jobs need both original_path and decompressed_path"
            )
        shape = spec.get("shape")
        if not shape or len(shape) != 3:
            raise CheckerError("path jobs need a 3-element shape")
        shape = tuple(int(x) for x in shape)
        dtype = spec.get("dtype", "float32")
        endian = spec.get("endian", "little")
        orig = read_raw(spec["original_path"], shape, dtype=dtype, endian=endian)
        dec = read_raw(
            spec["decompressed_path"], shape, dtype=dtype, endian=endian
        )
        return session.assess(
            orig, dec, name=f"job:{job.id}", job_id=job.id,
            config=config, tracer=job.tracer,
        )

    if "original_npy_b64" in spec or "decompressed_npy_b64" in spec:
        if not (
            spec.get("original_npy_b64") and spec.get("decompressed_npy_b64")
        ):
            raise CheckerError(
                "npy jobs need both original_npy_b64 and decompressed_npy_b64"
            )
        orig = _decode_npy(spec["original_npy_b64"])
        dec = _decode_npy(spec["decompressed_npy_b64"])
        return session.assess(
            orig, dec, name=f"job:{job.id}", job_id=job.id,
            config=config, tracer=job.tracer,
        )

    if "audit_root" in spec:
        codec = spec.get("codec", "sz")
        if codec == "zfp":
            codec_args = {"rate": float(spec.get("rate", 8.0))}
        elif codec == "decimate":
            codec_args = {}
        else:
            codec_args = {"rel_bound": float(spec.get("rel_bound", 1e-3))}
        report = session.audit_archive(
            spec["audit_root"],
            out_path=spec.get("out_path"),
            checkpoint_path=spec.get("checkpoint_path"),
            codec=codec,
            codec_args=codec_args,
            chunk_nz=(
                int(spec["chunk_nz"]) if spec.get("chunk_nz") is not None
                else None
            ),
            use_ssim=bool(spec.get("use_ssim", True)),
            resume=not bool(spec.get("fresh", False)),
            workers=spec.get("audit_workers"),
            tracer=job.tracer,
        )
        return _AuditReport(report)

    if "dataset" in spec:
        from repro.datasets.registry import (
            dataset_info,
            generate_field,
            scaled_shape,
        )

        info = dataset_info(spec["dataset"])
        field_name = spec.get("field") or info.field_names[0]
        shape = scaled_shape(spec["dataset"], float(spec.get("scale", 0.125)))
        data = generate_field(spec["dataset"], field_name, shape=shape)
        return session.assess_compressor(
            data.data, _codec_from_spec(spec),
            name=f"job:{job.id}", job_id=job.id,
            config=config, tracer=job.tracer,
        )

    raise CheckerError(
        "unrecognised job spec; expected one of: " + "; ".join(_SPEC_KINDS)
    )
