"""Exception hierarchy for the cuZ-Checker reproduction.

All library errors derive from :class:`ReproError` so downstream users can
catch a single base class.  Sub-hierarchies mirror the major subsystems:
configuration, I/O, compressors, the GPU execution model, and the checker
core.
"""

from __future__ import annotations

import difflib

__all__ = [
    "ReproError",
    "ConfigError",
    "DataIOError",
    "ShapeError",
    "CompressionError",
    "ErrorBoundViolation",
    "GpuSimError",
    "LaunchConfigError",
    "ResourceExhausted",
    "CheckerError",
    "UnknownMetricError",
    "MetricDependencyError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigError(ReproError):
    """Raised for malformed or inconsistent configuration input."""


class DataIOError(ReproError):
    """Raised when a dataset file cannot be read or written."""


class ShapeError(ReproError):
    """Raised when an array has an unsupported shape or dimensionality."""


class CompressionError(ReproError):
    """Raised when a compressor cannot encode or decode a payload."""


class ErrorBoundViolation(CompressionError):
    """Raised when a reconstructed value violates the requested error bound.

    Error-bounded compressors in this library guarantee that
    ``|orig - decompressed| <= bound`` pointwise; this exception signals a
    broken invariant (a bug), never a user error.
    """


class GpuSimError(ReproError):
    """Base class for errors in the GPU execution-model simulator."""


class LaunchConfigError(GpuSimError):
    """Raised for invalid kernel launch geometry (block/grid dims)."""


class ResourceExhausted(GpuSimError):
    """Raised when a kernel requests more registers/shared memory than the
    simulated device provides."""


class CheckerError(ReproError):
    """Raised for errors in the assessment coordinator."""


class UnknownMetricError(CheckerError, ConfigError):
    """Raised when a requested metric name is not registered.

    Derives from both :class:`CheckerError` and :class:`ConfigError`: an
    unknown metric can surface from a checker call or from configuration
    parsing, and callers historically catch either base.

    When constructed with the registry's known names, the message carries
    the sorted list of valid metrics and — when the unknown name looks
    like a typo — a "did you mean" suggestion.
    """

    def __init__(self, name: str, known=None):
        self.metric: str | None = None
        self.suggestion: str | None = None
        if known is None:
            # free-text compatibility form: the argument is the message
            super().__init__(str(name))
            return
        self.metric = str(name)
        valid = sorted(known)
        message = (
            f"metric {name!r} is not registered; valid metrics: "
            f"{', '.join(valid)}"
        )
        close = difflib.get_close_matches(str(name), valid, n=1)
        if close:
            self.suggestion = close[0]
            message += f" — did you mean {close[0]!r}?"
        super().__init__(message)


class MetricDependencyError(CheckerError):
    """Raised when a metric's prerequisite (e.g. value range for NRMSE)
    is unavailable."""
