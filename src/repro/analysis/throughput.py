"""Throughput accounting identical to the paper's Figs. 11.

Throughput is input bytes (original + decompressed fields) divided by
framework execution time, evaluated at the paper's true dataset shapes
via the calibrated performance models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.defaults import default_config
from repro.config.schema import CheckerConfig
from repro.core.frameworks import get_framework

__all__ = ["ThroughputRow", "pattern_throughputs", "overall_throughputs"]

FRAMEWORK_ORDER = ("cuZC", "moZC", "ompZC")


@dataclass(frozen=True)
class ThroughputRow:
    """One bar of Fig. 11: a framework's throughput on one dataset."""

    framework: str
    dataset: str
    pattern: int | None
    bytes_per_second: float

    @property
    def gbps(self) -> float:
        return self.bytes_per_second / 1e9

    @property
    def mbps(self) -> float:
        return self.bytes_per_second / 1e6


def pattern_throughputs(
    shapes: dict[str, tuple[int, int, int]],
    pattern: int,
    config: CheckerConfig | None = None,
    frameworks: tuple[str, ...] = FRAMEWORK_ORDER,
) -> list[ThroughputRow]:
    """Fig. 11(a/b/c): throughput of each framework running one pattern."""
    config = (config or default_config()).with_patterns(pattern)
    rows = []
    for name in frameworks:
        fw = get_framework(name)
        for dataset, shape in shapes.items():
            timing = fw.estimate(shape, config)
            rows.append(
                ThroughputRow(
                    framework=name,
                    dataset=dataset,
                    pattern=pattern,
                    bytes_per_second=timing.throughput(pattern),
                )
            )
    return rows


def overall_throughputs(
    shapes: dict[str, tuple[int, int, int]],
    config: CheckerConfig | None = None,
    frameworks: tuple[str, ...] = FRAMEWORK_ORDER,
) -> list[ThroughputRow]:
    """All-patterns-enabled throughput per framework per dataset."""
    config = config or default_config()
    rows = []
    for name in frameworks:
        fw = get_framework(name)
        for dataset, shape in shapes.items():
            timing = fw.estimate(shape, config)
            rows.append(
                ThroughputRow(
                    framework=name,
                    dataset=dataset,
                    pattern=None,
                    bytes_per_second=timing.throughput(),
                )
            )
    return rows
