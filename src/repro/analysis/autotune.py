"""Kernel-geometry autotuning over the execution model.

The paper hand-picks its kernel geometries ("fine-grained optimizations
... by thoroughly leveraging the advanced GPU features"); with a cost
model those choices become a searchable space.  This module sweeps the
pattern-3 block geometry (``yrows`` — window rows per block) and reports
the modelled optimum per dataset shape, including whether the paper's
operating point is on the knee.

The trade-off being searched: more rows per block amortise the y-axis
ghost regions across more windows (less redundant global traffic) but
grow the FIFO footprint and per-block registers, cutting the number of
concurrently resident blocks per SM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.errors import GpuSimError
from repro.gpusim.costmodel import kernel_time
from repro.gpusim.device import DeviceSpec, V100
from repro.gpusim.occupancy import occupancy_for
from repro.kernels.pattern3 import Pattern3Config, plan_pattern3

__all__ = ["GeometryPoint", "tune_pattern3_yrows", "project_devices"]


@dataclass(frozen=True)
class GeometryPoint:
    """One candidate geometry and its modelled behaviour."""

    yrows: int
    seconds: float
    smem_per_block: int
    concurrent_blocks_per_sm: int
    grid_blocks: int
    valid: bool

    @property
    def threads_per_block(self) -> int:
        return 32 * self.yrows


def tune_pattern3_yrows(
    shape: tuple[int, int, int],
    config: Pattern3Config | None = None,
    candidates: Sequence[int] | None = None,
    device: DeviceSpec = V100,
) -> tuple[list[GeometryPoint], GeometryPoint]:
    """Sweep ``yrows`` and return (all points, fastest valid point).

    Candidates whose shared-memory demand exceeds the device's per-block
    limit are reported with ``valid=False`` and excluded from the
    optimum (Volta can opt in to larger carve-outs, but the paper's
    kernels stay within the default 48 KB).
    """
    config = config or Pattern3Config()
    if candidates is None:
        candidates = range(max(config.window, 4), 33, 2)
    points: list[GeometryPoint] = []
    for yrows in candidates:
        if yrows < config.window or not 2 <= yrows <= 32:
            continue
        cand = replace(config, yrows=yrows)
        stats = plan_pattern3(shape, cand)
        valid = stats.smem_per_block <= device.shared_mem_per_block
        try:
            cost = kernel_time(stats, device)
            occ = occupancy_for(device, stats)
            seconds = cost.total
            concurrent = occ.concurrent_blocks_per_sm
        except GpuSimError:
            valid = False
            seconds = float("inf")
            concurrent = 0
        points.append(
            GeometryPoint(
                yrows=yrows,
                seconds=seconds,
                smem_per_block=stats.smem_per_block,
                concurrent_blocks_per_sm=concurrent,
                grid_blocks=stats.grid_blocks,
                valid=valid,
            )
        )
    valid_points = [p for p in points if p.valid]
    if not valid_points:
        raise GpuSimError(
            f"no valid pattern-3 geometry for window {config.window} on "
            f"{device.name}"
        )
    best = min(valid_points, key=lambda p: p.seconds)
    return points, best


def project_devices(
    shape: tuple[int, int, int],
    plan_fn,
    devices: Sequence[DeviceSpec],
) -> dict[str, float]:
    """Modelled kernel time of one plan across devices (what-if study).

    ``plan_fn(shape)`` must return a :class:`KernelStats`; the same plan
    is costed on every device (geometry is device-agnostic here, which is
    the conservative assumption — retuning could only help the faster
    device).
    """
    stats = plan_fn(shape)
    return {device.name: kernel_time(stats, device).total for device in devices}
