"""Evaluation-harness helpers: throughput accounting, speedup tables,
parameter sweeps."""

from repro.analysis.throughput import (
    ThroughputRow,
    pattern_throughputs,
    overall_throughputs,
)
from repro.analysis.speedup import SpeedupRow, speedup_table, overall_speedups
from repro.analysis.sweep import sweep_error_bounds, sweep_ssim_windows, SweepPoint
from repro.analysis.comparison import (
    CodecComparison,
    CodecEntry,
    compare_codecs,
)
from repro.analysis.autotune import (
    GeometryPoint,
    tune_pattern3_yrows,
    project_devices,
)

__all__ = [
    "ThroughputRow",
    "pattern_throughputs",
    "overall_throughputs",
    "SpeedupRow",
    "speedup_table",
    "overall_speedups",
    "sweep_error_bounds",
    "sweep_ssim_windows",
    "SweepPoint",
    "GeometryPoint",
    "tune_pattern3_yrows",
    "project_devices",
    "CodecComparison",
    "CodecEntry",
    "compare_codecs",
]
