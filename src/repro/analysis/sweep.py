"""Parameter sweeps: rate-distortion curves and kernel-geometry studies."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.config.defaults import default_config
from repro.core.frameworks import CuZC
from repro.kernels.pattern3 import Pattern3Config
from repro.metrics.rate_distortion import rate_distortion
from repro.metrics.ssim import SsimConfig, ssim3d

__all__ = ["SweepPoint", "sweep_error_bounds", "sweep_ssim_windows"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: float
    metrics: dict[str, float] = field(default_factory=dict)


def sweep_error_bounds(
    data: np.ndarray,
    bounds: Sequence[float],
    compressor_factory=None,
    ssim_window: int = 8,
) -> list[SweepPoint]:
    """Rate-distortion sweep: compress at each relative error bound and
    record ratio, PSNR, NRMSE and SSIM.

    ``compressor_factory(rel_bound)`` defaults to the SZ compressor.
    """
    from repro.compressors.sz import SZCompressor

    if compressor_factory is None:

        def compressor_factory(rb):
            return SZCompressor(rel_bound=rb)

    data = np.asarray(data)
    points = []
    for bound in bounds:
        comp = compressor_factory(bound)
        buf = comp.compress(data)
        dec = comp.decompress(buf)
        rd = rate_distortion(data, dec)
        metrics = {
            "ratio": data.size * data.dtype.itemsize / buf.nbytes,
            "bit_rate": 8.0 * buf.nbytes / data.size,
            "psnr": rd.psnr,
            "nrmse": rd.nrmse,
        }
        if data.ndim == 3 and min(data.shape) >= ssim_window:
            metrics["ssim"] = ssim3d(
                data, dec, SsimConfig(window=ssim_window)
            ).ssim
        points.append(SweepPoint(parameter=float(bound), metrics=metrics))
    return points


def sweep_ssim_windows(
    shape: tuple[int, int, int],
    windows: Sequence[int] = (4, 5, 6, 8, 10, 12),
    step: int = 1,
) -> list[SweepPoint]:
    """Modelled cuZC SSIM cost as the window size varies (kernel-geometry
    ablation: larger windows shrink xnum/ynum, raising ghost-region
    overlap and per-window work).  Windows are capped by the kernel's
    block row count (12)."""
    cuzc = CuZC()
    points = []
    for window in windows:
        config = replace(
            default_config(),
            patterns=(3,),
            pattern3=Pattern3Config(window=window, step=step),
        )
        seconds = cuzc.estimate(shape, config).pattern_seconds[3]
        nbytes = 2 * 4 * shape[0] * shape[1] * shape[2]
        points.append(
            SweepPoint(
                parameter=float(window),
                metrics={
                    "seconds": seconds,
                    "throughput_mbps": nbytes / seconds / 1e6,
                },
            )
        )
    return points
